"""Robustness study (extension): program-phase pattern drift.

Section 3.2 argues PN-only signatures are safe because footprint snapshots
barely change across program phases (Figure 4 measures >80% overlap).
This bench stresses that assumption: patterns are forcibly re-drawn at
phase boundaries with increasing probability, and Planaria's gain should
degrade *gracefully* (SLP re-learns within one generation; TLP's
neighbour transfer keeps working because sub-run neighbours drift
together) rather than collapse.
"""

import dataclasses

from benchmarks.conftest import run_once
from repro.sim.runner import compare_prefetchers
from repro.trace.generator import get_profile

DRIFTS = (0.0, 0.25, 0.5, 1.0)


def _run(settings):
    rows = []
    for drift in DRIFTS:
        profile = dataclasses.replace(
            get_profile("CFM"),
            phase_length=max(2_000, settings.trace_length // 8),
            phase_drift=drift,
        )
        results = compare_prefetchers(profile, ("none", "planaria"),
                                      length=settings.trace_length,
                                      seed=settings.seed)
        base = results["none"]
        metrics = results["planaria"]
        rows.append((drift, metrics.amat_reduction_vs(base),
                     metrics.accuracy, metrics.coverage))
    return rows


def test_phase_robustness(benchmark, settings):
    rows = run_once(benchmark, _run, settings)
    print()
    print("== phase-drift robustness (CFM, planaria vs none)")
    print(f"{'drift':>6} {'dAMAT':>8} {'accuracy':>9} {'coverage':>9}")
    for drift, damat, accuracy, coverage in rows:
        print(f"{drift:>6.2f} {damat:>+8.3f} {accuracy:>9.2f} {coverage:>9.2f}")
    by_drift = {row[0]: row for row in rows}
    # Still clearly positive under heavy drift: graceful degradation.
    assert by_drift[1.0][1] > 0.02
    assert by_drift[0.0][1] > by_drift[1.0][1]
    # Accuracy erodes but does not collapse.
    assert by_drift[1.0][2] > 0.45
