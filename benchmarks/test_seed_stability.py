"""Seed robustness: the headline conclusion must hold for every seed.

The paper's traces are fixed recordings; ours are sampled, so this bench
re-runs Planaria-vs-none across five generator seeds and asserts the
worst-case seed still shows the paper's direction on every metric.
"""

from benchmarks.conftest import run_once
from repro.experiments.stability import seed_stability


def _run(settings):
    return {
        app: seed_stability(app, "planaria", seeds=(1, 2, 3, 4, 5),
                            length=max(20_000, settings.trace_length // 2))
        for app in ("CFM", "Fort")
    }


def test_seed_stability(benchmark, settings):
    summaries = run_once(benchmark, _run, settings)
    print()
    print("== seed stability: planaria vs none across 5 seeds")
    for app, table in summaries.items():
        print(f"-- {app}")
        for name, summary in table.items():
            print(f"   {name:<18} {summary.format()}")
    for app, table in summaries.items():
        assert table["amat_reduction"].minimum > 0.05, app
        assert table["hit_rate_gain"].minimum > 0.03, app
        assert table["accuracy"].minimum > 0.5, app
        assert table["traffic_overhead"].maximum < 0.25, app
