"""Figure 7: SC hit rate per application x prefetcher."""

from benchmarks.conftest import run_once
from repro.experiments import fig7_hitrate


def test_fig7_hit_rate(benchmark, settings):
    report = run_once(benchmark, fig7_hitrate.run, settings)
    print()
    print(report.format_table())
    summary = report.summary
    assert summary["mean hit rate [planaria]"] > summary["mean hit rate [bop]"]
    assert summary["mean hit rate [planaria]"] > summary["mean hit rate [spp]"]
    assert summary["planaria minus none (pp)"] > 0.08
