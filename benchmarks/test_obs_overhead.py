"""Observability overhead budget: obs must be ~free off, cheap on.

Measures end-to-end simulation throughput three ways —

* plain run (no observability, the default for every existing caller),
* obs attached then detached (the "disabled hook" configuration),
* obs attached and collecting (epoch timelines + event tracing),

— asserts the correctness contract first (``RunMetrics`` bit-identical
in all three configurations), then records the penalties to
``BENCH_obs.json`` at the repo root.  The budget: the detached
configuration is within measurement noise of plain, and full collection
costs at most a few percent (one ~60-scalar capture pass per
``epoch_records``-record boundary, nothing per record).

    PYTHONPATH=src python -m pytest benchmarks/test_obs_overhead.py -s

Set ``REPRO_BENCH_LENGTH`` to shrink runs (the CI smoke step does); the
committed numbers use the defaults below.
"""

import json
import os
import time
import warnings
from dataclasses import asdict
from pathlib import Path

from repro.config import SimConfig
from repro.obs import attach_observability, detach_observability
from repro.prefetch.registry import make_prefetcher
from repro.sim.engine import SystemSimulator
from repro.sim.runner import _collect
from repro.trace.generator import generate_trace_buffer, get_profile
from repro.utils.provenance import runtime_provenance

RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_obs.json"
LENGTH = int(os.environ.get("REPRO_BENCH_LENGTH", 60_000))
APP = "CFM"
SEED = 7
PREFETCHERS = ("none", "planaria")
EPOCH_RECORDS = 1024
ROUNDS = 3

#: Enabled-collection throughput penalty budget (fraction of plain rps).
MAX_ENABLED_PENALTY = 0.05
#: Disabled hooks must be within noise.  The noise floor is measured, not
#: assumed: the plain configuration runs as two independent best-of-ROUNDS
#: series, and their spread (plus this constant) bounds what "identical
#: code" looks like on the current machine.
DISABLED_NOISE_MARGIN = 0.01


def _run(buffer, prefetcher_name, mode):
    if mode == "plain2":  # second independent plain series (noise floor)
        mode = "plain"
    config = SimConfig.experiment_scale()
    simulator = SystemSimulator(
        config, lambda layout, channel: make_prefetcher(prefetcher_name,
                                                        layout, channel))
    obs = None
    if mode == "enabled":
        obs = attach_observability(simulator, epoch_records=EPOCH_RECORDS)
    elif mode == "disabled":
        attach_observability(simulator, epoch_records=EPOCH_RECORDS)
        detach_observability(simulator)
    start = time.perf_counter()
    simulator.run(buffer)
    elapsed = time.perf_counter() - start
    metrics = asdict(_collect(simulator, "obs-overhead", prefetcher_name))
    epochs = len(obs.merged_timeline()) if obs is not None else 0
    events = len(obs.events()) if obs is not None else 0
    return elapsed, metrics, epochs, events


def _best(buffer, prefetcher_name, modes, runner=None):
    """Best-of-ROUNDS per mode, with the modes interleaved within each
    round so slow machine-level drift hits every mode equally."""
    runner = runner or _run
    best = {}
    for _ in range(ROUNDS):
        for mode in modes:
            result = runner(buffer, prefetcher_name, mode)
            if mode not in best or result[0] < best[mode][0]:
                best[mode] = result
    return {
        mode: (len(buffer) / elapsed, metrics, epochs, events)
        for mode, (elapsed, metrics, epochs, events) in best.items()
    }


def test_obs_overhead_budget():
    config = SimConfig.experiment_scale()
    buffer = generate_trace_buffer(get_profile(APP), LENGTH, seed=SEED,
                                   layout=config.layout)
    report = {
        "benchmark": "observability overhead (records / second, plain vs "
                     "hooks-disabled vs collecting)",
        "app": APP,
        "trace_length": LENGTH,
        "seed": SEED,
        "epoch_records": EPOCH_RECORDS,
        "rounds_per_mode": ROUNDS,
        **runtime_provenance(),
        "budget": {
            "max_enabled_penalty": MAX_ENABLED_PENALTY,
            "disabled_noise_margin": DISABLED_NOISE_MARGIN,
        },
        "prefetchers": {},
    }
    print()
    for name in PREFETCHERS:
        results = _best(buffer, name,
                        ("plain", "plain2", "disabled", "enabled"))
        plain_rps, plain_metrics, _, _ = results["plain"]
        plain2_rps = results["plain2"][0]
        disabled_rps, disabled_metrics, _, _ = results["disabled"]
        enabled_rps, enabled_metrics, epochs, events = results["enabled"]
        # Correctness before cost: collection never changes results.
        assert enabled_metrics == plain_metrics, name
        assert disabled_metrics == plain_metrics, name
        noise = abs(1.0 - min(plain_rps, plain2_rps)
                    / max(plain_rps, plain2_rps))
        plain_best = max(plain_rps, plain2_rps)
        disabled_penalty = 1.0 - disabled_rps / plain_best
        enabled_penalty = 1.0 - enabled_rps / plain_best
        report["prefetchers"][name] = {
            "plain_rps": round(plain_best),
            "disabled_rps": round(disabled_rps),
            "enabled_rps": round(enabled_rps),
            "measured_noise": round(noise, 4),
            "disabled_penalty": round(disabled_penalty, 4),
            "enabled_penalty": round(enabled_penalty, 4),
            "epochs_collected": epochs,
            "events_retained": events,
        }
        print(f"  {APP}/{name}: plain {plain_best:,.0f} rec/s "
              f"(noise ±{noise:.1%}), hooks off {disabled_rps:,.0f} "
              f"({disabled_penalty:+.1%}), collecting {enabled_rps:,.0f} "
              f"({enabled_penalty:+.1%}), {epochs} epochs / {events} events")
        assert enabled_penalty <= MAX_ENABLED_PENALTY + noise, (
            f"{name}: collecting cost {enabled_penalty:.1%} "
            f"(budget {MAX_ENABLED_PENALTY:.0%} + noise {noise:.1%})")
        assert disabled_penalty <= DISABLED_NOISE_MARGIN + noise, (
            f"{name}: disabled hooks cost {disabled_penalty:.1%}, outside "
            f"the measured noise floor {noise:.1%} "
            f"(+{DISABLED_NOISE_MARGIN:.0%} margin)")

    RESULT_PATH.write_text(json.dumps(report, indent=2) + "\n")
    print(f"  wrote {RESULT_PATH}")


# ----------------------------------------------------------------------
# Span tracing overhead (non-gating)
# ----------------------------------------------------------------------
#: Span-tracing budgets mirror the obs ones but only *warn* when blown:
#: span cost is per chunk, so the measured penalty is dominated by
#: chunk-size choice and machine noise, not by code regressions.  The
#: correctness half (bit-identical metrics) still hard-fails.
SPAN_MAX_ENABLED_PENALTY = 0.05
SPAN_DISABLED_NOISE_MARGIN = 0.01
SPAN_CHUNK = 2048


def _run_streaming(buffer, prefetcher_name, mode):
    """One chunked streaming feed — the path span tracing instruments."""
    from repro.obs.trace_spans import NULL_SPANS, SpanRecorder
    from repro.sim.engine import channel_warmup_counts

    if mode == "plain2":
        mode = "plain"
    config = SimConfig.experiment_scale()
    simulator = SystemSimulator(
        config, lambda layout, channel: make_prefetcher(prefetcher_name,
                                                        layout, channel))
    if mode == "enabled":
        simulator.spans = SpanRecorder()
    elif mode == "disabled":
        simulator.spans = NULL_SPANS  # the served tracing-off configuration
    simulator.set_stream_warmup(channel_warmup_counts(buffer, config))
    start = time.perf_counter()
    for begin in range(0, len(buffer), SPAN_CHUNK):
        simulator.feed(buffer[begin:begin + SPAN_CHUNK])
    elapsed = time.perf_counter() - start
    metrics = asdict(_collect(simulator, "span-overhead", prefetcher_name))
    recorded = len(simulator.spans) if mode == "enabled" else 0
    return elapsed, metrics, recorded, 0


def test_span_tracing_overhead_report():
    """Record span-tracing cost next to the obs numbers (non-gating).

    Hard assertion: ``RunMetrics`` bit-identical with tracing off/on.
    Budget breaches (disabled outside the measured noise floor, enabled
    beyond :data:`SPAN_MAX_ENABLED_PENALTY`) raise warnings and land in
    ``BENCH_obs.json`` for trend review, but do not fail the build.
    """
    config = SimConfig.experiment_scale()
    buffer = generate_trace_buffer(get_profile(APP), LENGTH, seed=SEED,
                                   layout=config.layout)
    results = _best(buffer, "planaria",
                    ("plain", "plain2", "disabled", "enabled"),
                    runner=_run_streaming)
    plain_rps, plain_metrics, _, _ = results["plain"]
    plain2_rps = results["plain2"][0]
    disabled_rps, disabled_metrics, _, _ = results["disabled"]
    enabled_rps, enabled_metrics, recorded, _ = results["enabled"]
    assert enabled_metrics == plain_metrics
    assert disabled_metrics == plain_metrics

    noise = abs(1.0 - min(plain_rps, plain2_rps)
                / max(plain_rps, plain2_rps))
    plain_best = max(plain_rps, plain2_rps)
    disabled_penalty = 1.0 - disabled_rps / plain_best
    enabled_penalty = 1.0 - enabled_rps / plain_best
    print(f"\n  {APP}/planaria streaming: plain {plain_best:,.0f} rec/s "
          f"(noise ±{noise:.1%}), NULL_SPANS {disabled_rps:,.0f} "
          f"({disabled_penalty:+.1%}), recording {enabled_rps:,.0f} "
          f"({enabled_penalty:+.1%}), {recorded} spans")
    if disabled_penalty > SPAN_DISABLED_NOISE_MARGIN + noise:
        warnings.warn(
            f"span tracing disabled-path penalty {disabled_penalty:.1%} "
            f"exceeds the measured noise floor {noise:.1%} "
            f"(+{SPAN_DISABLED_NOISE_MARGIN:.0%} margin)")
    if enabled_penalty > SPAN_MAX_ENABLED_PENALTY + noise:
        warnings.warn(
            f"span tracing enabled penalty {enabled_penalty:.1%} exceeds "
            f"the {SPAN_MAX_ENABLED_PENALTY:.0%} budget (+ noise "
            f"{noise:.1%})")

    # Read-modify-write: ride in BENCH_obs.json without clobbering the
    # obs section when only this test ran.
    report = (json.loads(RESULT_PATH.read_text())
              if RESULT_PATH.exists() else {})
    report["span_tracing"] = {
        "mode": f"streaming feed, {SPAN_CHUNK}-record chunks",
        "gating": False,
        "budget": {
            "max_enabled_penalty": SPAN_MAX_ENABLED_PENALTY,
            "disabled_noise_margin": SPAN_DISABLED_NOISE_MARGIN,
        },
        "plain_rps": round(plain_best),
        "disabled_rps": round(disabled_rps),
        "enabled_rps": round(enabled_rps),
        "measured_noise": round(noise, 4),
        "disabled_penalty": round(disabled_penalty, 4),
        "enabled_penalty": round(enabled_penalty, 4),
        "spans_recorded": recorded,
    }
    RESULT_PATH.write_text(json.dumps(report, indent=2) + "\n")
    print(f"  wrote {RESULT_PATH} (span_tracing section)")
