"""Observability overhead budget: obs must be ~free off, cheap on.

Measures end-to-end simulation throughput three ways —

* plain run (no observability, the default for every existing caller),
* obs attached then detached (the "disabled hook" configuration),
* obs attached and collecting (epoch timelines + event tracing),

— asserts the correctness contract first (``RunMetrics`` bit-identical
in all three configurations), then records the penalties to
``BENCH_obs.json`` at the repo root.  The budget: the detached
configuration is within measurement noise of plain, and full collection
costs at most a few percent (one ~60-scalar capture pass per
``epoch_records``-record boundary, nothing per record).

Timing methodology (shared by every budget in this file): runs are
clocked with ``time.process_time`` — the budgets bound single-threaded
hook cost, and CPU time is immune to the scheduler preempting a run —
and each penalty is the **minimum over rounds of the within-round
ratio** (:func:`_penalties`).  Comparing per-mode bests from different
rounds reads anywhere from -0% to +20% for identical code on a machine
with bursty co-tenant contention (measured); within one round the modes
run back to back under mostly-equal contention, a burst only ever
inflates one side of the ratio, so the least-contended round biases the
estimate low, never high — contention cannot produce a false failure,
while a real regression shows in every round, including the quiet one.

    PYTHONPATH=src python -m pytest benchmarks/test_obs_overhead.py -s

Set ``REPRO_BENCH_LENGTH`` to shrink runs (the CI smoke step does); the
committed numbers use the defaults below.
"""

import json
import os
import time
import warnings
from dataclasses import asdict
from pathlib import Path

from repro.config import SimConfig
from repro.obs import attach_observability, detach_observability
from repro.prefetch.registry import make_prefetcher
from repro.sim.engine import SystemSimulator
from repro.sim.runner import _collect
from repro.trace.generator import generate_trace_buffer, get_profile
from repro.utils.provenance import runtime_provenance

RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_obs.json"
LENGTH = int(os.environ.get("REPRO_BENCH_LENGTH", 60_000))
APP = "CFM"
SEED = 7
PREFETCHERS = ("none", "planaria")
EPOCH_RECORDS = 1024
ROUNDS = 5

#: Enabled-collection throughput penalty budget (fraction of plain rps).
MAX_ENABLED_PENALTY = 0.05
#: Disabled hooks must be within noise.  The noise floor is measured, not
#: assumed: the plain configuration runs as two independent best-of-ROUNDS
#: series, and their spread (plus this constant) bounds what "identical
#: code" looks like on the current machine.
DISABLED_NOISE_MARGIN = 0.01


def _run(buffer, prefetcher_name, mode):
    if mode == "plain2":  # second independent plain series (noise floor)
        mode = "plain"
    config = SimConfig.experiment_scale()
    simulator = SystemSimulator(
        config, lambda layout, channel: make_prefetcher(prefetcher_name,
                                                        layout, channel))
    obs = None
    if mode == "enabled":
        obs = attach_observability(simulator, epoch_records=EPOCH_RECORDS)
    elif mode == "disabled":
        attach_observability(simulator, epoch_records=EPOCH_RECORDS)
        detach_observability(simulator)
    start = time.process_time()
    simulator.run(buffer)
    elapsed = time.process_time() - start
    metrics = asdict(_collect(simulator, "obs-overhead", prefetcher_name))
    epochs = len(obs.merged_timeline()) if obs is not None else 0
    events = len(obs.events()) if obs is not None else 0
    return elapsed, metrics, epochs, events


_MODES = ("plain", "plain2", "disabled", "enabled")


def _measure(buffer, prefetcher_name, runner=None, rounds=ROUNDS):
    """Run every mode ``rounds`` times, rotated within each round.

    Returns ``(best, round_times)``: the fastest raw runner result per
    mode, and one ``{mode: elapsed}`` table per round for the paired
    penalty estimator (:func:`_penalties`).  The rotation keeps any one
    mode from systematically running first (interpreter warm-up) or last
    (accumulated cache heat).
    """
    runner = runner or _run
    best = {}
    round_times = []
    for index in range(rounds):
        shift = index % len(_MODES)
        times = {}
        for mode in _MODES[shift:] + _MODES[:shift]:
            result = runner(buffer, prefetcher_name, mode)
            times[mode] = result[0]
            if mode not in best or result[0] < best[mode][0]:
                best[mode] = result
        round_times.append(times)
    return best, round_times


def _penalties(round_times):
    """Min-over-rounds within-round penalties (see the module docstring).

    Returns ``(enabled_penalty, disabled_penalty, noise)`` where noise is
    the smallest within-round spread of the two independent plain series
    — the measured floor for what "identical code" looks like.
    """
    def penalty(mode, times):
        return times[mode] / min(times["plain"], times["plain2"]) - 1.0

    enabled = min(penalty("enabled", times) for times in round_times)
    disabled = min(penalty("disabled", times) for times in round_times)
    noise = min(abs(times["plain2"] / times["plain"] - 1.0)
                for times in round_times)
    return enabled, disabled, noise


def test_obs_overhead_budget():
    config = SimConfig.experiment_scale()
    buffer = generate_trace_buffer(get_profile(APP), LENGTH, seed=SEED,
                                   layout=config.layout)
    report = {
        "benchmark": "observability overhead (records / second, plain vs "
                     "hooks-disabled vs collecting)",
        "app": APP,
        "trace_length": LENGTH,
        "seed": SEED,
        "epoch_records": EPOCH_RECORDS,
        "rounds_per_mode": ROUNDS,
        **runtime_provenance(),
        "budget": {
            "max_enabled_penalty": MAX_ENABLED_PENALTY,
            "disabled_noise_margin": DISABLED_NOISE_MARGIN,
        },
        "prefetchers": {},
    }
    print()
    for name in PREFETCHERS:
        best, round_times = _measure(buffer, name)
        plain_metrics = best["plain"][1]
        disabled_metrics = best["disabled"][1]
        _, enabled_metrics, epochs, events = best["enabled"]
        # Correctness before cost: collection never changes results.
        assert enabled_metrics == plain_metrics, name
        assert disabled_metrics == plain_metrics, name
        enabled_penalty, disabled_penalty, noise = _penalties(round_times)
        plain_best = len(buffer) / min(best["plain"][0], best["plain2"][0])
        disabled_rps = len(buffer) / best["disabled"][0]
        enabled_rps = len(buffer) / best["enabled"][0]
        report["prefetchers"][name] = {
            "plain_rps": round(plain_best),
            "disabled_rps": round(disabled_rps),
            "enabled_rps": round(enabled_rps),
            "measured_noise": round(noise, 4),
            "disabled_penalty": round(disabled_penalty, 4),
            "enabled_penalty": round(enabled_penalty, 4),
            "epochs_collected": epochs,
            "events_retained": events,
        }
        print(f"  {APP}/{name}: plain {plain_best:,.0f} rec/s "
              f"(noise ±{noise:.1%}), hooks off {disabled_rps:,.0f} "
              f"({disabled_penalty:+.1%}), collecting {enabled_rps:,.0f} "
              f"({enabled_penalty:+.1%}), {epochs} epochs / {events} events")
        assert enabled_penalty <= MAX_ENABLED_PENALTY + noise, (
            f"{name}: collecting cost {enabled_penalty:.1%} "
            f"(budget {MAX_ENABLED_PENALTY:.0%} + noise {noise:.1%})")
        assert disabled_penalty <= DISABLED_NOISE_MARGIN + noise, (
            f"{name}: disabled hooks cost {disabled_penalty:.1%}, outside "
            f"the measured noise floor {noise:.1%} "
            f"(+{DISABLED_NOISE_MARGIN:.0%} margin)")

    RESULT_PATH.write_text(json.dumps(report, indent=2) + "\n")
    print(f"  wrote {RESULT_PATH}")


# ----------------------------------------------------------------------
# Prefetch lineage overhead (gating)
# ----------------------------------------------------------------------
#: Collecting-lineage throughput penalty budget versus the scalar loop.
LINEAGE_MAX_ENABLED_PENALTY = 0.05
LINEAGE_NOISE_MARGIN = 0.01
#: The lineage gate needs more rounds than the obs one: its estimator is
#: the *minimum over rounds* of the within-round penalty (see
#: ``test_lineage_overhead_budget``), and the more rounds, the more
#: likely one of them lands in a quiet window on a contended machine.
LINEAGE_ROUNDS = 10


def _run_lineage(buffer, prefetcher_name, mode):
    """One scalar-loop run, with or without a lineage collector."""
    from repro.obs.lineage import attach_lineage, detach_lineage

    if mode == "plain2":
        mode = "plain"
    config = SimConfig.experiment_scale()
    simulator = SystemSimulator(
        config,
        lambda layout, channel: make_prefetcher(prefetcher_name, layout,
                                                channel),
        engine_mode="scalar")
    lineage = None
    if mode == "enabled":
        lineage = attach_lineage(simulator)
    elif mode == "disabled":
        attach_lineage(simulator)
        detach_lineage(simulator)
    start = time.process_time()
    simulator.run(buffer)
    elapsed = time.process_time() - start
    metrics = asdict(_collect(simulator, "lineage-overhead",
                              prefetcher_name))
    issued = (lineage.summary()["totals"]["issued"]
              if lineage is not None else 0)
    return elapsed, metrics, issued, 0


def test_lineage_overhead_budget():
    """Gate: collecting full per-issue lineage costs <= 5% on the scalar
    loop, and the disabled hooks sit inside the noise margin (penalty
    estimator: module docstring).

    Also records (non-gating) how much throughput a batch-mode caller
    gives up by enabling lineage, since lineage forces the scalar
    fallback: ``batch_fallback_ratio`` = collecting rps / plain batch rps.
    """
    config = SimConfig.experiment_scale()
    buffer = generate_trace_buffer(get_profile(APP), LENGTH, seed=SEED,
                                   layout=config.layout)
    best, round_times = _measure(buffer, "planaria", runner=_run_lineage,
                                 rounds=LINEAGE_ROUNDS)
    plain_metrics = best["plain"][1]
    disabled_metrics = best["disabled"][1]
    _, enabled_metrics, issued, _ = best["enabled"]
    # Neutrality before cost: lineage never changes simulated results.
    assert enabled_metrics == plain_metrics
    assert disabled_metrics == plain_metrics
    assert issued > 0

    enabled_penalty, disabled_penalty, noise = _penalties(round_times)
    plain_best = len(buffer) / min(best["plain"][0], best["plain2"][0])
    disabled_rps = len(buffer) / best["disabled"][0]
    enabled_rps = len(buffer) / best["enabled"][0]

    # Informational: what batch-mode callers pay for the scalar fallback.
    batch_best = None
    for _ in range(LINEAGE_ROUNDS):
        simulator = SystemSimulator(
            config,
            lambda layout, channel: make_prefetcher("planaria", layout,
                                                    channel),
            engine_mode="batch")
        start = time.process_time()
        simulator.run(buffer)
        elapsed = time.process_time() - start
        if batch_best is None or elapsed < batch_best:
            batch_best = elapsed
    batch_rps = len(buffer) / batch_best
    fallback_ratio = enabled_rps / batch_rps

    print(f"\n  {APP}/planaria scalar: plain {plain_best:,.0f} rec/s "
          f"(noise ±{noise:.1%}), hooks off {disabled_rps:,.0f} "
          f"({disabled_penalty:+.1%}), lineage {enabled_rps:,.0f} "
          f"({enabled_penalty:+.1%}), {issued} issues tracked; "
          f"batch plain {batch_rps:,.0f} (fallback x{fallback_ratio:.2f})")
    assert enabled_penalty <= LINEAGE_MAX_ENABLED_PENALTY + noise, (
        f"lineage collecting cost {enabled_penalty:.1%} "
        f"(budget {LINEAGE_MAX_ENABLED_PENALTY:.0%} + noise {noise:.1%})")
    assert disabled_penalty <= LINEAGE_NOISE_MARGIN + noise, (
        f"lineage disabled hooks cost {disabled_penalty:.1%}, outside "
        f"the measured noise floor {noise:.1%} "
        f"(+{LINEAGE_NOISE_MARGIN:.0%} margin)")

    report = (json.loads(RESULT_PATH.read_text())
              if RESULT_PATH.exists() else {})
    report["lineage"] = {
        "mode": "scalar loop, planaria, full per-issue provenance",
        "gating": True,
        "budget": {
            "max_enabled_penalty": LINEAGE_MAX_ENABLED_PENALTY,
            "disabled_noise_margin": LINEAGE_NOISE_MARGIN,
        },
        "plain_rps": round(plain_best),
        "disabled_rps": round(disabled_rps),
        "enabled_rps": round(enabled_rps),
        "measured_noise": round(noise, 4),
        "disabled_penalty": round(disabled_penalty, 4),
        "enabled_penalty": round(enabled_penalty, 4),
        "issues_tracked": issued,
        "batch_plain_rps": round(batch_rps),
        "batch_fallback_ratio": round(fallback_ratio, 4),
    }
    RESULT_PATH.write_text(json.dumps(report, indent=2) + "\n")
    print(f"  wrote {RESULT_PATH} (lineage section)")


# ----------------------------------------------------------------------
# Span tracing overhead (non-gating)
# ----------------------------------------------------------------------
#: Span-tracing budgets mirror the obs ones but only *warn* when blown:
#: span cost is per chunk, so the measured penalty is dominated by
#: chunk-size choice and machine noise, not by code regressions.  The
#: correctness half (bit-identical metrics) still hard-fails.
SPAN_MAX_ENABLED_PENALTY = 0.05
SPAN_DISABLED_NOISE_MARGIN = 0.01
SPAN_CHUNK = 2048


def _run_streaming(buffer, prefetcher_name, mode):
    """One chunked streaming feed — the path span tracing instruments."""
    from repro.obs.trace_spans import NULL_SPANS, SpanRecorder
    from repro.sim.engine import channel_warmup_counts

    if mode == "plain2":
        mode = "plain"
    config = SimConfig.experiment_scale()
    simulator = SystemSimulator(
        config, lambda layout, channel: make_prefetcher(prefetcher_name,
                                                        layout, channel))
    if mode == "enabled":
        simulator.spans = SpanRecorder()
    elif mode == "disabled":
        simulator.spans = NULL_SPANS  # the served tracing-off configuration
    simulator.set_stream_warmup(channel_warmup_counts(buffer, config))
    start = time.process_time()
    for begin in range(0, len(buffer), SPAN_CHUNK):
        simulator.feed(buffer[begin:begin + SPAN_CHUNK])
    elapsed = time.process_time() - start
    metrics = asdict(_collect(simulator, "span-overhead", prefetcher_name))
    recorded = len(simulator.spans) if mode == "enabled" else 0
    return elapsed, metrics, recorded, 0


def test_span_tracing_overhead_report():
    """Record span-tracing cost next to the obs numbers (non-gating).

    Hard assertion: ``RunMetrics`` bit-identical with tracing off/on.
    Budget breaches (disabled outside the measured noise floor, enabled
    beyond :data:`SPAN_MAX_ENABLED_PENALTY`) raise warnings and land in
    ``BENCH_obs.json`` for trend review, but do not fail the build.
    """
    config = SimConfig.experiment_scale()
    buffer = generate_trace_buffer(get_profile(APP), LENGTH, seed=SEED,
                                   layout=config.layout)
    best, round_times = _measure(buffer, "planaria", runner=_run_streaming)
    plain_metrics = best["plain"][1]
    disabled_metrics = best["disabled"][1]
    _, enabled_metrics, recorded, _ = best["enabled"]
    assert enabled_metrics == plain_metrics
    assert disabled_metrics == plain_metrics

    enabled_penalty, disabled_penalty, noise = _penalties(round_times)
    plain_best = len(buffer) / min(best["plain"][0], best["plain2"][0])
    disabled_rps = len(buffer) / best["disabled"][0]
    enabled_rps = len(buffer) / best["enabled"][0]
    print(f"\n  {APP}/planaria streaming: plain {plain_best:,.0f} rec/s "
          f"(noise ±{noise:.1%}), NULL_SPANS {disabled_rps:,.0f} "
          f"({disabled_penalty:+.1%}), recording {enabled_rps:,.0f} "
          f"({enabled_penalty:+.1%}), {recorded} spans")
    if disabled_penalty > SPAN_DISABLED_NOISE_MARGIN + noise:
        warnings.warn(
            f"span tracing disabled-path penalty {disabled_penalty:.1%} "
            f"exceeds the measured noise floor {noise:.1%} "
            f"(+{SPAN_DISABLED_NOISE_MARGIN:.0%} margin)")
    if enabled_penalty > SPAN_MAX_ENABLED_PENALTY + noise:
        warnings.warn(
            f"span tracing enabled penalty {enabled_penalty:.1%} exceeds "
            f"the {SPAN_MAX_ENABLED_PENALTY:.0%} budget (+ noise "
            f"{noise:.1%})")

    # Read-modify-write: ride in BENCH_obs.json without clobbering the
    # obs section when only this test ran.
    report = (json.loads(RESULT_PATH.read_text())
              if RESULT_PATH.exists() else {})
    report["span_tracing"] = {
        "mode": f"streaming feed, {SPAN_CHUNK}-record chunks",
        "gating": False,
        "budget": {
            "max_enabled_penalty": SPAN_MAX_ENABLED_PENALTY,
            "disabled_noise_margin": SPAN_DISABLED_NOISE_MARGIN,
        },
        "plain_rps": round(plain_best),
        "disabled_rps": round(disabled_rps),
        "enabled_rps": round(enabled_rps),
        "measured_noise": round(noise, 4),
        "disabled_penalty": round(disabled_penalty, 4),
        "enabled_penalty": round(enabled_penalty, 4),
        "spans_recorded": recorded,
    }
    RESULT_PATH.write_text(json.dumps(report, indent=2) + "\n")
    print(f"  wrote {RESULT_PATH} (span_tracing section)")
