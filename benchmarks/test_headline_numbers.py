"""Abstract headline numbers: IPC gains, traffic overheads, storage."""

from benchmarks.conftest import run_once
from repro.experiments import headline


def test_headline_numbers(benchmark, settings):
    report = run_once(benchmark, headline.run, settings)
    print()
    print(report.format_table())
    summary = report.summary
    assert summary["IPC gain vs none (measured)"] > 0.15        # paper 0.289
    assert summary["IPC gain vs bop (measured)"] > 0.08          # paper 0.219
    assert summary["IPC gain vs spp (measured)"] > 0.08          # paper 0.153
    assert summary["BOP traffic overhead (measured)"] > \
        summary["SPP traffic overhead (measured)"]
    assert abs(summary["Planaria storage KiB (computed)"] - 345.2) < 12
