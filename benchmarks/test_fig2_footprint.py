"""Figure 2: footprint snapshot of a memory page (scatter + observations)."""

from benchmarks.conftest import run_once
from repro.experiments import fig2_footprint


def test_fig2_footprint_snapshot(benchmark, settings):
    report = run_once(benchmark, fig2_footprint.run, settings)
    print()
    print(report.format_table())
    values = {row[0]: row[1] for row in report.rows}
    assert values["bursts (snapshot episodes)"] >= 2
    assert values["reuse-gap / burst-span ratio"] > 1.0   # observation ②
    assert values["across-burst order similarity"] < 0.95  # observation ③
