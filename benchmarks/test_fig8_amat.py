"""Figure 8: AMAT per application x prefetcher (paper: Planaria -24.3%)."""

from benchmarks.conftest import run_once
from repro.experiments import fig8_amat


def test_fig8_amat(benchmark, settings):
    report = run_once(benchmark, fig8_amat.run, settings)
    print()
    print(report.format_table())
    summary = report.summary
    measured = summary["planaria AMAT reduction vs none (measured)"]
    assert measured > 0.15  # paper: 0.243; shape check with headroom
    assert measured > summary["bop AMAT reduction vs none (measured)"]
    assert measured > summary["spp AMAT reduction vs none (measured)"]
    assert summary["planaria AMAT reduction vs bop (measured)"] > 0.10
    assert summary["planaria AMAT reduction vs spp (measured)"] > 0.10
