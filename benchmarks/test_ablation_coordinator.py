"""Ablation: the decoupled coordinator vs serial (TPC-style) and parallel
(ISB-style) coordination — Section 2 / Section 7's design argument.

Decoupled ("parallel training, serial issuing") should match or beat
serial on coverage (TLP sees the full stream) and beat parallel on
accuracy/traffic (no duplicate low-confidence issues).
"""

from benchmarks.conftest import run_once
from repro.sim.sweep import coordinator_variants, sweep_planaria

APPS = ("CFM", "Fort")


def _run(settings):
    out = {}
    for app in APPS:
        out[app] = sweep_planaria(app, coordinator_variants(),
                                  length=settings.trace_length,
                                  seed=settings.seed)
    return out


def test_ablation_coordinator(benchmark, settings):
    grids = run_once(benchmark, _run, settings)
    print()
    print("== ablation: coordinator strategy (paper section 2 / 7)")
    header = f"{'app':5s} {'variant':10s} {'hit':>6s} {'amat':>8s} {'acc':>5s} {'cov':>5s} {'traffic':>8s}"
    print(header)
    for app, results in grids.items():
        base = results["none"]
        for label in ("decoupled", "serial", "parallel"):
            m = results[label]
            print(f"{app:5s} {label:10s} {m.hit_rate:6.3f} {m.amat:8.1f} "
                  f"{m.accuracy:5.2f} {m.coverage:5.2f} "
                  f"{m.traffic_overhead_vs(base):+8.3f}")
    for app, results in grids.items():
        decoupled = results["decoupled"]
        parallel = results["parallel"]
        # Decoupled vs parallel: same-or-better accuracy with less traffic.
        assert decoupled.accuracy >= parallel.accuracy - 0.02, app
        assert (decoupled.traffic_overhead_vs(results["none"])
                <= parallel.traffic_overhead_vs(results["none"]) + 0.01), app
    # On TLP-dependent Fort, decoupled's full-stream TLP training should
    # give at least serial's coverage.
    fort = grids["Fort"]
    assert fort["decoupled"].coverage >= fort["serial"].coverage - 0.02
