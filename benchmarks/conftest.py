"""Shared fixtures for the figure-regeneration benchmarks.

Each benchmark regenerates one paper figure/table at full experiment scale
and prints the same rows the paper reports.  ``pytest benchmarks/
--benchmark-only`` therefore doubles as the reproduction harness; set
``REPRO_BENCH_LENGTH`` / ``REPRO_BENCH_APPS`` to shrink runs.

Simulation grids are memoized in-process (see repro.experiments.matrix),
so the figures sharing the (app × prefetcher) matrix — 7, 8, 10, headline —
only simulate it once per session.
"""

import pytest

from repro.experiments import ExperimentSettings


@pytest.fixture(scope="session")
def settings():
    return ExperimentSettings()


def run_once(benchmark, function, *args):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(function, args=args, rounds=1, iterations=1)
