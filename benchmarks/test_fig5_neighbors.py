"""Figure 5: learnable-neighbour fraction per distance threshold."""

from benchmarks.conftest import run_once
from repro.experiments import fig5_neighbors


def test_fig5_learnable_neighbors(benchmark, settings):
    report = run_once(benchmark, fig5_neighbors.run, settings)
    print()
    print(report.format_table())
    at4 = report.summary["average fraction at distance 4 (measured)"]
    at64 = report.summary["average fraction at distance 64 (measured)"]
    assert 0.05 < at4 < at64 < 0.7  # monotone, right order of magnitude
