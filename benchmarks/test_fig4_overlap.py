"""Figure 4: window overlap rate per application (paper: >80% average)."""

from benchmarks.conftest import run_once
from repro.experiments import fig4_overlap


def test_fig4_overlap_rate(benchmark, settings):
    report = run_once(benchmark, fig4_overlap.run, settings)
    print()
    print(report.format_table())
    measured = report.summary["average overlap rate (measured)"]
    # Full-length runs land around 0.8; small REPRO_BENCH_LENGTH runs are
    # noisier, so the guard is a band, not the paper's exact floor.
    assert measured > 0.70
