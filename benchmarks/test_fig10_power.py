"""Figure 10: memory-system power overheads (paper: +0.5/+13.5/+9.7%)."""

from benchmarks.conftest import run_once
from repro.experiments import fig10_power


def test_fig10_power(benchmark, settings):
    report = run_once(benchmark, fig10_power.run, settings)
    print()
    print(report.format_table())
    summary = report.summary
    planaria = summary["mean power overhead [planaria] (measured)"]
    bop = summary["mean power overhead [bop] (measured)"]
    spp = summary["mean power overhead [spp] (measured)"]
    assert planaria < spp < bop
    assert planaria < 0.06  # near-free, paper: +0.5%
