"""Ablation: PN-only signatures (SLP) vs PC-style signatures (SMS with the
device-ID surrogate) — the paper's Section 3.2 design argument.

Memory-side there is no PC; the closest available signal (device ID)
aliases thousands of flows, so the SMS-style spatial prefetcher loses the
accuracy that the PN-indexed SLP keeps.
"""

from benchmarks.conftest import run_once
from repro.sim.runner import compare_prefetchers

APPS = ("CFM", "HoK", "KO")


def _run(settings):
    return {
        app: compare_prefetchers(app, ("none", "sms", "slp"),
                                 length=settings.trace_length,
                                 seed=settings.seed)
        for app in APPS
    }


def test_ablation_signature(benchmark, settings):
    grids = run_once(benchmark, _run, settings)
    print()
    print("== ablation: pattern signature (PN vs device-surrogate PC)")
    print(f"{'app':5s} {'variant':6s} {'hit':>6s} {'acc':>5s} {'cov':>5s} {'traffic':>8s}")
    for app, results in grids.items():
        base = results["none"]
        for label in ("sms", "slp"):
            m = results[label]
            print(f"{app:5s} {label:6s} {m.hit_rate:6.3f} {m.accuracy:5.2f} "
                  f"{m.coverage:5.2f} {m.traffic_overhead_vs(base):+8.3f}")
    for app, results in grids.items():
        # PN-indexed SLP must beat the PC-surrogate design on accuracy.
        assert results["slp"].accuracy > results["sms"].accuracy + 0.1, app
        assert (results["slp"].traffic_overhead_vs(results["none"])
                < results["sms"].traffic_overhead_vs(results["none"])), app
