"""Figure 9: Planaria breakdown between SLP and TLP (paper: SLP ~80%)."""

from benchmarks.conftest import run_once
from repro.experiments import fig9_breakdown


def test_fig9_breakdown(benchmark, settings):
    report = run_once(benchmark, fig9_breakdown.run, settings)
    print()
    print(report.format_table())
    overall = report.summary["overall SLP share of useful prefetches (measured)"]
    assert 0.5 < overall < 0.95  # paper: ~0.8
    shares = {row[0]: row[1] for row in report.rows}
    if "Fort" in shares:
        # TLP contributes most of the improvement for Fort.
        assert shares["Fort"] < 0.5
    for app in ("CFM", "QSM", "HI3", "KO", "NBA2"):
        if app in shares:
            assert shares[app] > 0.6, app  # SLP territory
