"""Figure-regeneration benchmarks (pytest-benchmark).

Making this a package lets the bench modules import the shared
``run_once`` helper from ``benchmarks.conftest`` under both ``pytest`` and
``python -m pytest`` invocations.
"""
