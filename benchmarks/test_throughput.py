"""Records/sec throughput baseline for the simulation hot path.

Measures end-to-end simulation throughput (trace records simulated per
wall-clock second) through three execution modes —

* the columnar fast loop, serial (scalar engine),
* the columnar fast loop under channel-grain parallelism (``"auto"``),
* the legacy per-record-object loop (``columnar=False``),
* the batch engine's fused array loops (``engine_mode="batch"`` — the
  production default, since ``"auto"`` resolves to it for LRU configs),

— per workload and prefetcher, asserts all four produce bit-identical
``RunMetrics`` (performance work must never change results), and writes
the numbers to ``BENCH_throughput.json`` at the repo root.  The batch
numbers land in a dedicated ``batched`` section scaled against the
*committed* scalar columnar baseline this PR started from, so the file
documents the batch engine's speedup even after the baseline keys are
regenerated on a different machine.  The committed JSON is the
performance baseline future changes are compared against:

    PYTHONPATH=src python -m pytest benchmarks/test_throughput.py -s

Set ``REPRO_BENCH_LENGTH`` / ``REPRO_BENCH_APPS`` to shrink runs (the CI
smoke step does); the committed baseline uses the defaults below.
"""

import json
import os
import time
from dataclasses import asdict
from pathlib import Path

from repro.config import SimConfig
from repro.prefetch.registry import make_prefetcher
from repro.sim.engine import SystemSimulator
from repro.sim.runner import _collect
from repro.trace.generator import generate_trace_buffer, get_profile
from repro.utils.provenance import runtime_provenance

RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_throughput.json"
LENGTH = int(os.environ.get("REPRO_BENCH_LENGTH", 60_000))
APPS = [app for app in os.environ.get("REPRO_BENCH_APPS", "CFM").split(",")
        if app]
SEED = 7
PREFETCHERS = ("none", "planaria")
ROUNDS = 3

#: Object-record-loop throughput at the commit immediately before the
#: columnar pipeline landed (median of interleaved best-of-3 runs on the
#: baseline machine; CFM, 60k records, seed 7, experiment_scale config).
#: Kept as a fixed reference so the committed baseline documents the
#: speedup of the fast loop over the code it replaced — the in-tree
#: object loop also got faster (cache/DRAM/replacement optimisations are
#: shared), so comparing against it alone would understate the change.
PRE_PR_REFERENCE_RPS = {"none": 46_815, "planaria": 33_172}

#: Scalar columnar fast-loop throughput from the committed baseline JSON
#: at the commit immediately before the batch engine landed (same
#: machine/workload/settings as above).  The ``batched`` section reports
#: speedups against these fixed numbers, so the batch engine's scaling
#: stays documented even as the live keys get re-measured.
BATCH_BASELINE_RPS = {"none": 160_456, "planaria": 60_634}


def _simulate(buffer, prefetcher_name, columnar, parallelism="serial",
              engine_mode="scalar"):
    config = SimConfig.experiment_scale()
    simulator = SystemSimulator(
        config, lambda layout, channel: make_prefetcher(prefetcher_name,
                                                        layout, channel),
        engine_mode=engine_mode)
    simulator.run(buffer, parallelism=parallelism, columnar=columnar)
    return asdict(_collect(simulator, "throughput", prefetcher_name))


def _best_rps(buffer, prefetcher_name, columnar, parallelism="serial",
              engine_mode="scalar"):
    """(records/sec of the fastest round, metrics of the last round)."""
    best = None
    metrics = None
    for _ in range(ROUNDS):
        start = time.perf_counter()
        metrics = _simulate(buffer, prefetcher_name, columnar, parallelism,
                            engine_mode)
        elapsed = time.perf_counter() - start
        if best is None or elapsed < best:
            best = elapsed
    return len(buffer) / best, metrics


def test_throughput_baseline():
    config = SimConfig.experiment_scale()
    report = {
        "benchmark": "simulation throughput (trace records / second)",
        "trace_length": LENGTH,
        "seed": SEED,
        "rounds_per_mode": ROUNDS,
        **runtime_provenance(),
        "engine_modes": {
            "columnar_serial": "scalar",
            "columnar_parallel": "scalar",
            "object_loop": "scalar",
            "batched": "batch",
        },
        "workloads": {},
    }
    print()
    batched_rps = {}
    for app in APPS:
        buffer = generate_trace_buffer(get_profile(app), LENGTH, seed=SEED,
                                       layout=config.layout)
        per_app = {}
        for name in PREFETCHERS:
            serial_rps, serial_metrics = _best_rps(buffer, name,
                                                   columnar=True)
            parallel_rps, parallel_metrics = _best_rps(buffer, name,
                                                       columnar=True,
                                                       parallelism="auto")
            object_rps, object_metrics = _best_rps(buffer, name,
                                                   columnar=False)
            batch_rps, batch_metrics = _best_rps(buffer, name,
                                                 columnar=True,
                                                 engine_mode="batch")
            # The contract before the numbers: all four modes must agree
            # on every RunMetrics field, bit for bit.
            assert serial_metrics == object_metrics, name
            assert parallel_metrics == object_metrics, name
            assert batch_metrics == object_metrics, name
            per_app[name] = {
                "columnar_serial_rps": round(serial_rps),
                "columnar_parallel_rps": round(parallel_rps),
                "object_loop_rps": round(object_rps),
                "batched_rps": round(batch_rps),
                "columnar_vs_object_speedup": round(serial_rps / object_rps,
                                                    2),
                "batched_vs_columnar_speedup": round(batch_rps / serial_rps,
                                                     2),
            }
            if app == "CFM":
                batched_rps[name] = batch_rps
            print(f"  {app}/{name}: batched {batch_rps:,.0f} rec/s, "
                  f"columnar {serial_rps:,.0f} rec/s "
                  f"(parallel {parallel_rps:,.0f}), object loop "
                  f"{object_rps:,.0f} rec/s")
        report["workloads"][app] = per_app

    if batched_rps:
        report["batched"] = {
            "description": (
                "fused array-state loops (engine_mode='batch', the "
                "resolution of the default 'auto' for LRU configs) vs the "
                "committed scalar columnar baseline at the commit before "
                "the batch engine landed (CFM, 60k records, seed 7)"),
            "committed_baseline_rps": BATCH_BASELINE_RPS,
            "batched_rps": {name: round(rps)
                            for name, rps in batched_rps.items()},
            "batched_speedup_vs_committed_baseline": {
                name: round(rps / BATCH_BASELINE_RPS[name], 2)
                for name, rps in batched_rps.items()
                if name in BATCH_BASELINE_RPS
            },
        }

    if "CFM" in report["workloads"]:
        cfm = report["workloads"]["CFM"]
        report["pre_pr_reference"] = {
            "description": (
                "object-record loop at the commit before the columnar "
                "pipeline (median best-of-3, same machine, CFM, 60k "
                "records, seed 7)"),
            "rps": PRE_PR_REFERENCE_RPS,
            "speedup_columnar_vs_pre_pr": {
                name: round(cfm[name]["columnar_serial_rps"]
                            / PRE_PR_REFERENCE_RPS[name], 2)
                for name in PREFETCHERS if name in cfm
            },
        }

    RESULT_PATH.write_text(json.dumps(report, indent=2) + "\n")
    print(f"  wrote {RESULT_PATH}")
