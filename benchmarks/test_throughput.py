"""Records/sec throughput baseline for the simulation hot path.

Measures end-to-end simulation throughput (trace records simulated per
wall-clock second) through three execution modes —

* the columnar fast loop, serial (the default path),
* the columnar fast loop under channel-grain parallelism (``"auto"``),
* the legacy per-record-object loop (``columnar=False``),

— per workload and prefetcher, asserts all three produce bit-identical
``RunMetrics`` (performance work must never change results), and writes
the numbers to ``BENCH_throughput.json`` at the repo root.  The committed
JSON is the performance baseline future changes are compared against:

    PYTHONPATH=src python -m pytest benchmarks/test_throughput.py -s

Set ``REPRO_BENCH_LENGTH`` / ``REPRO_BENCH_APPS`` to shrink runs (the CI
smoke step does); the committed baseline uses the defaults below.
"""

import json
import os
import platform
import time
from dataclasses import asdict
from pathlib import Path

from repro.config import SimConfig
from repro.prefetch.registry import make_prefetcher
from repro.sim.engine import SystemSimulator
from repro.sim.runner import _collect
from repro.trace.generator import generate_trace_buffer, get_profile

RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_throughput.json"
LENGTH = int(os.environ.get("REPRO_BENCH_LENGTH", 60_000))
APPS = [app for app in os.environ.get("REPRO_BENCH_APPS", "CFM").split(",")
        if app]
SEED = 7
PREFETCHERS = ("none", "planaria")
ROUNDS = 3

#: Object-record-loop throughput at the commit immediately before the
#: columnar pipeline landed (median of interleaved best-of-3 runs on the
#: baseline machine; CFM, 60k records, seed 7, experiment_scale config).
#: Kept as a fixed reference so the committed baseline documents the
#: speedup of the fast loop over the code it replaced — the in-tree
#: object loop also got faster (cache/DRAM/replacement optimisations are
#: shared), so comparing against it alone would understate the change.
PRE_PR_REFERENCE_RPS = {"none": 46_815, "planaria": 33_172}


def _simulate(buffer, prefetcher_name, columnar, parallelism="serial"):
    config = SimConfig.experiment_scale()
    simulator = SystemSimulator(
        config, lambda layout, channel: make_prefetcher(prefetcher_name,
                                                        layout, channel))
    simulator.run(buffer, parallelism=parallelism, columnar=columnar)
    return asdict(_collect(simulator, "throughput", prefetcher_name))


def _best_rps(buffer, prefetcher_name, columnar, parallelism="serial"):
    """(records/sec of the fastest round, metrics of the last round)."""
    best = None
    metrics = None
    for _ in range(ROUNDS):
        start = time.perf_counter()
        metrics = _simulate(buffer, prefetcher_name, columnar, parallelism)
        elapsed = time.perf_counter() - start
        if best is None or elapsed < best:
            best = elapsed
    return len(buffer) / best, metrics


def test_throughput_baseline():
    config = SimConfig.experiment_scale()
    report = {
        "benchmark": "simulation throughput (trace records / second)",
        "trace_length": LENGTH,
        "seed": SEED,
        "rounds_per_mode": ROUNDS,
        "python": platform.python_version(),
        "workloads": {},
    }
    print()
    for app in APPS:
        buffer = generate_trace_buffer(get_profile(app), LENGTH, seed=SEED,
                                       layout=config.layout)
        per_app = {}
        for name in PREFETCHERS:
            serial_rps, serial_metrics = _best_rps(buffer, name,
                                                   columnar=True)
            parallel_rps, parallel_metrics = _best_rps(buffer, name,
                                                       columnar=True,
                                                       parallelism="auto")
            object_rps, object_metrics = _best_rps(buffer, name,
                                                   columnar=False)
            # The contract before the numbers: all three modes must agree
            # on every RunMetrics field, bit for bit.
            assert serial_metrics == object_metrics, name
            assert parallel_metrics == object_metrics, name
            per_app[name] = {
                "columnar_serial_rps": round(serial_rps),
                "columnar_parallel_rps": round(parallel_rps),
                "object_loop_rps": round(object_rps),
                "columnar_vs_object_speedup": round(serial_rps / object_rps,
                                                    2),
            }
            print(f"  {app}/{name}: columnar {serial_rps:,.0f} rec/s "
                  f"(parallel {parallel_rps:,.0f}), object loop "
                  f"{object_rps:,.0f} rec/s")
        report["workloads"][app] = per_app

    if "CFM" in report["workloads"]:
        cfm = report["workloads"]["CFM"]
        report["pre_pr_reference"] = {
            "description": (
                "object-record loop at the commit before the columnar "
                "pipeline (median best-of-3, same machine, CFM, 60k "
                "records, seed 7)"),
            "rps": PRE_PR_REFERENCE_RPS,
            "speedup_columnar_vs_pre_pr": {
                name: round(cfm[name]["columnar_serial_rps"]
                            / PRE_PR_REFERENCE_RPS[name], 2)
                for name in PREFETCHERS if name in cfm
            },
        }

    RESULT_PATH.write_text(json.dumps(report, indent=2) + "\n")
    print(f"  wrote {RESULT_PATH}")
