"""Wall-clock benchmark for the parallel experiment executor.

Runs the default 4-prefetcher ``compare_prefetchers`` sweep serially and
with ``parallelism="auto"``, asserts the results are bit-identical (the
executor's contract), and — on a multi-core runner with a working process
pool — asserts the parallel sweep is actually faster.

    PYTHONPATH=src python -m pytest benchmarks/test_parallel_speedup.py -s

The 4 tasks are embarrassingly parallel and each regenerates its trace
from the seed in-worker, so the expected speedup approaches
``min(cores, len(prefetchers))`` minus pool start-up and result
unpickling overhead.
"""

import os
import time

import pytest

from repro.sim.executor import pool_available
from repro.sim.runner import DEFAULT_PREFETCHERS, compare_prefetchers

APP = "CFM"
LENGTH = int(os.environ.get("REPRO_BENCH_LENGTH", 30_000))
SEED = 7


def _timed_sweep(parallelism):
    start = time.perf_counter()
    results = compare_prefetchers(APP, DEFAULT_PREFETCHERS, length=LENGTH,
                                  seed=SEED, parallelism=parallelism)
    return results, time.perf_counter() - start


def test_parallel_sweep_speedup():
    serial_results, serial_seconds = _timed_sweep("serial")
    parallel_results, parallel_seconds = _timed_sweep("auto")

    # The contract first: identical output regardless of execution mode.
    assert list(serial_results) == list(parallel_results)
    for name in serial_results:
        assert serial_results[name] == parallel_results[name], name

    cores = os.cpu_count() or 1
    speedup = serial_seconds / parallel_seconds if parallel_seconds else 0.0
    print(f"\n  {APP} x {len(DEFAULT_PREFETCHERS)} prefetchers, "
          f"{LENGTH} records, {cores} core(s): "
          f"serial {serial_seconds:.2f}s, auto {parallel_seconds:.2f}s "
          f"({speedup:.2f}x)")

    if cores < 2:
        pytest.skip("single-core runner: equivalence verified, "
                    "speedup not measurable")
    if not pool_available():
        pytest.skip("process pool unavailable: serial fallback exercised")
    # Conservative bound: even 2 cores should beat serial comfortably on
    # 4 independent tasks; the margin absorbs pool start-up noise.
    assert parallel_seconds < serial_seconds, (
        f"parallel sweep slower than serial on {cores} cores "
        f"({parallel_seconds:.2f}s vs {serial_seconds:.2f}s)")
