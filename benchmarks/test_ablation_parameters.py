"""Ablation: Planaria's key parameters — TLP distance threshold and SLP AT
timeout (DESIGN.md section 5's sweepable design choices)."""

from benchmarks.conftest import run_once
from repro.sim.sweep import slp_timeout_variants, sweep_planaria, tlp_distance_variants


def _run(settings):
    distance = sweep_planaria("Fort", tlp_distance_variants((4, 16, 64, 256)),
                              length=settings.trace_length, seed=settings.seed)
    timeout = sweep_planaria("CFM", slp_timeout_variants((2_000, 20_000, 200_000)),
                             length=settings.trace_length, seed=settings.seed)
    return distance, timeout


def test_ablation_parameters(benchmark, settings):
    distance, timeout = run_once(benchmark, _run, settings)
    print()
    print("== ablation: TLP distance threshold (Fort)")
    base = distance["none"]
    for label, m in distance.items():
        if label == "none":
            continue
        print(f"{label:14s} hit={m.hit_rate:.3f} cov={m.coverage:.3f} "
              f"acc={m.accuracy:.3f} dTraffic={m.traffic_overhead_vs(base):+.3f}")
    print("== ablation: SLP accumulation-table timeout (CFM)")
    base = timeout["none"]
    for label, m in timeout.items():
        if label == "none":
            continue
        print(f"{label:15s} hit={m.hit_rate:.3f} cov={m.coverage:.3f} "
              f"acc={m.accuracy:.3f}")
    # Distance 64 (the paper's default) should give TLP-dependent Fort more
    # coverage than a tiny distance-4 neighbourhood.
    assert distance["distance=64"].coverage > distance["distance=4"].coverage
    # The paper's 20k-cycle timeout should beat a timeout so long the AT
    # never releases snapshots into the PT within an episode gap.
    assert (timeout["timeout=20000"].coverage
            >= timeout["timeout=200000"].coverage - 0.02)
