"""Ablation (extension): accuracy-feedback throttling under power budgets.

Beyond the paper: wraps BOP and Planaria in the usefulness-gated throttle
(`repro.prefetch.throttle`) and shows that a low-accuracy prefetcher's junk
traffic is suppressed while an accurate one keeps its gains — the knob a
power-constrained SoC would actually ship.
"""

from benchmarks.conftest import run_once
from repro.sim.runner import compare_prefetchers


def _run(settings):
    return {
        "NBA2": compare_prefetchers(
            "NBA2", ("none", "bop", "bop-throttled"),
            length=settings.trace_length, seed=settings.seed),
        "CFM": compare_prefetchers(
            "CFM", ("none", "planaria", "planaria-throttled"),
            length=settings.trace_length, seed=settings.seed),
    }


def test_ablation_throttle(benchmark, settings):
    grids = run_once(benchmark, _run, settings)
    print()
    print("== ablation: accuracy-feedback throttling (extension)")
    for app, results in grids.items():
        base = results["none"]
        for name, metrics in results.items():
            if name == "none":
                continue
            print(f"{app:5s} {name:18s} hit={metrics.hit_rate:.3f} "
                  f"dAMAT={metrics.amat_reduction_vs(base):+.3f} "
                  f"dTraffic={metrics.traffic_overhead_vs(base):+.3f} "
                  f"dPower={metrics.power_overhead_vs(base):+.3f}")
    nba2 = grids["NBA2"]
    assert (nba2["bop-throttled"].traffic_overhead_vs(nba2["none"])
            < nba2["bop"].traffic_overhead_vs(nba2["none"]) * 0.6)
    cfm = grids["CFM"]
    assert (cfm["planaria-throttled"].amat_reduction_vs(cfm["none"])
            > cfm["planaria"].amat_reduction_vs(cfm["none"]) * 0.7)
