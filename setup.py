"""Legacy setup shim.

The environment has setuptools but not the ``wheel`` package, so PEP 660
editable installs cannot build; with this file and no [build-system] table
``pip install -e .`` takes the legacy develop-install path, which works
offline.
"""
from setuptools import setup

setup()
