"""Planaria coordinator: parallel learning, serial SLP-first issuing."""

import pytest

from repro.config import PlanariaConfig, SLPConfig
from repro.core.planaria import PlanariaPrefetcher
from repro.core.storage import planaria_storage_budget
from repro.geometry import DEFAULT_LAYOUT
from repro.prefetch.base import DemandAccess
from repro.trace.record import DeviceID


def access(page, offset, time):
    return DemandAccess(
        block_addr=(page << 6) | offset, page=page, block_in_segment=offset,
        channel_block=page * 16 + offset, time=time, is_read=True,
        device=DeviceID.CPU,
    )


def teach_slp_pattern(planaria, page, offsets, start=0):
    time = start
    for offset in offsets:
        planaria.observe(access(page, offset, time))
        time += 10
    timeout = planaria.slp.config.at_timeout
    planaria.observe(access(page + 50_000, 0, time + timeout + 1))
    return time + timeout + 1


class TestCoordinator:
    def test_both_subprefetchers_learn_in_parallel(self):
        planaria = PlanariaPrefetcher(DEFAULT_LAYOUT, 0)
        planaria.observe(access(5, 1, 0))
        assert planaria.tlp.bitmap_of(5) is not None
        assert planaria.slp.table_sizes()["filter"] == 1

    def test_slp_issues_when_it_has_history(self):
        planaria = PlanariaPrefetcher(DEFAULT_LAYOUT, 0)
        time = teach_slp_pattern(planaria, page=9, offsets=[1, 4, 6, 9])
        trigger = access(9, 4, time + 100)
        planaria.observe(trigger)
        candidates = planaria.issue(trigger, was_hit=False)
        assert candidates
        assert all(c.source == "slp" for c in candidates)
        assert planaria.slp_issues == len(candidates)
        assert planaria.tlp_issues == 0

    def test_tlp_issues_when_slp_has_no_history(self):
        planaria = PlanariaPrefetcher(DEFAULT_LAYOUT, 0)
        # Give TLP a donor but keep SLP's PT empty for the trigger page.
        for offset in (1, 3, 5, 7, 9, 11):
            planaria.observe(access(0x101, offset, offset))
        for offset in (1, 3, 5, 7):
            planaria.observe(access(0x100, offset, 100 + offset))
        trigger = access(0x100, 7, 200)
        candidates = planaria.issue(trigger, was_hit=False)
        assert candidates
        assert all(c.source == "tlp" for c in candidates)
        assert planaria.tlp_issues == len(candidates)

    def test_slp_preferred_over_tlp(self):
        planaria = PlanariaPrefetcher(DEFAULT_LAYOUT, 0)
        time = teach_slp_pattern(planaria, page=0x100, offsets=[1, 4, 6])
        # Also create a plausible TLP donor.
        for offset in (1, 4, 6, 8, 10):
            planaria.observe(access(0x101, offset, time + offset))
        trigger = access(0x100, 1, time + 100)
        planaria.observe(trigger)
        candidates = planaria.issue(trigger, was_hit=False)
        assert candidates and all(c.source == "slp" for c in candidates)

    def test_issued_candidates_counter(self):
        planaria = PlanariaPrefetcher(DEFAULT_LAYOUT, 0)
        time = teach_slp_pattern(planaria, page=9, offsets=[1, 4, 6, 9])
        trigger = access(9, 4, time + 100)
        planaria.observe(trigger)
        planaria.issue(trigger, was_hit=False)
        assert planaria.issued_candidates == planaria.slp_issues + planaria.tlp_issues


class TestAblationModes:
    def test_parallel_mode_unions_both(self):
        config = PlanariaConfig(coordinator="parallel")
        planaria = PlanariaPrefetcher(DEFAULT_LAYOUT, 0, config)
        # SLP learns {1,4,6,9} for page 0x100; its RPT bitmap keeps the
        # same bits.  The donor page shares those four and adds {10,12}.
        time = teach_slp_pattern(planaria, page=0x100, offsets=[1, 4, 6, 9])
        for offset in (1, 4, 6, 9, 10, 12):
            planaria.observe(access(0x101, offset, time + offset))
        trigger = access(0x100, 1, time + 100)
        planaria.observe(trigger)
        candidates = planaria.issue(trigger, was_hit=False)
        sources = {c.source for c in candidates}
        assert sources == {"slp", "tlp"}

    def test_serial_mode_still_issues(self):
        config = PlanariaConfig(coordinator="serial")
        planaria = PlanariaPrefetcher(DEFAULT_LAYOUT, 0, config)
        time = teach_slp_pattern(planaria, page=9, offsets=[1, 4, 6, 9])
        trigger = access(9, 4, time + 100)
        planaria.observe(trigger)
        assert planaria.issue(trigger, was_hit=False)

    def test_custom_sub_configs_propagate(self):
        config = PlanariaConfig(slp=SLPConfig(filter_threshold=5))
        planaria = PlanariaPrefetcher(DEFAULT_LAYOUT, 0, config)
        assert planaria.slp.config.filter_threshold == 5


class TestActivityAndStorage:
    def test_activity_aggregates_subprefetchers(self):
        planaria = PlanariaPrefetcher(DEFAULT_LAYOUT, 0)
        planaria.observe(access(1, 1, 0))
        merged = planaria.activity
        assert merged.table_reads == (planaria.slp.activity.table_reads
                                      + planaria.tlp.activity.table_reads)

    def test_storage_is_sum_of_parts(self):
        planaria = PlanariaPrefetcher(DEFAULT_LAYOUT, 0)
        assert planaria.storage_bits() == (
            planaria.slp.storage_bits() + planaria.tlp.storage_bits()
        )


class TestStorageBudget:
    def test_total_close_to_paper(self):
        budget = planaria_storage_budget()
        # Paper: 345.2 KB total, 8.4% of the 4 MB SC.
        assert budget.total_kib == pytest.approx(345.2, rel=0.03)
        assert budget.fraction_of_cache() == pytest.approx(0.084, rel=0.03)

    def test_per_channel_structure(self):
        budget = planaria_storage_budget()
        assert budget.num_channels == 4
        assert budget.total_bits == budget.per_channel_bits * 4
        assert set(budget.per_table_bits) == {
            "SLP filter (FT)", "SLP accumulation (AT)",
            "SLP pattern (PT)", "TLP recent-page (RPT)",
        }

    def test_format_table(self):
        text = planaria_storage_budget().format_table()
        assert "TOTAL" in text and "RPT" in text

    def test_fraction_rejects_bad_cache(self):
        with pytest.raises(ValueError):
            planaria_storage_budget().fraction_of_cache(0)
