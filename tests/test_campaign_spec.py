"""Campaign spec parsing and grid expansion (repro.campaign.spec/grid)."""

import pytest

from repro.campaign import (expand_grid, load_campaign, parse_campaign)
from repro.config import SimConfig
from repro.errors import CampaignError, CampaignSpecError, ConfigError

BASE = {
    "name": "unit",
    "length": 4000,
    "workloads": [{"app": "CFM"}, {"app": "HoK"}],
    "prefetchers": ["none", "planaria"],
}


def _spec(**overrides):
    data = dict(BASE)
    data.update(overrides)
    return parse_campaign(data)


class TestGoldenRoundTrip:
    """The shipped example expands to a known, order-stable grid."""

    def test_example_grid_golden(self):
        spec = load_campaign("examples/campaign.yaml")
        cells = expand_grid(spec)
        expected = [
            f"{workload}/{prefetcher}/{variant}"
            for workload in ("CFM", "HoK", "cfm+hok")
            for prefetcher in ("none", "bop", "planaria")
            for variant in ("base", "small-sc")
        ]
        assert [cell.cell_id for cell in cells] == expected

    def test_expansion_is_deterministic(self):
        spec = load_campaign("examples/campaign.yaml")
        first = [(c.cell_id, c.fingerprint, c.seed, c.length)
                 for c in expand_grid(spec)]
        second = [(c.cell_id, c.fingerprint, c.seed, c.length)
                  for c in expand_grid(spec)]
        assert first == second

    def test_fingerprint_stable_across_parses(self):
        assert _spec().fingerprint == _spec().fingerprint

    def test_fingerprint_changes_with_grid(self):
        assert (_spec().fingerprint
                != _spec(prefetchers=["none", "bop"]).fingerprint)

    def test_workload_overrides_seed_and_length(self):
        spec = _spec(workloads=[{"app": "CFM", "seed": 99, "length": 1234},
                                {"app": "HoK"}])
        cells = expand_grid(spec)
        assert (cells[0].seed, cells[0].length) == (99, 1234)
        assert (cells[2].seed, cells[2].length) == (spec.seed, spec.length)


class TestDedup:
    def test_duplicate_prefetcher_collapses_to_first(self):
        spec = _spec(prefetchers=["none", "planaria", "none"])
        cells = expand_grid(spec)
        ids = [cell.cell_id for cell in cells]
        assert len(ids) == len(set(ids))
        assert ids == ["CFM/none/base", "CFM/planaria/base",
                       "HoK/none/base", "HoK/planaria/base"]


class TestSchemaRejection:
    def test_unknown_top_level_key(self):
        with pytest.raises(CampaignSpecError, match="bogus"):
            parse_campaign(dict(BASE, bogus=1))

    def test_unknown_workload_key(self):
        with pytest.raises(CampaignSpecError, match="frobnicate"):
            parse_campaign(dict(BASE, workloads=[
                {"app": "CFM", "frobnicate": True}]))

    def test_unknown_dispatch_key(self):
        with pytest.raises(CampaignSpecError, match="threads"):
            parse_campaign(dict(BASE, dispatch={"threads": 4}))

    def test_unknown_soak_key(self):
        with pytest.raises(CampaignSpecError, match="forever"):
            parse_campaign(dict(BASE, soak={"forever": True}))

    def test_bool_rejected_where_int_expected(self):
        with pytest.raises(CampaignSpecError, match="length"):
            parse_campaign(dict(BASE, length=True))

    def test_unknown_app(self):
        with pytest.raises(CampaignSpecError, match="NotAGame"):
            parse_campaign(dict(BASE, workloads=[{"app": "NotAGame"}]))

    def test_unknown_prefetcher(self):
        with pytest.raises(CampaignSpecError, match="warp-drive"):
            parse_campaign(dict(BASE, prefetchers=["warp-drive"]))

    def test_empty_axes(self):
        with pytest.raises(CampaignSpecError):
            parse_campaign(dict(BASE, workloads=[]))
        with pytest.raises(CampaignSpecError):
            parse_campaign(dict(BASE, prefetchers=[]))

    def test_app_xor_tenants(self):
        with pytest.raises(CampaignSpecError):
            parse_campaign(dict(BASE, workloads=[
                {"app": "CFM",
                 "tenants": ["app=CFM,device=CPU", "app=HoK,device=GPU"]}]))

    def test_tenant_mix_needs_two(self):
        with pytest.raises(CampaignSpecError):
            parse_campaign(dict(BASE, workloads=[
                {"name": "solo", "tenants": ["app=CFM,device=CPU"]}]))

    def test_bad_tenant_string_fails_at_parse_time(self):
        with pytest.raises(CampaignSpecError):
            parse_campaign(dict(BASE, workloads=[
                {"name": "mix", "tenants": ["app=CFM,device=Toaster",
                                            "app=HoK,device=GPU"]}]))

    def test_duplicate_config_variant_names(self):
        with pytest.raises(CampaignSpecError, match="base"):
            parse_campaign(dict(BASE, configs=[{"name": "base"},
                                               {"name": "base"}]))

    def test_unfriendly_campaign_name(self):
        with pytest.raises(CampaignSpecError):
            parse_campaign(dict(BASE, name="no/slashes here"))

    def test_missing_file(self, tmp_path):
        with pytest.raises((CampaignSpecError, CampaignError)):
            load_campaign(tmp_path / "nope.yaml")

    def test_spec_error_is_config_error(self):
        # the CLI's ConfigError handling must catch spec errors too
        assert issubclass(CampaignSpecError, ConfigError)
        assert issubclass(CampaignSpecError, CampaignError)


class TestOverrides:
    def test_override_applies_to_cell_config(self):
        spec = _spec(configs=[
            {"name": "base"},
            {"name": "tiny-sc", "overrides": {"cache": {"size_bytes": 2097152}}},
        ])
        cells = expand_grid(spec)
        by_variant = {cell.variant: cell for cell in cells[:2]}
        base_size = SimConfig.experiment_scale().cache.size_bytes
        assert by_variant["base"].config.cache.size_bytes == base_size
        assert by_variant["tiny-sc"].config.cache.size_bytes == 2097152
        assert (by_variant["base"].fingerprint
                != by_variant["tiny-sc"].fingerprint)

    def test_override_typo_fails_at_expansion(self):
        spec = _spec(configs=[
            {"name": "typo", "overrides": {"cache": {"size_byte": 1}}}])
        with pytest.raises(CampaignSpecError, match="typo"):
            expand_grid(spec)

    def test_non_nested_override(self):
        spec = _spec(configs=[
            {"name": "lat", "overrides": {"sc_hit_latency": 12}}])
        cells = expand_grid(spec)
        assert cells[0].config.sc_hit_latency == 12


class TestSessionNames:
    def test_session_name_is_service_safe(self):
        spec = _spec(workloads=[
            {"name": "cfm+hok", "tenants": ["app=CFM,device=CPU",
                                            "app=HoK,device=GPU"]}])
        for cell in expand_grid(spec):
            assert cell.session_name.startswith("campaign-")
            assert all(ch.isalnum() or ch in "-_."
                       for ch in cell.session_name)
