"""TLP: RPT allocation, Ref-bit neighbour sets, pattern transfer (paper §4.2)."""

import pytest

from repro.config import TLPConfig
from repro.core.tlp import TLPPrefetcher
from repro.geometry import DEFAULT_LAYOUT
from repro.prefetch.base import DemandAccess
from repro.trace.record import DeviceID


def access(page, offset, time=0):
    return DemandAccess(
        block_addr=(page << 6) | offset, page=page, block_in_segment=offset,
        channel_block=page * 16 + offset, time=time, is_read=True,
        device=DeviceID.CPU,
    )


def touch(tlp, page, offsets, start=0):
    time = start
    for offset in offsets:
        tlp.observe(access(page, offset, time))
        time += 5
    return time


class TestRPT:
    def test_allocation_and_bitmap(self):
        tlp = TLPPrefetcher(DEFAULT_LAYOUT, 0)
        touch(tlp, 0x100, [1, 3, 5])
        assert tlp.rpt_occupancy() == 1
        assert tlp.bitmap_of(0x100) == 0b101010

    def test_refs_respect_distance(self):
        tlp = TLPPrefetcher(DEFAULT_LAYOUT, 0)
        touch(tlp, 0x100, [1])
        touch(tlp, 0x110, [1])   # distance 16 <= 64: neighbours
        touch(tlp, 0x500, [1])   # distance huge: not a neighbour
        entry = tlp._rpt[0x110]
        assert 0x100 in entry.refs
        assert 0x500 not in entry.refs
        # Ref bits are symmetric (paper: both i->j and j->i are set).
        assert 0x110 in tlp._rpt[0x100].refs

    def test_capacity_eviction_cleans_refs(self):
        config = TLPConfig(rpt_entries=2)
        tlp = TLPPrefetcher(DEFAULT_LAYOUT, 0, config)
        touch(tlp, 10, [1])
        touch(tlp, 11, [1])
        touch(tlp, 12, [1])  # evicts page 10 (LRU)
        assert tlp.rpt_occupancy() == 2
        assert tlp.bitmap_of(10) is None
        assert 10 not in tlp._rpt[11].refs

    def test_lru_refresh_on_access(self):
        config = TLPConfig(rpt_entries=2)
        tlp = TLPPrefetcher(DEFAULT_LAYOUT, 0, config)
        touch(tlp, 10, [1])
        touch(tlp, 11, [1])
        touch(tlp, 10, [2])  # refresh page 10
        touch(tlp, 12, [1])  # evicts page 11 now
        assert tlp.bitmap_of(10) is not None
        assert tlp.bitmap_of(11) is None


class TestNeighbourSelection:
    def test_transfer_from_similar_neighbour(self):
        tlp = TLPPrefetcher(DEFAULT_LAYOUT, 0)
        # Donor B: complete footprint {1,3,5,7,9,11}.
        touch(tlp, 0x101, [1, 3, 5, 7, 9, 11])
        # Trigger A: accessed {1,3,5,7} so far — subset of B.
        touch(tlp, 0x100, [1, 3, 5, 7])
        assert tlp.best_neighbour(0x100) == 0x101
        trigger = access(0x100, 7, 100)
        candidates = tlp.issue(trigger, was_hit=False)
        offsets = sorted(c.block_addr & 0xF for c in candidates)
        assert offsets == [9, 11]
        assert all(c.source == "tlp" for c in candidates)
        assert tlp.transfers == 1

    def test_min_common_bits_gate(self):
        tlp = TLPPrefetcher(DEFAULT_LAYOUT, 0)
        touch(tlp, 0x101, [1, 3, 5, 7, 9, 11])
        touch(tlp, 0x100, [1, 3])  # only 2 common bits < 4
        assert tlp.best_neighbour(0x100) is None

    def test_foreign_bits_gate(self):
        config = TLPConfig(max_foreign_bits=0)
        tlp = TLPPrefetcher(DEFAULT_LAYOUT, 0, config)
        touch(tlp, 0x101, [1, 3, 5, 7])
        # Trigger shares 4 bits but also touched 14, absent from the donor.
        touch(tlp, 0x100, [1, 3, 5, 7, 14])
        assert tlp.best_neighbour(0x100) is None

    def test_smallest_difference_wins(self):
        tlp = TLPPrefetcher(DEFAULT_LAYOUT, 0)
        # Dense donor: superset of trigger but 8 extra blocks.
        touch(tlp, 0x102, list(range(13)))
        # Tight donor: trigger's 4 bits + 2 extras.
        touch(tlp, 0x101, [1, 3, 5, 7, 9, 11])
        touch(tlp, 0x100, [1, 3, 5, 7])
        assert tlp.best_neighbour(0x100) == 0x101

    def test_max_transfer_bits_gate(self):
        config = TLPConfig(max_transfer_bits=3)
        tlp = TLPPrefetcher(DEFAULT_LAYOUT, 0, config)
        touch(tlp, 0x101, list(range(12)))  # would transfer 8 > 3
        touch(tlp, 0x100, [1, 2, 3, 0])
        assert tlp.best_neighbour(0x100) is None

    def test_distance_threshold_respected(self):
        config = TLPConfig(distance_threshold=4)
        tlp = TLPPrefetcher(DEFAULT_LAYOUT, 0, config)
        touch(tlp, 0x110, [1, 3, 5, 7, 9])
        touch(tlp, 0x100, [1, 3, 5, 7])  # distance 16 > 4
        assert tlp.best_neighbour(0x100) is None

    def test_no_issue_on_hit(self):
        tlp = TLPPrefetcher(DEFAULT_LAYOUT, 0)
        touch(tlp, 0x101, [1, 3, 5, 7, 9, 11])
        touch(tlp, 0x100, [1, 3, 5, 7])
        assert tlp.issue(access(0x100, 7, 50), was_hit=True) == []

    def test_unknown_page_no_issue(self):
        tlp = TLPPrefetcher(DEFAULT_LAYOUT, 0)
        assert tlp.issue(access(0x900, 0, 0), was_hit=False) == []

    def test_fully_covered_trigger_transfers_nothing(self):
        tlp = TLPPrefetcher(DEFAULT_LAYOUT, 0)
        touch(tlp, 0x101, [1, 3, 5, 7])
        touch(tlp, 0x100, [1, 3, 5, 7])
        candidates = tlp.issue(access(0x100, 7, 100), was_hit=False)
        assert candidates == []
        assert tlp.transfers == 0


class TestStorage:
    def test_storage_matches_formula(self):
        config = TLPConfig()
        tlp = TLPPrefetcher(DEFAULT_LAYOUT, 0, config)
        expected_entry = 24 + 16 + (config.rpt_entries - 1) + 16
        assert tlp.storage_bits() == config.rpt_entries * expected_entry
