"""Campaign runner: local execution, checkpointed resume, harvest.

The heart of the file is the hypothesis property: for *any* kill point
mid-grid, resuming (a) never re-runs a completed cell and (b) produces a
results CSV byte-identical to an uninterrupted run.
"""

import json
from dataclasses import asdict

import pytest
from hypothesis import given, settings as hsettings, strategies as st

from repro.campaign import (CampaignRunner, load_state, parse_campaign,
                            write_results)
from repro.campaign.runner import save_state
from repro.errors import CampaignError
from repro.sim.runner import simulate
from repro.trace.generator import generate_trace_buffer, get_profile

LENGTH = 2000
SPEC_DATA = {
    "name": "runner-test",
    "length": LENGTH,
    "seed": 7,
    "workloads": [{"app": "CFM"}, {"app": "HoK"}],
    "prefetchers": ["none", "planaria"],
    "dispatch": {"max_inflight_cells": 1},
}


@pytest.fixture(scope="module")
def spec():
    return parse_campaign(SPEC_DATA)


@pytest.fixture(scope="module")
def reference(spec, tmp_path_factory):
    """One uninterrupted run: (state dict, CSV bytes) to compare against."""
    root = tmp_path_factory.mktemp("campaign-ref")
    runner = CampaignRunner(spec, root / "state")
    summary = runner.run()
    assert summary["complete"]
    state = load_state(runner.state_file)
    csv_path = write_results(runner, state, root / "out")[0]
    return state, csv_path.read_bytes()


class TestLocalExecution:
    def test_metrics_match_offline_simulate(self, spec, reference):
        state, _ = reference
        config = spec.load_base_config()
        for cell_id, entry in state.cells.items():
            workload, prefetcher, _ = cell_id.split("/")
            buffer = generate_trace_buffer(get_profile(workload), LENGTH,
                                           seed=7, layout=config.layout)
            offline = simulate(buffer, prefetcher, workload_name=workload,
                               config=config)
            assert entry["metrics"] == asdict(offline.metrics), cell_id

    def test_state_has_provenance_and_runtime(self, reference):
        state, _ = reference
        assert state.provenance["python"]
        for entry in state.cells.values():
            assert entry["provenance"]["config_fingerprint"] \
                == entry["fingerprint"]
            assert entry["runtime"]["endpoint"] == "local"
            assert entry["runtime"]["attempts"] == 1

    def test_csv_carries_no_timestamps(self, reference):
        _, csv_bytes = reference
        text = csv_bytes.decode()
        assert "elapsed" not in text and "20" + "26" not in text


class TestRunGuards:
    def test_run_refuses_existing_state(self, spec, tmp_path):
        runner = CampaignRunner(spec, tmp_path)
        runner.run(stop_after_cells=1)
        with pytest.raises(CampaignError, match="resume"):
            CampaignRunner(spec, tmp_path).run()

    def test_resume_needs_state(self, spec, tmp_path):
        with pytest.raises(CampaignError, match="[Nn]othing to resume"):
            CampaignRunner(spec, tmp_path).run(resume=True)

    def test_resume_rejects_different_spec(self, spec, tmp_path):
        CampaignRunner(spec, tmp_path).run(stop_after_cells=1)
        other = parse_campaign(dict(SPEC_DATA, seed=8))
        with pytest.raises(CampaignError, match="fingerprint"):
            CampaignRunner(other, tmp_path).run(resume=True)

    def test_resume_rejects_tampered_cell_fingerprint(self, spec, tmp_path):
        runner = CampaignRunner(spec, tmp_path)
        runner.run(stop_after_cells=1)
        state = load_state(runner.state_file)
        (cell_id, entry), = state.cells.items()
        entry["fingerprint"] = "deadbeefdeadbeef"
        save_state(runner.state_file, state)
        with pytest.raises(CampaignError, match=cell_id):
            CampaignRunner(spec, tmp_path).run(resume=True)

    def test_state_file_magic_checked(self, spec, tmp_path):
        runner = CampaignRunner(spec, tmp_path)
        runner.state_file.parent.mkdir(parents=True, exist_ok=True)
        runner.state_file.write_text(json.dumps({"magic": "nope"}))
        with pytest.raises(CampaignError, match="campaign state"):
            runner.run(resume=True)


class TestResumeProperty:
    @hsettings(max_examples=5, deadline=None)
    @given(kill_after=st.integers(min_value=0, max_value=4))
    def test_resume_after_kill_is_exact(self, spec, reference, tmp_path_factory,
                                        kill_after):
        """Kill after any number of cells; resume never re-runs a
        completed cell and the final CSV is bit-identical."""
        _, reference_csv = reference
        root = tmp_path_factory.mktemp(f"kill-{kill_after}")
        first = CampaignRunner(spec, root / "state")
        first.run(stop_after_cells=kill_after)
        assert len(first.executed) == kill_after

        second = CampaignRunner(spec, root / "state")
        summary = second.run(resume=True)
        assert summary["complete"]
        # (a) no completed cell ran twice
        assert not (set(first.executed) & set(second.executed))
        assert (set(first.executed) | set(second.executed)
                == {cell.cell_id for cell in second.cells})
        # (b) byte-identical harvest
        state = load_state(second.state_file)
        csv_path = write_results(second, state, root / "out")[0]
        assert csv_path.read_bytes() == reference_csv
