"""SLP: the FT → AT → PT pipeline and PN-indexed issuing (paper §3.2)."""

import pytest

from repro.config import SLPConfig
from repro.core.slp import SLPPrefetcher
from repro.geometry import DEFAULT_LAYOUT
from repro.prefetch.base import DemandAccess
from repro.trace.record import DeviceID
from repro.utils.bitops import bitmap_from_offsets


def access(page, offset, time, channel=0):
    block_addr = (page << 6) | (channel << 4) | offset
    return DemandAccess(
        block_addr=block_addr, page=page, block_in_segment=offset,
        channel_block=page * 16 + offset, time=time, is_read=True,
        device=DeviceID.CPU,
    )


def teach_pattern(slp, page, offsets, start_time=0, step=10):
    """Run one full generation for a page and expire it into the PT."""
    time = start_time
    for offset in offsets:
        slp.observe(access(page, offset, time))
        time += step
    # A far-future access to another page triggers the AT timeout sweep.
    slp.observe(access(page + 10_000, 0, time + slp.config.at_timeout + 1))
    return time + slp.config.at_timeout + 1


class TestLearningPipeline:
    def test_filter_threshold_gates_at(self):
        slp = SLPPrefetcher(DEFAULT_LAYOUT, 0)
        slp.observe(access(7, 1, 0))
        slp.observe(access(7, 2, 10))
        assert slp.table_sizes()["accumulation"] == 0  # only 2 offsets
        slp.observe(access(7, 3, 20))
        assert slp.table_sizes()["accumulation"] == 1  # third promotes
        assert slp.ft_promotions == 1

    def test_repeated_offset_does_not_promote(self):
        slp = SLPPrefetcher(DEFAULT_LAYOUT, 0)
        for time in range(5):
            slp.observe(access(7, 1, time * 10))
        assert slp.table_sizes()["accumulation"] == 0

    def test_timeout_moves_snapshot_to_pt(self):
        slp = SLPPrefetcher(DEFAULT_LAYOUT, 0)
        teach_pattern(slp, page=9, offsets=[1, 4, 6, 9])
        assert slp.has_pattern(9)
        assert slp.pattern_of(9) == bitmap_from_offsets([1, 4, 6, 9])
        assert slp.snapshots_learned == 1

    def test_no_pattern_before_timeout(self):
        slp = SLPPrefetcher(DEFAULT_LAYOUT, 0)
        for index, offset in enumerate((1, 4, 6, 9)):
            slp.observe(access(9, offset, index * 10))
        assert not slp.has_pattern(9)

    def test_sparse_page_filtered_out(self):
        slp = SLPPrefetcher(DEFAULT_LAYOUT, 0)
        slp.observe(access(3, 5, 0))
        slp.observe(access(3, 8, 10))
        # Time out: page 3 never reached AT, so nothing is learned.
        slp.observe(access(99, 0, slp.config.at_timeout * 2))
        assert not slp.has_pattern(3)

    def test_ft_capacity_eviction(self):
        config = SLPConfig(filter_table_entries=2)
        slp = SLPPrefetcher(DEFAULT_LAYOUT, 0, config)
        slp.observe(access(1, 0, 0))
        slp.observe(access(2, 0, 1))
        slp.observe(access(3, 0, 2))  # evicts page 1 silently
        assert slp.table_sizes()["filter"] == 2

    def test_at_capacity_eviction_learns(self):
        config = SLPConfig(accumulation_table_entries=1, at_timeout=10 ** 9)
        slp = SLPPrefetcher(DEFAULT_LAYOUT, 0, config)
        for offset in (1, 2, 3):
            slp.observe(access(1, offset, offset))
        for offset in (4, 5, 6):
            slp.observe(access(2, offset, 100 + offset))
        # Page 1 was forced out of the single-entry AT -> learned.
        assert slp.has_pattern(1)

    def test_pt_capacity_lru(self):
        config = SLPConfig(pattern_table_entries=2, at_timeout=50)
        slp = SLPPrefetcher(DEFAULT_LAYOUT, 0, config)
        time = 0
        for page in (1, 2, 3):
            for offset in (1, 2, 3):
                slp.observe(access(page, offset, time))
                time += 5
            time += 200  # expire into PT
        slp.observe(access(50, 0, time + 200))
        assert not slp.has_pattern(1)  # oldest pattern evicted
        assert slp.has_pattern(2) and slp.has_pattern(3)


class TestIssuing:
    def test_prefetches_remaining_pattern_on_miss(self):
        slp = SLPPrefetcher(DEFAULT_LAYOUT, 0)
        time = teach_pattern(slp, page=9, offsets=[1, 4, 6, 9])
        trigger = access(9, 4, time + 100)
        slp.observe(trigger)
        candidates = slp.issue(trigger, was_hit=False)
        offsets = sorted(c.block_addr & 0xF for c in candidates)
        assert offsets == [1, 6, 9]  # everything but the trigger

    def test_prefetch_addresses_on_same_page_and_channel(self):
        slp = SLPPrefetcher(DEFAULT_LAYOUT, channel=2)
        time = teach_pattern(slp, page=9, offsets=[2, 5])
        # Need >= filter_threshold offsets to learn; use 3.
        slp2 = SLPPrefetcher(DEFAULT_LAYOUT, channel=2)
        time = teach_pattern(slp2, page=9, offsets=[2, 5, 7])
        trigger = access(9, 2, time + 100, channel=2)
        slp2.observe(trigger)
        candidates = slp2.issue(trigger, was_hit=False)
        for candidate in candidates:
            byte_addr = candidate.block_addr << 6
            assert DEFAULT_LAYOUT.page_number(byte_addr) == 9
            assert DEFAULT_LAYOUT.channel(byte_addr) == 2
            assert candidate.source == "slp"

    def test_no_issue_on_hit(self):
        slp = SLPPrefetcher(DEFAULT_LAYOUT, 0)
        time = teach_pattern(slp, page=9, offsets=[1, 4, 6])
        trigger = access(9, 4, time + 100)
        slp.observe(trigger)
        assert slp.issue(trigger, was_hit=True) == []

    def test_no_issue_without_pattern(self):
        slp = SLPPrefetcher(DEFAULT_LAYOUT, 0)
        trigger = access(77, 3, 0)
        slp.observe(trigger)
        assert slp.issue(trigger, was_hit=False) == []

    def test_already_accessed_blocks_not_reissued(self):
        slp = SLPPrefetcher(DEFAULT_LAYOUT, 0)
        time = teach_pattern(slp, page=9, offsets=[1, 4, 6, 9])
        # New generation: touch 1 and 4, then miss on 6.
        slp.observe(access(9, 1, time + 100))
        slp.observe(access(9, 4, time + 110))
        trigger = access(9, 6, time + 120)
        slp.observe(trigger)
        candidates = slp.issue(trigger, was_hit=False)
        assert [c.block_addr & 0xF for c in candidates] == [9]

    def test_pattern_updates_on_relearn(self):
        slp = SLPPrefetcher(DEFAULT_LAYOUT, 0)
        time = teach_pattern(slp, page=9, offsets=[1, 4, 6])
        teach_pattern(slp, page=9, offsets=[2, 3, 5], start_time=time + 1000)
        assert slp.pattern_of(9) == bitmap_from_offsets([2, 3, 5])


class TestAccounting:
    def test_storage_bits_positive_and_pt_dominated(self):
        slp = SLPPrefetcher(DEFAULT_LAYOUT, 0)
        total = slp.storage_bits()
        config = slp.config
        pt_bits = config.pattern_table_entries * (24 + 16)
        assert total > pt_bits
        assert pt_bits / total > 0.8  # PT dominates the budget

    def test_activity_counted(self):
        slp = SLPPrefetcher(DEFAULT_LAYOUT, 0)
        slp.observe(access(1, 2, 0))
        assert slp.activity.table_reads >= 1
        assert slp.activity.table_writes >= 1
