"""Campaign dispatch against a live in-process service + soak mode."""

import json

import pytest

from repro.campaign import (CampaignRunner, load_state, parse_campaign,
                            run_soak, write_results)
from repro.errors import CampaignError
from repro.service.bench import _ServerThread
from repro.service.session import SessionManager

LENGTH = 2000
SPEC_DATA = {
    "name": "svc-test",
    "length": LENGTH,
    "seed": 7,
    "workloads": [{"app": "CFM"}],
    "prefetchers": ["none", "planaria"],
    "dispatch": {"max_inflight_cells": 2, "max_retries": 2,
                 "retry_backoff_seconds": 0.01},
    "soak": {"duration_seconds": 1.0, "sample_interval_seconds": 0.2,
             "chunk_records": 512,
             "tenants": ["app=CFM,device=CPU,seed=1,length=4000",
                         "app=HoK,device=GPU,seed=2,length=4000"]},
}


@pytest.fixture()
def spec():
    return parse_campaign(SPEC_DATA)


def _harvest_csv(runner, directory):
    state = load_state(runner.state_file)
    return write_results(runner, state, directory)[0].read_bytes()


class TestServiceDispatch:
    def test_service_bit_identical_to_local(self, spec, tmp_path):
        local = CampaignRunner(spec, tmp_path / "local")
        local.run()
        local_csv = _harvest_csv(local, tmp_path / "o1")

        with _ServerThread(SessionManager()) as server:
            served = CampaignRunner(
                spec, tmp_path / "svc",
                endpoints=[f"127.0.0.1:{server.port}"])
            served.run()
        served_csv = _harvest_csv(served, tmp_path / "o2")
        assert served_csv == local_csv

        state = load_state(served.state_file)
        for entry in state.cells.values():
            assert entry["runtime"]["endpoint"].startswith("127.0.0.1:")

    def test_dead_endpoint_fails_over_to_live_one(self, spec, tmp_path):
        with _ServerThread(SessionManager()) as server:
            runner = CampaignRunner(
                spec, tmp_path / "svc",
                endpoints=["127.0.0.1:1", f"127.0.0.1:{server.port}"])
            summary = runner.run()
        assert summary["complete"]
        state = load_state(runner.state_file)
        # every cell landed on the live endpoint, possibly after retries
        for entry in state.cells.values():
            assert entry["runtime"]["endpoint"] == f"127.0.0.1:{server.port}"

    def test_all_endpoints_dead_raises_after_retries(self, spec, tmp_path):
        runner = CampaignRunner(spec, tmp_path, endpoints=["127.0.0.1:1"])
        with pytest.raises(CampaignError, match="attempt"):
            runner.run()
        # the failed cell was not recorded as completed
        state = load_state(runner.state_file)
        assert state.cells == {}


class TestSoak:
    def test_soak_appends_time_series(self, spec, tmp_path):
        output = tmp_path / "BENCH_service.json"
        output.write_text(json.dumps({"sharded": {"keep": "me"}}))
        manager = SessionManager(tracing=True)
        with _ServerThread(manager) as server:
            section = run_soak(spec, f"127.0.0.1:{server.port}",
                               output=output)
        assert section["records_fed"] > 0
        assert section["achieved_records_per_second"] > 0
        assert len(section["samples"]) >= 2
        final = section["samples"][-1]
        assert final["health"] in ("ok", "warn", "critical")
        assert "backpressure_waits" in final
        assert any("spans" in sample for sample in section["samples"])
        # no tenant trace is 1s long at service speed: the merged
        # workload must have been replayed to sustain the load
        assert section["workload_replays"] >= 0

        document = json.loads(output.read_text())
        assert document["soak"]["records_fed"] == section["records_fed"]
        assert document["sharded"] == {"keep": "me"}  # preserved

    def test_soak_paced_rate(self, tmp_path):
        paced = parse_campaign(dict(
            SPEC_DATA,
            soak=dict(SPEC_DATA["soak"], rate_records_per_second=2000)))
        with _ServerThread(SessionManager()) as server:
            section = run_soak(paced, f"127.0.0.1:{server.port}",
                               output=tmp_path / "b.json")
        # 1s at 2000 rec/s, chunked by 512: within one chunk of target
        assert section["records_fed"] <= 2000 + 512
