"""Set-associative cache: hits, fills, evictions, prefetch tracking."""

import pytest
from hypothesis import given, settings as hsettings, strategies as st

from repro.cache import SetAssociativeCache
from repro.config import CacheConfig
from repro.errors import SimulationError


def small_cache(policy="lru", sets=4, ways=2):
    return SetAssociativeCache(CacheConfig(
        size_bytes=sets * ways * 64, associativity=ways,
        replacement_policy=policy,
    ))


class TestBasicOperation:
    def test_miss_then_hit(self):
        cache = small_cache()
        result = cache.access(0x10, now=0)
        assert not result.hit
        cache.fill(0x10, now=0, ready_time=0)
        assert cache.access(0x10, now=1).hit

    def test_miss_does_not_allocate(self):
        cache = small_cache()
        cache.access(0x10, now=0)
        assert not cache.contains(0x10)

    def test_double_fill_rejected(self):
        cache = small_cache()
        cache.fill(0x10, now=0, ready_time=0)
        with pytest.raises(SimulationError):
            cache.fill(0x10, now=1, ready_time=1)

    def test_set_mapping_conflicts(self):
        cache = small_cache(sets=4, ways=2)
        # Blocks 0, 4, 8 all map to set 0 in a 4-set cache.
        cache.fill(0, now=0, ready_time=0)
        cache.fill(4, now=1, ready_time=1)
        eviction = cache.fill(8, now=2, ready_time=2)
        assert eviction is not None
        assert eviction.tag == 0  # LRU victim

    def test_occupancy(self):
        cache = small_cache()
        assert cache.occupancy() == 0
        cache.fill(1, now=0, ready_time=0)
        cache.fill(2, now=0, ready_time=0)
        assert cache.occupancy() == 2

    def test_invalidate(self):
        cache = small_cache()
        cache.fill(7, now=0, ready_time=0)
        assert cache.invalidate(7)
        assert not cache.contains(7)
        assert not cache.invalidate(7)

    def test_probe_does_not_touch_lru(self):
        cache = small_cache(sets=1, ways=2)
        cache.fill(0, now=0, ready_time=0)
        cache.fill(1, now=1, ready_time=1)
        cache.probe(0)  # must NOT refresh block 0
        eviction = cache.fill(2, now=2, ready_time=2)
        assert eviction.tag == 0


class TestDirtyAndWriteback:
    def test_write_sets_dirty(self):
        cache = small_cache()
        cache.fill(3, now=0, ready_time=0)
        cache.access(3, now=1, is_write=True)
        assert cache.probe(3).dirty

    def test_dirty_eviction_counts_writeback(self):
        cache = small_cache(sets=1, ways=1)
        cache.fill(0, now=0, ready_time=0, dirty=True)
        eviction = cache.fill(1, now=1, ready_time=1)
        assert eviction.dirty
        assert cache.stats.writebacks == 1

    def test_clean_eviction_no_writeback(self):
        cache = small_cache(sets=1, ways=1)
        cache.fill(0, now=0, ready_time=0)
        cache.fill(1, now=1, ready_time=1)
        assert cache.stats.writebacks == 0


class TestPrefetchTracking:
    def test_useful_prefetch_attribution(self):
        cache = small_cache()
        cache.fill(5, now=0, ready_time=0, prefetched=True, source="slp")
        result = cache.access(5, now=1)
        assert result.hit
        assert result.prefetch_source == "slp"
        assert cache.stats.prefetch_useful == {"slp": 1}
        # Second touch is an ordinary hit.
        assert cache.access(5, now=2).prefetch_source is None

    def test_unused_prefetch_eviction(self):
        cache = small_cache(sets=1, ways=1)
        cache.fill(0, now=0, ready_time=0, prefetched=True, source="tlp")
        cache.fill(1, now=1, ready_time=1)
        assert cache.stats.prefetch_unused_evicted == {"tlp": 1}

    def test_late_prefetch_is_delayed_miss(self):
        cache = small_cache()
        cache.fill(9, now=0, ready_time=100, prefetched=True, source="slp")
        result = cache.access(9, now=40)
        assert not result.hit
        assert result.delayed
        assert result.wait_cycles == 60
        assert result.late_prefetch
        assert cache.stats.prefetch_late == {"slp": 1}
        assert cache.stats.delayed_hits == 1

    def test_mshr_merge_on_demand_fill(self):
        cache = small_cache()
        cache.fill(9, now=0, ready_time=100)  # demand fill in flight
        result = cache.access(9, now=50)
        assert result.delayed and result.wait_cycles == 50
        assert result.prefetch_source is None
        # After the data lands it is a plain hit.
        assert cache.access(9, now=150).hit

    def test_resident_prefetches(self):
        cache = small_cache()
        cache.fill(1, now=0, ready_time=0, prefetched=True, source="slp")
        cache.fill(2, now=0, ready_time=0)
        assert cache.resident_prefetches() == 1
        cache.access(1, now=1)
        assert cache.resident_prefetches() == 0


class TestStats:
    def test_hit_rate(self):
        cache = small_cache()
        cache.fill(1, now=0, ready_time=0)
        cache.access(1, now=1)
        cache.access(2, now=2)
        assert cache.stats.demand_accesses == 2
        assert cache.stats.hit_rate == pytest.approx(0.5)

    def test_empty_hit_rate(self):
        assert small_cache().stats.hit_rate == 0.0


class TestCapacityInvariant:
    @given(st.lists(st.integers(min_value=0, max_value=63), min_size=1,
                    max_size=200))
    @hsettings(max_examples=30, deadline=None)
    def test_occupancy_never_exceeds_capacity(self, blocks):
        cache = small_cache(sets=4, ways=2)
        now = 0
        for block in blocks:
            now += 1
            if not cache.contains(block):
                cache.fill(block, now=now, ready_time=now)
        assert cache.occupancy() <= 8
        # Every block filled and not evicted must be findable.
        resident = sum(1 for block in set(blocks) if cache.contains(block))
        assert resident == cache.occupancy()


class TestTagIndexCoherence:
    """The O(1) per-set tag→way index vs the reference linear way scan.

    ``contains``/``probe``/``access`` consult ``_tag_to_way``; ``fill`` and
    ``invalidate`` are the only writers.  Under random interleavings of all
    three operations the dict must stay coherent with the way arrays in
    both directions, and agree with ``_find_way_linear`` for every
    resident tag.
    """

    @given(
        st.lists(
            st.tuples(st.sampled_from(["access", "fill", "invalidate"]),
                      st.integers(min_value=0, max_value=63)),
            min_size=1, max_size=150),
        st.sampled_from(["lru", "fifo", "srrip", "drrip"]),
    )
    @hsettings(max_examples=40, deadline=None)
    def test_dict_matches_linear_scan(self, operations, policy):
        cache = small_cache(policy=policy, sets=4, ways=2)
        now = 0
        for operation, block in operations:
            now += 1
            if operation == "access":
                cache.access(block, now=now)
            elif operation == "fill":
                if not cache.contains(block):
                    cache.fill(block, now=now, ready_time=now)
            else:
                cache.invalidate(block)
        for set_index in range(cache.num_sets):
            ways = cache._sets[set_index]
            tag_map = cache._tag_to_way[set_index]
            for tag, way in tag_map.items():
                assert ways[way].tag == tag
                assert cache._find_way_linear(ways, tag) == way
            assert {block.tag for block in ways
                    if block.tag is not None} == set(tag_map)
