"""Observability invariants: collection never perturbs the simulation.

The contracts under test, in order of importance:

* **Metrics neutrality** — ``RunMetrics`` with observability attached is
  bit-identical (``==`` on the frozen dataclass) to the plain run, for
  offline, parallel, and streaming execution alike.
* **Execution-mode equivalence** — the merged timeline and the event
  list are bit-identical between serial and parallel runs, and between
  one-shot offline runs and chunked streaming feeds (with the stream
  warmup fixed up front, same as the metrics contract).
* **Checkpoint continuity** — a timeline survives a ``state_dict`` /
  ``load_state`` round trip mid-stream and continues bit-identically.
* **Internal consistency** — epoch deltas telescope back to the run's
  cumulative totals.
* **Tracing neutrality** — attaching a span recorder
  (:class:`~repro.obs.trace_spans.SpanRecorder`) changes neither the
  metrics nor the timeline nor the event stream, in any execution mode.
"""

import functools

from repro.config import SimConfig
from repro.obs import (ObsConfig, attach_observability, detach_observability)
from repro.prefetch.registry import make_prefetcher
from repro.sim.engine import SystemSimulator, channel_warmup_counts
from repro.sim.runner import collect_metrics, simulate
from repro.trace.generator import generate_trace_buffer, get_profile

import pytest

LENGTH = 6000
SEED = 11
EPOCH_RECORDS = 256
CHUNK = 700  # deliberately coprime-ish with the epoch size


@functools.lru_cache(maxsize=None)
def _config():
    return SimConfig.experiment_scale()


@functools.lru_cache(maxsize=None)
def _trace():
    return generate_trace_buffer(get_profile("CFM"), LENGTH, seed=SEED,
                                 layout=_config().layout)


def _simulator(prefetcher="planaria"):
    return SystemSimulator(
        _config(),
        lambda layout, channel: make_prefetcher(prefetcher, layout, channel))


@functools.lru_cache(maxsize=None)
def _plain_metrics(prefetcher="planaria"):
    return simulate(_trace(), prefetcher, workload_name="CFM",
                    config=_config()).metrics


@functools.lru_cache(maxsize=None)
def _observed():
    """The reference observed offline run (read-only across tests)."""
    sim = _simulator()
    obs = attach_observability(sim, epoch_records=EPOCH_RECORDS)
    sim.run(_trace())
    return sim, obs


class TestMetricsNeutrality:
    @pytest.mark.parametrize("prefetcher", ["none", "planaria"])
    def test_offline_metrics_identical_with_obs(self, prefetcher):
        sim = _simulator(prefetcher)
        attach_observability(sim, epoch_records=EPOCH_RECORDS)
        sim.run(_trace())
        assert collect_metrics(sim, "CFM", prefetcher) == \
            _plain_metrics(prefetcher)

    def test_parallel_metrics_identical_with_obs(self):
        sim = _simulator()
        attach_observability(sim, epoch_records=EPOCH_RECORDS)
        sim.run(_trace(), parallelism=2)
        assert collect_metrics(sim, "CFM", "planaria") == _plain_metrics()

    def test_streaming_metrics_identical_with_obs(self):
        sim = _simulator()
        attach_observability(sim, epoch_records=EPOCH_RECORDS)
        sim.set_stream_warmup(channel_warmup_counts(_trace(), _config()))
        trace = _trace()
        for start in range(0, len(trace), CHUNK):
            sim.feed(trace[start:start + CHUNK])
        assert collect_metrics(sim, "CFM", "planaria") == _plain_metrics()

    def test_detach_restores_plain_run(self):
        sim = _simulator()
        attach_observability(sim, epoch_records=EPOCH_RECORDS)
        detach_observability(sim)
        sim.run(_trace())
        assert collect_metrics(sim, "CFM", "planaria") == _plain_metrics()
        assert all(channel_sim.obs is None for channel_sim in sim.channels)


class TestExecutionModeEquivalence:
    def test_timeline_collected(self):
        _, obs = _observed()
        timeline = obs.merged_timeline()
        assert len(timeline) >= 2
        assert sum(epoch.records for epoch in timeline) == LENGTH
        # Epoch indices are dense and the merged channel is -1.
        assert [epoch.epoch for epoch in timeline] == \
            list(range(len(timeline)))
        assert all(epoch.channel == -1 for epoch in timeline)

    def test_parallel_timeline_matches_serial(self):
        _, serial_obs = _observed()
        sim = _simulator()
        obs = attach_observability(sim, epoch_records=EPOCH_RECORDS)
        sim.run(_trace(), parallelism=2)
        assert obs.merged_timeline() == serial_obs.merged_timeline()
        assert obs.channel_timelines() == serial_obs.channel_timelines()
        assert obs.events() == serial_obs.events()

    def test_streaming_timeline_matches_offline(self):
        _, offline_obs = _observed()
        sim = _simulator()
        obs = attach_observability(sim, epoch_records=EPOCH_RECORDS)
        sim.set_stream_warmup(channel_warmup_counts(_trace(), _config()))
        trace = _trace()
        for start in range(0, len(trace), CHUNK):
            sim.feed(trace[start:start + CHUNK])
        assert obs.merged_timeline() == offline_obs.merged_timeline()
        assert obs.events() == offline_obs.events()

    def test_partial_epoch_query_is_nondestructive(self):
        """A live poll mid-epoch must not change what a later poll or the
        final dump reports (the service `timeline` op's contract)."""
        _, offline_obs = _observed()
        sim = _simulator()
        obs = attach_observability(sim, epoch_records=EPOCH_RECORDS)
        sim.set_stream_warmup(channel_warmup_counts(_trace(), _config()))
        trace = _trace()
        polls = []
        for start in range(0, len(trace), CHUNK):
            sim.feed(trace[start:start + CHUNK])
            polls.append(obs.merged_timeline(include_partial=True))
            # Polling twice in a row returns the same thing.
            assert obs.merged_timeline(include_partial=True) == polls[-1]
        assert polls[-1] == offline_obs.merged_timeline(include_partial=True)
        assert collect_metrics(sim, "CFM", "planaria") == _plain_metrics()


class TestCheckpointContinuity:
    def test_timeline_survives_state_roundtrip(self):
        _, offline_obs = _observed()
        trace = _trace()
        warmup = channel_warmup_counts(trace, _config())

        source = _simulator()
        attach_observability(source, epoch_records=EPOCH_RECORDS)
        source.set_stream_warmup(warmup)
        source.feed(trace[:LENGTH // 2])
        saved = source.state_dict()
        source.feed(trace[LENGTH // 2:])  # source keeps running: deep copy

        resumed = _simulator()
        obs = attach_observability(resumed, epoch_records=EPOCH_RECORDS)
        resumed.load_state(saved)
        resumed.feed(trace[LENGTH // 2:])
        assert obs.merged_timeline() == offline_obs.merged_timeline()
        assert obs.events() == offline_obs.events()
        assert collect_metrics(resumed, "CFM", "planaria") == _plain_metrics()


class TestTracingNeutrality:
    """Span tracing on vs off: RunMetrics and timelines bit-identical.

    Spans read only the wall clock, so an observed *and traced* run must
    reproduce the reference observed run exactly — for one-shot offline
    runs, chunked streaming feeds, parallel runs, and a checkpoint-resume
    stream.  (Pure recorder semantics live in tests/test_obs_spans.py;
    this class pins the engine-level contract the service relies on.)
    """

    @staticmethod
    def _traced_simulator():
        from repro.obs.trace_spans import SpanRecorder

        sim = _simulator()
        obs = attach_observability(sim, epoch_records=EPOCH_RECORDS)
        sim.spans = SpanRecorder()
        return sim, obs

    def test_offline_traced_matches_untraced(self):
        _, reference_obs = _observed()
        sim, obs = self._traced_simulator()
        sim.run(_trace())
        assert collect_metrics(sim, "CFM", "planaria") == _plain_metrics()
        assert obs.merged_timeline() == reference_obs.merged_timeline()
        assert obs.events() == reference_obs.events()
        assert sim.spans.summary()["engine.run"]["count"] == 1

    def test_streaming_traced_matches_untraced(self):
        _, reference_obs = _observed()
        sim, obs = self._traced_simulator()
        sim.set_stream_warmup(channel_warmup_counts(_trace(), _config()))
        trace = _trace()
        for start in range(0, len(trace), CHUNK):
            sim.feed(trace[start:start + CHUNK])
        assert collect_metrics(sim, "CFM", "planaria") == _plain_metrics()
        assert obs.merged_timeline() == reference_obs.merged_timeline()
        assert obs.events() == reference_obs.events()
        assert sim.spans.summary()["engine.feed"]["count"] == \
            -(-LENGTH // CHUNK)

    def test_parallel_traced_matches_untraced(self):
        _, reference_obs = _observed()
        sim, obs = self._traced_simulator()
        sim.run(_trace(), parallelism=2)
        assert collect_metrics(sim, "CFM", "planaria") == _plain_metrics()
        assert obs.merged_timeline() == reference_obs.merged_timeline()
        assert obs.events() == reference_obs.events()

    def test_checkpoint_resume_traced_writer_untraced_reader(self):
        """A checkpoint written by a traced run loads in an *untraced*
        process and continues bit-identically: the span recorder never
        enters the simulator state."""
        _, reference_obs = _observed()
        trace = _trace()
        warmup = channel_warmup_counts(trace, _config())

        source, _ = self._traced_simulator()
        source.set_stream_warmup(warmup)
        source.feed(trace[:LENGTH // 2])
        saved = source.state_dict()

        resumed = _simulator()
        obs = attach_observability(resumed, epoch_records=EPOCH_RECORDS)
        resumed.load_state(saved)
        assert resumed.spans is None  # tracing did not ride the checkpoint
        resumed.feed(trace[LENGTH // 2:])
        assert collect_metrics(resumed, "CFM", "planaria") == _plain_metrics()
        assert obs.merged_timeline() == reference_obs.merged_timeline()
        assert obs.events() == reference_obs.events()


class TestInternalConsistency:
    def test_epoch_deltas_telescope_to_totals(self):
        sim, obs = _observed()
        timeline = obs.merged_timeline(include_partial=True)
        cache = sim.merged_cache_stats()
        metrics = sim.merged_metrics()
        dram = sim.merged_dram_stats()
        assert sum(e.demand_accesses for e in timeline) == \
            cache.demand_accesses
        assert sum(e.demand_hits for e in timeline) == cache.demand_hits
        assert sum(e.demand_misses for e in timeline) == cache.demand_misses
        assert sum(e.prefetch_fills for e in timeline) == \
            cache.prefetch_fills
        assert sum(e.prefetch_useful for e in timeline) == \
            cache.useful_total()
        assert sum(e.demand_reads for e in timeline) == metrics.demand_reads
        assert sum(e.dram_activates for e in timeline) == dram.activates
        # Welford totals telescope to within float addition error.
        total_latency = sum(e.read_latency_total for e in timeline)
        assert total_latency == pytest.approx(
            metrics.read_latency.mean * metrics.read_latency.count)
        # Attribution tables telescope too.
        useful = {}
        for epoch in timeline:
            for source, count in epoch.useful_by_source.items():
                useful[source] = useful.get(source, 0) + count
        assert useful == {source: count for source, count
                          in cache.prefetch_useful.items() if count}

    def test_slp_tlp_split_present_for_planaria(self):
        _, obs = _observed()
        timeline = obs.merged_timeline(include_partial=True)
        assert sum(e.slp_issued for e in timeline) > 0
        assert sum(e.tlp_issued for e in timeline) > 0
        arbitrations = sum(e.coord_slp_issued + e.coord_tlp_fallback +
                           e.coord_neither for e in timeline)
        assert arbitrations > 0

    def test_events_recorded_with_stable_schema(self):
        from repro.obs.events import EVENT_KINDS

        _, obs = _observed()
        events = obs.events()
        assert events, "a planaria run should emit SLP/TLP events"
        for event in events:
            assert event.kind in EVENT_KINDS
            assert set(event.data) <= set(EVENT_KINDS[event.kind])
        counts = obs.event_counts()
        assert counts.get("slp_snapshot_learned", 0) > 0
