"""TraceBuffer: the columnar trace form and its compatibility layer.

The buffer is the canonical in-memory trace; these tests pin down the
lossless round-trips against the object-record API (``from_records`` /
``to_records``), the CSV/binary I/O equivalence with the legacy record
readers/writers, and the vectorized per-channel split against the
per-record routing the engine used to do.
"""

import numpy as np
import pytest

from repro.errors import TraceFormatError
from repro.geometry import DEFAULT_LAYOUT
from repro.trace import (
    AccessType,
    DeviceID,
    TraceBuffer,
    TraceRecord,
    read_trace,
    read_trace_binary_buffer,
    read_trace_buffer,
    write_trace,
    write_trace_binary_buffer,
    write_trace_buffer,
)
from repro.trace.generator import (
    generate_trace,
    generate_trace_buffer,
    get_profile,
)
from repro.trace.filters import filter_by_channel


@pytest.fixture(scope="module")
def records():
    return generate_trace(get_profile("CFM"), 2_000, seed=3)


@pytest.fixture(scope="module")
def buffer(records):
    return TraceBuffer.from_records(records)


class TestRoundTrips:
    def test_records_to_buffer_to_records_is_lossless(self, records, buffer):
        assert buffer.to_records() == records

    def test_generator_columns_match_generator_records(self, records):
        generated = generate_trace_buffer(get_profile("CFM"), 2_000, seed=3)
        assert generated.to_records() == records

    def test_record_indexing_matches_iteration(self, records, buffer):
        assert len(buffer) == len(records)
        assert buffer[0] == records[0]
        assert buffer[-1] == records[-1]
        assert buffer.record(17) == records[17]

    def test_slice_returns_buffer(self, records, buffer):
        window = buffer[100:200]
        assert isinstance(window, TraceBuffer)
        assert window.to_records() == records[100:200]

    def test_column_lists_are_exact_python_ints(self, records, buffer):
        addresses, types, devices, times = buffer.columns_as_lists()
        assert all(type(value) is int for value in addresses[:10])
        assert addresses == [record.address for record in records]
        assert types == [int(record.access_type) for record in records]
        assert devices == [int(record.device) for record in records]
        assert times == [record.arrival_time for record in records]

    def test_equality_and_nbytes(self, records, buffer):
        assert buffer == TraceBuffer.from_records(records)
        assert buffer != buffer[:-1]
        # 8 + 1 + 1 + 8 bytes per record.
        assert buffer.nbytes == 18 * len(buffer)

    def test_empty_buffer(self):
        empty = TraceBuffer.empty()
        assert len(empty) == 0
        assert empty.to_records() == []


class TestDegenerateLengths:
    """Empty and single-record buffers through every consumer path.

    Regression net for the streaming service, whose arbitrary chunk
    boundaries routinely produce zero- and one-record buffers.
    """

    @pytest.fixture(scope="class", params=[0, 1], ids=["empty", "single"])
    def tiny(self, request):
        return generate_trace_buffer(get_profile("CFM"), request.param,
                                     seed=3)

    def test_split_channels_is_a_full_partition(self, tiny):
        streams = tiny.split_channels(DEFAULT_LAYOUT)
        assert len(streams) == DEFAULT_LAYOUT.num_channels
        assert sum(len(stream) for stream in streams) == len(tiny)

    def test_record_round_trip(self, tiny):
        assert TraceBuffer.from_records(tiny.to_records()) == tiny

    def test_csv_round_trip(self, tmp_path, tiny):
        path = tmp_path / "tiny.csv"
        assert write_trace_buffer(path, tiny) == len(tiny)
        assert read_trace_buffer(path) == tiny

    def test_binary_round_trip(self, tmp_path, tiny):
        path = tmp_path / "tiny.bin"
        assert write_trace_binary_buffer(path, tiny) == len(tiny)
        assert read_trace_binary_buffer(path) == tiny

    def test_run_buffer_and_simulate(self, tiny):
        from repro.sim.runner import simulate

        result = simulate(tiny, "planaria", workload_name="tiny")
        assert result.metrics.demand_accesses == len(tiny)

    def test_feed_degenerate_chunks(self, tiny):
        from repro.config import SimConfig
        from repro.prefetch.registry import make_prefetcher
        from repro.sim.engine import SystemSimulator

        config = SimConfig.experiment_scale()
        simulator = SystemSimulator(
            config,
            lambda layout, channel: make_prefetcher("planaria", layout,
                                                    channel))
        assert simulator.feed(tiny) == len(tiny)
        assert simulator.records_fed() == len(tiny)


class TestValidation:
    def test_column_length_mismatch(self):
        with pytest.raises(TraceFormatError, match="length mismatch"):
            TraceBuffer.from_columns([0, 64], [0], [0], [0, 1])

    def test_negative_arrival_time(self):
        with pytest.raises(TraceFormatError, match="arrival"):
            TraceBuffer.from_columns([0], [0], [0], [-1])

    def test_unknown_access_type_value(self):
        with pytest.raises(TraceFormatError, match="access type"):
            TraceBuffer.from_columns([0], [250], [0], [0])

    def test_unknown_device_value(self):
        with pytest.raises(TraceFormatError, match="device"):
            TraceBuffer.from_columns([0], [0], [251], [0])

    def test_address_overflow(self):
        with pytest.raises(TraceFormatError, match="address"):
            TraceBuffer.from_columns([2 ** 64], [0], [0], [0])


class TestIO:
    def test_csv_writer_matches_legacy_writer(self, tmp_path, records, buffer):
        legacy = tmp_path / "legacy.csv"
        columnar = tmp_path / "columnar.csv"
        assert write_trace(legacy, records) == len(records)
        assert write_trace_buffer(columnar, buffer) == len(records)
        assert columnar.read_bytes() == legacy.read_bytes()

    def test_csv_reader_matches_legacy_reader(self, tmp_path, records, buffer):
        path = tmp_path / "trace.csv"
        write_trace_buffer(path, buffer)
        assert read_trace_buffer(path) == buffer
        assert list(read_trace(path)) == records

    def test_csv_reader_tolerates_comments_and_blanks(self, tmp_path):
        path = tmp_path / "trace.csv"
        path.write_text(
            "# address,access_type,device,arrival_time\n"
            "\n"
            "0x1000,READ,CPU,5\n"
        )
        loaded = read_trace_buffer(path)
        assert loaded.to_records() == [TraceRecord(
            address=0x1000, access_type=AccessType.READ,
            device=DeviceID.CPU, arrival_time=5)]

    def test_csv_reader_reports_path_and_line(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("# header\n0x0,READ\n")
        with pytest.raises(TraceFormatError, match="bad.csv:2"):
            read_trace_buffer(path)

    def test_binary_round_trip(self, tmp_path, buffer):
        path = tmp_path / "trace.bin"
        assert write_trace_binary_buffer(path, buffer) == len(buffer)
        # 8-byte magic + u32 count header, then 18 bytes per record.
        assert path.stat().st_size == 12 + 18 * len(buffer)
        assert read_trace_binary_buffer(path) == buffer


class TestChannelSplit:
    def test_split_matches_per_record_routing(self, records, buffer):
        streams = buffer.split_channels(DEFAULT_LAYOUT)
        assert len(streams) == DEFAULT_LAYOUT.num_channels
        for channel, stream in enumerate(streams):
            expected = list(filter_by_channel(records, channel,
                                              layout=DEFAULT_LAYOUT))
            assert stream.to_records() == expected

    def test_split_is_a_partition(self, buffer):
        streams = buffer.split_channels(DEFAULT_LAYOUT)
        assert sum(len(stream) for stream in streams) == len(buffer)

    def test_channel_indices_match_layout(self, records, buffer):
        channels = buffer.channel_indices(DEFAULT_LAYOUT)
        expected = np.array([DEFAULT_LAYOUT.channel(record.address)
                             for record in records])
        assert np.array_equal(channels, expected)
