"""LPDDR4 channel model: address mapping, bank timing, refresh, power-relevant stats."""

import pytest

from repro.config import DRAMConfig, DRAMTiming
from repro.dram import AddressMapping, Bank, DRAMChannel, MemRequest, RequestKind
from repro.errors import ConfigError


def read_request(block, time):
    return MemRequest(block_addr=block, arrival_time=time,
                      kind=RequestKind.DEMAND_READ)


class TestAddressMapping:
    def test_row_interleaved(self):
        mapping = AddressMapping(DRAMConfig())
        first = mapping.decode(0)
        assert (first.rank, first.bank, first.row, first.column) == (0, 0, 0, 0)
        # 2 KB row / 64 B block = 32 blocks per row.
        assert mapping.blocks_per_row == 32
        same_row = mapping.decode(31)
        assert same_row.row == 0 and same_row.bank == 0 and same_row.column == 31
        next_bank = mapping.decode(32)
        assert next_bank.bank == 1 and next_bank.row == 0
        next_row = mapping.decode(32 * 8)
        assert next_row.bank == 0 and next_row.row == 1

    def test_bad_block_size(self):
        with pytest.raises(ConfigError):
            AddressMapping(DRAMConfig(), block_size=100)


class TestBank:
    def test_row_hit_faster_than_conflict(self):
        timing = DRAMTiming()
        bank = Bank(timing)
        cas1, outcome1, _ = bank.cas_time(row=1, earliest=0, act_allowed_at=0)
        assert outcome1 == "miss"  # first touch activates
        cas2, outcome2, _ = bank.cas_time(row=1, earliest=cas1 + 100,
                                          act_allowed_at=cas1 + 100)
        assert outcome2 == "hit"
        start = cas2 + 200
        cas3, outcome3, _ = bank.cas_time(row=2, earliest=start, act_allowed_at=start)
        assert outcome3 == "conflict"
        assert cas3 - start >= timing.tRP + timing.tRCD

    def test_tras_respected_on_conflict(self):
        timing = DRAMTiming()
        bank = Bank(timing)
        cas1, _, act1 = bank.cas_time(row=1, earliest=0, act_allowed_at=0)
        # Immediately conflict: precharge cannot start before act1 + tRAS.
        cas2, outcome, act2 = bank.cas_time(row=2, earliest=cas1, act_allowed_at=0)
        assert outcome == "conflict"
        assert act2 >= act1 + timing.tRAS + timing.tRP

    def test_block_until_closes_row(self):
        bank = Bank(DRAMTiming())
        bank.cas_time(row=3, earliest=0, act_allowed_at=0)
        bank.block_until(10_000)
        assert bank.open_row is None
        assert bank.ready_time >= 10_000


class TestChannel:
    def test_read_latency_reasonable(self):
        channel = DRAMChannel(DRAMConfig())
        completion = channel.service(read_request(0, 100))
        timing = channel.timing
        minimum = timing.tRCD + timing.tCL + timing.burst_cycles
        assert completion - 100 >= minimum
        assert channel.stats.demand_reads == 1

    def test_row_hit_stream_is_fast(self):
        channel = DRAMChannel(DRAMConfig(refresh_enabled=False))
        latencies = []
        time = 1000
        for block in range(8):
            completion = channel.service(read_request(block, time))
            latencies.append(completion - time)
            time = completion + 50
        # After the first activate everything hits the open row.
        assert channel.stats.row_hits >= 6
        assert max(latencies[1:]) < latencies[0] + 5

    def test_bank_parallelism(self):
        channel = DRAMChannel(DRAMConfig(refresh_enabled=False))
        # Same-bank different-row conflicts are slow...
        same_bank = [0, 32 * 8, 2 * 32 * 8]  # all bank 0, rows 0,1,2
        start = 1000
        conflict_end = max(channel.service(read_request(block, start))
                           for block in same_bank)
        # ...while different banks proceed in parallel.
        channel2 = DRAMChannel(DRAMConfig(refresh_enabled=False))
        spread = [0, 32, 64]  # banks 0,1,2
        parallel_end = max(channel2.service(read_request(block, start))
                           for block in spread)
        assert parallel_end < conflict_end

    def test_refresh_blocks_banks(self):
        config = DRAMConfig()
        channel = DRAMChannel(config)
        before = channel.service(read_request(0, 10))
        # Jump past a refresh interval: the next access pays tRFC pressure.
        after_refresh_time = config.timing.tREFI + 1
        channel.service(read_request(1, after_refresh_time))
        assert channel.stats.refreshes >= 1

    def test_refresh_disabled(self):
        channel = DRAMChannel(DRAMConfig(refresh_enabled=False))
        channel.service(read_request(0, 10 * 3120))
        assert channel.stats.refreshes == 0

    def test_write_then_read_turnaround(self):
        channel = DRAMChannel(DRAMConfig(refresh_enabled=False))
        write = MemRequest(0, 100, RequestKind.DEMAND_WRITE)
        write_end = channel.service(write)
        read_end = channel.service(read_request(1, write_end))
        # tWTR + tWR forces a gap after the write burst.
        assert read_end - write_end > channel.timing.burst_cycles

    def test_prefetch_deferred(self):
        config = DRAMConfig(refresh_enabled=False)
        channel = DRAMChannel(config)
        demand_end = channel.service(read_request(0, 100))
        channel2 = DRAMChannel(config)
        prefetch = MemRequest(0, 100, RequestKind.PREFETCH, source="slp")
        prefetch_end = channel2.service(prefetch)
        assert prefetch_end >= demand_end + config.prefetch_defer

    def test_prefetch_stats_by_source(self):
        channel = DRAMChannel(DRAMConfig())
        channel.service(MemRequest(0, 10, RequestKind.PREFETCH, source="slp"))
        channel.service(MemRequest(1, 500, RequestKind.PREFETCH, source="tlp"))
        channel.service(MemRequest(2, 900, RequestKind.PREFETCH, source="slp"))
        assert channel.stats.prefetch_reads == 3
        assert channel.stats.prefetch_reads_by_source == {"slp": 2, "tlp": 1}

    def test_bus_serialization(self):
        channel = DRAMChannel(DRAMConfig(refresh_enabled=False))
        # Two simultaneous row hits on different banks still share the bus.
        channel.service(read_request(0, 1000))
        channel.service(read_request(32, 1000))
        end1 = channel.service(read_request(1, 1001))
        end2 = channel.service(read_request(33, 1001))
        assert abs(end2 - end1) >= channel.timing.burst_cycles

    def test_finish_sets_elapsed(self):
        channel = DRAMChannel(DRAMConfig())
        end = channel.service(read_request(0, 10))
        channel.finish(end + 100)
        assert channel.stats.elapsed_cycles >= end

    def test_stats_merge(self):
        first = DRAMChannel(DRAMConfig())
        second = DRAMChannel(DRAMConfig())
        first.service(read_request(0, 10))
        second.service(read_request(0, 10))
        first.finish(1000)
        second.finish(2000)
        merged = first.stats
        merged.merge(second.stats)
        assert merged.demand_reads == 2
        assert merged.elapsed_cycles == 2000

    def test_row_hit_rate_property(self):
        channel = DRAMChannel(DRAMConfig(refresh_enabled=False))
        time = 100
        for block in range(16):
            time = channel.service(read_request(block, time)) + 10
        assert 0.0 < channel.stats.row_hit_rate <= 1.0


class TestSchedulerAndRowPolicy:
    def test_closed_page_never_row_hits(self):
        channel = DRAMChannel(DRAMConfig(row_policy="closed",
                                         refresh_enabled=False))
        time = 100
        for block in range(8):  # sequential same-row blocks
            time = channel.service(read_request(block, time)) + 10
        assert channel.stats.row_hits == 0
        assert channel.stats.row_conflicts == 0  # always precharged

    def test_closed_page_slower_on_streams(self):
        def run(policy):
            channel = DRAMChannel(DRAMConfig(row_policy=policy,
                                             refresh_enabled=False))
            time, total = 100, 0
            for block in range(16):
                end = channel.service(read_request(block, time))
                total += end - time
                time = end + 10
            return total

        assert run("closed") > run("open")

    def test_fcfs_no_overtaking(self):
        # Bank 0 is hammered with conflicts; a bank-1 request arriving later
        # must wait under FCFS but proceeds under FR-FCFS-style greedy.
        def run(scheduler):
            channel = DRAMChannel(DRAMConfig(scheduler=scheduler,
                                             refresh_enabled=False))
            channel.service(read_request(0, 100))            # bank 0, row 0
            channel.service(read_request(32 * 8, 101))       # bank 0, row 1
            return channel.service(read_request(32, 102))    # bank 1

        assert run("fcfs") > run("frfcfs")


class TestQueueBackpressure:
    def test_flood_stalls_new_arrivals(self):
        config = DRAMConfig(queue_depth=4, refresh_enabled=False)
        channel = DRAMChannel(config)
        # Submit a burst of same-cycle conflicting requests: with only 4
        # queue slots the later ones must wait for completions.
        for index in range(12):
            channel.service(read_request(index * 32 * 8, 100))
        assert channel.stats_queue_stalls > 0

    def test_deep_queue_avoids_stalls(self):
        config = DRAMConfig(queue_depth=64, refresh_enabled=False)
        channel = DRAMChannel(config)
        for index in range(12):
            channel.service(read_request(index * 32 * 8, 100))
        assert channel.stats_queue_stalls == 0

    def test_spaced_requests_never_stall(self):
        channel = DRAMChannel(DRAMConfig(queue_depth=4, refresh_enabled=False))
        time = 100
        for index in range(20):
            time = channel.service(read_request(index, time)) + 50
        assert channel.stats_queue_stalls == 0
