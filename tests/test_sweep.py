"""Parameter-sweep helpers."""

import pytest

from repro.config import PlanariaConfig
from repro.sim.sweep import (
    coordinator_variants,
    simulate_factory,
    slp_timeout_variants,
    sweep_planaria,
    tlp_distance_variants,
)
from repro.trace.generator import generate_trace, get_profile


class TestVariantBuilders:
    def test_tlp_distance(self):
        variants = tlp_distance_variants((4, 64))
        assert set(variants) == {"distance=4", "distance=64"}
        assert variants["distance=4"].tlp.distance_threshold == 4

    def test_slp_timeout(self):
        variants = slp_timeout_variants((1000,))
        assert variants["timeout=1000"].slp.at_timeout == 1000

    def test_coordinators(self):
        variants = coordinator_variants()
        assert set(variants) == {"decoupled", "serial", "parallel"}
        assert all(isinstance(v, PlanariaConfig) for v in variants.values())


class TestSweep:
    def test_sweep_includes_baseline_and_variants(self):
        results = sweep_planaria("CFM", coordinator_variants(),
                                 length=5_000, seed=3)
        assert set(results) == {"none", "decoupled", "serial", "parallel"}
        assert results["none"].prefetch_fills == 0
        for label in ("decoupled", "serial", "parallel"):
            assert results[label].prefetcher == label

    def test_same_trace_across_variants(self):
        results = sweep_planaria("CFM", tlp_distance_variants((4,)),
                                 length=5_000, seed=3)
        accesses = {m.demand_accesses for m in results.values()}
        assert len(accesses) == 1

    def test_simulate_factory_custom(self):
        from repro.prefetch.simple import NextLinePrefetcher

        records = generate_trace(get_profile("KO"), 4_000, seed=1)
        metrics = simulate_factory(
            records,
            lambda layout, channel: NextLinePrefetcher(layout, channel),
            "my-nextline", workload_name="KO",
        )
        assert metrics.prefetcher == "my-nextline"
        assert metrics.prefetch_fills > 0
