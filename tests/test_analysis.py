"""Trace analyses: overlap rate, learnable neighbours, footprint summaries."""

import dataclasses

import pytest

from repro.analysis import (
    footprint_summary,
    learnable_neighbor_fraction,
    page_footprint_events,
    window_overlap_rate,
)
from repro.analysis.footprint import FootprintEvent, render_ascii, split_bursts
from repro.analysis.neighbors import page_bitmaps
from repro.trace.generator import generate_trace, get_profile
from repro.trace.record import TraceRecord


def record(page, block, time):
    return TraceRecord((page << 12) | (block << 6), arrival_time=time)


class TestOverlap:
    def test_identical_windows_full_overlap(self):
        # Page 1 accessed as {0,1,2} twice: window size 3, overlap 1.0.
        records = [record(1, block, time * 10)
                   for time, block in enumerate([0, 1, 2, 0, 1, 2, 0, 1, 2])]
        result = window_overlap_rate(records, min_accesses=6)
        assert result.mean_overlap == pytest.approx(1.0)
        assert result.num_pages == 1

    def test_disjoint_windows_zero_overlap(self):
        sequence = [0, 1, 2, 3, 4, 5]  # first window {0,1,2}, second {3,4,5}
        records = [record(1, block, time * 10)
                   for time, block in enumerate(sequence + sequence[3:] + sequence[:3])]
        # Build a simpler case: distinct set is 6, so craft 12 accesses.
        records = [record(1, block, time * 10) for time, block in enumerate(
            [0, 1, 2, 3, 4, 5, 0, 1, 2, 3, 4, 5])]
        result = window_overlap_rate(records, min_accesses=6)
        assert result.mean_overlap == pytest.approx(1.0)

    def test_sparse_pages_skipped(self):
        records = [record(1, 0, 0), record(1, 1, 10)]
        result = window_overlap_rate(records, min_accesses=8)
        assert result.num_pages == 0
        assert result.mean_overlap == 0.0

    def test_generator_overlap_in_paper_band(self):
        records = generate_trace(get_profile("CFM"), 40_000, seed=3)
        result = window_overlap_rate(records)
        assert 0.70 <= result.mean_overlap <= 0.95

    def test_all_profiles_in_calibration_band(self):
        # Figure 4's qualitative claim: snapshots are stable across
        # program phases for every application.
        for app in ("HoK", "QSM", "KO"):
            records = generate_trace(get_profile(app), 30_000, seed=4)
            result = window_overlap_rate(records)
            assert result.mean_overlap > 0.65, app


class TestNeighbors:
    def test_page_bitmaps(self):
        records = [record(1, 0, 0), record(1, 5, 10), record(2, 0, 20)]
        bitmaps = page_bitmaps(records, min_blocks=1)
        assert bitmaps[1] == 0b100001
        assert bitmaps[2] == 0b1

    def test_identical_adjacent_pages_are_neighbours(self):
        records = []
        for page in (10, 11):
            for block in (0, 3, 7, 9):
                records.append(record(page, block, len(records) * 5))
        result = learnable_neighbor_fraction(records, (4, 64))
        assert result.fraction_at(4) == pytest.approx(1.0)

    def test_dissimilar_pages_are_not(self):
        records = []
        for block in (0, 3, 7, 9, 12):
            records.append(record(10, block, len(records) * 5))
        for block in (1, 2, 5, 14, 15):
            records.append(record(11, block, len(records) * 5))
        result = learnable_neighbor_fraction(records, (4,))
        assert result.fraction_at(4) == 0.0

    def test_distance_gate(self):
        records = []
        for page in (10, 200):  # identical patterns, far apart
            for block in (0, 3, 7):
                records.append(record(page, block, len(records) * 5))
        result = learnable_neighbor_fraction(records, (4, 64))
        assert result.fraction_at(4) == 0.0
        assert result.fraction_at(64) == 0.0

    def test_fraction_monotone_in_distance(self):
        records = generate_trace(get_profile("Fort"), 30_000, seed=5)
        result = learnable_neighbor_fraction(records, (4, 8, 16, 32, 64))
        fractions = [result.fraction_at(distance) for distance in (4, 8, 16, 32, 64)]
        assert fractions == sorted(fractions)

    def test_unknown_distance_raises(self):
        result = learnable_neighbor_fraction([], (4,))
        with pytest.raises(KeyError):
            result.fraction_at(64)

    def test_empty_thresholds_rejected(self):
        with pytest.raises(ValueError):
            learnable_neighbor_fraction([], ())


class TestFootprint:
    def test_event_extraction(self):
        records = [record(3, 1, 0), record(4, 2, 10), record(3, 5, 20)]
        events = page_footprint_events(records, 3)
        assert [event.block for event in events] == [1, 5]

    def test_split_bursts(self):
        events = [FootprintEvent(0, 1), FootprintEvent(100, 2),
                  FootprintEvent(50_000, 1), FootprintEvent(50_100, 3)]
        bursts = split_bursts(events, gap_threshold=5_000)
        assert len(bursts) == 2
        assert [event.block for event in bursts[0]] == [1, 2]

    def test_summary_quantifies_observations(self):
        events = []
        # Two bursts of the same block set in different orders.
        for start, order in ((0, [1, 5, 9, 12]), (100_000, [12, 1, 9, 5])):
            for index, block in enumerate(order):
                events.append(FootprintEvent(start + index * 10, block))
        summary = footprint_summary(events, gap_threshold=5_000)
        assert summary.num_bursts == 2
        assert summary.distinct_blocks == 4
        assert summary.reuse_over_burst_ratio > 100  # huge gap vs 30-cycle span
        assert summary.order_similarity < 1.0  # observation ③

    def test_empty_summary(self):
        summary = footprint_summary([])
        assert summary.num_accesses == 0
        assert summary.order_similarity == 1.0

    def test_render_ascii(self):
        events = [FootprintEvent(0, 1), FootprintEvent(100, 5)]
        art = render_ascii(events, width=20)
        assert "*" in art and "time" in art
        assert render_ascii([]) == "(no accesses)"
