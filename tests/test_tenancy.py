"""Multi-tenant trace merging: determinism, invertibility, streaming.

The merger's contract is structural, so most of this file is property
tests: the merged order is a pure function of the tenant set (permuting
the input tenants never changes it), per-tenant extraction is
bit-identical to the tenant's pre-merge trace for any phase/intensity
reclocking, and the streaming merger reproduces the offline merge
record-for-record through any chunking — including a checkpoint/resume
in the middle.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError, UnknownDeviceError
from repro.tenancy import (StreamingTraceMerger, TenantSpec,
                           default_way_partitions, extract_tenant,
                           merge_buffers, merge_traces, tenant_trace)
from repro.tenancy.merge import reclock_times
from repro.trace.buffer import TraceBuffer
from repro.trace.record import DeviceID

_APPS = ("CFM", "HoK", "Id-V", "QSM")
_DEVICES = ("CPU", "GPU", "NPU", "ISP", "DSP")


def _concat(chunks):
    return TraceBuffer(
        np.concatenate([c.addresses for c in chunks]),
        np.concatenate([c.access_types for c in chunks]),
        np.concatenate([c.devices for c in chunks]),
        np.concatenate([c.arrival_times for c in chunks]),
    )


@st.composite
def tenant_sets(draw, min_size=2, max_size=4):
    """Distinct-device tenant specs with random reclocking."""
    count = draw(st.integers(min_size, max_size))
    devices = draw(st.permutations(_DEVICES))[:count]
    return [
        TenantSpec(
            app=draw(st.sampled_from(_APPS)),
            device=device,
            length=draw(st.integers(50, 400)),
            seed=draw(st.integers(0, 5)),
            phase_offset=draw(st.integers(0, 2000)),
            intensity=draw(st.sampled_from((0.25, 0.5, 1.0, 2.0, 3.0))),
        )
        for device in devices
    ]


class TestSpec:
    def test_parse_round_trip(self):
        spec = TenantSpec.parse(
            "app=CFM,device=GPU,length=500,seed=3,phase=100,intensity=2.0")
        assert spec == TenantSpec("CFM", "GPU", length=500, seed=3,
                                  phase_offset=100, intensity=2.0)
        assert spec.name == "CFM@GPU"
        assert spec.device_id is DeviceID.GPU

    def test_parse_defaults(self):
        spec = TenantSpec.parse("app=HoK,device=NPU")
        assert spec.length == 60_000
        assert spec.seed == 0
        assert spec.phase_offset == 0
        assert spec.intensity == 1.0

    def test_unknown_device_names_the_valid_members(self):
        with pytest.raises(UnknownDeviceError) as excinfo:
            TenantSpec.parse("app=CFM,device=TPU")
        message = str(excinfo.value)
        assert "TPU" in message
        for member in DeviceID:
            assert member.name in message
        assert isinstance(excinfo.value, ConfigError)
        assert isinstance(excinfo.value, KeyError)

    @pytest.mark.parametrize("text", [
        "app=CFM", "device=GPU", "app=CFM,device=GPU,bogus=1",
        "app=CFM,device=GPU,length=x", "app=CFM,device=GPU,intensity=0",
        "app=CFM,device=GPU,phase=-1", "app=CFM,device=GPU,length=0",
    ])
    def test_bad_specs_rejected(self, text):
        with pytest.raises(ConfigError):
            TenantSpec.parse(text)

    def test_default_way_partitions_are_disjoint_and_cover(self):
        specs = [TenantSpec("CFM", "CPU"), TenantSpec("HoK", "GPU"),
                 TenantSpec("QSM", "NPU")]
        entries = default_way_partitions(specs, 16)
        masks = {entry.split(":")[0]: int(entry.split(":")[1], 0)
                 for entry in entries}
        assert set(masks) == {"CPU", "GPU", "NPU"}
        combined = 0
        for mask in masks.values():
            assert bin(mask).count("1") == 5  # 16 // 3
            assert combined & mask == 0
            combined |= mask
        assert combined < (1 << 16)

    def test_too_many_tenants_for_the_ways(self):
        specs = [TenantSpec("CFM", device) for device in _DEVICES[:3]]
        with pytest.raises(ConfigError, match="tenants need"):
            default_way_partitions(specs, 2)


class TestReclock:
    def test_identity(self):
        times = np.arange(10, dtype=np.int64)
        assert reclock_times(times, 0, 1.0) is times

    @given(phase=st.integers(0, 10_000),
           intensity=st.sampled_from((0.25, 0.5, 1.0, 2.0, 4.0)))
    @settings(max_examples=25, deadline=None)
    def test_monotone_and_offset(self, phase, intensity):
        times = np.sort(np.random.default_rng(0).integers(
            0, 100_000, 200)).astype(np.int64)
        out = reclock_times(times, phase, intensity)
        assert np.all(np.diff(out) >= 0)
        assert int(out.min()) >= phase


class TestMerge:
    @given(specs=tenant_sets())
    @settings(max_examples=15, deadline=None)
    def test_merged_order_is_time_sorted(self, specs):
        merged = merge_traces(specs)
        assert len(merged) == sum(spec.length for spec in specs)
        assert np.all(np.diff(merged.arrival_times) >= 0)

    @given(specs=tenant_sets())
    @settings(max_examples=15, deadline=None)
    def test_extraction_is_bit_identical_to_the_input(self, specs):
        merged = merge_traces(specs)
        for spec in specs:
            assert extract_tenant(merged, spec.device) == tenant_trace(spec)

    @given(specs=tenant_sets(), data=st.data())
    @settings(max_examples=15, deadline=None)
    def test_interleave_is_permutation_stable(self, specs, data):
        shuffled = data.draw(st.permutations(specs))
        assert merge_traces(specs) == merge_traces(shuffled)

    def test_time_ties_break_by_device_value(self):
        cpu = TraceBuffer([0], [0], [0], [10])
        gpu = TraceBuffer([1], [0], [1], [10])
        # Lowest DeviceID wins the tie in either input order.
        assert merge_buffers([cpu, gpu]).devices.tolist() == [0, 1]
        assert merge_buffers([gpu, cpu]).devices.tolist() == [0, 1]

    def test_rejects_single_tenant_and_duplicate_devices(self):
        with pytest.raises(ConfigError, match=">= 2 tenants"):
            merge_traces([TenantSpec("CFM", "CPU")])
        with pytest.raises(ConfigError, match="duplicate"):
            merge_traces([TenantSpec("CFM", "CPU", length=100),
                          TenantSpec("HoK", "CPU", length=100)])

    def test_rejects_empty_tenant_list(self):
        """Both entry points name the count they saw — ``got 0``."""
        with pytest.raises(ConfigError, match="got 0"):
            merge_traces([])
        with pytest.raises(ConfigError, match="got 0"):
            StreamingTraceMerger([])
        with pytest.raises(ConfigError, match="got 1"):
            StreamingTraceMerger([TenantSpec("CFM", "CPU")])

    def test_zero_length_tenant_fails_at_spec_validation(self):
        """A zero-length tenant is a *spec* error: it never reaches the
        merge layer, so neither merge entry point needs a degenerate
        empty-buffer path."""
        with pytest.raises(ConfigError, match="tenant length must be >= 1: 0"):
            TenantSpec("CFM", "CPU", length=0)
        with pytest.raises(ConfigError,
                           match="tenant length must be >= 1: -3"):
            TenantSpec("CFM", "CPU", length=-3)

    def test_minimum_viable_workload_two_single_record_tenants(self):
        """Two length-1 tenants is the smallest legal workload, and the
        streaming merger agrees with the offline merge even there."""
        specs = [TenantSpec("CFM", "CPU", length=1, seed=1),
                 TenantSpec("HoK", "GPU", length=1, seed=2)]
        merged = merge_traces(specs)
        assert len(merged) == 2
        assert sorted(merged.devices.tolist()) == [
            DeviceID.CPU.value, DeviceID.GPU.value]
        merger = StreamingTraceMerger(specs)
        assert len(merger) == 2
        chunks = []
        while not merger.exhausted:
            chunks.append(merger.next_chunk(1))
        assert _concat(chunks) == merged

    def test_extract_unknown_device(self):
        merged = merge_traces([TenantSpec("CFM", "CPU", length=100),
                               TenantSpec("HoK", "GPU", length=100)])
        with pytest.raises(UnknownDeviceError, match="valid devices"):
            extract_tenant(merged, "FPGA")


class TestStreamingMerger:
    @given(specs=tenant_sets(max_size=3), chunk=st.integers(1, 500))
    @settings(max_examples=10, deadline=None)
    def test_any_chunking_reproduces_the_offline_merge(self, specs, chunk):
        merger = StreamingTraceMerger(specs)
        chunks = []
        while not merger.exhausted:
            chunks.append(merger.next_chunk(chunk))
        assert _concat(chunks) == merge_traces(specs)

    def test_checkpoint_resume_is_exact(self):
        specs = [TenantSpec("CFM", "CPU", length=900, seed=1),
                 TenantSpec("HoK", "GPU", length=700, seed=2,
                            phase_offset=50, intensity=2.0)]
        merger = StreamingTraceMerger(specs)
        head = merger.next_chunk(333)
        state = merger.state_dict()

        resumed = StreamingTraceMerger(specs)
        resumed.load_state(state)
        assert resumed.remaining == merger.remaining
        tail_a = merger.next_chunk(10_000)
        tail_b = resumed.next_chunk(10_000)
        assert tail_a == tail_b
        assert _concat([head, tail_a]) == merge_traces(specs)

    def test_load_state_validates_shape(self):
        specs = [TenantSpec("CFM", "CPU", length=100),
                 TenantSpec("HoK", "GPU", length=100)]
        merger = StreamingTraceMerger(specs)
        with pytest.raises(ConfigError, match="tenant cursors"):
            merger.load_state({"cursors": [0]})
        with pytest.raises(ConfigError, match="out of range"):
            merger.load_state({"cursors": [0, 101]})
