"""Wire-level tracing and health: spans over TCP, /healthz over HTTP.

The acceptance properties for the traced serve path:

* a traced client session produces one causal chain per request —
  ``client.<op>`` → ``request.<op>`` → decode/encode and (for feeds)
  ``session.fifo_wait`` / ``session.feed_chunk`` → ``engine.feed`` —
  retrievable via the ``spans`` op and renderable as Perfetto-loadable
  Chrome trace JSON;
* traced sessions stay bit-identical to offline simulation;
* ``/healthz`` answers 200/ok for a healthy manager and flips to
  503/degraded under an injected accuracy collapse;
* malformed client trace context is a protocol error, not a hang-up.
"""

import functools
import json
import socket

import pytest

from repro.config import SimConfig
from repro.errors import ServiceError
from repro.obs.health import STATUS_DEGRADED, STATUS_OK, HealthConfig
from repro.obs.trace_spans import read_chrome_trace, write_chrome_trace
from repro.service.bench import _ServerThread
from repro.service.client import ServiceClient
from repro.service.session import SessionManager
from repro.sim.engine import channel_warmup_counts
from repro.sim.runner import simulate
from repro.trace.generator import generate_trace_buffer, get_profile

LENGTH = 1000
SEED = 9
CHUNK = 250


@functools.lru_cache(maxsize=None)
def _config():
    return SimConfig.experiment_scale()


@functools.lru_cache(maxsize=None)
def _trace():
    return generate_trace_buffer(get_profile("CFM"), LENGTH, seed=SEED,
                                 layout=_config().layout)


@functools.lru_cache(maxsize=None)
def _offline_metrics(prefetcher):
    return simulate(_trace(), prefetcher, workload_name="wire",
                    config=_config()).metrics


def _serve(tmp_path, **manager_kwargs):
    manager = SessionManager(checkpoint_dir=tmp_path / "ckpt",
                             default_config=_config(), **manager_kwargs)
    return manager, _ServerThread(manager, metrics_port=0)


@pytest.fixture
def traced_server(tmp_path):
    manager, running = _serve(tmp_path, tracing=True)
    with running:
        yield running
    manager.shutdown(checkpoint=False)


@pytest.fixture
def traced_client(traced_server):
    with ServiceClient.connect(port=traced_server.port,
                               tracing=True) as connected:
        yield connected


def _run_session(client, name="traced", prefetcher="planaria"):
    trace = _trace()
    client.open(name, prefetcher, workload="wire", epoch_records=128,
                warmup_records=channel_warmup_counts(_trace(), _config()))
    for start in range(0, len(trace), CHUNK):
        client.feed(name, trace[start:start + CHUNK])
    return client.snapshot(name)


class TestSpansOverTheWire:
    def test_traced_session_stays_bit_identical(self, traced_client):
        snapshot = _run_session(traced_client)
        assert snapshot.metrics == _offline_metrics("planaria")

    def test_server_spans_form_causal_chains(self, traced_client):
        _run_session(traced_client)
        spans, summary = traced_client.server_spans()
        by_name = {}
        for span in spans:
            by_name.setdefault(span.name, []).append(span)
        assert {"request.open", "request.feed", "request.snapshot",
                "request.decode", "request.encode", "session.feed_chunk",
                "engine.feed"} <= set(by_name)
        by_id = {span.span_id: span for span in spans}
        client_traces = {span.trace_id
                         for span in traced_client.client_spans()}

        # Every request span joins a trace the client started, and its
        # parent is the client's span (which lives client-side, so the
        # id is not in the server's span set).
        for request in by_name["request.feed"]:
            assert request.trace_id in client_traces
            assert request.parent_id is not None
            assert request.parent_id not in by_id
        # Decode/encode/feed-chunk spans parent to their request span.
        # One unresolved parent is expected: the decode span of the
        # in-flight `spans` request itself — its request span is only
        # recorded after the response that carried this payload.
        unresolved = []
        for name in ("request.decode", "request.encode",
                     "session.feed_chunk"):
            for span in by_name[name]:
                parent = by_id.get(span.parent_id)
                if parent is None:
                    unresolved.append(span)
                    continue
                assert parent.name.startswith("request.")
                assert parent.trace_id == span.trace_id
        assert [span.name for span in unresolved] in \
            ([], ["request.decode"])
        # The engine span nests inside the drainer's feed-chunk span on
        # the same thread (Perfetto nests them by time containment).
        for engine in by_name["engine.feed"]:
            chunks = [c for c in by_name["session.feed_chunk"]
                      if c.tid == engine.tid
                      and c.start_us <= engine.start_us
                      and engine.end_us <= c.end_us]
            assert chunks, "engine.feed outside any session.feed_chunk"
        assert summary["session.feed_chunk"]["count"] == LENGTH // CHUNK

    def test_spans_export_is_perfetto_loadable(self, traced_client,
                                               tmp_path):
        _run_session(traced_client)
        spans, _ = traced_client.server_spans()
        path = write_chrome_trace(tmp_path / "trace.json", spans)
        assert read_chrome_trace(path) == spans
        document = json.loads(path.read_text())
        phases = {event["ph"] for event in document["traceEvents"]}
        assert phases == {"M", "X"}

    def test_clear_drains_ring_but_keeps_summary(self, traced_client):
        _run_session(traced_client)
        _, summary_before = traced_client.server_spans(clear=True)
        spans_after, summary_after = traced_client.server_spans()
        # Only the spans of the post-clear request itself remain.
        assert {span.name for span in spans_after} <= {
            "request.spans", "request.decode", "request.encode"}
        assert summary_after["session.feed_chunk"]["count"] == \
            summary_before["session.feed_chunk"]["count"]

    def test_spans_op_without_tracing_is_an_error(self, tmp_path):
        manager, running = _serve(tmp_path)  # tracing off
        with running:
            with ServiceClient.connect(port=running.port) as client:
                with pytest.raises(ServiceError, match="--trace"):
                    client.server_spans()
                assert client.ping()  # the error did not poison anything
        manager.shutdown(checkpoint=False)

    @pytest.mark.parametrize("context", [
        "bogus", {"trace_id": "abc"}, {"trace_id": 7, "span_id": "ok"}])
    def test_malformed_trace_context_is_a_protocol_error(
            self, traced_server, context):
        # An untraced client, so the forged header survives untouched.
        with ServiceClient.connect(port=traced_server.port) as client:
            with pytest.raises(ServiceError, match="trace"):
                client._request({"op": "ping", "trace": context})
            assert client.ping()  # connection survives

    def test_stats_reports_tracing(self, traced_client):
        stats = traced_client.stats()["stats"]
        assert stats["tracing"] is True
        assert "spans_recorded" in stats


class TestHealthz:
    def test_healthy_manager_answers_ok(self, traced_server, traced_client):
        _run_session(traced_client)
        report = traced_client.health()
        assert report.ok and report.sessions == {"traced": STATUS_OK}

        status, body = _http_get(traced_server.metrics_port, "/healthz")
        assert status == 200
        payload = json.loads(body)
        assert payload["status"] == STATUS_OK
        assert {v["detector"] for v in payload["verdicts"]} == {
            "accuracy_collapse", "throttle_oscillation",
            "backpressure_stall", "session_starvation"}

    def test_injected_accuracy_collapse_flips_healthz(self, tmp_path):
        # Threshold 1.0 with a tiny fill floor: any real planaria run has
        # accuracy < 1.0 over its closed epochs, so the detector trips —
        # a deterministic stand-in for a collapsed prefetcher.
        manager, running = _serve(
            tmp_path, tracing=True,
            health_config=HealthConfig(accuracy_threshold=1.0,
                                       accuracy_min_fills=1))
        with running:
            with ServiceClient.connect(port=running.port) as client:
                _run_session(client)
                report = client.health()
                assert not report.ok
                assert report.sessions == {"traced": STATUS_DEGRADED}
                accuracy = next(v for v in report.verdicts
                                if v.detector == "accuracy_collapse")
                assert not accuracy.ok
                assert "traced" in accuracy.detail

                status, body = _http_get(running.metrics_port, "/healthz")
                assert status == 503
                assert json.loads(body)["status"] == STATUS_DEGRADED

                # Degraded health also lands in /metrics as gauges.
                _, metrics_body = _http_get(running.metrics_port,
                                            "/metrics")
                assert "planaria_health_ok 0" in metrics_body
                assert ('planaria_health_detector_ok'
                        '{detector="accuracy_collapse"} 0'
                        in metrics_body)
        manager.shutdown(checkpoint=False)


def _http_get(port, path):
    with socket.create_connection(("127.0.0.1", port), timeout=10) as sock:
        sock.sendall(f"GET {path} HTTP/1.0\r\n\r\n".encode())
        response = b""
        while chunk := sock.recv(4096):
            response += chunk
    head, _, body = response.partition(b"\r\n\r\n")
    status = int(head.split(None, 2)[1])
    return status, body.decode()
