"""Span tracing contracts: recording, export round trips, neutrality.

The contracts under test:

* **Lossless export** — ``spans_to_chrome`` → JSON → ``chrome_to_spans``
  reproduces the span list exactly (hypothesis, arbitrary spans).
* **Recorder semantics** — same-thread nesting, detached spans, ring
  eviction vs exact counters, aggregate survival across drains, thread
  id interning.
* **Neutrality** — a :class:`SystemSimulator` with a recorder attached
  produces bit-identical ``RunMetrics`` to the plain run (the disabled
  path is the shared :data:`NULL_SPANS` singleton and costs one branch).
"""

import functools
import json
import pickle
import threading

import pytest
from hypothesis import given, settings as hsettings, strategies as st

from repro.config import SimConfig
from repro.obs.trace_spans import (
    CHROME_FORMAT, DEFAULT_SPAN_CAPACITY, NULL_SPANS, RESERVED_ATTR_KEYS,
    SPAN_ENGINE_FEED, SPAN_ENGINE_RUN, SPAN_SCHEMA_VERSION, SpanRecord,
    SpanRecorder, chrome_to_spans, new_id, read_chrome_trace,
    spans_to_chrome, write_chrome_trace)
from repro.prefetch.registry import make_prefetcher
from repro.sim.engine import SystemSimulator, channel_warmup_counts
from repro.sim.runner import collect_metrics, simulate
from repro.trace.generator import generate_trace_buffer, get_profile

LENGTH = 4000
SEED = 17
CHUNK = 700


@functools.lru_cache(maxsize=None)
def _config():
    return SimConfig.experiment_scale()


@functools.lru_cache(maxsize=None)
def _trace():
    return generate_trace_buffer(get_profile("CFM"), LENGTH, seed=SEED,
                                 layout=_config().layout)


def _simulator(prefetcher="planaria"):
    return SystemSimulator(
        _config(),
        lambda layout, channel: make_prefetcher(prefetcher, layout, channel))


@functools.lru_cache(maxsize=None)
def _plain_metrics(prefetcher="planaria"):
    return simulate(_trace(), prefetcher, workload_name="CFM",
                    config=_config()).metrics


# ----------------------------------------------------------------------
# Hypothesis strategies
# ----------------------------------------------------------------------
_ids = st.text(alphabet="0123456789abcdef", min_size=4, max_size=16)
_attr_keys = st.text(
    alphabet=st.characters(min_codepoint=97, max_codepoint=122),
    min_size=1, max_size=8,
).filter(lambda key: key not in RESERVED_ATTR_KEYS)
_attr_values = st.one_of(
    st.integers(min_value=-2**31, max_value=2**31),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
    st.booleans(),
    st.text(max_size=12),
    st.none(),
)
_spans_strategy = st.lists(
    st.builds(
        SpanRecord,
        trace_id=_ids,
        span_id=_ids,
        parent_id=st.one_of(st.none(), _ids),
        name=st.sampled_from(
            ["request.feed", "request.decode", "session.feed_chunk",
             "engine.feed", "client.open"]),
        start_us=st.integers(min_value=0, max_value=2**48),
        duration_us=st.integers(min_value=0, max_value=10**9),
        tid=st.integers(min_value=0, max_value=64),
        attrs=st.dictionaries(_attr_keys, _attr_values, max_size=4),
    ),
    max_size=16,
)


class TestChromeRoundTrip:
    @hsettings(max_examples=60, deadline=None)
    @given(spans=_spans_strategy)
    def test_chrome_json_round_trip_is_lossless(self, spans):
        payload = spans_to_chrome(spans)
        # Through actual JSON text, same as write_chrome_trace does.
        rehydrated = chrome_to_spans(json.loads(json.dumps(payload)))
        assert rehydrated == spans

    @hsettings(max_examples=30, deadline=None)
    @given(spans=_spans_strategy)
    def test_dict_round_trip_is_lossless(self, spans):
        assert [SpanRecord.from_dict(span.to_dict()) for span in spans] \
            == spans

    def test_document_shape(self):
        span = SpanRecord("t" * 16, "s" * 16, None, "request.feed", 10, 5)
        payload = spans_to_chrome([span], process_name="svc", pid=3)
        assert payload["otherData"] == {"format": CHROME_FORMAT,
                                        "version": SPAN_SCHEMA_VERSION}
        meta, event = payload["traceEvents"]
        assert meta["ph"] == "M" and meta["args"]["name"] == "svc"
        assert event["ph"] == "X"
        assert (event["ts"], event["dur"], event["pid"]) == (10, 5, 3)
        assert event["args"]["trace_id"] == "t" * 16
        assert "parent_id" not in event["args"]  # root spans omit it

    def test_rejects_non_trace_documents(self):
        with pytest.raises(ValueError, match="traceEvents"):
            chrome_to_spans({"benchmark": "something else"})

    def test_from_dict_rejects_unknown_fields(self):
        span = SpanRecord("t", "s", None, "x", 0, 0)
        payload = {**span.to_dict(), "color": "red"}
        with pytest.raises(ValueError, match="unknown SpanRecord fields"):
            SpanRecord.from_dict(payload)

    def test_file_round_trip(self, tmp_path):
        spans = [SpanRecord("t1", "s1", None, "request.open", 0, 7,
                            attrs={"session": "a"}),
                 SpanRecord("t1", "s2", "s1", "engine.feed", 2, 3, tid=1)]
        path = write_chrome_trace(tmp_path / "trace.json", spans)
        assert read_chrome_trace(path) == spans


class TestSpanRecorder:
    def test_same_thread_nesting_inherits_trace_and_parent(self):
        recorder = SpanRecorder()
        with recorder.span("outer") as outer:
            with recorder.span("inner") as inner:
                assert inner.trace_id == outer.trace_id
                assert inner.parent_id == outer.span_id
        inner_rec, outer_rec = recorder.spans()
        assert inner_rec.name == "inner"  # inner finishes first
        assert inner_rec.parent_id == outer_rec.span_id
        assert inner_rec.tid == outer_rec.tid

    def test_detached_spans_never_become_implicit_parents(self):
        recorder = SpanRecorder()
        loitering = recorder.begin("request.feed", trace_id=new_id(),
                                   detached=True)
        fresh = recorder.begin("unrelated")
        assert fresh.trace_id != loitering.trace_id
        assert fresh.parent_id is None
        recorder.end(fresh)
        recorder.end(loitering)

    def test_end_merges_attrs_and_strips_reserved_keys(self):
        recorder = SpanRecorder()
        span = recorder.begin("op", records=5, trace_id_attr="fine")
        record = recorder.end(span, ok=True, span_id="stripped")
        assert record.attrs == {"records": 5, "trace_id_attr": "fine",
                                "ok": True}

    def test_record_with_explicit_ids_and_timing(self):
        recorder = SpanRecorder()
        record = recorder.record("session.fifo_wait", start_us=100,
                                 duration_us=40, trace_id="t", parent_id="p",
                                 span_id="s", session="a")
        assert (record.trace_id, record.span_id, record.parent_id) == \
            ("t", "s", "p")
        assert record.start_us == 100 and record.duration_us == 40
        with pytest.raises(ValueError, match="duration_us"):
            recorder.record("x", start_us=0, duration_us=-1)

    def test_ring_evicts_but_counters_and_aggregates_are_exact(self):
        recorder = SpanRecorder(capacity=4)
        for index in range(10):
            recorder.record("op", start_us=index, duration_us=index)
        assert len(recorder) == 4
        assert recorder.started == recorder.finished == 10
        summary = recorder.summary()["op"]
        assert summary["count"] == 10  # aggregates saw every span
        assert summary["max_us"] == 9.0

    def test_clear_drains_ring_but_keeps_lifetime_percentiles(self):
        recorder = SpanRecorder()
        for _ in range(8):
            recorder.record("op", start_us=0, duration_us=120)
        drained = recorder.spans(clear=True)
        assert len(drained) == 8 and len(recorder) == 0
        assert recorder.summary()["op"]["count"] == 8
        assert recorder.percentiles("op")["p50_us"] == 100.0  # bucket floor

    def test_percentiles_for_unknown_name_are_zero(self):
        assert SpanRecorder().percentiles("ghost") == \
            {"p50_us": 0.0, "p95_us": 0.0, "p99_us": 0.0}

    def test_threads_get_distinct_interned_tids(self):
        recorder = SpanRecorder()
        recorder.record("main", start_us=0, duration_us=1)

        def worker():
            recorder.record("worker", start_us=0, duration_us=1)

        thread = threading.Thread(target=worker)
        thread.start()
        thread.join()
        tids = {span.name: span.tid for span in recorder.spans()}
        assert tids["main"] != tids["worker"]
        assert sorted(tids.values()) == [0, 1]  # small ordinals, not idents

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError, match="capacity"):
            SpanRecorder(capacity=0)

    def test_default_capacity(self):
        assert SpanRecorder().capacity == DEFAULT_SPAN_CAPACITY


class TestNullRecorder:
    def test_singleton_survives_pickle(self):
        assert pickle.loads(pickle.dumps(NULL_SPANS)) is NULL_SPANS

    def test_noop_surface(self):
        assert not NULL_SPANS.enabled
        with NULL_SPANS.span("anything", records=3) as span:
            assert span is None
        NULL_SPANS.record("x", start_us=0, duration_us=5)
        assert NULL_SPANS.spans() == []
        assert NULL_SPANS.summary() == {}
        assert len(NULL_SPANS) == 0


class TestEngineTracing:
    def test_offline_run_records_one_engine_run_span(self):
        sim = _simulator()
        sim.spans = SpanRecorder()
        sim.run(_trace())
        summary = sim.spans.summary()
        assert summary[SPAN_ENGINE_RUN]["count"] == 1
        assert SPAN_ENGINE_FEED not in summary

    def test_streaming_records_one_feed_span_per_chunk(self):
        sim = _simulator()
        sim.spans = SpanRecorder()
        sim.set_stream_warmup(channel_warmup_counts(_trace(), _config()))
        trace = _trace()
        chunks = 0
        for start in range(0, len(trace), CHUNK):
            sim.feed(trace[start:start + CHUNK])
            chunks += 1
        summary = sim.spans.summary()
        assert summary[SPAN_ENGINE_FEED]["count"] == chunks
        consumed = [span.attrs.get("records") for span in sim.spans.spans()]
        assert sum(consumed) == LENGTH

    @pytest.mark.parametrize("prefetcher", ["none", "planaria"])
    def test_traced_offline_metrics_bit_identical(self, prefetcher):
        sim = _simulator(prefetcher)
        sim.spans = SpanRecorder()
        sim.run(_trace())
        assert collect_metrics(sim, "CFM", prefetcher) == \
            _plain_metrics(prefetcher)

    def test_traced_streaming_metrics_bit_identical(self):
        sim = _simulator()
        sim.spans = SpanRecorder()
        sim.set_stream_warmup(channel_warmup_counts(_trace(), _config()))
        trace = _trace()
        for start in range(0, len(trace), CHUNK):
            sim.feed(trace[start:start + CHUNK])
        assert collect_metrics(sim, "CFM", "planaria") == _plain_metrics()

    def test_null_spans_attachment_is_inert(self):
        sim = _simulator()
        sim.spans = NULL_SPANS
        sim.run(_trace())
        assert collect_metrics(sim, "CFM", "planaria") == _plain_metrics()
        assert len(NULL_SPANS) == 0
