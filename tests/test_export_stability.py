"""Report export (CSV/SVG) and seed-stability analysis."""

import csv

import pytest

from repro.experiments.export import (
    export_report,
    write_report_csv,
    write_report_svg,
)
from repro.experiments.report import ExperimentReport
from repro.experiments.stability import MetricSummary, seed_stability


def sample_report():
    report = ExperimentReport("figX", "sample", ["app", "hit", "amat"])
    report.add_row(["CFM", 0.5, 120.0])
    report.add_row(["Fort", 0.2, 300.0])
    report.summary["note"] = 1.0
    return report


class TestCSV:
    def test_roundtrip(self, tmp_path):
        path = write_report_csv(sample_report(), tmp_path / "r.csv")
        with open(path) as handle:
            rows = list(csv.reader(handle))
        assert rows[0][0].startswith("# figX")
        header_index = next(i for i, row in enumerate(rows)
                            if row and row[0] == "app")
        assert rows[header_index] == ["app", "hit", "amat"]
        assert rows[header_index + 1][0] == "CFM"
        assert float(rows[header_index + 1][1]) == 0.5


class TestSVG:
    def test_renders_bars_and_legend(self, tmp_path):
        path = write_report_svg(sample_report(), tmp_path / "r.svg")
        text = path.read_text()
        assert text.startswith("<svg")
        assert text.count("<rect") >= 4  # 2 rows x 2 series + legend boxes
        assert "CFM" in text and "Fort" in text
        assert "hit" in text and "amat" in text

    def test_column_subset(self, tmp_path):
        path = write_report_svg(sample_report(), tmp_path / "r.svg",
                                columns=["hit"])
        text = path.read_text()
        assert "amat</text>" not in text

    def test_nothing_to_plot(self, tmp_path):
        report = ExperimentReport("figY", "labels only", ["a", "b"])
        report.add_row(["x", "y"])
        with pytest.raises(ValueError):
            write_report_svg(report, tmp_path / "r.svg")

    def test_negative_values_handled(self, tmp_path):
        report = ExperimentReport("figZ", "signed", ["app", "delta"])
        report.add_row(["A", -0.4])
        report.add_row(["B", 0.6])
        text = write_report_svg(report, tmp_path / "r.svg").read_text()
        assert text.count("<rect") >= 2


class TestExportReport:
    def test_writes_all_formats(self, tmp_path):
        written = export_report(sample_report(), tmp_path / "out")
        names = {path.name for path in written}
        assert names == {"figX.csv", "figX.json", "figX.svg"}

    def test_skips_unplottable_svg(self, tmp_path):
        report = ExperimentReport("figY", "labels", ["a", "b"])
        report.add_row(["x", "y"])
        written = export_report(report, tmp_path)
        assert {path.suffix for path in written} == {".csv", ".json"}

    def test_json_carries_details(self, tmp_path):
        import json

        report = sample_report()
        report.details["device_read_stats"] = {
            "CFM": {"planaria": {"CPU": {"reads": 7, "mean_latency": 51.5}}}
        }
        export_report(report, tmp_path)
        document = json.loads((tmp_path / "figX.json").read_text())
        assert document["experiment_id"] == "figX"
        assert document["columns"] == report.columns
        assert document["rows"] == report.rows
        assert document["details"]["device_read_stats"]["CFM"]["planaria"][
            "CPU"]["reads"] == 7
        # The text table renders the detail block too.
        assert "device_read_stats" in report.format_table()


class TestStability:
    def test_metric_summary_math(self):
        summary = MetricSummary.from_values([1.0, 2.0, 3.0])
        assert summary.mean == pytest.approx(2.0)
        assert summary.minimum == 1.0 and summary.maximum == 3.0
        assert summary.samples == 3
        assert "±" in summary.format()

    def test_seed_stability_shapes(self):
        summaries = seed_stability("CFM", "nextline", seeds=(1, 2),
                                   length=6_000)
        assert set(summaries) == {
            "amat_reduction", "hit_rate_gain", "traffic_overhead",
            "power_overhead", "accuracy", "coverage",
        }
        assert all(s.samples == 2 for s in summaries.values())

    def test_planaria_conclusions_stable(self):
        summaries = seed_stability("CFM", "planaria", seeds=(1, 2, 3),
                                   length=15_000)
        # The headline conclusion must hold for EVERY seed, not on average.
        assert summaries["amat_reduction"].minimum > 0
        assert summaries["hit_rate_gain"].minimum > 0
        assert summaries["accuracy"].minimum > 0.5
