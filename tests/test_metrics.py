"""RunMetrics derived quantities and the AMAT→IPC proxy."""

import pytest
from hypothesis import given, strategies as st

from repro.sim.metrics import MetricSet, RunMetrics, ipc_speedup


def metrics(**overrides):
    defaults = dict(
        workload="X", prefetcher="p", amat=100.0, hit_rate=0.5,
        demand_accesses=1000, demand_misses=500, dram_traffic=800,
        prefetch_issued=300, prefetch_fills=200, prefetch_useful=100,
        prefetch_useful_by_source={"p": 100}, prefetch_unused=50,
        power_mw=50.0, energy_nj=5000.0, storage_bits=1000,
    )
    defaults.update(overrides)
    return RunMetrics(**defaults)


class TestRunMetrics:
    def test_accuracy_uses_fills(self):
        assert metrics().accuracy == pytest.approx(0.5)
        assert metrics(prefetch_fills=0).accuracy == 0.0

    def test_coverage(self):
        # 100 covered out of (100 useful + 500 remaining misses).
        assert metrics().coverage == pytest.approx(100 / 600)
        assert metrics(prefetch_useful=0, demand_misses=0).coverage == 0.0

    def test_amat_reduction(self):
        base = metrics(amat=200.0)
        better = metrics(amat=150.0)
        assert better.amat_reduction_vs(base) == pytest.approx(0.25)
        assert base.amat_reduction_vs(base) == 0.0
        assert metrics(amat=100).amat_reduction_vs(metrics(amat=0)) == 0.0

    def test_traffic_overhead(self):
        base = metrics(dram_traffic=1000)
        heavy = metrics(dram_traffic=1234)
        assert heavy.traffic_overhead_vs(base) == pytest.approx(0.234)
        assert metrics().traffic_overhead_vs(metrics(dram_traffic=0)) == 0.0

    def test_power_overhead(self):
        base = metrics(energy_nj=1000.0)
        frugal = metrics(energy_nj=967.0)
        assert frugal.power_overhead_vs(base) == pytest.approx(-0.033)


class TestMetricSet:
    def test_records_reads_and_writes(self):
        bundle = MetricSet()
        bundle.record(100, is_read=True)
        bundle.record(30, is_read=False)
        assert bundle.demand_reads == 1
        assert bundle.demand_writes == 1
        assert bundle.read_latency.mean == pytest.approx(100.0)
        assert bundle.all_latency.count == 2

    def test_merge(self):
        left, right = MetricSet(), MetricSet()
        left.record(100, True)
        right.record(200, True)
        left.merge(right)
        assert left.demand_reads == 2
        assert left.read_latency.mean == pytest.approx(150.0)

    def test_merge_empty_channel_is_identity(self):
        """A channel that saw no records (all its addresses map elsewhere)
        must not perturb the system aggregate."""
        merged, empty = MetricSet(), MetricSet()
        merged.record(100, True, device="CPU")
        merged.record(40, False)
        before = (merged.demand_reads, merged.demand_writes,
                  merged.read_latency.mean, merged.read_latency.variance,
                  merged.latency_histogram.count)
        merged.merge(empty)
        after = (merged.demand_reads, merged.demand_writes,
                 merged.read_latency.mean, merged.read_latency.variance,
                 merged.latency_histogram.count)
        assert after == before
        # ... and merging *into* an empty set copies the other side exactly.
        empty.merge(merged)
        assert empty.demand_reads == merged.demand_reads
        assert empty.read_latency.mean == merged.read_latency.mean
        assert empty.latency_histogram.count == merged.latency_histogram.count
        assert empty.device_read_latency["CPU"].count == 1

    def test_merge_warmup_only_channel(self):
        """A channel whose whole stream fell inside the warmup window has
        recorded nothing; merging it must be a no-op even though the
        channel did simulate traffic."""
        from repro.config import SimConfig
        from repro.prefetch.registry import make_prefetcher
        from repro.sim.engine import ChannelSimulator
        from repro.trace.record import TraceRecord

        config = SimConfig.experiment_scale()
        channel_sim = ChannelSimulator(
            0, config, make_prefetcher("none", config.layout, 0))
        records = [TraceRecord(address=index * 64, arrival_time=100 * index)
                   for index in range(8)]
        channel_sim.run(records, warmup_records=len(records))
        assert channel_sim.metrics.demand_reads == 0
        merged = MetricSet()
        merged.record(100, True)
        merged.merge(channel_sim.metrics)
        assert merged.demand_reads == 1
        assert merged.read_latency.mean == pytest.approx(100.0)
        assert merged.latency_histogram.count == 1

    def test_merge_includes_histogram(self):
        left, right = MetricSet(), MetricSet()
        left.record(10, True)
        right.record(10, True)
        right.record(500, True)
        left.merge(right)
        assert left.latency_histogram.count == 3
        assert left.latency_histogram.percentile(0.99) == 500 // 25 * 25

    def test_histogram_merge_rejects_mismatched_widths(self):
        from repro.utils.statistics import Histogram

        left, right = Histogram(25.0), Histogram(10.0)
        with pytest.raises(ValueError):
            left.merge(right)


class TestIPCProxy:
    def test_paper_consistency(self):
        # AMAT -24.3% at the paper's implied memory intensity should land
        # near the abstract's +28.9% IPC.
        speedup = ipc_speedup(amat=75.7, baseline_amat=100.0,
                              memory_intensity=0.924)
        assert speedup == pytest.approx(1.289, rel=0.01)

    def test_no_change_no_speedup(self):
        assert ipc_speedup(100.0, 100.0, 0.9) == pytest.approx(1.0)

    def test_zero_intensity_insensitive(self):
        assert ipc_speedup(10.0, 100.0, 0.0) == pytest.approx(1.0)

    def test_degradation_slows(self):
        assert ipc_speedup(150.0, 100.0, 0.9) < 1.0

    def test_bad_intensity_rejected(self):
        with pytest.raises(ValueError):
            ipc_speedup(100.0, 100.0, 1.5)

    def test_zero_baseline_neutral(self):
        assert ipc_speedup(100.0, 0.0, 0.9) == 1.0

    @given(
        amat=st.floats(min_value=1.0, max_value=1e4),
        base=st.floats(min_value=1.0, max_value=1e4),
        intensity=st.floats(min_value=0.0, max_value=1.0),
    )
    def test_speedup_direction_matches_amat(self, amat, base, intensity):
        speedup = ipc_speedup(amat, base, intensity)
        assert speedup > 0
        if amat < base:
            assert speedup >= 1.0
        elif amat > base:
            assert speedup <= 1.0

    @given(
        base=st.floats(min_value=10.0, max_value=1e4),
        intensity=st.floats(min_value=0.1, max_value=1.0),
    )
    def test_monotone_in_amat(self, base, intensity):
        fast = ipc_speedup(base * 0.5, base, intensity)
        slow = ipc_speedup(base * 0.9, base, intensity)
        assert fast >= slow


class TestPerDeviceMetrics:
    def test_records_per_device(self):
        bundle = MetricSet()
        bundle.record(100, True, device="CPU")
        bundle.record(300, True, device="GPU")
        bundle.record(200, True, device="CPU")
        assert bundle.device_read_latency["CPU"].mean == pytest.approx(150.0)
        assert bundle.device_read_latency["GPU"].count == 1

    def test_merge_per_device(self):
        left, right = MetricSet(), MetricSet()
        left.record(100, True, device="CPU")
        right.record(300, True, device="CPU")
        right.record(50, True, device="DSP")
        left.merge(right)
        assert left.device_read_latency["CPU"].count == 2
        assert left.device_read_latency["DSP"].count == 1

    def test_engine_populates_devices(self):
        from repro.sim.runner import simulate
        from repro.trace.generator import generate_trace, get_profile

        records = generate_trace(get_profile("CFM"), 4_000, seed=1)
        result = simulate(records, "none")
        merged = result.simulator.merged_metrics()
        assert "CPU" in merged.device_read_latency
        assert "GPU" in merged.device_read_latency
        total = sum(stats.count
                    for stats in merged.device_read_latency.values())
        assert total == merged.demand_reads
