"""End-to-end service tests: real sockets, real asyncio server.

Each fixture starts a :class:`SimulationServer` on an ephemeral port in a
background event-loop thread and drives it through the public
:class:`ServiceClient`.  The headline property: metrics observed through
open → chunked feed → snapshot → close over TCP are bit-identical to an
offline :func:`repro.sim.runner.simulate` of the same trace.
"""

import functools
import json
import struct

import pytest

from repro.config import SimConfig
from repro.errors import ServiceError
from repro.service import protocol
from repro.service.bench import _ServerThread
from repro.service.client import ServiceClient
from repro.service.session import SessionManager
from repro.sim.engine import channel_warmup_counts
from repro.sim.runner import simulate
from repro.trace.generator import generate_trace_buffer, get_profile

LENGTH = 1000
SEED = 9


@functools.lru_cache(maxsize=None)
def _config():
    return SimConfig.experiment_scale()


@functools.lru_cache(maxsize=None)
def _trace():
    return generate_trace_buffer(get_profile("CFM"), LENGTH, seed=SEED,
                                 layout=_config().layout)


@functools.lru_cache(maxsize=None)
def _offline_metrics(prefetcher):
    return simulate(_trace(), prefetcher, workload_name="wire",
                    config=_config()).metrics


@pytest.fixture
def server(tmp_path):
    manager = SessionManager(checkpoint_dir=tmp_path / "ckpt",
                             default_config=_config())
    with _ServerThread(manager) as running:
        yield running
    manager.shutdown(checkpoint=False)


@pytest.fixture
def client(server):
    with ServiceClient.connect(port=server.port) as connected:
        yield connected


class TestProtocol:
    def test_buffer_survives_the_wire_encoding(self):
        buffer = _trace()
        decoded = protocol.decode_buffer(len(buffer),
                                         protocol.encode_buffer(buffer))
        assert decoded == buffer

    def test_empty_buffer_encodes_to_nothing(self):
        empty = _trace()[:0]
        assert protocol.encode_buffer(empty) == b""
        assert protocol.decode_buffer(0, b"") == empty

    def test_decode_rejects_length_mismatch(self):
        with pytest.raises(ServiceError, match="does not match"):
            protocol.decode_buffer(3, b"\x00" * 17)

    def test_metrics_survive_json_bit_exactly(self):
        metrics = _offline_metrics("planaria")
        hop = protocol.metrics_from_dict(
            json.loads(json.dumps(protocol.metrics_to_dict(metrics))))
        assert hop == metrics

    def test_frame_prefix_bounds(self):
        huge = struct.pack(">II", protocol.MAX_HEADER_BYTES + 1, 0)
        with pytest.raises(ServiceError, match="declared header"):
            protocol.parse_prefix(huge)


class TestEndToEnd:
    def test_ping(self, client):
        assert client.ping() is True

    def test_session_over_tcp_matches_offline_simulate(self, client):
        trace = _trace()
        warmup = channel_warmup_counts(trace, _config())
        client.open("wire", "planaria", workload="wire", config=_config(),
                    warmup_records=warmup)
        sent = client.feed_trace("wire", trace, chunk_records=173)
        assert sent == len(trace)
        snapshot = client.snapshot("wire")
        assert snapshot.records_fed == len(trace)
        assert snapshot.metrics == _offline_metrics("planaria")
        final = client.close_session("wire")
        assert final.metrics == _offline_metrics("planaria")

    def test_checkpoint_resume_over_tcp(self, client):
        trace = _trace()
        warmup = channel_warmup_counts(trace, _config())
        client.open("wire", "stride", workload="wire", config=_config(),
                    warmup_records=warmup)
        client.feed("wire", trace[:400])
        path = client.checkpoint("wire")
        assert path.endswith("wire.ckpt")
        client.close_session("wire", delete_checkpoint=False)
        client.open("wire", "stride", resume=True)
        client.feed("wire", trace[400:])
        assert client.snapshot("wire").metrics == _offline_metrics("stride")

    def test_stats_and_evict(self, client):
        client.open("a", "none", config=_config())
        client.feed("a", _trace()[:100])
        client.snapshot("a")
        stats = client.stats()
        assert stats["sessions"] == ["a"]
        assert stats["stats"]["records_executed"] == 100
        assert client.evict_idle(0.0) == ["a"]
        assert client.stats()["sessions"] == []

    def test_two_clients_share_the_server(self, server):
        trace = _trace()
        with ServiceClient.connect(port=server.port) as one, \
                ServiceClient.connect(port=server.port) as two:
            one.open("x", "none", config=_config())
            two.open("y", "none", config=_config())
            one.feed("x", trace[:200])
            two.feed("y", trace[:300])
            # Either client may inspect any session by name.
            assert two.snapshot("x").records_fed == 200
            assert one.snapshot("y").records_fed == 300


class TestServerErrors:
    def test_unknown_prefetcher_lists_registered_names(self, client):
        with pytest.raises(ServiceError, match="registered:.*planaria"):
            client.open("s", "oracle")

    def test_unknown_session(self, client):
        with pytest.raises(ServiceError, match="ghost"):
            client.snapshot("ghost")

    def test_duplicate_open(self, client):
        client.open("s", "none", config=_config())
        with pytest.raises(ServiceError, match="already open"):
            client.open("s", "none")

    def test_unknown_op(self, client):
        with pytest.raises(ServiceError, match="unknown op"):
            client._request({"op": "mystery"})

    def test_feed_count_payload_mismatch(self, client):
        client.open("s", "none", config=_config())
        with pytest.raises(ServiceError, match="does not match"):
            client._request({"op": "feed", "session": "s", "count": 7},
                            b"\x00" * 18)

    def test_missing_session_field(self, client):
        with pytest.raises(ServiceError, match="missing a session name"):
            client._request({"op": "snapshot"})

    def test_errors_do_not_poison_the_connection(self, client):
        with pytest.raises(ServiceError):
            client.snapshot("ghost")
        assert client.ping() is True  # same connection still serves

    def test_malformed_header_closes_connection(self, server):
        import socket

        with socket.create_connection(("127.0.0.1", server.port)) as sock:
            sock.sendall(struct.pack(">II", 4, 0) + b"!!!!")
            prefix = sock.recv(8)
            header_len, payload_len = struct.unpack(">II", prefix)
            response = json.loads(sock.recv(header_len))
            assert response["ok"] is False
            assert response["kind"] == "protocol"
            assert sock.recv(1) == b""  # server hung up


class TestGracefulShutdown:
    def test_shutdown_op_drains_open_sessions(self, tmp_path):
        manager = SessionManager(checkpoint_dir=tmp_path / "ckpt",
                                 default_config=_config())
        running = _ServerThread(manager).__enter__()
        try:
            with ServiceClient.connect(port=running.port) as client:
                client.open("s", "none", config=_config())
                client.feed("s", _trace()[:200])
                client.shutdown_server()
        finally:
            running.__exit__(None, None, None)
        # Drain checkpointed the still-open session for later resume.
        assert (tmp_path / "ckpt" / "s.ckpt").exists()
        with SessionManager(checkpoint_dir=tmp_path / "ckpt",
                            default_config=_config()) as mgr:
            assert mgr.open("s", "none", resume=True).records_fed == 200
