"""Cross-cutting property-based invariants (hypothesis)."""

from hypothesis import given, settings as hsettings, strategies as st

from repro.cache import SetAssociativeCache
from repro.config import CacheConfig, DRAMConfig
from repro.dram import DRAMChannel, MemRequest, RequestKind
from repro.geometry import DEFAULT_LAYOUT
from repro.prefetch.base import DemandAccess
from repro.prefetch.registry import make_prefetcher
from repro.trace.record import DeviceID

# A stream of (page, offset) pairs within a small page neighbourhood, so
# TLP's distance threshold and SLP's tables all get exercised.
streams = st.lists(
    st.tuples(st.integers(min_value=0x100, max_value=0x180),
              st.integers(min_value=0, max_value=15)),
    min_size=1, max_size=150,
)


def build_access(page, offset, time, channel=0):
    block_addr = (page << 6) | (channel << 4) | offset
    return DemandAccess(
        block_addr=block_addr, page=page, block_in_segment=offset,
        channel_block=page * 16 + offset, time=time, is_read=True,
        device=DeviceID.CPU,
    )


class TestPrefetcherInvariants:
    @given(stream=streams, name=st.sampled_from(
        ["slp", "tlp", "planaria", "sms"]))
    @hsettings(max_examples=25, deadline=None)
    def test_spatial_prefetchers_stay_on_page_and_channel(self, stream, name):
        """SLP/TLP/SMS candidates always target the trigger's page, on the
        prefetcher's own channel — the bitmap designs cannot reach
        elsewhere."""
        channel = 2
        prefetcher = make_prefetcher(name, DEFAULT_LAYOUT, channel)
        time = 0
        for page, offset in stream:
            time += 40
            trigger = build_access(page, offset, time, channel)
            prefetcher.observe(trigger)
            for candidate in prefetcher.issue(trigger, was_hit=False):
                byte_addr = candidate.block_addr << DEFAULT_LAYOUT.block_bits
                assert DEFAULT_LAYOUT.page_number(byte_addr) == page
                assert DEFAULT_LAYOUT.channel(byte_addr) == channel

    @given(stream=streams)
    @hsettings(max_examples=25, deadline=None)
    def test_slp_never_prefetches_accessed_blocks(self, stream):
        """Within one generation, SLP only proposes blocks the page has
        not yet touched."""
        prefetcher = make_prefetcher("slp", DEFAULT_LAYOUT, 0)
        touched = {}
        time = 0
        for page, offset in stream:
            time += 40  # well under the AT timeout: one generation
            trigger = build_access(page, offset, time)
            prefetcher.observe(trigger)
            touched.setdefault(page, set()).add(offset)
            for candidate in prefetcher.issue(trigger, was_hit=False):
                assert (candidate.block_addr & 0xF) not in touched[page]

    @given(stream=streams)
    @hsettings(max_examples=25, deadline=None)
    def test_planaria_sources_are_exclusive_per_trigger(self, stream):
        """The decoupled coordinator lets exactly one sub-prefetcher issue
        per trigger."""
        prefetcher = make_prefetcher("planaria", DEFAULT_LAYOUT, 0)
        time = 0
        for page, offset in stream:
            time += 40
            trigger = build_access(page, offset, time)
            prefetcher.observe(trigger)
            sources = {c.source for c in prefetcher.issue(trigger, was_hit=False)}
            assert len(sources) <= 1

    @given(stream=streams)
    @hsettings(max_examples=15, deadline=None)
    def test_tlp_rpt_capacity_invariant(self, stream):
        prefetcher = make_prefetcher("tlp", DEFAULT_LAYOUT, 0)
        time = 0
        for page, offset in stream:
            time += 40
            prefetcher.observe(build_access(page, offset, time))
            assert prefetcher.rpt_occupancy() <= prefetcher.config.rpt_entries


class TestCacheAgainstReferenceModel:
    @given(st.lists(st.integers(min_value=0, max_value=31),
                    min_size=1, max_size=120))
    @hsettings(max_examples=40, deadline=None)
    def test_lru_matches_reference(self, blocks):
        """The set-associative LRU cache agrees with a per-set reference
        model built from plain ordered lists."""
        sets, ways = 4, 2
        cache = SetAssociativeCache(CacheConfig(
            size_bytes=sets * ways * 64, associativity=ways))
        reference = {index: [] for index in range(sets)}  # MRU at the end
        now = 0
        for block in blocks:
            now += 1
            set_index = block % sets
            resident = reference[set_index]
            hit = cache.access(block, now).hit
            assert hit == (block in resident)
            if hit:
                resident.remove(block)
                resident.append(block)
            else:
                cache.fill(block, now, ready_time=now)
                if len(resident) == ways:
                    resident.pop(0)
                resident.append(block)
        for set_index, resident in reference.items():
            for block in resident:
                assert cache.contains(block)


class TestDRAMInvariants:
    request_lists = st.lists(
        st.tuples(st.integers(min_value=0, max_value=2047),
                  st.integers(min_value=1, max_value=200),
                  st.sampled_from(list(RequestKind))),
        min_size=1, max_size=60,
    )

    @given(requests=request_lists)
    @hsettings(max_examples=30, deadline=None)
    def test_completion_after_arrival(self, requests):
        channel = DRAMChannel(DRAMConfig())
        timing = channel.timing
        time = 0
        for block, gap, kind in requests:
            time += gap
            completion = channel.service(MemRequest(block, time, kind,
                                                    source="x"))
            assert completion > time
            # Nothing completes faster than CAS latency + burst.
            floor = min(timing.tCL, timing.tCWL) + timing.burst_cycles
            assert completion - time >= floor

    @given(requests=request_lists)
    @hsettings(max_examples=20, deadline=None)
    def test_stats_account_every_request(self, requests):
        channel = DRAMChannel(DRAMConfig())
        time = 0
        for block, gap, kind in requests:
            time += gap
            channel.service(MemRequest(block, time, kind, source="x"))
        stats = channel.stats
        assert stats.total_requests == len(requests)
        outcomes = stats.row_hits + stats.row_misses + stats.row_conflicts
        assert outcomes == len(requests)
