"""Replacement policies: LRU, FIFO, Random, SRRIP, DRRIP."""

import pytest

from repro.cache import SetAssociativeCache, make_policy, REPLACEMENT_POLICIES
from repro.cache.block import CacheBlock
from repro.cache.replacement.drrip import DRRIPPolicy
from repro.cache.replacement.srrip import SRRIPPolicy
from repro.config import CacheConfig
from repro.errors import ConfigError


def cache_with(policy, sets=1, ways=4):
    return SetAssociativeCache(CacheConfig(
        size_bytes=sets * ways * 64, associativity=ways,
        replacement_policy=policy,
    ))


class TestFactory:
    def test_all_policies_constructible(self):
        for name in REPLACEMENT_POLICIES:
            policy = make_policy(name, associativity=4, num_sets=8)
            assert policy.associativity == 4

    def test_unknown_policy(self):
        with pytest.raises(ConfigError, match="unknown replacement policy"):
            make_policy("belady", 4, 8)

    def test_bad_geometry(self):
        with pytest.raises(ValueError):
            make_policy("lru", 0, 8)


class TestLRU:
    def test_evicts_least_recent(self):
        cache = cache_with("lru")
        for block in range(4):
            cache.fill(block * 1, now=block, ready_time=block)
        cache.access(0, now=10)  # refresh block 0
        eviction = cache.fill(100, now=11, ready_time=11)
        assert eviction.tag == 1

    def test_prefers_invalid_ways(self):
        cache = cache_with("lru")
        cache.fill(0, now=0, ready_time=0)
        assert cache.fill(1, now=1, ready_time=1) is None


class TestFIFO:
    def test_ignores_hits(self):
        cache = cache_with("fifo")
        for block in range(4):
            cache.fill(block, now=block, ready_time=block)
        cache.access(0, now=10)  # does NOT protect block 0 under FIFO
        eviction = cache.fill(100, now=11, ready_time=11)
        assert eviction.tag == 0


class TestRandom:
    def test_deterministic_with_seed(self):
        def run():
            cache = cache_with("random")
            evictions = []
            for block in range(20):
                eviction = cache.fill(block, now=block, ready_time=block)
                if eviction:
                    evictions.append(eviction.tag)
            return evictions

        assert run() == run()

    def test_evicts_valid_block(self):
        cache = cache_with("random")
        for block in range(4):
            cache.fill(block, now=block, ready_time=block)
        eviction = cache.fill(50, now=50, ready_time=50)
        assert eviction is not None and 0 <= eviction.tag < 4


class TestSRRIP:
    def test_prefetch_inserted_as_preferred_victim(self):
        cache = cache_with("srrip", ways=2)
        cache.fill(0, now=0, ready_time=0, prefetched=True, source="x")
        cache.fill(1, now=1, ready_time=1)
        eviction = cache.fill(2, now=2, ready_time=2)
        assert eviction.tag == 0  # untouched prefetch leaves first

    def test_hit_promotes(self):
        policy = SRRIPPolicy(2, 1)
        ways = [CacheBlock(), CacheBlock()]
        ways[0].tag, ways[1].tag = 10, 11
        policy.on_fill(0, ways, 0, prefetched=False)
        policy.on_fill(0, ways, 1, prefetched=False)
        policy.on_hit(0, ways, 0)
        assert ways[0].rrpv == 0
        # Victim search ages everyone until an rrpv hits max; way 1 wins.
        assert policy.victim(0, ways) == 1

    def test_aging_terminates(self):
        policy = SRRIPPolicy(4, 1)
        ways = [CacheBlock() for _ in range(4)]
        for index, block in enumerate(ways):
            block.tag = index
            policy.on_fill(0, ways, index, prefetched=False)
            policy.on_hit(0, ways, index)
        assert policy.victim(0, ways) in range(4)


class TestDRRIP:
    def test_leader_sets_disjoint(self):
        policy = DRRIPPolicy(16, 1024)
        assert not (policy._srrip_leaders & policy._brrip_leaders)
        assert policy._srrip_leaders and policy._brrip_leaders

    def test_psel_moves_on_leader_misses(self):
        policy = DRRIPPolicy(16, 1024)
        start = policy._psel
        leader = next(iter(policy._srrip_leaders))
        policy.record_miss(leader)
        assert policy._psel == start + 1
        brrip_leader = next(iter(policy._brrip_leaders))
        policy.record_miss(brrip_leader)
        policy.record_miss(brrip_leader)
        assert policy._psel == start - 1

    def test_follower_uses_winning_policy(self):
        policy = DRRIPPolicy(16, 1024)
        follower = next(
            index for index in range(1024)
            if index not in policy._srrip_leaders
            and index not in policy._brrip_leaders
        )
        # Hammer the SRRIP leaders with misses -> PSEL rises -> BRRIP wins.
        leader = next(iter(policy._srrip_leaders))
        for _ in range(600):
            policy.record_miss(leader)
        assert not policy._use_srrip(follower)

    def test_runs_in_cache(self):
        cache = cache_with("drrip", sets=64, ways=4)
        now = 0
        for block in range(512):
            now += 1
            if not cache.contains(block):
                cache.fill(block, now=now, ready_time=now)
        assert cache.occupancy() <= 256
