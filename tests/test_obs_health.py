"""Health detectors and the engine: pure state machines, then the wiring.

Each detector is a deterministic streaming state machine with no clock
of its own, so hypothesis can drive it with arbitrary observation
sequences and the expected verdict is recomputable from the same window
the detector keeps.  The engine tests then check the wiring: a healthy
live :class:`SessionManager` reports ``ok``, an injected accuracy
collapse flips the report to ``degraded`` with the offending session
named, and state for dead sessions is pruned.
"""

import functools
from types import SimpleNamespace

import pytest
from hypothesis import given, settings as hsettings, strategies as st

from repro.config import SimConfig
from repro.obs.health import (
    DETECTOR_ACCURACY, DETECTOR_BACKPRESSURE, DETECTOR_STARVATION,
    DETECTOR_THROTTLE, STATUS_DEGRADED, STATUS_OK, AccuracyCollapseDetector,
    BackpressureStallDetector, DetectorVerdict, HealthConfig, HealthEngine,
    HealthReport, SessionStarvationDetector, ThrottleOscillationDetector)
from repro.obs.trace_spans import SPAN_FIFO_WAIT, SpanRecorder
from repro.service.session import SessionManager
from repro.trace.generator import generate_trace_buffer, get_profile
from repro.utils.statistics import Histogram

LENGTH = 1200
SEED = 5


@functools.lru_cache(maxsize=None)
def _config():
    return SimConfig.experiment_scale()


@functools.lru_cache(maxsize=None)
def _trace():
    return generate_trace_buffer(get_profile("CFM"), LENGTH, seed=SEED,
                                 layout=_config().layout)


# ----------------------------------------------------------------------
# Detector state machines (hypothesis)
# ----------------------------------------------------------------------
_epochs = st.lists(
    st.tuples(st.integers(min_value=0, max_value=500),
              st.integers(min_value=0, max_value=500)).map(
        lambda pair: (min(pair), max(pair))),  # useful <= fills
    max_size=30)


class TestAccuracyCollapseDetector:
    @hsettings(max_examples=80, deadline=None)
    @given(epochs=_epochs,
           window=st.integers(min_value=1, max_value=6),
           min_fills=st.integers(min_value=0, max_value=200),
           threshold=st.floats(min_value=0.0, max_value=1.0))
    def test_verdict_matches_recomputed_window(self, epochs, window,
                                               min_fills, threshold):
        detector = AccuracyCollapseDetector(
            window_epochs=window, min_fills=min_fills, threshold=threshold)
        for useful, fills in epochs:
            detector.observe_epoch(useful, fills)
        verdict = detector.verdict()

        tail = epochs[-window:]
        useful = sum(entry[0] for entry in tail)
        fills = sum(entry[1] for entry in tail)
        ratio = useful / fills if fills else 1.0
        assert verdict.value == ratio
        assert verdict.ok == (fills < min_fills or ratio >= threshold)
        assert verdict.detector == DETECTOR_ACCURACY
        assert detector.epochs_seen == len(epochs)

    def test_empty_window_is_ok(self):
        verdict = AccuracyCollapseDetector().verdict()
        assert verdict.ok and verdict.value == 1.0

    def test_collapse_flips_and_recovery_clears(self):
        detector = AccuracyCollapseDetector(window_epochs=2, min_fills=10,
                                            threshold=0.2)
        detector.observe_epoch(0, 100)
        assert not detector.verdict().ok
        detector.observe_epoch(90, 100)  # window: 90/200 = 0.45
        assert detector.verdict().ok

    def test_validation(self):
        with pytest.raises(ValueError, match="window_epochs"):
            AccuracyCollapseDetector(window_epochs=0)
        with pytest.raises(ValueError, match="threshold"):
            AccuracyCollapseDetector(threshold=1.5)


class TestThrottleOscillationDetector:
    @hsettings(max_examples=80, deadline=None)
    @given(flaps=st.lists(st.integers(min_value=0, max_value=20),
                          max_size=30),
           window=st.integers(min_value=1, max_value=6),
           max_flaps=st.integers(min_value=0, max_value=30))
    def test_verdict_is_windowed_sum(self, flaps, window, max_flaps):
        detector = ThrottleOscillationDetector(window=window,
                                               max_flaps=max_flaps)
        for count in flaps:
            detector.observe(count)
        verdict = detector.verdict()
        total = sum(flaps[-window:])
        assert verdict.value == float(total)
        assert verdict.ok == (total <= max_flaps)
        assert verdict.detector == DETECTOR_THROTTLE

    def test_old_flaps_age_out(self):
        detector = ThrottleOscillationDetector(window=2, max_flaps=4)
        detector.observe(10)
        assert not detector.verdict().ok
        detector.observe(0)
        detector.observe(0)
        assert detector.verdict().ok

    def test_validation(self):
        with pytest.raises(ValueError, match="window"):
            ThrottleOscillationDetector(window=0)
        with pytest.raises(ValueError, match="flaps"):
            ThrottleOscillationDetector().observe(-1)


class TestBackpressureStallDetector:
    @hsettings(max_examples=80, deadline=None)
    @given(waits=st.lists(st.floats(min_value=0, max_value=5e6),
                          max_size=30),
           fraction=st.floats(min_value=0.5, max_value=1.0),
           max_wait=st.floats(min_value=1e3, max_value=5e6),
           min_waits=st.integers(min_value=0, max_value=10))
    def test_verdict_matches_reference_histogram(self, waits, fraction,
                                                 max_wait, min_waits):
        detector = BackpressureStallDetector(
            fraction=fraction, max_wait_us=max_wait, min_waits=min_waits)
        reference = Histogram(1000.0)
        for wait in waits:
            detector.observe_wait(wait)
            reference.add(wait)
        verdict = detector.verdict()
        if len(waits) < min_waits:
            assert verdict.ok and verdict.value == 0.0
        else:
            tail = reference.percentile(fraction)
            assert verdict.value == tail
            assert verdict.ok == (tail <= max_wait)
        assert verdict.detector == DETECTOR_BACKPRESSURE

    def test_external_histogram_overrides_internal(self):
        detector = BackpressureStallDetector(max_wait_us=100.0, min_waits=1)
        external = Histogram(1000.0)
        for _ in range(5):
            external.add(4_000_000.0)
        assert detector.verdict().ok  # internal: no waits at all
        assert not detector.verdict(histogram=external).ok

    def test_validation(self):
        with pytest.raises(ValueError, match="fraction"):
            BackpressureStallDetector(fraction=2.0)
        with pytest.raises(ValueError, match="wait_us"):
            BackpressureStallDetector().observe_wait(-1.0)


class TestSessionStarvationDetector:
    @hsettings(max_examples=60, deadline=None)
    @given(inflight=st.integers(min_value=0, max_value=8),
           stalled=st.floats(min_value=0.0, max_value=120.0),
           budget=st.floats(min_value=1.0, max_value=60.0))
    def test_degraded_only_with_queued_work_and_no_progress(
            self, inflight, stalled, budget):
        detector = SessionStarvationDetector(max_stall_seconds=budget)
        detector.observe(inflight, stalled)
        verdict = detector.verdict()
        assert verdict.ok == (not (inflight > 0 and stalled > budget))
        assert verdict.detector == DETECTOR_STARVATION

    def test_idle_session_never_starves(self):
        detector = SessionStarvationDetector(max_stall_seconds=1.0)
        detector.observe(0, 10_000.0)
        assert detector.verdict().ok

    def test_validation(self):
        with pytest.raises(ValueError, match="max_stall_seconds"):
            SessionStarvationDetector(max_stall_seconds=0)
        with pytest.raises(ValueError, match="inflight"):
            SessionStarvationDetector().observe(-1, 0.0)


class TestSerialization:
    def test_verdict_round_trip(self):
        verdict = DetectorVerdict(DETECTOR_ACCURACY, False, 0.05, 0.2,
                                  "useful/fills 5/100 over 4 epochs")
        assert DetectorVerdict.from_dict(verdict.to_dict()) == verdict

    def test_report_round_trip(self):
        report = HealthReport(
            status=STATUS_DEGRADED,
            verdicts=[DetectorVerdict(DETECTOR_THROTTLE, False, 9.0, 4.0)],
            sessions={"a": STATUS_OK, "b": STATUS_DEGRADED})
        rehydrated = HealthReport.from_dict(report.to_dict())
        assert rehydrated == report
        assert not rehydrated.ok


# ----------------------------------------------------------------------
# Engine wiring
# ----------------------------------------------------------------------
class _FakeLock:
    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        return False


class _FakeObs:
    """Just enough of SystemObservability for the engine's read pass."""

    def __init__(self, epochs=(), counts=None):
        self.epochs = list(epochs)
        self.counts = dict(counts or {})

    def merged_timeline(self, include_partial=True):
        assert not include_partial, \
            "the engine must only consume closed epochs"
        return list(self.epochs)

    def event_counts(self):
        return dict(self.counts)


def _fake_session(name, epochs=(), counts=None, inflight=0,
                  last_progress=0.0):
    return SimpleNamespace(name=name, obs=_FakeObs(epochs, counts),
                           cond=_FakeLock(), inflight=inflight,
                           last_progress=last_progress)


def _fake_manager(*sessions):
    return SimpleNamespace(live_sessions=lambda: list(sessions))


def _epoch(useful, fills):
    return SimpleNamespace(prefetch_useful=useful, prefetch_fills=fills)


class TestHealthEngine:
    def test_healthy_fake_session_reports_ok(self):
        engine = HealthEngine(clock=lambda: 0.0)
        report = engine.evaluate(_fake_manager(
            _fake_session("a", epochs=[_epoch(90, 100)] * 4)))
        assert report.status == STATUS_OK and report.ok
        assert report.sessions == {"a": STATUS_OK}
        assert [v.detector for v in report.verdicts] == [
            DETECTOR_ACCURACY, DETECTOR_THROTTLE, DETECTOR_BACKPRESSURE,
            DETECTOR_STARVATION]
        assert engine.last_report is report and engine.evaluations == 1

    def test_injected_accuracy_collapse_flips_to_degraded(self):
        engine = HealthEngine(clock=lambda: 0.0)
        report = engine.evaluate(_fake_manager(
            _fake_session("good", epochs=[_epoch(90, 100)] * 4),
            _fake_session("bad", epochs=[_epoch(0, 200)] * 4)))
        assert report.status == STATUS_DEGRADED
        assert report.sessions == {"good": STATUS_OK,
                                   "bad": STATUS_DEGRADED}
        accuracy = next(v for v in report.verdicts
                        if v.detector == DETECTOR_ACCURACY)
        assert not accuracy.ok
        assert "session 'bad'" in accuracy.detail  # worst verdict names it

    def test_epoch_cursor_consumes_each_epoch_once(self):
        engine = HealthEngine(
            HealthConfig(accuracy_window_epochs=100, accuracy_min_fills=1),
            clock=lambda: 0.0)
        session = _fake_session("a", epochs=[_epoch(50, 100)])
        manager = _fake_manager(session)
        engine.evaluate(manager)
        session.obs.epochs.append(_epoch(0, 100))
        report = engine.evaluate(manager)
        accuracy = next(v for v in report.verdicts
                        if v.detector == DETECTOR_ACCURACY)
        # 50/200, not 100/300: the first epoch was not re-observed.
        assert accuracy.value == pytest.approx(0.25)

    def test_throttle_flap_delta_not_cumulative_count(self):
        config = HealthConfig(throttle_window=2, throttle_max_flaps=4)
        engine = HealthEngine(config, clock=lambda: 0.0)
        session = _fake_session("a", counts={"throttle_suspended": 3,
                                             "throttle_resumed": 3})
        manager = _fake_manager(session)
        report = engine.evaluate(manager)  # first delta: 6 flaps
        throttle = next(v for v in report.verdicts
                        if v.detector == DETECTOR_THROTTLE)
        assert not throttle.ok
        report = engine.evaluate(manager)  # counters unchanged: delta 0
        report = engine.evaluate(manager)  # window of 2 forgets the burst
        throttle = next(v for v in report.verdicts
                        if v.detector == DETECTOR_THROTTLE)
        assert throttle.ok and throttle.value == 0.0

    def test_starvation_uses_injected_clock(self):
        now = [0.0]
        engine = HealthEngine(
            HealthConfig(starvation_max_stall_seconds=30.0),
            clock=lambda: now[0])
        session = _fake_session("a", inflight=2, last_progress=0.0)
        manager = _fake_manager(session)
        assert engine.evaluate(manager).status == STATUS_OK
        now[0] = 31.0
        report = engine.evaluate(manager)
        assert report.status == STATUS_DEGRADED
        starvation = next(v for v in report.verdicts
                          if v.detector == DETECTOR_STARVATION)
        assert starvation.value == pytest.approx(31.0)

    def test_backpressure_judged_from_span_histogram(self):
        engine = HealthEngine(
            HealthConfig(backpressure_max_wait_us=1_000.0,
                         backpressure_min_waits=2),
            clock=lambda: 0.0)
        spans = SpanRecorder()
        for _ in range(4):
            spans.record(SPAN_FIFO_WAIT, start_us=0, duration_us=50_000)
        report = engine.evaluate(_fake_manager(), spans=spans)
        backpressure = next(v for v in report.verdicts
                            if v.detector == DETECTOR_BACKPRESSURE)
        assert not backpressure.ok
        assert report.status == STATUS_DEGRADED

    def test_dead_session_state_is_pruned(self):
        engine = HealthEngine(clock=lambda: 0.0)
        engine.evaluate(_fake_manager(_fake_session("a"),
                                      _fake_session("b")))
        assert set(engine._sessions) == {"a", "b"}
        engine.evaluate(_fake_manager(_fake_session("b")))
        assert set(engine._sessions) == {"b"}


class TestLiveManagerIntegration:
    def test_busy_manager_reports_ok_and_never_quiesces(self, tmp_path):
        trace = _trace()
        with SessionManager(checkpoint_dir=tmp_path / "ckpt",
                            default_config=_config(),
                            tracing=True) as manager:
            manager.open("s", "planaria", epoch_records=128)
            for start in range(0, len(trace), 300):
                manager.feed("s", trace[start:start + 300])
                report = manager.health_report()  # mid-stream, no quiesce
                assert report.status == STATUS_OK
            manager.snapshot("s")
            report = manager.health_report()
            assert report.ok and report.sessions == {"s": STATUS_OK}
            assert {v.detector for v in report.verdicts} == {
                DETECTOR_ACCURACY, DETECTOR_THROTTLE,
                DETECTOR_BACKPRESSURE, DETECTOR_STARVATION}
            assert manager.snapshot("s").records_fed == LENGTH

    def test_manager_health_state_follows_session_lifecycle(self, tmp_path):
        with SessionManager(checkpoint_dir=tmp_path / "ckpt",
                            default_config=_config()) as manager:
            manager.open("s", "none")
            manager.health_report()
            assert set(manager.health._sessions) == {"s"}
            manager.close("s")
            manager.health_report()
            assert set(manager.health._sessions) == set()
