"""GHB delta-correlation and multi-stream streamer baselines."""

import pytest

from repro.geometry import DEFAULT_LAYOUT
from repro.prefetch import GHBPrefetcher, StreamPrefetcher
from repro.prefetch.base import DemandAccess
from repro.trace.record import DeviceID


def access(channel_block, time):
    page, offset = divmod(channel_block, 16)
    return DemandAccess(
        block_addr=(page << 6) | offset, page=page, block_in_segment=offset,
        channel_block=channel_block, time=time, is_read=True,
        device=DeviceID.CPU,
    )


class TestGHB:
    def test_replays_recurring_delta_sequence(self):
        ghb = GHBPrefetcher(DEFAULT_LAYOUT, 0, degree=3)
        sequence = [100, 102, 105, 109, 110]   # deltas 2,3,4,1
        time = 0
        # First pass trains the delta pairs...
        for block in sequence:
            time += 30
            ghb.issue(access(block, time), was_hit=False)
        # ...second pass: after re-seeing (2,3) the follower deltas replay.
        predictions = []
        for block in [200, 202, 205]:
            time += 30
            predictions = ghb.issue(access(block, time), was_hit=False)
        targets = [candidate.block_addr & 0x3FF for candidate in predictions]
        # Block addresses are channel-local composes; verify deltas 4,1.
        assert len(predictions) >= 2

    def test_quiet_without_history(self):
        ghb = GHBPrefetcher(DEFAULT_LAYOUT, 0)
        assert ghb.issue(access(10, 0), was_hit=False) == []
        assert ghb.issue(access(12, 30), was_hit=False) == []

    def test_quiet_on_hits(self):
        ghb = GHBPrefetcher(DEFAULT_LAYOUT, 0)
        assert ghb.issue(access(10, 0), was_hit=True) == []

    def test_large_deltas_ignored(self):
        ghb = GHBPrefetcher(DEFAULT_LAYOUT, 0, max_delta=8)
        time = 0
        for block in (10, 5000, 10_000, 15_000):
            time += 30
            assert ghb.issue(access(block, time), was_hit=False) == []
        assert ghb._last_delta is None  # deltas too large to track

    def test_history_wraps(self):
        ghb = GHBPrefetcher(DEFAULT_LAYOUT, 0, ghb_entries=8)
        time = 0
        for block in range(0, 100, 3):
            time += 30
            ghb.issue(access(block, time), was_hit=False)
        assert len(ghb._history) == 8

    def test_index_pruned(self):
        ghb = GHBPrefetcher(DEFAULT_LAYOUT, 0, ghb_entries=8)
        time = 0
        import random
        rng = random.Random(0)
        block = 1000
        for _ in range(500):
            time += 30
            block += rng.randint(1, 30)
            ghb.issue(access(block, time), was_hit=False)
        assert len(ghb._index) <= 4 * ghb.ghb_entries + 1

    def test_construction_validation(self):
        with pytest.raises(ValueError):
            GHBPrefetcher(DEFAULT_LAYOUT, 0, ghb_entries=2)
        with pytest.raises(ValueError):
            GHBPrefetcher(DEFAULT_LAYOUT, 0, degree=0)
        with pytest.raises(ValueError):
            GHBPrefetcher(DEFAULT_LAYOUT, 0, max_delta=0)

    def test_storage_positive(self):
        assert GHBPrefetcher(DEFAULT_LAYOUT, 0).storage_bits() > 0


class TestStreamer:
    def feed(self, streamer, blocks, start=0):
        time = start
        out = []
        for block in blocks:
            time += 30
            out = streamer.issue(access(block, time), was_hit=False)
        return out

    def test_confirms_ascending_stream(self):
        streamer = StreamPrefetcher(DEFAULT_LAYOUT, 0, confirm_threshold=2,
                                    degree=4, distance=16)
        candidates = self.feed(streamer, [100, 101, 102])
        assert streamer.streams_confirmed == 1
        assert len(candidates) == 4
        # Prefetches run ahead of the stream head.
        targets = sorted(c.block_addr & 0xF for c in candidates)
        assert candidates

    def test_descending_stream(self):
        streamer = StreamPrefetcher(DEFAULT_LAYOUT, 0, confirm_threshold=2)
        candidates = self.feed(streamer, [200, 199, 198])
        assert candidates  # direction -1 confirmed

    def test_direction_flip_resets_confidence(self):
        streamer = StreamPrefetcher(DEFAULT_LAYOUT, 0, confirm_threshold=3)
        self.feed(streamer, [100, 101, 100, 101])
        assert streamer.streams_confirmed == 0

    def test_random_region_accesses_never_confirm(self):
        streamer = StreamPrefetcher(DEFAULT_LAYOUT, 0)
        import random
        rng = random.Random(1)
        blocks = [rng.randrange(10_000) for _ in range(100)]
        self.feed(streamer, blocks)
        # Random far-apart blocks land in distinct regions: no streams.
        assert streamer.streams_confirmed <= 2

    def test_tracker_capacity(self):
        streamer = StreamPrefetcher(DEFAULT_LAYOUT, 0, trackers=4)
        self.feed(streamer, [region * 64 for region in range(20)])
        assert len(streamer._table) <= 4

    def test_distance_cap(self):
        streamer = StreamPrefetcher(DEFAULT_LAYOUT, 0, confirm_threshold=1,
                                    degree=4, distance=4)
        self.feed(streamer, [100, 101])
        # Keep hammering the same block: the head cannot run past the
        # distance limit, so issuing dries up.
        for _ in range(6):
            candidates = self.feed(streamer, [101])
        assert candidates == []

    def test_construction_validation(self):
        with pytest.raises(ValueError):
            StreamPrefetcher(DEFAULT_LAYOUT, 0, trackers=0)
        with pytest.raises(ValueError):
            StreamPrefetcher(DEFAULT_LAYOUT, 0, degree=8, distance=4)

    def test_registry(self):
        from repro.prefetch import make_prefetcher

        assert make_prefetcher("ghb", DEFAULT_LAYOUT, 0).name == "ghb"
        assert make_prefetcher("streamer", DEFAULT_LAYOUT, 0).name == "streamer"


class TestAtSystemLevel:
    def test_ghb_weak_at_sc(self):
        """The paper's related-work claim: pure delta-history prefetching
        cannot find regular sequences at the SC."""
        from repro.sim.runner import compare_prefetchers

        results = compare_prefetchers("CFM", ("none", "ghb", "planaria"),
                                      length=20_000, seed=7)
        base = results["none"]
        assert results["ghb"].coverage < 0.1
        assert results["planaria"].coverage > results["ghb"].coverage + 0.1

    def test_streamer_covers_but_floods(self):
        from repro.sim.runner import compare_prefetchers

        results = compare_prefetchers("QSM", ("none", "streamer", "planaria"),
                                      length=20_000, seed=7)
        base = results["none"]
        streamer = results["streamer"]
        assert streamer.coverage > 0.15  # sequential apps: real coverage
        assert (streamer.traffic_overhead_vs(base)
                > 3 * results["planaria"].traffic_overhead_vs(base))
