"""SessionManager behaviour: pipelining, backpressure, eviction, resume.

Uses small traces and the in-process manager directly (no sockets); the
TCP layer on top is covered by tests/test_service_server.py.
"""

import functools
import threading

import pytest

from repro.config import SimConfig
from repro.errors import (ServiceError, SessionExistsError,
                          SessionNotFoundError)
from repro.service.session import SessionManager
from repro.sim.engine import channel_warmup_counts
from repro.sim.runner import simulate
from repro.trace.generator import generate_trace_buffer, get_profile

LENGTH = 1200
SEED = 5


@functools.lru_cache(maxsize=None)
def _config():
    return SimConfig.experiment_scale()


@functools.lru_cache(maxsize=None)
def _trace():
    return generate_trace_buffer(get_profile("CFM"), LENGTH, seed=SEED,
                                 layout=_config().layout)


@functools.lru_cache(maxsize=None)
def _offline_metrics(prefetcher):
    return simulate(_trace(), prefetcher, workload_name="stream",
                    config=_config()).metrics


def _warmup():
    return channel_warmup_counts(_trace(), _config())


@pytest.fixture
def manager(tmp_path):
    with SessionManager(checkpoint_dir=tmp_path / "ckpt",
                        default_config=_config()) as mgr:
        yield mgr


class TestLifecycle:
    def test_chunked_session_matches_offline_simulate(self, manager):
        trace = _trace()
        manager.open("s", "planaria", warmup_records=_warmup())
        for start in range(0, len(trace), 200):
            manager.feed("s", trace[start:start + 200])
        snapshot = manager.snapshot("s")
        assert snapshot.records_fed == len(trace)
        assert snapshot.chunks_fed == 6
        assert snapshot.metrics == _offline_metrics("planaria")
        final = manager.close("s")
        assert final.metrics == _offline_metrics("planaria")
        assert manager.session_names() == []

    def test_duplicate_open_rejected(self, manager):
        manager.open("s", "none")
        with pytest.raises(SessionExistsError, match="already open"):
            manager.open("s", "none")

    def test_unknown_session_is_a_keyerror(self, manager):
        with pytest.raises(SessionNotFoundError) as excinfo:
            manager.feed("ghost", _trace()[:10])
        assert isinstance(excinfo.value, KeyError)
        assert "ghost" in str(excinfo.value)

    @pytest.mark.parametrize("name", ["", "a/b", "a\x00b"])
    def test_invalid_session_names_rejected(self, manager, name):
        with pytest.raises(ServiceError, match="invalid session name"):
            manager.open(name, "none")

    def test_feed_futures_report_cumulative_records(self, manager):
        manager.open("s", "none")
        first = manager.feed("s", _trace()[:100])
        second = manager.feed("s", _trace()[100:250])
        assert first.result(timeout=30) in (100, 250)  # pipelined: >= 100
        assert second.result(timeout=30) == 250

    def test_concurrent_sessions_are_independent(self, manager):
        trace = _trace()
        for name, prefetcher in (("a", "none"), ("b", "stride")):
            manager.open(name, prefetcher, warmup_records=_warmup())
        for start in range(0, len(trace), 300):  # interleave the two streams
            manager.feed("a", trace[start:start + 300])
            manager.feed("b", trace[start:start + 300])
        assert manager.snapshot("a").metrics == _offline_metrics("none")
        assert manager.snapshot("b").metrics == _offline_metrics("stride")


class TestBackpressure:
    def test_feed_blocks_and_counts_at_the_inflight_bound(self, tmp_path):
        release = threading.Event()
        with SessionManager(max_inflight_chunks=2, workers=1,
                            default_config=_config()) as mgr:
            mgr.open("s", "none")
            # Occupy the single worker so queued chunks cannot drain.
            blocker = mgr._pool.submit(release.wait)
            futures = [mgr.feed("s", _trace()[:50]) for _ in range(2)]
            with pytest.raises(ServiceError, match="timed out under "
                                                   "backpressure"):
                mgr.feed("s", _trace()[:50], timeout=0.05)
            assert mgr.backpressure_waits == 1
            release.set()
            blocker.result(timeout=30)
            for future in futures:
                future.result(timeout=30)
            assert mgr.snapshot("s").records_fed == 100

    def test_rejects_nonpositive_inflight_bound(self):
        with pytest.raises(ServiceError, match="max_inflight_chunks"):
            SessionManager(max_inflight_chunks=0)


class TestFailureIsolation:
    def test_chunk_error_surfaces_on_future_and_later_calls(self, manager):
        manager.open("s", "none")
        manager.feed("s", _trace()[:50]).result(timeout=30)

        def explode(*args, **kwargs):
            raise RuntimeError("injected fault")

        manager._sessions["s"].simulator.feed = explode
        failed = manager.feed("s", _trace()[50:100])
        with pytest.raises(RuntimeError, match="injected fault"):
            failed.result(timeout=30)
        # A caller that never awaited the future still sees the fault.
        with pytest.raises(ServiceError, match="injected fault"):
            manager.snapshot("s")
        with pytest.raises(ServiceError, match="injected fault"):
            manager.feed("s", _trace()[:10])

    def test_error_in_one_session_leaves_others_healthy(self, manager):
        manager.open("bad", "none")
        manager.open("good", "none")
        manager._sessions["bad"].simulator.feed = lambda *a, **k: 1 / 0
        manager.feed("bad", _trace()[:10])
        manager.feed("good", _trace()[:100]).result(timeout=30)
        assert manager.snapshot("good").records_fed == 100


class TestEvictionAndResume:
    def test_evict_then_transparent_restore(self, manager):
        trace = _trace()
        manager.open("s", "planaria", warmup_records=_warmup())
        manager.feed("s", trace[:600]).result(timeout=60)
        assert manager.evict_idle(0.0) == ["s"]
        assert manager.session_names() == []
        # The next feed restores the session from its checkpoint.
        manager.feed("s", trace[600:])
        snapshot = manager.snapshot("s")
        assert snapshot.metrics == _offline_metrics("planaria")
        assert manager.sessions_resumed == 1

    def test_evict_skips_busy_and_fresh_sessions(self, manager):
        manager.open("s", "none")
        manager.feed("s", _trace()[:50]).result(timeout=30)
        assert manager.evict_idle(3600.0) == []  # too fresh
        assert manager.session_names() == ["s"]

    def test_eviction_disabled_without_checkpoint_dir(self):
        with SessionManager(default_config=_config()) as mgr:
            mgr.open("s", "none")
            assert mgr.evict_idle(0.0) == []

    def test_explicit_resume_after_restart(self, tmp_path):
        trace = _trace()
        ckpt = tmp_path / "ckpt"
        with SessionManager(checkpoint_dir=ckpt,
                            default_config=_config()) as mgr:
            mgr.open("s", "stride", warmup_records=_warmup())
            mgr.feed("s", trace[:500]).result(timeout=30)
            mgr.checkpoint("s")
        # "Crash": a brand-new manager process resumes from disk.
        with SessionManager(checkpoint_dir=ckpt,
                            default_config=_config()) as mgr:
            snapshot = mgr.open("s", "stride", resume=True)
            assert snapshot.records_fed == 500
            mgr.feed("s", trace[500:])
            assert mgr.snapshot("s").metrics == _offline_metrics("stride")

    def test_resume_rejects_prefetcher_mismatch(self, manager):
        from repro.errors import CheckpointMismatchError

        manager.open("s", "stride")
        manager.feed("s", _trace()[:50]).result(timeout=30)
        manager.checkpoint("s")
        manager.close("s", delete_checkpoint=False)
        with pytest.raises(CheckpointMismatchError,
                           match="refusing to load_state"):
            manager.open("s", "bop", resume=True)

    def test_close_deletes_checkpoint_by_default(self, manager):
        manager.open("s", "none")
        manager.feed("s", _trace()[:50]).result(timeout=30)
        path = manager.checkpoint("s")
        assert path.exists()
        manager.close("s")
        assert not path.exists()
        with pytest.raises(SessionNotFoundError):
            manager.snapshot("s")

    def test_close_can_keep_final_checkpoint(self, manager):
        manager.open("s", "none")
        manager.feed("s", _trace()[:50]).result(timeout=30)
        manager.close("s", delete_checkpoint=False)
        snapshot = manager.open("s", "none", resume=True)
        assert snapshot.records_fed == 50

    def test_auto_checkpoint_interval(self, tmp_path):
        with SessionManager(checkpoint_dir=tmp_path / "ckpt",
                            checkpoint_interval=2,
                            default_config=_config()) as mgr:
            mgr.open("s", "none")
            for start in range(0, 200, 50):
                mgr.feed("s", _trace()[start:start + 50])
            mgr.snapshot("s")  # quiesce
            path = mgr._checkpoint_path("s")
            assert path.exists()
            assert mgr.open  # manager still healthy

    def test_stats_counters(self, manager):
        manager.open("s", "none")
        manager.feed("s", _trace()[:100]).result(timeout=30)
        stats = manager.stats()
        assert stats["live_sessions"] == 1
        assert stats["sessions_opened"] == 1
        assert stats["chunks_executed"] == 1
        assert stats["records_executed"] == 100
