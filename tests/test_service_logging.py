"""Structured service logging: JSON lines, extras, rate limiting.

All clocks are injected, so the rate-limit windows are driven
deterministically; ``configure_service_logging`` is exercised against an
in-memory stream and restored afterwards so no global logging state
leaks into other tests.
"""

import io
import json
import logging

import pytest

from repro.service.logging import (
    SERVICE_LOGGER_NAME, JsonLogFormatter, RateLimitFilter,
    configure_service_logging, record_extras)


def _record(msg="hello", args=(), level=logging.INFO, name="repro.service",
            extra=None, exc_info=None):
    record = logging.LogRecord(name, level, __file__, 1, msg, args, exc_info)
    for key, value in (extra or {}).items():
        setattr(record, key, value)
    return record


class TestJsonLogFormatter:
    def test_base_fields_and_extras(self):
        formatter = JsonLogFormatter(clock=lambda: 1234.5)
        line = formatter.format(_record(
            "fed %d records", (42,),
            extra={"trace_id": "abc123", "session": "s"}))
        payload = json.loads(line)
        assert payload == {"ts": 1234.5, "level": "INFO",
                           "logger": "repro.service",
                           "msg": "fed 42 records",
                           "trace_id": "abc123", "session": "s"}

    def test_extras_cannot_shadow_reserved_keys(self):
        # "msg" itself is a standard LogRecord attr (logging refuses it in
        # extra=); "ts" and "level" are the shadowable reserved keys.
        formatter = JsonLogFormatter(clock=lambda: 5.0)
        payload = json.loads(formatter.format(_record(
            "real", extra={"ts": 999.0, "level": "FORGED"})))
        assert payload["ts"] == 5.0
        assert payload["level"] == "INFO"

    def test_non_json_safe_extra_never_throws(self):
        formatter = JsonLogFormatter(clock=lambda: 0.0)
        payload = json.loads(formatter.format(_record(
            "x", extra={"obj": object()})))
        assert payload["obj"].startswith("<object object")

    def test_exception_info_is_rendered(self):
        formatter = JsonLogFormatter(clock=lambda: 0.0)
        try:
            raise RuntimeError("boom")
        except RuntimeError:
            import sys
            line = formatter.format(_record("failed", exc_info=sys.exc_info()))
        payload = json.loads(line)
        assert "RuntimeError: boom" in payload["exc"]

    def test_record_extras_excludes_plumbing(self):
        extras = record_extras(_record("x", extra={"only": 1}))
        assert extras == {"only": 1}


class TestRateLimitFilter:
    def test_caps_repeats_within_one_window(self):
        now = [0.0]
        limiter = RateLimitFilter(limit=3, interval=60.0,
                                  clock=lambda: now[0])
        passed = [limiter.filter(_record("same template")) for _ in range(10)]
        assert passed == [True] * 3 + [False] * 7

    def test_window_rollover_reports_suppressed_count(self):
        now = [0.0]
        limiter = RateLimitFilter(limit=1, interval=60.0,
                                  clock=lambda: now[0])
        assert limiter.filter(_record("t"))
        for _ in range(5):
            assert not limiter.filter(_record("t"))
        now[0] = 61.0
        survivor = _record("t")
        assert limiter.filter(survivor)
        assert survivor.suppressed == 5
        # The count was consumed; the next window starts clean.
        now[0] = 122.0
        clean = _record("t")
        assert limiter.filter(clean)
        assert not hasattr(clean, "suppressed")

    def test_key_is_the_unformatted_template(self):
        limiter = RateLimitFilter(limit=1, interval=60.0, clock=lambda: 0.0)
        assert limiter.filter(_record("fed %d", (1,)))
        # Same template, different args: still the same site.
        assert not limiter.filter(_record("fed %d", (2,)))
        # A different site is unaffected.
        assert limiter.filter(_record("opened %s", ("a",)))

    def test_distinct_levels_are_distinct_sites(self):
        limiter = RateLimitFilter(limit=1, interval=60.0, clock=lambda: 0.0)
        assert limiter.filter(_record("t", level=logging.INFO))
        assert limiter.filter(_record("t", level=logging.WARNING))

    def test_validation(self):
        with pytest.raises(ValueError, match="limit"):
            RateLimitFilter(limit=0)
        with pytest.raises(ValueError, match="interval"):
            RateLimitFilter(interval=0.0)


@pytest.fixture
def restore_service_logger():
    logger = logging.getLogger(SERVICE_LOGGER_NAME)
    saved = (list(logger.handlers), logger.level, logger.propagate)
    yield logger
    logger.handlers[:] = saved[0]
    logger.setLevel(saved[1])
    logger.propagate = saved[2]


class TestConfigureServiceLogging:
    def test_emits_json_lines_to_the_stream(self, restore_service_logger):
        stream = io.StringIO()
        logger = configure_service_logging(stream=stream,
                                           clock=lambda: 7.0)
        logger.info("session opened", extra={"session": "s",
                                             "trace_id": "t1"})
        payload = json.loads(stream.getvalue().strip())
        assert payload["msg"] == "session opened"
        assert payload["trace_id"] == "t1"
        assert payload["ts"] == 7.0
        assert not logger.propagate

    def test_reconfigure_replaces_the_handler(self, restore_service_logger):
        first = io.StringIO()
        second = io.StringIO()
        configure_service_logging(stream=first)
        logger = configure_service_logging(stream=second)
        assert len(logger.handlers) == 1
        logger.warning("only once")
        assert first.getvalue() == ""
        assert "only once" in second.getvalue()

    def test_rate_limit_applies_through_the_handler(
            self, restore_service_logger):
        stream = io.StringIO()
        logger = configure_service_logging(stream=stream, rate_limit=2,
                                           rate_interval=3600.0)
        for _ in range(6):
            logger.info("noisy site")
        lines = stream.getvalue().strip().splitlines()
        assert len(lines) == 2

    def test_plain_format_mode(self, restore_service_logger):
        stream = io.StringIO()
        logger = configure_service_logging(stream=stream, json_lines=False)
        logger.info("plain line")
        text = stream.getvalue()
        assert "plain line" in text
        with pytest.raises(json.JSONDecodeError):
            json.loads(text.strip())
