"""Channel interleaver (the paper's segment -> channel static mapping)."""

from repro.cache.interleave import ChannelInterleaver
from repro.trace.generator import generate_trace, get_profile
from repro.trace.record import TraceRecord


class TestInterleaver:
    def test_channel_of_matches_layout(self):
        interleaver = ChannelInterleaver()
        record = TraceRecord(20 * 64)  # block 20 -> channel 1
        assert interleaver.channel_of(record) == 1

    def test_split_preserves_order_and_coverage(self):
        interleaver = ChannelInterleaver()
        records = generate_trace(get_profile("CFM"), 4_000, seed=5)
        streams = interleaver.split(records)
        assert sum(len(stream) for stream in streams) == len(records)
        for channel, stream in enumerate(streams):
            times = [record.arrival_time for record in stream]
            assert times == sorted(times)
            assert all(interleaver.channel_of(record) == channel
                       for record in stream)

    def test_balance_sums_to_total(self):
        interleaver = ChannelInterleaver()
        records = generate_trace(get_profile("HoK"), 4_000, seed=5)
        counts = interleaver.balance(records)
        assert sum(counts) == len(records)
        assert min(counts) > 0
