"""Prometheus exposition audit: strict line grammar over the live text.

A scraper is an unforgiving parser, so this suite is one too: every line
of a live :meth:`SessionManager.metrics_text` must be a well-formed
``# HELP``, ``# TYPE`` or sample line, every metric must carry both
headers (HELP first) exactly once, names and labels must match the
Prometheus charsets, and every value must parse as a float.  The
renderer itself must *refuse* to emit anything that would violate the
grammar (missing help text, bad names, unknown kinds) — a bug caught at
export time, not on the scrape path.
"""

import functools
import math
import re

import pytest

from repro.config import SimConfig
from repro.obs.export import (METRIC_HELP, epoch_samples, health_samples,
                              prometheus_text, snapshot_samples,
                              span_samples)
from repro.obs.health import DetectorVerdict, HealthReport
from repro.service.session import SessionManager
from repro.trace.generator import generate_trace_buffer, get_profile

LENGTH = 1200
SEED = 5

_METRIC_NAME = r"[a-zA-Z_:][a-zA-Z0-9_:]*"
_LABEL_NAME = r"[a-zA-Z_][a-zA-Z0-9_]*"
_HELP_RE = re.compile(rf"^# HELP ({_METRIC_NAME}) (.+)$")
_TYPE_RE = re.compile(rf"^# TYPE ({_METRIC_NAME}) (counter|gauge)$")
_SAMPLE_RE = re.compile(
    rf"^({_METRIC_NAME})(?:\{{(.*)\}})? (\S+)$")
_LABEL_PAIR_RE = re.compile(rf'^({_LABEL_NAME})="((?:[^"\\]|\\.)*)"$')


def _parse_exposition(text):
    """Parse with scraper-strict rules; returns per-metric structure.

    Raises AssertionError on any grammar violation: unknown line shape,
    TYPE without preceding HELP, samples before headers, duplicate
    headers, sample names not matching the open metric family.
    """
    assert text.endswith("\n"), "exposition must end with a newline"
    metrics = {}
    current = None
    pending_help = None
    for line in text.splitlines():
        assert line == line.strip(), f"stray whitespace: {line!r}"
        help_match = _HELP_RE.match(line)
        type_match = _TYPE_RE.match(line)
        sample_match = _SAMPLE_RE.match(line)
        if help_match:
            name = help_match.group(1)
            assert name not in metrics, f"duplicate # HELP for {name}"
            pending_help = (name, help_match.group(2))
        elif type_match:
            name, kind = type_match.groups()
            assert pending_help is not None and pending_help[0] == name, \
                f"# TYPE {name} without an immediately preceding # HELP"
            metrics[name] = {"help": pending_help[1], "kind": kind,
                             "samples": []}
            current = name
            pending_help = None
        elif sample_match:
            name, label_body, value = sample_match.groups()
            assert current == name, \
                f"sample for {name} outside its header block"
            labels = {}
            if label_body:
                for pair in re.split(r'",(?=[a-zA-Z_])', label_body):
                    if not pair.endswith('"'):
                        pair += '"'
                    pair_match = _LABEL_PAIR_RE.match(pair)
                    assert pair_match, f"malformed label pair {pair!r}"
                    labels[pair_match.group(1)] = pair_match.group(2)
            parsed = float(value)
            assert math.isfinite(parsed), f"non-finite sample {line!r}"
            metrics[name]["samples"].append((labels, parsed))
        else:
            raise AssertionError(f"unparseable exposition line: {line!r}")
    assert pending_help is None, \
        f"# HELP {pending_help[0]} with no # TYPE"
    return metrics


@functools.lru_cache(maxsize=None)
def _config():
    return SimConfig.experiment_scale()


@functools.lru_cache(maxsize=None)
def _trace():
    return generate_trace_buffer(get_profile("CFM"), LENGTH, seed=SEED,
                                 layout=_config().layout)


class TestLiveExposition:
    def test_full_manager_output_passes_strict_grammar(self, tmp_path):
        trace = _trace()
        with SessionManager(checkpoint_dir=tmp_path / "ckpt",
                            default_config=_config(),
                            tracing=True) as manager:
            manager.open("grammar-check", "planaria", epoch_records=256)
            for start in range(0, len(trace), 300):
                manager.feed("grammar-check", trace[start:start + 300])
            manager.snapshot("grammar-check")
            metrics = _parse_exposition(manager.metrics_text())

        for name, family in metrics.items():
            assert name.startswith("planaria_")
            assert METRIC_HELP[name[len("planaria_"):]], name
        # The serve-path families are all present: session counters,
        # epoch gauges, health gauges, span latency gauges.
        assert metrics["planaria_records_fed"]["kind"] == "counter"
        assert metrics["planaria_records_fed"]["samples"] == [
            ({"session": "grammar-check"}, float(LENGTH))]
        assert metrics["planaria_epoch_index"]["kind"] == "gauge"
        assert metrics["planaria_health_ok"]["samples"] == [({}, 1.0)]
        detectors = {labels["detector"] for labels, _ in
                     metrics["planaria_health_detector_ok"]["samples"]}
        assert detectors == {"accuracy_collapse", "throttle_oscillation",
                             "backpressure_stall", "session_starvation"}
        span_names = {labels["span"] for labels, _ in
                      metrics["planaria_span_count"]["samples"]}
        assert "session.feed_chunk" in span_names
        assert "engine.feed" in span_names

    def test_untraced_manager_omits_span_families(self, tmp_path):
        with SessionManager(checkpoint_dir=tmp_path / "ckpt",
                            default_config=_config()) as manager:
            manager.open("s", "none")
            metrics = _parse_exposition(manager.metrics_text())
        assert "planaria_span_count" not in metrics
        assert "planaria_health_ok" in metrics  # health always exported


class TestRendererRefusals:
    def test_missing_help_entry_is_an_error(self):
        with pytest.raises(ValueError, match="METRIC_HELP"):
            prometheus_text([("not_a_known_metric", {}, 1, "counter")])

    def test_invalid_metric_name_is_an_error(self):
        with pytest.raises(ValueError, match="metric name"):
            prometheus_text([("bad-name", {}, 1, "counter")])

    def test_invalid_label_name_is_an_error(self):
        with pytest.raises(ValueError, match="label name"):
            prometheus_text([("records_fed", {"bad-label": "x"}, 1,
                              "counter")])

    def test_unknown_kind_is_an_error(self):
        with pytest.raises(ValueError, match="unknown kind"):
            prometheus_text([("records_fed", {}, 1, "histogram")])

    def test_label_values_are_escaped(self):
        text = prometheus_text(
            [("records_fed", {"session": 'a"b\\c\nd'}, 1, "counter")])
        metrics = _parse_exposition(text)
        ((labels, value),) = metrics["planaria_records_fed"]["samples"]
        assert labels["session"] == 'a\\"b\\\\c\\nd'  # escaped-form survives
        assert value == 1.0

    def test_help_before_type_and_one_header_pair_per_family(self):
        text = prometheus_text([
            ("records_fed", {"session": "a"}, 1, "counter"),
            ("chunks_fed", {"session": "a"}, 2, "counter"),
            ("records_fed", {"session": "b"}, 3, "counter"),
        ])
        lines = text.splitlines()
        assert lines[0].startswith("# HELP planaria_records_fed ")
        assert lines[1] == "# TYPE planaria_records_fed counter"
        assert sum(1 for line in lines
                   if line.startswith("# TYPE planaria_records_fed")) == 1
        # Both records_fed samples group under the single header pair.
        metrics = _parse_exposition(text)
        assert len(metrics["planaria_records_fed"]["samples"]) == 2


class TestHelpTableCoverage:
    def test_every_sample_builder_name_has_help(self):
        class _Metrics:
            demand_accesses = demand_misses = dram_traffic = 1
            prefetch_issued = prefetch_fills = prefetch_useful = 1
            amat = hit_rate = accuracy = coverage = 0.5
            prefetch_useful_by_source = {"slp": 1}
            tenant_stats = {"CPU": {"accesses": 4, "hits": 3,
                                    "hit_rate": 0.75, "reads": 2,
                                    "amat": 40.0, "useful_prefetches": 1,
                                    "dram_reads": 1}}

        class _Snapshot:
            records_fed = chunks_fed = 1
            metrics = _Metrics()

        class _Epoch:
            epoch = queue_depth = slp_issued = tlp_issued = 1
            throttle_suspended = 0
            hit_rate = amat = accuracy = 0.5

        report = HealthReport(status="ok", verdicts=[
            DetectorVerdict("accuracy_collapse", True, 1.0, 0.2)])
        summary = {"engine.feed": {"count": 3, "mean_us": 5.0, "max_us": 9.0,
                                   "p50_us": 0.0, "p95_us": 0.0,
                                   "p99_us": 0.0}}
        samples = (snapshot_samples("s", _Snapshot())
                   + epoch_samples("s", _Epoch())
                   + health_samples(report) + span_samples(summary))
        names = {sample[0] for sample in samples}
        missing = names - set(METRIC_HELP)
        assert not missing, f"METRIC_HELP lacks entries for {missing}"
        # The renderer accepts the whole combined set.
        _parse_exposition(prometheus_text(samples))
