"""Trace sampling utilities."""

import pytest

from repro.geometry import DEFAULT_LAYOUT
from repro.trace.generator import generate_trace, get_profile
from repro.trace.sampling import (
    downsample_preserving_pages,
    interval_samples,
    time_slice,
)


@pytest.fixture(scope="module")
def records():
    return generate_trace(get_profile("CFM"), 10_000, seed=2)


class TestIntervalSamples:
    def test_systematic_selection(self, records):
        samples = interval_samples(records, interval_length=1_000,
                                   keep_every=5, warmup_length=500)
        assert len(samples) == 2  # 10k records / (1k * 5)
        assert all(len(sample.measured) == 1_000 for sample in samples)

    def test_first_interval_has_no_warmup(self, records):
        samples = interval_samples(records, interval_length=1_000,
                                   keep_every=5, warmup_length=500)
        assert samples[0].warmup_count == 0
        assert samples[1].warmup_count == 500

    def test_warmup_immediately_precedes_measured(self, records):
        samples = interval_samples(records, interval_length=1_000,
                                   keep_every=5, warmup_length=500)
        sample = samples[1]
        boundary = records.index(sample.measured[0])
        assert sample.warmup == records[boundary - 500:boundary]
        assert sample.records == sample.warmup + sample.measured

    def test_short_tail_kept(self, records):
        samples = interval_samples(records[:1_500], interval_length=1_000,
                                   keep_every=1, warmup_length=0)
        assert [len(sample.measured) for sample in samples] == [1_000, 500]

    def test_validation(self, records):
        with pytest.raises(ValueError):
            interval_samples(records, interval_length=0)
        with pytest.raises(ValueError):
            interval_samples(records, keep_every=0)
        with pytest.raises(ValueError):
            interval_samples(records, warmup_length=-1)


class TestTimeSlice:
    def test_slices_window(self, records):
        start = records[100].arrival_time
        sliced = time_slice(records, start, duration=5_000)
        assert sliced
        assert all(start <= record.arrival_time < start + 5_000
                   for record in sliced)

    def test_empty_window(self, records):
        assert time_slice(records, 0, 0) == []
        with pytest.raises(ValueError):
            time_slice(records, 0, -1)


class TestPagePreservingDownsample:
    def test_keeps_whole_pages(self, records):
        kept = downsample_preserving_pages(records, 0.3, seed=1)
        kept_pages = {DEFAULT_LAYOUT.page_number(r.address) for r in kept}
        all_pages = {DEFAULT_LAYOUT.page_number(r.address) for r in records}
        assert 0 < len(kept_pages) < len(all_pages)
        # Every surviving page keeps ALL of its accesses.
        for page in kept_pages:
            original = [r for r in records
                        if DEFAULT_LAYOUT.page_number(r.address) == page]
            surviving = [r for r in kept
                         if DEFAULT_LAYOUT.page_number(r.address) == page]
            assert original == surviving

    def test_fraction_one_is_identity(self, records):
        assert downsample_preserving_pages(records, 1.0) == list(records)

    def test_deterministic(self, records):
        first = downsample_preserving_pages(records, 0.2, seed=5)
        second = downsample_preserving_pages(records, 0.2, seed=5)
        assert first == second

    def test_validation(self, records):
        with pytest.raises(ValueError):
            downsample_preserving_pages(records, 0.0)
        with pytest.raises(ValueError):
            downsample_preserving_pages(records, 1.5)

    def test_preserves_order(self, records):
        kept = downsample_preserving_pages(records, 0.4, seed=3)
        times = [record.arrival_time for record in kept]
        assert times == sorted(times)
