"""Service observability: the live ``timeline`` op, Prometheus export.

Headline property: the epochs a client polls out of a *live* streaming
session are bit-identical to the post-hoc offline dump of the same
records — same collector code, same chunking-invariance contract the
engine tests pin down, observed end-to-end through real sockets.
"""

import functools
import socket

import pytest

from repro.config import SimConfig
from repro.errors import ServiceError
from repro.obs import attach_observability
from repro.prefetch.registry import make_prefetcher
from repro.service.bench import _ServerThread
from repro.service.client import ServiceClient
from repro.service.session import SessionManager
from repro.sim.engine import SystemSimulator, channel_warmup_counts
from repro.trace.generator import generate_trace_buffer, get_profile

LENGTH = 2000
SEED = 13
EPOCH_RECORDS = 128


@functools.lru_cache(maxsize=None)
def _config():
    return SimConfig.experiment_scale()


@functools.lru_cache(maxsize=None)
def _trace():
    return generate_trace_buffer(get_profile("CFM"), LENGTH, seed=SEED,
                                 layout=_config().layout)


@functools.lru_cache(maxsize=None)
def _offline():
    """Offline observed run over the same records the service sees."""
    sim = SystemSimulator(
        _config(),
        lambda layout, channel: make_prefetcher("planaria", layout, channel))
    obs = attach_observability(sim, epoch_records=EPOCH_RECORDS)
    sim.set_stream_warmup(channel_warmup_counts(_trace(), _config()))
    sim.feed(_trace())
    return obs


@pytest.fixture
def server(tmp_path):
    manager = SessionManager(checkpoint_dir=tmp_path / "ckpt",
                             default_config=_config())
    with _ServerThread(manager, metrics_port=0) as running:
        yield running
    manager.shutdown(checkpoint=False)


@pytest.fixture
def client(server):
    with ServiceClient.connect(port=server.port) as connected:
        yield connected


def _open_and_feed(client, name="live", chunk=311):
    trace = _trace()
    client.open(name, "planaria", workload="CFM", config=_config(),
                warmup_records=channel_warmup_counts(trace, _config()),
                epoch_records=EPOCH_RECORDS)
    client.feed_trace(name, trace, chunk_records=chunk)


class TestTimelineOp:
    def test_live_epochs_match_offline_dump(self, client):
        _open_and_feed(client)
        epochs, events = client.timeline("live", events=True)
        offline = _offline()
        assert epochs == offline.merged_timeline(include_partial=True)
        assert events == offline.events()

    def test_closed_epochs_only(self, client):
        _open_and_feed(client)
        epochs, events = client.timeline("live", include_partial=False)
        assert events is None
        assert epochs == _offline().merged_timeline(include_partial=False)

    def test_polling_midstream_does_not_perturb(self, client):
        trace = _trace()
        client.open("live", "planaria", workload="CFM", config=_config(),
                    warmup_records=channel_warmup_counts(trace, _config()),
                    epoch_records=EPOCH_RECORDS)
        for start in range(0, len(trace), 500):
            client.feed("live", trace[start:start + 500])
            client.timeline("live")  # live poll between chunks
        epochs, _ = client.timeline("live")
        assert epochs == _offline().merged_timeline(include_partial=True)

    def test_session_without_obs_rejected(self, client):
        client.open("plain", "none", config=_config())
        with pytest.raises(ServiceError, match="without epoch_records"):
            client.timeline("plain")

    def test_bad_epoch_records_rejected(self, client):
        with pytest.raises(ServiceError, match="epoch_records"):
            client.open("bad", "none", config=_config(), epoch_records=-5)

    def test_timeline_survives_checkpoint_resume(self, client):
        trace = _trace()
        client.open("live", "planaria", workload="CFM", config=_config(),
                    warmup_records=channel_warmup_counts(trace, _config()),
                    epoch_records=EPOCH_RECORDS)
        client.feed("live", trace[:900])
        client.checkpoint("live")
        # The save is logged in the live session's system tracer...
        _, saved_events = client.timeline("live", events=True)
        assert "checkpoint_saved" in [e.kind for e in saved_events
                                      if e.channel == -1]
        client.close_session("live", delete_checkpoint=False)
        client.open("live", "planaria", resume=True)
        client.feed("live", trace[900:])
        epochs, events = client.timeline("live", events=True)
        assert epochs == _offline().merged_timeline(include_partial=True)
        # ...channel events match offline exactly, and the resumed
        # session logs the restore at the system level (channel -1).
        channel_events = [e for e in events if e.channel >= 0]
        assert channel_events == _offline().events()
        assert "checkpoint_restored" in [e.kind for e in events
                                         if e.channel == -1]


class TestPrometheusExport:
    def test_metrics_op_renders_open_sessions(self, client):
        _open_and_feed(client)
        client.snapshot("live")  # quiesce: metrics_text itself never blocks
        text = client.metrics_text()
        assert "# TYPE planaria_records_fed counter" in text
        assert f'planaria_records_fed{{session="live"}} {LENGTH}' in text
        assert 'planaria_epoch_hit_rate{session="live"}' in text

    def test_http_metrics_endpoint(self, server, client):
        _open_and_feed(client)
        client.snapshot("live")
        with socket.create_connection(
                ("127.0.0.1", server.metrics_port), timeout=10) as sock:
            sock.sendall(b"GET /metrics HTTP/1.0\r\n\r\n")
            response = b""
            while chunk := sock.recv(4096):
                response += chunk
        head, _, body = response.partition(b"\r\n\r\n")
        assert head.startswith(b"HTTP/1.0 200")
        assert b"text/plain" in head
        assert 'planaria_records_fed{session="live"}' in body.decode()

    def test_http_unknown_path_404(self, server):
        with socket.create_connection(
                ("127.0.0.1", server.metrics_port), timeout=10) as sock:
            sock.sendall(b"GET /nope HTTP/1.0\r\n\r\n")
            response = sock.recv(4096)
        assert response.startswith(b"HTTP/1.0 404")
