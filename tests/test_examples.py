"""Smoke tests: every bundled example runs end to end.

These keep the examples honest as the API evolves — each runs at a tiny
scale via the real interpreter.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name, *args, timeout=240):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True, text=True, timeout=timeout,
    )
    assert result.returncode == 0, result.stderr
    return result.stdout


class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py", "6000")
        assert "AMAT reduction" in out
        assert "planaria" in out

    def test_prefetcher_anatomy(self):
        out = run_example("prefetcher_anatomy.py")
        assert "PT[0x100]" in out
        assert "transfer prefetch" in out

    def test_mobile_gaming_study(self):
        out = run_example("mobile_gaming_study.py", "CFM", "--length", "6000")
        assert "averages across CFM" in out

    def test_replacement_study(self):
        out = run_example("replacement_study.py", "--length", "4000")
        assert "drrip" in out and "planaria" in out

    def test_custom_workload(self):
        out = run_example("custom_workload.py", "--length", "6000")
        assert "AR Navigator" in out or "intra-page regularity" in out

    def test_figure_gallery(self, tmp_path):
        out = run_example("figure_gallery.py", "--out", str(tmp_path),
                          "--length", "5000", "--apps", "CFM")
        assert (tmp_path / "fig8.csv").exists()
        assert "exported" in out
