"""Command-line interface."""

import pytest

from repro.cli import main


class TestWorkloads:
    def test_lists_all_apps(self, capsys):
        assert main(["workloads"]) == 0
        out = capsys.readouterr().out
        for abbr in ("CFM", "HoK", "PM"):
            assert abbr in out


class TestGenerate:
    def test_csv(self, tmp_path, capsys):
        path = tmp_path / "t.csv"
        assert main(["generate", "CFM", str(path), "--length", "100"]) == 0
        assert "wrote 100 records" in capsys.readouterr().out
        assert path.exists()

    def test_binary(self, tmp_path):
        path = tmp_path / "t.bin"
        assert main(["generate", "HoK", str(path), "--length", "50"]) == 0
        from repro.trace.io import read_trace_binary

        assert len(read_trace_binary(path)) == 50


class TestSimulate:
    def test_by_app(self, capsys):
        assert main(["simulate", "--app", "CFM", "--length", "3000",
                     "--prefetchers", "none,nextline"]) == 0
        out = capsys.readouterr().out
        assert "nextline" in out and "hit rate" in out

    def test_from_trace_file(self, tmp_path, capsys):
        path = tmp_path / "t.bin"
        main(["generate", "KO", str(path), "--length", "2000"])
        capsys.readouterr()
        assert main(["simulate", "--trace", str(path),
                     "--prefetchers", "none"]) == 0
        assert "none" in capsys.readouterr().out

    def test_unknown_prefetcher(self, capsys):
        assert main(["simulate", "--prefetchers", "oracle"]) == 2
        assert "unknown prefetchers" in capsys.readouterr().err


class TestFigure:
    def test_fig4_subset(self, capsys):
        assert main(["figure", "fig4", "--length", "5000",
                     "--apps", "CFM"]) == 0
        out = capsys.readouterr().out
        assert "overlap" in out

    def test_unknown_figure(self, capsys):
        assert main(["figure", "fig99"]) == 2
        assert "unknown figure" in capsys.readouterr().err


class TestOthers:
    def test_storage(self, capsys):
        assert main(["storage"]) == 0
        out = capsys.readouterr().out
        assert "TOTAL" in out and "8.4%" in out

    def test_footprint(self, capsys):
        assert main(["footprint", "--app", "CFM", "--length", "8000"]) == 0
        assert "time" in capsys.readouterr().out

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])


class TestKeyboardInterrupt:
    """Ctrl-C must exit with the conventional 128+SIGINT code, not a
    traceback, whichever command was running."""

    def _assert_130(self, argv, capsys):
        assert main(argv) == 130
        assert "interrupted" in capsys.readouterr().err

    def test_simulate(self, monkeypatch, capsys):
        import repro.sim.runner as runner

        def interrupt(*args, **kwargs):
            raise KeyboardInterrupt

        monkeypatch.setattr(runner, "compare_prefetchers", interrupt)
        self._assert_130(["simulate", "--app", "CFM", "--length", "100"],
                         capsys)

    def test_figure(self, monkeypatch, capsys):
        from repro.experiments import ALL_EXPERIMENTS

        def interrupt(settings):
            raise KeyboardInterrupt

        monkeypatch.setitem(ALL_EXPERIMENTS, "fig4", interrupt)
        self._assert_130(["figure", "fig4", "--length", "100"], capsys)

    def test_serve(self, monkeypatch, capsys):
        import repro.service.server as server

        def interrupt(*args, **kwargs):
            raise KeyboardInterrupt

        monkeypatch.setattr(server, "run_server", interrupt)
        self._assert_130(["serve", "--port", "0"], capsys)


class TestServe:
    def test_bench_serve_smoke(self, tmp_path, capsys):
        out = tmp_path / "BENCH_service.json"
        assert main(["bench-serve", "--sessions", "3", "--length", "600",
                     "--chunk-records", "32", "--max-inflight", "1",
                     "--worker-threads", "1", "--output", str(out)]) == 0
        captured = capsys.readouterr().out
        assert "3 sessions x 600 records" in captured
        assert "backpressure waits" in captured
        import json

        report = json.loads(out.read_text())
        assert report["equivalence"]["bit_identical_to_offline_simulate"]
        assert report["backpressure_waits"] > 0

    def test_bench_serve_traced_reports_feed_latency(self, tmp_path,
                                                     capsys):
        import json

        out = tmp_path / "BENCH_service.json"
        spans_out = tmp_path / "spans.json"
        assert main(["bench-serve", "--sessions", "2", "--length", "600",
                     "--chunk-records", "64", "--max-inflight", "1",
                     "--worker-threads", "1", "--output", str(out),
                     "--spans-out", str(spans_out)]) == 0
        captured = capsys.readouterr().out
        assert "per-chunk feed latency" in captured
        report = json.loads(out.read_text())
        assert report["tracing"] and report["equivalence"]["traced_run"]
        latency = report["feed_latency_us"]
        assert latency["chunks"] == 2 * -(-600 // 64)
        assert latency["p50"] <= latency["p95"] <= latency["p99"]
        assert report["health"]["status"] == "ok"

        from repro.obs.trace_spans import read_chrome_trace

        spans = read_chrome_trace(spans_out)
        assert {s.name for s in spans} >= {"request.feed",
                                           "session.feed_chunk",
                                           "engine.feed"}

    def test_bench_serve_no_trace_omits_latency(self, tmp_path, capsys):
        import json

        out = tmp_path / "BENCH_service.json"
        assert main(["bench-serve", "--sessions", "2", "--length", "400",
                     "--chunk-records", "64", "--max-inflight", "1",
                     "--worker-threads", "1", "--output", str(out),
                     "--no-trace"]) == 0
        report = json.loads(out.read_text())
        assert not report["tracing"]
        assert "feed_latency_us" not in report

    def test_spans_verb_dumps_chrome_trace(self, tmp_path, capsys):
        from repro.config import SimConfig
        from repro.obs.trace_spans import read_chrome_trace
        from repro.service.bench import _ServerThread
        from repro.service.client import ServiceClient
        from repro.service.session import SessionManager
        from repro.trace.generator import generate_trace_buffer, get_profile

        config = SimConfig.experiment_scale()
        trace = generate_trace_buffer(get_profile("CFM"), 300, seed=3,
                                      layout=config.layout)
        manager = SessionManager(checkpoint_dir=tmp_path / "ckpt",
                                 default_config=config, tracing=True)
        out = tmp_path / "trace.json"
        with _ServerThread(manager) as running:
            with ServiceClient.connect(port=running.port) as client:
                client.open("s", "stride", workload="cli")
                client.feed("s", trace)
                client.snapshot("s")
            assert main(["spans", str(out), "--port",
                         str(running.port)]) == 0
        manager.shutdown(checkpoint=False)
        captured = capsys.readouterr().out
        assert "perfetto" in captured.lower()
        assert "session.feed_chunk" in captured
        spans = read_chrome_trace(out)
        assert any(span.name == "engine.feed" for span in spans)


class TestSimConfigFile:
    def test_simulate_with_config_file(self, tmp_path, capsys):
        from repro.config import SimConfig
        from repro.config_io import save_config

        path = save_config(SimConfig.experiment_scale(), tmp_path / "c.json")
        assert main(["simulate", "--app", "CFM", "--length", "2000",
                     "--prefetchers", "none", "--sim-config", str(path)]) == 0
        assert "none" in capsys.readouterr().out


class TestCampaignVerbs:
    SPEC_YAML = """\
name: cli-campaign
length: 1500
workloads:
  - app: CFM
prefetchers: [none, planaria]
"""

    def _write_spec(self, tmp_path):
        path = tmp_path / "c.yaml"
        path.write_text(self.SPEC_YAML)
        return str(path)

    def test_run_status_resume(self, tmp_path, capsys):
        spec = self._write_spec(tmp_path)
        state_dir = str(tmp_path / "st")
        assert main(["campaign", "run", spec, "--state-dir", state_dir,
                     "--export", str(tmp_path / "out")]) == 0
        out = capsys.readouterr().out
        assert "2 cells (2 executed" in out
        assert "campaign-cli-campaign.csv" in out

        assert main(["campaign", "status", spec,
                     "--state-dir", state_dir]) == 0
        assert "2/2 cells completed" in capsys.readouterr().out

        # run again without resume -> error exit 1 via CampaignError
        assert main(["campaign", "run", spec,
                     "--state-dir", state_dir]) == 1
        assert "resume" in capsys.readouterr().err

        assert main(["campaign", "resume", spec, "--state-dir", state_dir,
                     "--export", str(tmp_path / "out2")]) == 0
        assert "0 executed, 2 resumed" in capsys.readouterr().out
        first = (tmp_path / "out" / "campaign-cli-campaign.csv").read_bytes()
        second = (tmp_path / "out2" / "campaign-cli-campaign.csv").read_bytes()
        assert first == second

    def test_bad_spec_exits_one(self, tmp_path, capsys):
        path = tmp_path / "bad.yaml"
        path.write_text("name: x\nbogus: true\n")
        assert main(["campaign", "run", str(path)]) == 1
        assert "error:" in capsys.readouterr().err

    def test_interrupt_exits_130(self, tmp_path, monkeypatch, capsys):
        import repro.campaign.runner as campaign_runner

        def interrupt(self, *args, **kwargs):
            raise KeyboardInterrupt

        monkeypatch.setattr(campaign_runner.CampaignRunner, "run", interrupt)
        spec = self._write_spec(tmp_path)
        assert main(["campaign", "run", spec,
                     "--state-dir", str(tmp_path / "st")]) == 130
        assert "interrupted" in capsys.readouterr().err
