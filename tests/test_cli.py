"""Command-line interface."""

import pytest

from repro.cli import main


class TestWorkloads:
    def test_lists_all_apps(self, capsys):
        assert main(["workloads"]) == 0
        out = capsys.readouterr().out
        for abbr in ("CFM", "HoK", "PM"):
            assert abbr in out


class TestGenerate:
    def test_csv(self, tmp_path, capsys):
        path = tmp_path / "t.csv"
        assert main(["generate", "CFM", str(path), "--length", "100"]) == 0
        assert "wrote 100 records" in capsys.readouterr().out
        assert path.exists()

    def test_binary(self, tmp_path):
        path = tmp_path / "t.bin"
        assert main(["generate", "HoK", str(path), "--length", "50"]) == 0
        from repro.trace.io import read_trace_binary

        assert len(read_trace_binary(path)) == 50


class TestSimulate:
    def test_by_app(self, capsys):
        assert main(["simulate", "--app", "CFM", "--length", "3000",
                     "--prefetchers", "none,nextline"]) == 0
        out = capsys.readouterr().out
        assert "nextline" in out and "hit rate" in out

    def test_from_trace_file(self, tmp_path, capsys):
        path = tmp_path / "t.bin"
        main(["generate", "KO", str(path), "--length", "2000"])
        capsys.readouterr()
        assert main(["simulate", "--trace", str(path),
                     "--prefetchers", "none"]) == 0
        assert "none" in capsys.readouterr().out

    def test_unknown_prefetcher(self, capsys):
        assert main(["simulate", "--prefetchers", "oracle"]) == 2
        assert "unknown prefetchers" in capsys.readouterr().err


class TestFigure:
    def test_fig4_subset(self, capsys):
        assert main(["figure", "fig4", "--length", "5000",
                     "--apps", "CFM"]) == 0
        out = capsys.readouterr().out
        assert "overlap" in out

    def test_unknown_figure(self, capsys):
        assert main(["figure", "fig99"]) == 2
        assert "unknown figure" in capsys.readouterr().err


class TestOthers:
    def test_storage(self, capsys):
        assert main(["storage"]) == 0
        out = capsys.readouterr().out
        assert "TOTAL" in out and "8.4%" in out

    def test_footprint(self, capsys):
        assert main(["footprint", "--app", "CFM", "--length", "8000"]) == 0
        assert "time" in capsys.readouterr().out

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])


class TestSimConfigFile:
    def test_simulate_with_config_file(self, tmp_path, capsys):
        from repro.config import SimConfig
        from repro.config_io import save_config

        path = save_config(SimConfig.experiment_scale(), tmp_path / "c.json")
        assert main(["simulate", "--app", "CFM", "--length", "2000",
                     "--prefetchers", "none", "--sim-config", str(path)]) == 0
        assert "none" in capsys.readouterr().out
