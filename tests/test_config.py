"""Configuration validation for every subsystem config."""

import pytest

from repro.config import (
    BOPConfig,
    CacheConfig,
    DRAMConfig,
    DRAMTiming,
    PlanariaConfig,
    PowerConfig,
    PrefetchQueueConfig,
    SLPConfig,
    SPPConfig,
    SimConfig,
    TLPConfig,
)
from repro.errors import ConfigError


class TestCacheConfig:
    def test_paper_slice(self):
        config = CacheConfig()
        assert config.size_bytes == 1 << 20
        assert config.associativity == 16
        assert config.num_sets == 1024
        assert config.num_blocks == 16384

    def test_rejects_partial_sets(self):
        with pytest.raises(ConfigError):
            CacheConfig(size_bytes=1000)

    def test_rejects_bad_block(self):
        with pytest.raises(ConfigError):
            CacheConfig(block_size=96)

    def test_rejects_zero_assoc(self):
        with pytest.raises(ConfigError):
            CacheConfig(associativity=0)


class TestDRAMTiming:
    def test_table1_values(self):
        timing = DRAMTiming()
        assert (timing.tRAS, timing.tRCD, timing.tRRD) == (51, 16, 12)
        assert (timing.tRC, timing.tRP, timing.tCCD) == (76, 16, 8)
        assert (timing.tRTP, timing.tWTR, timing.tWR) == (9, 12, 22)
        assert (timing.tRTRS, timing.tRFC, timing.tFAW) == (2, 216, 48)
        assert (timing.tCKE, timing.tXP, timing.tCMD) == (9, 9, 1)
        assert timing.burst_length == 16

    def test_burst_cycles(self):
        assert DRAMTiming().burst_cycles == 8

    def test_rejects_tRC_less_than_tRAS(self):
        with pytest.raises(ConfigError):
            DRAMTiming(tRC=10, tRAS=51)

    def test_rejects_nonpositive(self):
        with pytest.raises(ConfigError):
            DRAMTiming(tRCD=0)


class TestDRAMConfig:
    def test_paper_geometry(self):
        config = DRAMConfig()
        assert config.num_ranks == 1
        assert config.num_banks == 8

    def test_rejects_unknown_scheduler(self):
        with pytest.raises(ConfigError):
            DRAMConfig(scheduler="magic")

    def test_rejects_bad_banks(self):
        with pytest.raises(ConfigError):
            DRAMConfig(num_banks=6)


class TestPrefetcherConfigs:
    def test_slp_defaults(self):
        config = SLPConfig()
        assert config.filter_threshold == 3  # paper: three offsets promote
        assert config.pattern_table_entries == 16_384

    def test_slp_rejects_bad_threshold(self):
        with pytest.raises(ConfigError):
            SLPConfig(filter_threshold=0)
        with pytest.raises(ConfigError):
            SLPConfig(filter_threshold=17)

    def test_tlp_paper_defaults(self):
        config = TLPConfig()
        assert config.rpt_entries == 128
        assert config.distance_threshold == 64
        assert config.min_common_bits == 4

    def test_tlp_rejects_tiny_rpt(self):
        with pytest.raises(ConfigError):
            TLPConfig(rpt_entries=1)

    def test_planaria_coordinator_modes(self):
        for mode in ("decoupled", "serial", "parallel"):
            assert PlanariaConfig(coordinator=mode).coordinator == mode
        with pytest.raises(ConfigError):
            PlanariaConfig(coordinator="hybrid")

    def test_bop_offsets_non_empty(self):
        with pytest.raises(ConfigError):
            BOPConfig(offsets=())

    def test_bop_bad_score_bounds(self):
        with pytest.raises(ConfigError):
            BOPConfig(bad_score=100)

    def test_spp_confidence_bounds(self):
        with pytest.raises(ConfigError):
            SPPConfig(prefetch_confidence=0.0)
        with pytest.raises(ConfigError):
            SPPConfig(lookahead_confidence=1.5)

    def test_queue_config(self):
        with pytest.raises(ConfigError):
            PrefetchQueueConfig(depth=0)
        with pytest.raises(ConfigError):
            PrefetchQueueConfig(max_degree=0)


class TestPowerConfig:
    def test_rejects_negative_current(self):
        with pytest.raises(ConfigError):
            PowerConfig(idd4r=-1.0)

    def test_rejects_zero_clock(self):
        with pytest.raises(ConfigError):
            PowerConfig(clock_mhz=0.0)


class TestSimConfig:
    def test_default_total_capacity_matches_table1(self):
        config = SimConfig()
        total = config.cache.size_bytes * config.layout.num_channels
        assert total == 4 << 20  # 4 MB SC

    def test_paper_scale(self):
        config = SimConfig.paper_scale()
        assert config.cache.size_bytes == 1 << 20

    def test_experiment_scale_preserves_geometry(self):
        config = SimConfig.experiment_scale()
        assert config.cache.size_bytes == 128 << 10
        assert config.cache.associativity == 16
        assert config.layout.num_channels == 4

    def test_block_size_mismatch_rejected(self):
        with pytest.raises(ConfigError):
            SimConfig(cache=CacheConfig(block_size=128))

    def test_warmup_fraction_bounds(self):
        with pytest.raises(ConfigError):
            SimConfig(warmup_fraction=1.0)
