"""Timeline/event export round trips, property-based.

The exporters promise ``read(write(timeline)) == timeline`` — ints stay
ints, floats come back bit-identical (``repr`` shortest round trip, both
in JSONL and as CSV cells), dict-valued fields survive as JSON cells.
Hypothesis generates adversarial epochs (negative deltas, huge counters,
subnormal-ish floats, unicode device names) to pin that down.
"""

import dataclasses

import pytest
from hypothesis import given, settings, strategies as st

from repro.obs import EpochRecord, TraceEvent
from repro.obs.export import (TIMELINE_FORMAT, epoch_samples,
                              prometheus_text, read_events_jsonl,
                              read_timeline_csv, read_timeline_jsonl,
                              write_events_jsonl, write_timeline_csv,
                              write_timeline_jsonl)

counters = st.integers(min_value=-2**40, max_value=2**40)
finite_floats = st.floats(allow_nan=False, allow_infinity=False,
                          width=64)
names = st.text(
    alphabet=st.characters(blacklist_categories=("Cs",)), min_size=1,
    max_size=12)
int_tables = st.dictionaries(names, counters, max_size=4)
float_tables = st.dictionaries(names, finite_floats, max_size=4)


@st.composite
def epoch_records(draw):
    fields = {}
    for field_ in dataclasses.fields(EpochRecord):
        if field_.name == "read_latency_total":
            fields[field_.name] = draw(finite_floats)
        elif field_.name == "device_read_latency_total":
            fields[field_.name] = draw(float_tables)
        elif field_.name in ("useful_by_source", "fills_by_source",
                             "device_reads", "device_accesses",
                             "device_hits"):
            fields[field_.name] = draw(int_tables)
        else:
            fields[field_.name] = draw(counters)
    return EpochRecord(**fields)


timelines = st.lists(epoch_records(), max_size=5)


@st.composite
def trace_events(draw):
    return TraceEvent(
        kind=draw(st.sampled_from(["tlp_transfer", "slp_snapshot_learned",
                                   "throttle_suspended"])),
        time=draw(counters),
        channel=draw(st.integers(min_value=-1, max_value=3)),
        seq=draw(st.integers(min_value=0, max_value=2**30)),
        data=draw(st.dictionaries(
            names, counters | finite_floats | names, max_size=3)),
    )


class TestTimelineRoundTrip:
    @settings(max_examples=50, deadline=None)
    @given(epochs=timelines)
    def test_jsonl(self, epochs, tmp_path_factory):
        path = tmp_path_factory.mktemp("obs") / "timeline.jsonl"
        write_timeline_jsonl(path, epochs, meta={"workload": "CFM"})
        meta, decoded = read_timeline_jsonl(path)
        assert decoded == epochs
        assert meta["workload"] == "CFM"
        assert meta["format"] == TIMELINE_FORMAT

    @settings(max_examples=50, deadline=None)
    @given(epochs=timelines)
    def test_csv(self, epochs, tmp_path_factory):
        path = tmp_path_factory.mktemp("obs") / "timeline.csv"
        write_timeline_csv(path, epochs)
        _, decoded = read_timeline_csv(path)
        assert decoded == epochs

    def test_csv_flattens_device_tables_to_stable_columns(self, tmp_path):
        """The per-tenant dict fields become one ``device_<NAME>_accesses``
        / ``device_<NAME>_hits`` column per device seen anywhere in the
        timeline; an empty cell means absent-from-epoch, ``0`` is an
        explicit zero, and the read side reassembles the dicts exactly."""
        epochs = [
            EpochRecord(epoch=0, channel=-1, start_record=0,
                        end_record=10, start_time=0, end_time=5,
                        device_accesses={"CPU": 7, "GPU": 3},
                        device_hits={"CPU": 0}),
            EpochRecord(epoch=1, channel=-1, start_record=10,
                        end_record=20, start_time=5, end_time=9,
                        device_accesses={"NPU": 4},
                        device_hits={"NPU": 4}),
        ]
        path = tmp_path / "timeline.csv"
        write_timeline_csv(path, epochs)
        lines = path.read_text(encoding="utf-8").splitlines()
        header = lines[1].split(",")
        assert header[-6:] == [
            "device_CPU_accesses", "device_CPU_hits",
            "device_GPU_accesses", "device_GPU_hits",
            "device_NPU_accesses", "device_NPU_hits",
        ]
        assert "device_accesses" not in header
        assert "device_hits" not in header
        # Epoch 0 has no NPU entries (empty cells), an explicit CPU-hits
        # zero, and a GPU-hits absence despite GPU accesses.
        row0 = lines[2].split(",")
        assert row0[-6:] == ["7", "0", "3", "", "", ""]
        row1 = lines[3].split(",")
        assert row1[-6:] == ["", "", "", "", "4", "4"]
        _, decoded = read_timeline_csv(path)
        assert decoded == epochs

    def test_version_mismatch_rejected(self, tmp_path):
        path = tmp_path / "timeline.jsonl"
        write_timeline_jsonl(path, [])
        lines = path.read_text().splitlines()
        lines[0] = lines[0].replace('"version": 1', '"version": 99')
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(ValueError, match="schema version 99"):
            read_timeline_jsonl(path)

    def test_foreign_file_rejected(self, tmp_path):
        path = tmp_path / "other.jsonl"
        path.write_text('{"format": "something-else", "version": 1}\n')
        with pytest.raises(ValueError, match="not a planaria-timeline"):
            read_timeline_jsonl(path)

    def test_unknown_field_rejected(self):
        with pytest.raises(ValueError, match="unknown EpochRecord"):
            EpochRecord.from_dict({"epoch": 0, "mystery": 1})


class TestEventsRoundTrip:
    @settings(max_examples=50, deadline=None)
    @given(events=st.lists(trace_events(), max_size=6))
    def test_jsonl(self, events, tmp_path_factory):
        path = tmp_path_factory.mktemp("obs") / "events.jsonl"
        write_events_jsonl(path, events, meta={"session": "s"})
        meta, decoded = read_events_jsonl(path)
        assert decoded == events
        assert meta["session"] == "s"


class TestPrometheusText:
    def test_renders_types_labels_and_escaping(self):
        text = prometheus_text([
            ("records_fed", {"session": 'a"b\\c'}, 7, "counter"),
            ("records_fed", {"session": "other"}, 9, "counter"),
            ("hit_rate", {}, 0.25, "gauge"),
        ])
        lines = text.splitlines()
        assert lines[0].startswith("# HELP planaria_records_fed ")
        assert lines[1] == "# TYPE planaria_records_fed counter"
        assert lines[2] == 'planaria_records_fed{session="a\\"b\\\\c"} 7'
        assert lines[3] == 'planaria_records_fed{session="other"} 9'
        assert "# TYPE planaria_hit_rate gauge" in lines
        assert "# HELP planaria_hit_rate Demand hit rate in the storage cache." in lines
        assert "planaria_hit_rate 0.25" in lines
        assert text.endswith("\n")

    def test_epoch_samples_cover_headline_gauges(self):
        epoch = EpochRecord(epoch=3, channel=-1, start_record=0,
                            end_record=1024, start_time=0, end_time=500,
                            demand_accesses=100, demand_hits=60,
                            demand_reads=80, read_latency_total=400.0)
        rendered = prometheus_text(epoch_samples("live", epoch))
        assert 'planaria_epoch_index{session="live"} 3' in rendered
        assert 'planaria_epoch_hit_rate{session="live"} 0.6' in rendered
        assert 'planaria_epoch_amat_cycles{session="live"} 5.0' in rendered
