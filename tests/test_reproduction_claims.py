"""End-to-end guards on the paper's qualitative claims.

One moderately sized multi-app simulation (module-scoped) backs several
assertions about *who wins and why* — the properties that must survive any
future refactoring of the simulator or generator.  Absolute magnitudes are
checked loosely; EXPERIMENTS.md records the precise paper-vs-measured
numbers from the full-size benchmark runs.
"""

import pytest

from repro.sim.metrics import ipc_speedup
from repro.sim.runner import compare_prefetchers
from repro.trace.generator import get_profile

LENGTH = 40_000
APPS = ("CFM", "Fort", "NBA2")


@pytest.fixture(scope="module")
def grid():
    return {
        app: compare_prefetchers(
            app, ("none", "bop", "spp", "slp", "tlp", "planaria"),
            length=LENGTH, seed=21,
        )
        for app in APPS
    }


class TestPlanariaWins:
    def test_best_amat_everywhere(self, grid):
        for app, results in grid.items():
            best_baseline = min(results[name].amat
                                for name in ("none", "bop", "spp"))
            assert results["planaria"].amat < best_baseline, app

    def test_best_hit_rate_everywhere(self, grid):
        for app, results in grid.items():
            assert results["planaria"].hit_rate == max(
                metrics.hit_rate for metrics in results.values()), app

    def test_ipc_gain_positive(self, grid):
        for app, results in grid.items():
            intensity = get_profile(app).memory_intensity
            speedup = ipc_speedup(results["planaria"].amat,
                                  results["none"].amat, intensity)
            assert speedup > 1.05, app

    def test_composite_beats_both_parts(self, grid):
        # Coordination pays: Planaria's coverage exceeds either
        # sub-prefetcher running alone.
        for app, results in grid.items():
            assert results["planaria"].coverage >= max(
                results["slp"].coverage, results["tlp"].coverage) - 0.02, app


class TestAccuracyAndTraffic:
    def test_planaria_most_accurate(self, grid):
        for app, results in grid.items():
            for baseline in ("bop", "spp"):
                assert results["planaria"].accuracy > results[baseline].accuracy, (
                    app, baseline)

    def test_planaria_lowest_traffic_overhead(self, grid):
        for app, results in grid.items():
            base = results["none"]
            planaria_traffic = results["planaria"].traffic_overhead_vs(base)
            assert planaria_traffic < results["bop"].traffic_overhead_vs(base), app
            assert planaria_traffic < results["spp"].traffic_overhead_vs(base), app

    def test_bop_traffic_exceeds_spp(self, grid):
        # Abstract: BOP +23.4% vs SPP +15.9%.
        for app, results in grid.items():
            base = results["none"]
            assert (results["bop"].traffic_overhead_vs(base)
                    > results["spp"].traffic_overhead_vs(base)), app


class TestPowerOrdering:
    def test_planaria_cheapest_power(self, grid):
        for app, results in grid.items():
            base = results["none"]
            planaria_power = results["planaria"].power_overhead_vs(base)
            assert planaria_power < results["bop"].power_overhead_vs(base), app
            assert planaria_power < results["spp"].power_overhead_vs(base), app

    def test_planaria_power_small(self, grid):
        # Paper: +0.5% average, per-app -3.3%..+2.8%; allow a loose band.
        for app, results in grid.items():
            overhead = results["planaria"].power_overhead_vs(results["none"])
            assert -0.05 < overhead < 0.08, app


class TestBreakdownShape:
    def test_slp_dominates_on_slp_apps(self, grid):
        useful = grid["CFM"]["planaria"].prefetch_useful_by_source
        assert useful.get("slp", 0) > useful.get("tlp", 0)

    def test_tlp_dominates_on_fort(self, grid):
        # Fort's pages rarely recur: SLP starves, TLP transfers (Figure 9).
        useful = grid["Fort"]["planaria"].prefetch_useful_by_source
        assert useful.get("tlp", 0) > useful.get("slp", 0)

    def test_slp_alone_weak_on_fort(self, grid):
        results = grid["Fort"]
        assert results["tlp"].coverage > results["slp"].coverage


class TestBOPAnomaly:
    def test_nba2_hit_rate_up_amat_not_better(self, grid):
        # Section 6: on Fort/NBA2/PM, BOP raises the hit rate yet does not
        # improve AMAT (superfluous prefetch traffic).
        results = grid["NBA2"]
        assert results["bop"].hit_rate > results["none"].hit_rate
        assert results["bop"].amat_reduction_vs(results["none"]) < 0.05
