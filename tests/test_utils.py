"""Bit manipulation, saturating counters, and streaming statistics."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.utils.bitops import (
    bitmap_from_offsets,
    bitmap_overlap,
    bitmap_to_string,
    hamming_distance,
    iter_set_bits,
    popcount,
)
from repro.utils.counters import SaturatingCounter
from repro.utils.statistics import Histogram, RunningStats

bitmaps16 = st.integers(min_value=0, max_value=0xFFFF)


class TestBitops:
    def test_popcount_basics(self):
        assert popcount(0) == 0
        assert popcount(0b1011) == 3
        assert popcount(0xFFFF) == 16

    def test_popcount_negative_rejected(self):
        with pytest.raises(ValueError):
            popcount(-1)

    def test_iter_set_bits(self):
        assert list(iter_set_bits(0)) == []
        assert list(iter_set_bits(0b10110)) == [1, 2, 4]

    def test_bitmap_from_offsets_roundtrip(self):
        offsets = [0, 3, 7, 15]
        bitmap = bitmap_from_offsets(offsets)
        assert list(iter_set_bits(bitmap)) == offsets

    def test_bitmap_from_offsets_range_check(self):
        with pytest.raises(ValueError):
            bitmap_from_offsets([16])
        with pytest.raises(ValueError):
            bitmap_from_offsets([-1])

    def test_overlap_and_hamming(self):
        assert bitmap_overlap(0b1100, 0b1010) == 1
        assert hamming_distance(0b1100, 0b1010) == 2
        assert hamming_distance(0xFFFF, 0) == 16

    def test_bitmap_to_string(self):
        assert bitmap_to_string(0b101, width=4) == "0101"
        with pytest.raises(ValueError):
            bitmap_to_string(0x10000, width=16)

    @given(a=bitmaps16, b=bitmaps16)
    def test_hamming_symmetry(self, a, b):
        assert hamming_distance(a, b) == hamming_distance(b, a)

    @given(a=bitmaps16, b=bitmaps16, c=bitmaps16)
    def test_hamming_triangle_inequality(self, a, b, c):
        assert hamming_distance(a, c) <= hamming_distance(a, b) + hamming_distance(b, c)

    @given(a=bitmaps16, b=bitmaps16)
    def test_inclusion_exclusion(self, a, b):
        assert popcount(a | b) == popcount(a) + popcount(b) - bitmap_overlap(a, b)

    @given(bitmap=bitmaps16)
    def test_iter_set_bits_matches_popcount(self, bitmap):
        assert len(list(iter_set_bits(bitmap))) == popcount(bitmap)


class TestSaturatingCounter:
    def test_saturates_high(self):
        counter = SaturatingCounter(bits=2)
        for _ in range(10):
            counter.increment()
        assert counter.value == 3
        assert counter.is_saturated()

    def test_saturates_low(self):
        counter = SaturatingCounter(bits=2, initial=1)
        for _ in range(10):
            counter.decrement()
        assert counter.value == 0

    def test_increment_amount(self):
        counter = SaturatingCounter(bits=4)
        assert counter.increment(20) == 15

    def test_reset_bounds(self):
        counter = SaturatingCounter(bits=3)
        counter.reset(7)
        assert counter.value == 7
        with pytest.raises(ValueError):
            counter.reset(8)

    def test_bad_construction(self):
        with pytest.raises(ValueError):
            SaturatingCounter(bits=0)
        with pytest.raises(ValueError):
            SaturatingCounter(bits=2, initial=4)

    def test_int_conversion(self):
        assert int(SaturatingCounter(bits=2, initial=2)) == 2

    def test_decrement_amount_clamps_at_zero(self):
        counter = SaturatingCounter(bits=4, initial=5)
        assert counter.decrement(20) == 0
        assert not counter.is_saturated()

    def test_exact_boundary_steps(self):
        # Landing exactly on the rails must not overshoot either way.
        counter = SaturatingCounter(bits=3, initial=6)
        assert counter.increment() == 7
        assert counter.is_saturated()
        assert counter.increment() == 7
        counter.reset(1)
        assert counter.decrement() == 0
        assert counter.decrement() == 0

    def test_one_bit_counter_toggles(self):
        counter = SaturatingCounter(bits=1)
        assert counter.max_value == 1
        assert counter.increment() == 1
        assert counter.is_saturated()
        assert counter.decrement() == 0

    def test_zero_amount_is_a_noop(self):
        counter = SaturatingCounter(bits=2, initial=2)
        assert counter.increment(0) == 2
        assert counter.decrement(0) == 2

    def test_reset_default_is_zero(self):
        counter = SaturatingCounter(bits=2, initial=3)
        counter.reset()
        assert counter.value == 0

    def test_initial_at_max_is_saturated(self):
        assert SaturatingCounter(bits=2, initial=3).is_saturated()

    def test_repr_names_value_and_max(self):
        assert repr(SaturatingCounter(bits=2, initial=1)) == \
            "SaturatingCounter(value=1, max=3)"

    @given(bits=st.integers(min_value=1, max_value=8),
           steps=st.lists(st.tuples(st.booleans(),
                                    st.integers(min_value=0, max_value=300)),
                          max_size=30))
    def test_value_always_in_range(self, bits, steps):
        counter = SaturatingCounter(bits=bits)
        reference = 0
        for up, amount in steps:
            if up:
                counter.increment(amount)
            else:
                counter.decrement(amount)
            reference = (min(counter.max_value, reference + amount) if up
                         else max(0, reference - amount))
            assert counter.value == reference
            assert 0 <= counter.value <= counter.max_value


class TestRunningStats:
    def test_empty(self):
        stats = RunningStats()
        assert stats.mean == 0.0
        assert stats.variance == 0.0
        assert stats.min is None

    def test_known_values(self):
        stats = RunningStats()
        for sample in (2.0, 4.0, 6.0):
            stats.add(sample)
        assert stats.count == 3
        assert stats.mean == pytest.approx(4.0)
        assert stats.variance == pytest.approx(8.0 / 3.0)
        assert stats.min == 2.0
        assert stats.max == 6.0
        assert stats.total == pytest.approx(12.0)

    def test_merge_matches_pooled(self):
        left, right, pooled = RunningStats(), RunningStats(), RunningStats()
        samples_left = [1.0, 5.0, 2.5]
        samples_right = [10.0, -3.0]
        for sample in samples_left:
            left.add(sample); pooled.add(sample)
        for sample in samples_right:
            right.add(sample); pooled.add(sample)
        left.merge(right)
        assert left.count == pooled.count
        assert left.mean == pytest.approx(pooled.mean)
        assert left.variance == pytest.approx(pooled.variance)
        assert left.min == pooled.min and left.max == pooled.max

    def test_merge_empty(self):
        stats = RunningStats()
        stats.add(3.0)
        stats.merge(RunningStats())
        assert stats.count == 1

    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6,
                              allow_nan=False), min_size=1, max_size=50))
    def test_mean_matches_math(self, samples):
        stats = RunningStats()
        for sample in samples:
            stats.add(sample)
        assert stats.mean == pytest.approx(sum(samples) / len(samples), abs=1e-6)
        assert not math.isnan(stats.stddev)


class TestHistogram:
    def test_bucketing(self):
        hist = Histogram(bucket_width=10.0)
        for sample in (1, 5, 12, 25, 27):
            hist.add(sample)
        assert hist.count == 5
        assert hist.buckets() == [(0.0, 2), (10.0, 1), (20.0, 2)]

    def test_percentile(self):
        hist = Histogram(bucket_width=1.0)
        for sample in range(100):
            hist.add(sample)
        assert hist.percentile(0.5) == pytest.approx(49.0)
        assert hist.percentile(0.99) == pytest.approx(98.0)

    def test_percentile_bounds(self):
        hist = Histogram()
        with pytest.raises(ValueError):
            hist.percentile(1.5)
        assert hist.percentile(0.5) == 0.0  # empty histogram

    def test_bad_width(self):
        with pytest.raises(ValueError):
            Histogram(bucket_width=0)
