"""Hypothesis property suites for the batch engine and its kernels.

Two layers of pinning, both against scalar ground truth:

* **Trace-level** — adversarial traces (page-crossing runs, single-record
  buffers, all-same-set conflict streams, a warmup boundary landing inside
  a run-length batch, random ``feed()`` cuts mid-batch) driven through the
  differential oracle :func:`tests.test_batch_oracle.assert_equivalent`,
  which fails on *any* state drift between the batch engine and the scalar
  loops.
* **Kernel-level** — every function in :mod:`repro.sim.kernels` pinned
  element-wise against the scalar helpers it vectorizes
  (:class:`repro.geometry.AddressLayout` methods,
  :meth:`repro.dram.address_mapping.AddressMapping.decode`,
  :meth:`repro.cache.replacement.lru.LRUPolicy.victim`), plus
  :class:`repro.cache.array_state.ArrayCache` against
  :class:`repro.cache.cache.SetAssociativeCache` under random operation
  sequences.

Addresses go up to 2**60 in the kernel properties on purpose: a scalar
operand that slips into the NumPy expressions un-wrapped promotes uint64
columns to float64 and silently rounds addresses above 2**53 — exactly the
bug class these tests exist to catch.
"""

import itertools

import numpy as np
import pytest
from hypothesis import given, settings as hsettings, strategies as st

from repro.cache.array_state import ArrayCache
from repro.cache.cache import SetAssociativeCache
from repro.config import CacheConfig, DRAMConfig, SimConfig
from repro.dram.address_mapping import AddressMapping
from repro.geometry import AddressLayout
from repro.sim import kernels
from repro.trace.buffer import TraceBuffer
from repro.trace.record import AccessType, DeviceID, TraceRecord

from tests.test_batch_oracle import assert_equivalent, deep_diff

CONFIG = SimConfig.experiment_scale()
LAYOUT = CONFIG.layout
BLOCK = LAYOUT.block_size
PAGE_BLOCKS = LAYOUT.blocks_per_page

# A subset that exercises every engine regime: the passive demand-only
# loop, both run-foldable sub-prefetchers, the composite coordinator, a
# throttle wrapper (notify_useful feedback ordering) and an offset
# prefetcher without observe_run support.
PREFETCHERS = ("none", "slp", "tlp", "planaria", "planaria-throttled", "bop")

EXAMPLES = 6  # per property; each trace example runs two full simulators


# ----------------------------------------------------------------------
# Trace-building strategies
# ----------------------------------------------------------------------
@st.composite
def _decorate(draw, block_addrs):
    """Attach types/devices/non-decreasing times to a block-address list."""
    records = []
    now = 0
    for block_addr in block_addrs:
        now += draw(st.integers(min_value=0, max_value=40))
        records.append(TraceRecord(
            address=block_addr * BLOCK,
            access_type=(AccessType.WRITE if draw(st.booleans())
                         else AccessType.READ),
            device=draw(st.sampled_from(list(DeviceID))),
            arrival_time=now,
        ))
    return TraceBuffer.from_records(records)


@st.composite
def page_crossing_traces(draw):
    """Sequential runs that start near a page edge and walk across it."""
    runs = draw(st.integers(min_value=1, max_value=4))
    block_addrs = []
    for _ in range(runs):
        page = draw(st.integers(min_value=0, max_value=512))
        # Start within the last few blocks of the page so a unit-stride
        # walk crosses into the next page mid-run.
        start = page * PAGE_BLOCKS + draw(
            st.integers(min_value=PAGE_BLOCKS - 6, max_value=PAGE_BLOCKS - 1))
        length = draw(st.integers(min_value=2, max_value=48))
        stride = draw(st.sampled_from((1, 1, 1, 3)))
        block_addrs.extend(start + i * stride for i in range(length))
    return draw(_decorate(block_addrs))


@st.composite
def same_set_traces(draw):
    """Every access maps to one cache set: maximum eviction pressure."""
    num_sets = CONFIG.cache.num_sets
    set_index = draw(st.integers(min_value=0, max_value=num_sets - 1))
    length = draw(st.integers(min_value=8, max_value=96))
    block_addrs = [
        set_index + draw(st.integers(min_value=0, max_value=63)) * num_sets
        for _ in range(length)
    ]
    return draw(_decorate(block_addrs))


@st.composite
def mixed_traces(draw):
    """General traffic over a small page universe (heavy reuse)."""
    length = draw(st.integers(min_value=1, max_value=160))
    block_addrs = [
        draw(st.integers(min_value=0, max_value=63)) * PAGE_BLOCKS
        + draw(st.integers(min_value=0, max_value=PAGE_BLOCKS - 1))
        for _ in range(length)
    ]
    return draw(_decorate(block_addrs))


def _cuts_for(draw, buffer):
    """A sorted set of feed() cut positions strictly inside the buffer."""
    if len(buffer) < 2:
        return ()
    positions = draw(st.lists(
        st.integers(min_value=1, max_value=len(buffer) - 1),
        min_size=0, max_size=4))
    return tuple(sorted(set(positions)))


# ----------------------------------------------------------------------
# Trace-level properties: the oracle under adversarial inputs
# ----------------------------------------------------------------------
class TestAdversarialTraces:
    @hsettings(max_examples=EXAMPLES, deadline=None)
    @given(data=st.data())
    def test_page_crossing_runs(self, data):
        buffer = data.draw(page_crossing_traces())
        prefetcher = data.draw(st.sampled_from(PREFETCHERS))
        assert_equivalent(CONFIG, buffer, prefetcher=prefetcher)

    @hsettings(max_examples=EXAMPLES, deadline=None)
    @given(data=st.data())
    def test_single_record_buffer(self, data):
        buffer = data.draw(_decorate(
            [data.draw(st.integers(min_value=0, max_value=2**40))]))
        prefetcher = data.draw(st.sampled_from(PREFETCHERS))
        assert_equivalent(CONFIG, buffer, prefetcher=prefetcher)

    @hsettings(max_examples=EXAMPLES, deadline=None)
    @given(data=st.data())
    def test_same_set_conflict_stream(self, data):
        buffer = data.draw(same_set_traces())
        prefetcher = data.draw(st.sampled_from(PREFETCHERS))
        assert_equivalent(CONFIG, buffer, prefetcher=prefetcher)

    @hsettings(max_examples=EXAMPLES, deadline=None)
    @given(data=st.data())
    def test_warmup_boundary_inside_run(self, data):
        """One long same-page run per channel: the warmup cut (at
        ``warmup_fraction`` of each channel's stream) necessarily lands
        inside a run-length batch."""
        page = data.draw(st.integers(min_value=0, max_value=256))
        length = data.draw(st.integers(min_value=24, max_value=96))
        block_addrs = [
            page * PAGE_BLOCKS
            + data.draw(st.integers(min_value=0, max_value=PAGE_BLOCKS - 1))
            for _ in range(length)
        ]
        buffer = data.draw(_decorate(block_addrs))
        prefetcher = data.draw(st.sampled_from(PREFETCHERS))
        assert_equivalent(CONFIG, buffer, prefetcher=prefetcher)

    @hsettings(max_examples=EXAMPLES, deadline=None)
    @given(data=st.data())
    def test_random_chunk_cuts_mid_batch(self, data):
        buffer = data.draw(mixed_traces())
        cuts = _cuts_for(data.draw, buffer)
        prefetcher = data.draw(st.sampled_from(PREFETCHERS))
        assert_equivalent(CONFIG, buffer, cuts=cuts, prefetcher=prefetcher)


# ----------------------------------------------------------------------
# Kernel-level properties: kernels.py vs the scalar helpers, element-wise
# ----------------------------------------------------------------------
LAYOUTS = (
    AddressLayout(),                                          # paper default
    AddressLayout(block_size=128, page_size=8192, num_channels=2),
    AddressLayout(block_size=64, page_size=4096, num_channels=1),
)

addresses_column = st.lists(
    st.integers(min_value=0, max_value=2**60), min_size=1, max_size=64)


class TestAddressKernels:
    @hsettings(max_examples=25, deadline=None)
    @given(addrs=addresses_column, layout=st.sampled_from(LAYOUTS))
    def test_decomposition_matches_geometry(self, addrs, layout):
        column = np.asarray(addrs, dtype=np.uint64)
        blocks, pages, offsets, chan_blocks = kernels.decompose_chunk(
            column, layout)
        assert blocks == kernels.block_addresses(column, layout).tolist()
        assert pages == kernels.page_numbers(column, layout).tolist()
        assert offsets == kernels.segment_offsets(column, layout).tolist()
        assert chan_blocks == kernels.channel_blocks(column, layout).tolist()
        per_segment = layout.blocks_per_segment
        for addr, block, page, offset, chan_block in zip(
                addrs, blocks, pages, offsets, chan_blocks):
            assert block == layout.block_address(addr)
            assert page == layout.page_number(addr)
            assert offset == layout.block_in_segment(addr)
            assert chan_block == page * per_segment + offset
            # The outputs must be exact Python ints (dict keys downstream).
            assert type(block) is int and type(chan_block) is int

    @hsettings(max_examples=25, deadline=None)
    @given(addrs=addresses_column,
           num_banks=st.sampled_from((4, 8, 16)),
           num_ranks=st.sampled_from((1, 2)),
           row_size=st.sampled_from((1024, 2048, 4096)))
    def test_dram_bank_rows_matches_decode(self, addrs, num_banks,
                                           num_ranks, row_size):
        dram = DRAMConfig(num_banks=num_banks, num_ranks=num_ranks,
                          row_size_bytes=row_size)
        mapping = AddressMapping(dram, block_size=BLOCK)
        column = np.asarray(addrs, dtype=np.uint64)
        bank_col, row_col = kernels.dram_bank_rows(
            column, LAYOUT.block_bits, mapping._column_bits,
            mapping._bank_mask, mapping._bank_bits,
            mapping._rank_mask, mapping._rank_bits, num_banks)
        for addr, bank_index, row in zip(addrs, bank_col, row_col):
            decoded = mapping.decode(addr >> LAYOUT.block_bits)
            assert bank_index == decoded.rank * num_banks + decoded.bank
            assert row == decoded.row

    @hsettings(max_examples=25, deadline=None)
    @given(pages=st.lists(st.integers(min_value=0, max_value=7),
                          min_size=0, max_size=80))
    def test_page_run_lengths_matches_groupby(self, pages):
        column = np.asarray(pages, dtype=np.uint64)
        starts, lengths = kernels.page_run_lengths(column)
        expected = [len(list(group))
                    for _, group in itertools.groupby(pages)]
        assert lengths.tolist() == expected
        assert starts.tolist() == [
            sum(expected[:k]) for k in range(len(expected))]
        # Runs partition the chunk and each run is a constant page.
        assert int(lengths.sum()) == len(pages)
        for start, length in zip(starts.tolist(), lengths.tolist()):
            assert len(set(pages[start:start + length])) == 1


# ----------------------------------------------------------------------
# Array cache state vs the scalar cache under random operation sequences
# ----------------------------------------------------------------------
SMALL_CACHE = CacheConfig(size_bytes=64 * 4 * 8, associativity=4,
                          block_size=64)  # 8 sets — evictions come fast

operations = st.lists(
    st.tuples(
        st.sampled_from(("access", "access", "fill", "fill", "invalidate")),
        st.integers(min_value=0, max_value=95),   # block address universe
        st.booleans(),                            # is_write / prefetched
    ),
    min_size=1, max_size=120)


def _apply(cache, ops):
    """Drive one cache through an op sequence; returns observable results."""
    results = []
    now = 0
    for kind, block_addr, flag in ops:
        now += 3
        if kind == "access":
            outcome = cache.access(block_addr, now, is_write=flag)
        elif kind == "fill":
            if cache.contains(block_addr):
                continue  # both caches raise on double fill; skip in sync
            outcome = cache.fill(block_addr, now, ready_time=now + 50,
                                 prefetched=flag,
                                 source="prop" if flag else None,
                                 dirty=not flag)
        else:
            outcome = cache.invalidate(block_addr)
        results.append(outcome)
    return results


class TestArrayCacheEquivalence:
    @hsettings(max_examples=30, deadline=None)
    @given(ops=operations)
    def test_random_op_sequence_matches_scalar_cache(self, ops):
        scalar = SetAssociativeCache(SMALL_CACHE)
        array = ArrayCache(SMALL_CACHE)
        scalar_results = _apply(scalar, ops)
        array_results = _apply(array, ops)

        diffs = deep_diff(scalar_results, array_results, path="results")
        deep_diff(scalar.state_dict(), array.state_dict(), path="state",
                  out=diffs)
        assert not diffs, "\n".join(diffs)
        assert array.occupancy() == scalar.occupancy()
        assert (array.resident_prefetches()
                == scalar.resident_prefetches())
        # The lazy tag mirror must rebuild to exactly the live contents.
        live = array.tag_matrix().copy()
        array._tags_stale = True
        assert np.array_equal(array.tag_matrix(), live)

    @hsettings(max_examples=30, deadline=None)
    @given(ops=operations)
    def test_lru_victims_matches_scalar_policy(self, ops):
        """kernels.lru_victims row-for-row against LRUPolicy.victim on the
        same (scalar-maintained) cache state."""
        scalar = SetAssociativeCache(SMALL_CACHE)
        array = ArrayCache(SMALL_CACHE)
        _apply(scalar, ops)
        _apply(array, ops)

        victims = kernels.lru_victims(array.tag_matrix(),
                                      array.age_matrix())
        for set_index in range(SMALL_CACHE.num_sets):
            expected = scalar.policy.victim(set_index,
                                            scalar._sets[set_index])
            assert victims[set_index] == expected, (
                f"set {set_index}: batch victim {victims[set_index]} "
                f"vs scalar {expected}")
