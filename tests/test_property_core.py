"""Property-based invariants for the SLP/TLP cores and the bitmap helpers.

Complements tests/test_properties.py (engine-level invariants) with the
algebra the prefetchers are built on: footprint bitmaps must round-trip
through utils/bitops, the RPT similarity measures must be symmetric and
bounded, and neither SLP nor TLP may ever prefetch the block that
triggered the issue — that block is being demand-fetched already.
"""

from hypothesis import given, settings as hsettings, strategies as st

from repro.geometry import DEFAULT_LAYOUT
from repro.prefetch.base import DemandAccess
from repro.prefetch.registry import make_prefetcher
from repro.trace.record import DeviceID
from repro.utils.bitops import (bitmap_from_offsets, bitmap_overlap,
                                bitmap_to_string, hamming_distance,
                                iter_set_bits, popcount)

bitmaps = st.integers(min_value=0, max_value=0xFFFF)
offset_sets = st.frozensets(st.integers(min_value=0, max_value=15),
                            max_size=16)
streams = st.lists(
    st.tuples(st.integers(min_value=0x200, max_value=0x260),
              st.integers(min_value=0, max_value=15)),
    min_size=1, max_size=120,
)


class TestBitmapRoundTrip:
    @given(offsets=offset_sets)
    def test_offsets_to_bitmap_and_back(self, offsets):
        bitmap = bitmap_from_offsets(offsets)
        assert list(iter_set_bits(bitmap)) == sorted(offsets)
        assert popcount(bitmap) == len(offsets)

    @given(bitmap=bitmaps)
    def test_bitmap_to_offsets_and_back(self, bitmap):
        assert bitmap_from_offsets(iter_set_bits(bitmap)) == bitmap

    @given(bitmap=bitmaps)
    def test_string_rendering_round_trips(self, bitmap):
        text = bitmap_to_string(bitmap)
        assert len(text) == 16
        assert int(text, 2) == bitmap


class TestSimilarityMeasures:
    """The measures TLP's learnable-neighbour test is built from."""

    @given(a=bitmaps, b=bitmaps)
    def test_symmetry(self, a, b):
        assert bitmap_overlap(a, b) == bitmap_overlap(b, a)
        assert hamming_distance(a, b) == hamming_distance(b, a)

    @given(a=bitmaps, b=bitmaps)
    def test_bounds(self, a, b):
        assert 0 <= bitmap_overlap(a, b) <= min(popcount(a), popcount(b))
        assert 0 <= hamming_distance(a, b) <= 16

    @given(a=bitmaps)
    def test_identity(self, a):
        assert hamming_distance(a, a) == 0
        assert bitmap_overlap(a, a) == popcount(a)

    @given(a=bitmaps, b=bitmaps, c=bitmaps)
    def test_triangle_inequality(self, a, b, c):
        assert (hamming_distance(a, c)
                <= hamming_distance(a, b) + hamming_distance(b, c))

    @given(a=bitmaps, b=bitmaps)
    def test_overlap_and_distance_partition_the_union(self, a, b):
        # |a ∪ b| = |a ∩ b| + |a Δ b|
        assert (popcount(a | b)
                == bitmap_overlap(a, b) + hamming_distance(a, b))


def build_access(page, offset, time):
    block_addr = (page << 6) | offset
    return DemandAccess(
        block_addr=block_addr, page=page, block_in_segment=offset,
        channel_block=page * 16 + offset, time=time, is_read=True,
        device=DeviceID.CPU,
    )


class TestNoSelfPrefetch:
    """A prefetcher must never issue the block that triggered it: the
    demand fetch for that block is already in flight."""

    @given(stream=streams, name=st.sampled_from(["slp", "tlp", "planaria"]))
    @hsettings(max_examples=30, deadline=None)
    def test_trigger_block_never_issued(self, stream, name):
        prefetcher = make_prefetcher(name, DEFAULT_LAYOUT, 0)
        time = 0
        for page, offset in stream:
            time += 40
            trigger = build_access(page, offset, time)
            prefetcher.observe(trigger)
            for was_hit in (False, True):
                for candidate in prefetcher.issue(trigger, was_hit=was_hit):
                    assert candidate.block_addr != trigger.block_addr

    @given(stream=streams)
    @hsettings(max_examples=20, deadline=None)
    def test_tlp_rpt_neighbour_relation_is_symmetric(self, stream):
        """The Ref precomputation must stay consistent under allocation
        and eviction: A lists B as a neighbour iff B lists A."""
        prefetcher = make_prefetcher("tlp", DEFAULT_LAYOUT, 0)
        time = 0
        for page, offset in stream:
            time += 40
            prefetcher.observe(build_access(page, offset, time))
            rpt = prefetcher._rpt
            for page_a, entry in rpt.items():
                for page_b in entry.refs:
                    if page_b in rpt:
                        assert page_a in rpt[page_b].refs
