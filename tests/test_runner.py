"""High-level runner and cross-module integration checks."""

import pytest

from repro.config import SimConfig
from repro.sim.runner import RunResult, compare_prefetchers, run_workload, simulate
from repro.trace.generator import generate_trace, get_profile

LENGTH = 20_000


@pytest.fixture(scope="module")
def cfm_comparison():
    return compare_prefetchers("CFM", ("none", "nextline", "planaria"),
                               length=LENGTH, seed=13)


class TestRunWorkload:
    def test_by_abbreviation(self):
        metrics = run_workload("CFM", "none", length=5_000, seed=1)
        assert metrics.workload == "CFM"
        assert metrics.prefetcher == "none"
        assert metrics.demand_accesses > 0
        assert metrics.amat > 0

    def test_by_profile_object(self):
        metrics = run_workload(get_profile("HoK"), "none", length=5_000, seed=1)
        assert metrics.workload == "HoK"

    def test_simulate_custom_records(self):
        records = generate_trace(get_profile("KO"), 5_000, seed=2)
        result = simulate(records, "none", workload_name="custom")
        assert isinstance(result, RunResult)
        assert result.metrics.workload == "custom"
        assert len(result.simulator.channels) == 4

    def test_deterministic(self):
        first = run_workload("CFM", "none", length=5_000, seed=3)
        second = run_workload("CFM", "none", length=5_000, seed=3)
        assert first.amat == second.amat
        assert first.dram_traffic == second.dram_traffic


class TestComparison:
    def test_same_trace_across_prefetchers(self, cfm_comparison):
        accesses = {m.demand_accesses for m in cfm_comparison.values()}
        assert len(accesses) == 1  # identical demand stream

    def test_none_issues_nothing(self, cfm_comparison):
        base = cfm_comparison["none"]
        assert base.prefetch_issued == 0
        assert base.prefetch_fills == 0
        assert base.accuracy == 0.0

    def test_planaria_improves_over_none(self, cfm_comparison):
        base = cfm_comparison["none"]
        planaria = cfm_comparison["planaria"]
        assert planaria.hit_rate > base.hit_rate
        assert planaria.amat < base.amat
        assert planaria.prefetch_useful > 0

    def test_planaria_attribution_present(self, cfm_comparison):
        useful = cfm_comparison["planaria"].prefetch_useful_by_source
        assert useful.get("slp", 0) > 0
        assert set(useful) <= {"slp", "tlp"}

    def test_planaria_storage_in_budget(self, cfm_comparison):
        planaria = cfm_comparison["planaria"]
        # ~345 KB across 4 channels (bit-level accounting).
        assert planaria.storage_bits == pytest.approx(345.2 * 8192, rel=0.03)

    def test_traffic_and_power_consistent(self, cfm_comparison):
        base = cfm_comparison["none"]
        planaria = cfm_comparison["planaria"]
        assert planaria.dram_traffic >= base.demand_misses
        assert planaria.energy_nj > 0

    def test_paper_scale_config_accepted(self):
        results = compare_prefetchers("CFM", ("none",), length=3_000, seed=1,
                                      config=SimConfig.paper_scale())
        assert results["none"].demand_accesses > 0
