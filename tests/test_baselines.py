"""Baseline prefetchers: BOP, SPP, SMS, next-line, stride, registry, queue."""

import pytest

from repro.config import BOPConfig, PrefetchQueueConfig, SPPConfig
from repro.errors import ConfigError
from repro.geometry import DEFAULT_LAYOUT
from repro.prefetch import (
    BestOffsetPrefetcher,
    NextLinePrefetcher,
    NoPrefetcher,
    PrefetchQueue,
    SMSPrefetcher,
    SignaturePathPrefetcher,
    StridePrefetcher,
    make_prefetcher,
    PREFETCHER_FACTORIES,
)
from repro.prefetch.base import DemandAccess, PrefetchCandidate
from repro.trace.record import DeviceID


def access(page, offset, time, device=DeviceID.CPU, is_read=True):
    return DemandAccess(
        block_addr=(page << 6) | offset, page=page, block_in_segment=offset,
        channel_block=page * 16 + offset, time=time, is_read=is_read,
        device=device,
    )


class TestRegistry:
    def test_all_names_construct(self):
        for name in PREFETCHER_FACTORIES:
            prefetcher = make_prefetcher(name, DEFAULT_LAYOUT, 0)
            assert prefetcher.storage_bits() >= 0

    def test_unknown_name(self):
        with pytest.raises(ConfigError, match="unknown prefetcher"):
            make_prefetcher("oracle", DEFAULT_LAYOUT, 0)

    def test_unknown_name_is_a_helpful_keyerror(self):
        from repro.errors import UnknownPrefetcherError

        with pytest.raises(UnknownPrefetcherError) as excinfo:
            make_prefetcher("oracle", DEFAULT_LAYOUT, 0)
        error = excinfo.value
        # Catchable as either family — dict-style callers use KeyError,
        # config validation uses ConfigError.
        assert isinstance(error, KeyError)
        assert isinstance(error, ConfigError)
        assert error.name == "oracle"
        assert error.known == tuple(sorted(PREFETCHER_FACTORIES))
        # The message names the offender and every registered prefetcher
        # (and str() must not be wrapped in KeyError's repr quoting).
        message = str(error)
        assert message.startswith("unknown prefetcher 'oracle'")
        for name in PREFETCHER_FACTORIES:
            assert name in message

    def test_channel_bound_checked(self):
        with pytest.raises(ValueError):
            make_prefetcher("none", DEFAULT_LAYOUT, 4)


class TestNoPrefetcher:
    def test_never_issues(self):
        none = NoPrefetcher(DEFAULT_LAYOUT, 0)
        trigger = access(1, 1, 0)
        none.observe(trigger)
        assert none.issue(trigger, was_hit=False) == []
        assert none.storage_bits() == 0


class TestNextLine:
    def test_issues_next_blocks_on_miss(self):
        nextline = NextLinePrefetcher(DEFAULT_LAYOUT, 0, degree=2)
        trigger = access(1, 5, 0)
        candidates = nextline.issue(trigger, was_hit=False)
        assert len(candidates) == 2
        assert candidates[0].block_addr == nextline.channel_block_to_block_addr(
            trigger.channel_block + 1
        )

    def test_quiet_on_hit(self):
        nextline = NextLinePrefetcher(DEFAULT_LAYOUT, 0)
        assert nextline.issue(access(1, 5, 0), was_hit=True) == []

    def test_bad_degree(self):
        with pytest.raises(ValueError):
            NextLinePrefetcher(DEFAULT_LAYOUT, 0, degree=0)


class TestStride:
    def test_learns_per_device_stride(self):
        stride = StridePrefetcher(DEFAULT_LAYOUT, 0, confidence_threshold=2)
        for index in range(4):
            stride.observe(access(1, index * 3, index * 10))
        candidates = stride.issue(access(1, 9, 40), was_hit=False)
        assert candidates
        assert candidates[0].block_addr == stride.channel_block_to_block_addr(
            1 * 16 + 9 + 3
        )

    def test_devices_do_not_alias(self):
        stride = StridePrefetcher(DEFAULT_LAYOUT, 0)
        for index in range(4):
            stride.observe(access(1, index * 2, index * 10, DeviceID.CPU))
            stride.observe(access(2, 15 - index, index * 10 + 5, DeviceID.GPU))
        # CPU stream unaffected by interleaved GPU accesses.
        assert stride.issue(access(1, 8, 100, DeviceID.CPU), was_hit=False)

    def test_no_confidence_no_prefetch(self):
        stride = StridePrefetcher(DEFAULT_LAYOUT, 0)
        stride.observe(access(1, 0, 0))
        stride.observe(access(1, 7, 10))
        assert stride.issue(access(1, 7, 10), was_hit=False) == []


class TestBOP:
    def test_learns_dominant_offset(self):
        config = BOPConfig(round_max=4, score_max=8)
        bop = BestOffsetPrefetcher(DEFAULT_LAYOUT, 0, config)
        bop.rr_insert_delay = 0  # immediate RR for the unit test
        # Feed a pure stride-2 miss stream until a phase completes.
        block = 0
        time = 0
        while bop.learning_phases_completed == 0:
            trigger = access(block // 16, block % 16, time)
            bop.issue(trigger, was_hit=False)
            block += 2
            time += 30
        assert bop.best_offset == 2

    def test_bad_score_disables(self):
        config = BOPConfig(round_max=1, bad_score=2)
        bop = BestOffsetPrefetcher(DEFAULT_LAYOUT, 0, config)
        # Random-looking addresses: no offset ever scores.
        import random

        rng = random.Random(0)
        time = 0
        while bop.learning_phases_completed == 0:
            page = rng.randrange(10_000)
            bop.issue(access(page, rng.randrange(16), time), was_hit=False)
            time += 30
        assert bop.best_offset is None
        assert bop.issue(access(1, 1, time + 10), was_hit=False) == []

    def test_prefetched_hit_trigger_follows_config(self):
        trigger = access(1, 1, 0)
        quiet = BestOffsetPrefetcher(DEFAULT_LAYOUT, 0)
        assert quiet.issue(trigger, was_hit=True) == []
        assert quiet.issue(trigger, was_hit=True, prefetched_hit=True) == []
        chaining = BestOffsetPrefetcher(
            DEFAULT_LAYOUT, 0, BOPConfig(chain_on_prefetch_hit=True)
        )
        candidates = chaining.issue(trigger, was_hit=True, prefetched_hit=True)
        assert len(candidates) == 1

    def test_rr_insert_delayed(self):
        bop = BestOffsetPrefetcher(DEFAULT_LAYOUT, 0)
        bop.issue(access(1, 1, 0), was_hit=False)
        # The inserted address only lands in RR after the fill delay.
        assert not bop._rr_contains(1 * 16 + 1)
        bop.issue(access(50, 0, bop.rr_insert_delay + 1), was_hit=False)
        assert bop._rr_contains(1 * 16 + 1)

    def test_storage_accounts_rr_and_scores(self):
        bop = BestOffsetPrefetcher(DEFAULT_LAYOUT, 0)
        assert bop.storage_bits() > bop.config.rr_table_entries * 32


class TestSPP:
    def feed_regular_pages(self, spp, pages, offsets):
        time = 0
        for page in pages:
            for offset in offsets:
                trigger = access(page, offset, time)
                spp._learn(trigger)
                time += 20

    def test_predicts_learned_deltas(self):
        spp = SignaturePathPrefetcher(DEFAULT_LAYOUT, 0)
        offsets = [1, 3, 5, 7, 9]
        self.feed_regular_pages(spp, range(100, 160), offsets)
        trigger = access(200, 1, 10_000)
        spp._learn(trigger)
        spp._learn(access(200, 3, 10_020))
        candidates = spp.issue(access(200, 3, 10_040), was_hit=False)
        predicted = {c.block_addr & 0xF for c in candidates}
        assert 5 in predicted  # the next stride-2 block

    def test_quiet_without_signature(self):
        spp = SignaturePathPrefetcher(DEFAULT_LAYOUT, 0)
        assert spp.issue(access(1, 1, 0), was_hit=False) == []

    def test_counter_halving_keeps_ratios(self):
        from repro.prefetch.spp import _PatternEntry

        entry = _PatternEntry()
        # Alternating deltas: each should converge near 50% confidence,
        # not saturate to 1.0 as a never-halved counter would.
        for _ in range(100):
            entry.update(+2, counter_max=15)
            entry.update(+5, counter_max=15)
        best_delta, confidence = entry.best()
        assert 0.3 < confidence < 0.8

    def test_delta_slot_replacement(self):
        from repro.prefetch.spp import _PatternEntry

        entry = _PatternEntry()
        for delta in (1, 2, 3, 4):
            entry.update(delta, counter_max=15)
        entry.update(5, counter_max=15)  # evicts the weakest slot
        assert len(entry.deltas) == 4
        assert 5 in entry.deltas

    def test_st_capacity(self):
        config = SPPConfig(signature_table_entries=4)
        spp = SignaturePathPrefetcher(DEFAULT_LAYOUT, 0, config)
        for page in range(10):
            spp._learn(access(page, 1, page * 10))
        assert len(spp._signature_table) == 4


class TestSMS:
    def test_learns_and_replays_by_surrogate_signature(self):
        sms = SMSPrefetcher(DEFAULT_LAYOUT, 0, generation_timeout=100)
        for offset in (2, 5, 9):
            sms.observe(access(10, offset, offset))
        # Expire the generation.
        sms.observe(access(999, 0, 10_000))
        trigger = access(20, 2, 10_100)  # same device + trigger offset
        sms.observe(trigger)
        candidates = sms.issue(trigger, was_hit=False)
        offsets = {c.block_addr & 0xF for c in candidates}
        assert {5, 9} <= offsets

    def test_device_aliasing_is_lossy(self):
        # Two different flows on the same device overwrite each other's
        # pattern: the ablation's core failure mode.
        sms = SMSPrefetcher(DEFAULT_LAYOUT, 0, generation_timeout=100)
        for offset in (2, 5, 9):
            sms.observe(access(10, offset, offset, DeviceID.CPU))
        sms.observe(access(999, 0, 10_000))
        for offset in (2, 11, 13):
            sms.observe(access(30, offset, 10_100 + offset, DeviceID.CPU))
        sms.observe(access(998, 0, 30_000))
        trigger = access(40, 2, 30_100, DeviceID.CPU)
        sms.observe(trigger)
        candidates = sms.issue(trigger, was_hit=False)
        offsets = {c.block_addr & 0xF for c in candidates}
        assert offsets == {11, 13}  # first flow's pattern was clobbered


class TestPrefetchQueue:
    def make_queue(self, **kwargs):
        return PrefetchQueue(PrefetchQueueConfig(**kwargs))

    def candidates(self, *blocks):
        return [PrefetchCandidate(block_addr=block, source="x") for block in blocks]

    def test_accepts_and_drains(self):
        queue = self.make_queue()
        accepted = queue.push(self.candidates(1, 2, 3))
        assert len(accepted) == 3
        assert len(queue.pop_all()) == 3
        assert len(queue) == 0

    def test_drops_duplicates(self):
        queue = self.make_queue()
        queue.push(self.candidates(1, 2))
        queue.pop_all()
        accepted = queue.push(self.candidates(2, 3))
        assert [c.block_addr for c in accepted] == [3]
        assert queue.dropped_duplicate == 1

    def test_degree_cap(self):
        queue = self.make_queue(max_degree=2)
        accepted = queue.push(self.candidates(1, 2, 3, 4))
        assert len(accepted) == 2
        assert queue.dropped_degree > 0

    def test_depth_cap(self):
        queue = self.make_queue(depth=2, max_degree=16)
        accepted = queue.push(self.candidates(1, 2, 3))
        assert len(accepted) == 2
        assert queue.dropped_full == 1

    def test_duplicates_allowed_when_disabled(self):
        queue = self.make_queue(drop_duplicates=False)
        queue.push(self.candidates(1))
        queue.pop_all()
        assert len(queue.push(self.candidates(1))) == 1
