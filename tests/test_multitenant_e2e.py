"""Multi-tenant end-to-end bit-identity across execution paths.

The issue's acceptance contract: one 2-tenant merged workload, run

1. offline through the scalar engine,
2. offline through the vectorized batch engine,
3. streamed through the service in chunks — with an eviction +
   checkpoint-resume in the middle, fed by the checkpointable
   :class:`StreamingTraceMerger`,

must report identical ``RunMetrics`` — including the per-tenant
``tenant_stats`` QoS table — on every path.  Plus the observability
surfacing: per-tenant epoch columns and Prometheus tenant samples.
"""

import functools

import pytest

from repro.config import SimConfig
from repro.obs.export import prometheus_text, snapshot_samples
from repro.service.session import SessionManager
from repro.sim.engine import channel_warmup_counts
from repro.sim.runner import simulate
from repro.tenancy import StreamingTraceMerger, TenantSpec, tenant_qos
from repro.tenancy.experiment import multitenant_experiment, write_bench

CHUNK = 700


@functools.lru_cache(maxsize=None)
def _config():
    return SimConfig.experiment_scale()


def _specs():
    return [TenantSpec("CFM", "CPU", length=2200, seed=11),
            TenantSpec("HoK", "GPU", length=1800, seed=12,
                       phase_offset=64, intensity=2.0)]


@functools.lru_cache(maxsize=None)
def _merged():
    from repro.tenancy import merge_traces
    return merge_traces(_specs(), _config().layout)


@functools.lru_cache(maxsize=None)
def _offline(engine_mode):
    return simulate(_merged(), "planaria", workload_name="stream",
                    config=_config(), engine_mode=engine_mode).metrics


class TestThreePathBitIdentity:
    def test_scalar_equals_batch_with_tenant_stats(self):
        scalar = _offline("scalar")
        batch = _offline("batch")
        assert batch == scalar
        assert list(batch.tenant_stats) == ["CPU", "GPU"]

    def test_served_stream_with_checkpoint_resume_matches_offline(
            self, tmp_path):
        merged = _merged()
        warmup = channel_warmup_counts(merged, _config())
        merger = StreamingTraceMerger(_specs(), _config().layout)
        ckpt = tmp_path / "ckpt"

        with SessionManager(checkpoint_dir=ckpt,
                            default_config=_config()) as manager:
            manager.open("mt", "planaria", warmup_records=warmup)
            # First half of the merged stream, from the streaming merger.
            while merger.remaining > len(merger) // 2:
                manager.feed("mt", merger.next_chunk(CHUNK))
            manager.snapshot("mt")  # quiesce before checkpointing
            manager.checkpoint("mt")
            merger_state = merger.state_dict()
            assert manager.evict_idle(0.0) == ["mt"]

        # "Crash": new manager + new merger resume from their checkpoints.
        resumed = StreamingTraceMerger(_specs(), _config().layout)
        resumed.load_state(merger_state)
        with SessionManager(checkpoint_dir=ckpt,
                            default_config=_config()) as manager:
            snapshot = manager.open("mt", "planaria", resume=True)
            assert snapshot.records_fed == len(merged) - resumed.remaining
            while not resumed.exhausted:
                manager.feed("mt", resumed.next_chunk(CHUNK))
            final = manager.close("mt")

        assert final.records_fed == len(merged)
        assert final.metrics == _offline("scalar")
        assert final.metrics.tenant_stats == _offline("batch").tenant_stats

    def test_tenant_qos_view_is_consistent(self):
        qos = tenant_qos(_offline("scalar"))
        assert set(qos) == {"CPU", "GPU"}
        for device, stats in qos.items():
            assert stats["accesses"] > 0
            assert 0.0 <= stats["hit_rate"] <= 1.0
            assert stats["hits"] == pytest.approx(
                stats["hit_rate"] * stats["accesses"])
        # Tenant attribution is post-warmup; the cache-level access count
        # includes the warmup prefix.
        total = sum(stats["accesses"] for stats in qos.values())
        warmup = sum(channel_warmup_counts(_merged(), _config()))
        assert total == len(_merged()) - warmup


class TestObservabilitySurfacing:
    def test_epoch_timeline_carries_per_tenant_columns(self):
        from repro.obs import attach_observability
        from repro.prefetch.registry import make_prefetcher
        from repro.sim.engine import SystemSimulator

        simulator = SystemSimulator(
            _config(),
            lambda layout, channel: make_prefetcher("planaria", layout,
                                                    channel))
        obs = attach_observability(simulator, epoch_records=256)
        simulator.run(_merged())
        epochs = obs.merged_timeline(include_partial=True)
        assert epochs
        accesses = {}
        for epoch in epochs:
            for device, count in epoch.device_accesses.items():
                accesses[device] = accesses.get(device, 0) + count
            for device, hits in epoch.device_hits.items():
                assert hits <= epoch.device_accesses.get(device, 0)
        # Epoch deltas sum back to the run totals.
        expected = _offline("scalar").tenant_stats
        assert accesses == {device: stats["accesses"]
                            for device, stats in expected.items()}

    def test_prometheus_exposes_tenant_series(self):
        class _Snapshot:
            records_fed = chunks_fed = 1
            metrics = _offline("scalar")

        text = prometheus_text(snapshot_samples("mt", _Snapshot()))
        for device in ("CPU", "GPU"):
            assert (f'planaria_tenant_hit_rate{{device="{device}",'
                    f'session="mt"}}') in text
        assert "# HELP planaria_tenant_amat_cycles" in text


class TestContentionExperiment:
    def test_report_and_bench_artifact(self, tmp_path):
        specs = [TenantSpec("CFM", "CPU", length=1200, seed=1),
                 TenantSpec("HoK", "GPU", length=1200, seed=2)]
        report = multitenant_experiment(specs, prefetchers=("none",))
        assert report.experiment_id == "multitenant"
        runs = {row[0] for row in report.rows}
        assert runs == {"none/shared", "none/partitioned"}
        assert len(report.rows) == 4  # 2 tenants x 2 modes
        assert "shared_amat_delta_mean" in report.summary
        assert "interference" in report.details

        import json
        path = write_bench(report, tmp_path / "BENCH_multitenant.json")
        document = json.loads(path.read_text())
        assert document["rows"] == report.rows
        assert document["details"]["way_partitions"] == [
            "CPU:0xff", "GPU:0xff00"]
