"""Synthetic workload generator: determinism, calibration properties."""

import dataclasses

import pytest
from hypothesis import given, settings as hsettings, strategies as st

from repro.errors import ConfigError
from repro.geometry import DEFAULT_LAYOUT
from repro.trace.generator import (
    WORKLOADS,
    TraceSynthesizer,
    WorkloadProfile,
    generate_trace,
    get_profile,
    list_workloads,
)
from repro.trace.generator.patterns import (
    BLOCKS_PER_PAGE,
    DENSITY_CAP,
    assign_page_patterns,
    build_pattern_library,
    make_pattern,
)
import random


class TestWorkloadRegistry:
    def test_all_ten_applications(self):
        assert list_workloads() == [
            "CFM", "HoK", "Id-V", "QSM", "TikT",
            "Fort", "HI3", "KO", "NBA2", "PM",
        ]
        assert set(WORKLOADS) == set(list_workloads())

    def test_table2_metadata(self):
        assert get_profile("CFM").paper_length_millions == pytest.approx(67.48)
        assert get_profile("HoK").name == "Honor of Kings"
        assert get_profile("TikT").description == "Short video sharing app"

    def test_unknown_app(self):
        with pytest.raises(KeyError, match="CFM"):
            get_profile("WoW")

    def test_disjoint_address_spaces(self):
        ranges = []
        for abbr in list_workloads():
            profile = get_profile(abbr)
            ranges.append((profile.page_base, profile.page_base + profile.num_pages))
        ranges.sort()
        for (_, end), (start, _) in zip(ranges, ranges[1:]):
            assert end <= start


class TestProfileValidation:
    def test_bad_probability(self):
        with pytest.raises(ConfigError):
            WorkloadProfile(name="x", abbr="x", snapshot_stability=1.5)

    def test_noise_plus_stream_bound(self):
        with pytest.raises(ConfigError):
            WorkloadProfile(name="x", abbr="x", noise_fraction=0.6,
                            stream_fraction=0.5)

    def test_stride_bounds(self):
        with pytest.raises(ConfigError):
            WorkloadProfile(name="x", abbr="x", pattern_strides=(0,))
        with pytest.raises(ConfigError):
            WorkloadProfile(name="x", abbr="x", pattern_strides=())


class TestPatterns:
    def test_density_cap(self):
        rng = random.Random(0)
        for _ in range(50):
            pattern = make_pattern(rng, mean_blocks=60.0)
            assert bin(pattern).count("1") <= DENSITY_CAP

    def test_pattern_nonempty(self):
        rng = random.Random(1)
        for _ in range(50):
            assert make_pattern(rng, mean_blocks=2.0) != 0

    def test_pattern_fits_page(self):
        rng = random.Random(2)
        for _ in range(50):
            assert make_pattern(rng, mean_blocks=30.0) < (1 << BLOCKS_PER_PAGE)

    def test_assignment_covers_all_pages(self):
        profile = get_profile("CFM")
        rng = random.Random(3)
        library = build_pattern_library(profile, rng)
        assert len(library) == profile.pattern_library_size
        assignments = assign_page_patterns(profile, library, rng)
        assert len(assignments) == profile.num_pages
        assert all(pattern in library for pattern in assignments[:200])

    def test_sub_run_sharing(self):
        # Contiguous sub-runs share one pattern choice.
        profile = dataclasses.replace(get_profile("CFM"), pattern_run_length=6)
        rng = random.Random(4)
        library = build_pattern_library(profile, rng)
        assignments = assign_page_patterns(profile, library, rng)
        run = profile.pattern_run_length
        cluster = profile.cluster_size
        # Check sub-runs inside the first few clusters.
        for cluster_start in range(0, 5 * cluster, cluster):
            for run_start in range(cluster_start, cluster_start + cluster - run, run):
                segment = assignments[run_start:run_start + run]
                assert len(set(segment)) == 1


class TestSynthesizer:
    def test_deterministic(self):
        profile = get_profile("CFM")
        first = generate_trace(profile, 2000, seed=5)
        second = generate_trace(profile, 2000, seed=5)
        assert first == second

    def test_seed_changes_trace(self):
        profile = get_profile("CFM")
        assert generate_trace(profile, 2000, seed=1) != generate_trace(profile, 2000, seed=2)

    def test_length(self):
        assert len(generate_trace(get_profile("HoK"), 1234, seed=0)) == 1234
        assert generate_trace(get_profile("HoK"), 0, seed=0) == []

    def test_negative_length_rejected(self):
        synthesizer = TraceSynthesizer(get_profile("HoK"), seed=0)
        with pytest.raises(ConfigError):
            list(synthesizer.records(-1))

    def test_arrival_times_monotonic(self):
        records = generate_trace(get_profile("QSM"), 3000, seed=9)
        times = [record.arrival_time for record in records]
        assert all(earlier < later for earlier, later in zip(times, times[1:]))

    def test_addresses_block_aligned_in_working_set(self):
        profile = get_profile("KO")
        records = generate_trace(profile, 3000, seed=2)
        low = profile.page_base
        high = profile.page_base + profile.num_pages
        for record in records:
            assert record.address % 64 == 0
            assert low <= DEFAULT_LAYOUT.page_number(record.address) < high

    def test_write_fraction_roughly_matches(self):
        profile = get_profile("CFM")
        records = generate_trace(profile, 20_000, seed=3)
        writes = sum(1 for record in records if record.is_write)
        assert writes / len(records) == pytest.approx(profile.write_fraction, abs=0.05)

    def test_channel_balance(self):
        records = generate_trace(get_profile("CFM"), 20_000, seed=4)
        counts = [0] * 4
        for record in records:
            counts[DEFAULT_LAYOUT.channel(record.address)] += 1
        for count in counts:
            assert count > len(records) * 0.15

    def test_page_pattern_lookup_wraps(self):
        synthesizer = TraceSynthesizer(get_profile("CFM"), seed=0)
        profile = get_profile("CFM")
        assert synthesizer.page_pattern(0) == synthesizer.page_pattern(profile.num_pages)

    def test_order_entropy_zero_is_sorted(self):
        profile = dataclasses.replace(
            get_profile("CFM"), episode_order_entropy=0.0,
            episode_concurrency=1, noise_fraction=0.0, stream_fraction=0.0,
            intra_episode_reuse=0.0,
        )
        records = generate_trace(profile, 500, seed=6)
        # With a single episode at a time and zero entropy, block offsets
        # within one page visit are non-decreasing; a drop only happens
        # when the page is immediately revisited (a new episode starts).
        last_page, last_block = None, -1
        transitions = violations = 0
        for record in records:
            page = DEFAULT_LAYOUT.page_number(record.address)
            block = DEFAULT_LAYOUT.block_in_page(record.address)
            if page == last_page:
                transitions += 1
                if block < last_block:
                    violations += 1
            last_page, last_block = page, block
        assert transitions > 50
        assert violations / transitions < 0.1

    def test_layout_mismatch_rejected(self):
        from repro.geometry import AddressLayout

        small_pages = AddressLayout(page_size=2048)
        with pytest.raises(ConfigError):
            TraceSynthesizer(get_profile("CFM"), layout=small_pages)

    @given(seed=st.integers(min_value=0, max_value=2**16))
    @hsettings(max_examples=10, deadline=None)
    def test_any_seed_generates_valid_records(self, seed):
        records = generate_trace(get_profile("PM"), 300, seed=seed)
        assert len(records) == 300
        for record in records:
            assert record.address >= 0
            assert record.arrival_time >= 0


class TestPhases:
    def test_no_phases_by_default(self):
        synthesizer = TraceSynthesizer(get_profile("CFM"), seed=1)
        list(synthesizer.records(2000))
        assert synthesizer.phase_switches == 0

    def test_switch_count(self):
        profile = dataclasses.replace(get_profile("CFM"), phase_length=500)
        synthesizer = TraceSynthesizer(profile, seed=1)
        list(synthesizer.records(2600))
        assert synthesizer.phase_switches == 5

    def test_zero_drift_keeps_patterns(self):
        profile = dataclasses.replace(get_profile("CFM"), phase_length=500,
                                      phase_drift=0.0)
        synthesizer = TraceSynthesizer(profile, seed=1)
        before = [synthesizer.page_pattern(page) for page in range(100)]
        list(synthesizer.records(3000))
        after = [synthesizer.page_pattern(page) for page in range(100)]
        assert before == after

    def test_full_drift_changes_patterns(self):
        profile = dataclasses.replace(get_profile("CFM"), phase_length=500,
                                      phase_drift=1.0)
        synthesizer = TraceSynthesizer(profile, seed=1)
        before = [synthesizer.page_pattern(page) for page in range(400)]
        list(synthesizer.records(1000))
        after = [synthesizer.page_pattern(page) for page in range(400)]
        assert before != after

    def test_drift_preserves_sub_run_sharing(self):
        profile = dataclasses.replace(get_profile("CFM"), phase_length=500,
                                      phase_drift=1.0, pattern_run_length=6)
        synthesizer = TraceSynthesizer(profile, seed=1)
        list(synthesizer.records(1000))
        run = profile.pattern_run_length
        for run_start in range(0, 5 * run, run):
            patterns = {synthesizer.page_pattern(page)
                        for page in range(run_start, run_start + run)}
            assert len(patterns) == 1

    def test_drift_probability_validated(self):
        with pytest.raises(ConfigError):
            WorkloadProfile(name="x", abbr="x", phase_drift=1.5)
        with pytest.raises(ConfigError):
            WorkloadProfile(name="x", abbr="x", phase_length=-1)
