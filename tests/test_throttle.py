"""Accuracy-feedback throttling wrapper."""

import pytest

from repro.geometry import DEFAULT_LAYOUT
from repro.prefetch import NextLinePrefetcher, make_prefetcher
from repro.prefetch.base import DemandAccess
from repro.prefetch.throttle import AccuracyThrottle
from repro.trace.record import DeviceID


def access(page, offset, time):
    return DemandAccess(
        block_addr=(page << 6) | offset, page=page, block_in_segment=offset,
        channel_block=page * 16 + offset, time=time, is_read=True,
        device=DeviceID.CPU,
    )


def make_throttle(**kwargs):
    inner = NextLinePrefetcher(DEFAULT_LAYOUT, 0)
    defaults = dict(window=16, low_watermark=0.4, high_watermark=0.6,
                    min_samples=4)
    defaults.update(kwargs)
    return AccuracyThrottle(inner, **defaults)


class TestConstruction:
    def test_name_composes(self):
        assert make_throttle().name == "nextline+throttle"

    def test_bad_watermarks(self):
        with pytest.raises(ValueError):
            make_throttle(low_watermark=0.7, high_watermark=0.5)
        with pytest.raises(ValueError):
            make_throttle(low_watermark=-0.1)

    def test_bad_window(self):
        with pytest.raises(ValueError):
            make_throttle(window=0)
        with pytest.raises(ValueError):
            make_throttle(min_samples=0)

    def test_registry_variants(self):
        for name in ("bop-throttled", "planaria-throttled"):
            prefetcher = make_prefetcher(name, DEFAULT_LAYOUT, 0)
            assert isinstance(prefetcher, AccuracyThrottle)


class TestGating:
    def test_passes_through_before_min_samples(self):
        throttle = make_throttle()
        assert throttle.usefulness is None
        assert throttle.issue(access(1, 1, 0), was_hit=False)

    def test_suspends_on_low_usefulness(self):
        throttle = make_throttle()
        for _ in range(8):
            throttle.notify_unused()
        assert throttle.suspended
        assert throttle.issue(access(1, 1, 0), was_hit=False) == []
        assert throttle.dropped_while_suspended > 0
        assert throttle.suspensions == 1

    def test_recovers_on_high_usefulness(self):
        throttle = make_throttle()
        for _ in range(8):
            throttle.notify_unused()
        assert throttle.suspended
        for _ in range(16):
            throttle.notify_useful()
        assert not throttle.suspended
        assert throttle.issue(access(1, 1, 0), was_hit=False)

    def test_hysteresis_between_watermarks(self):
        throttle = make_throttle(window=10, low_watermark=0.3,
                                 high_watermark=0.7, min_samples=10)
        # Land the estimate at 0.5: above low, below high.
        for index in range(10):
            (throttle.notify_useful if index % 2 else throttle.notify_unused)()
        assert not throttle.suspended  # never dipped below low

    def test_learning_never_suspended(self):
        from repro.core.slp import SLPPrefetcher

        inner = SLPPrefetcher(DEFAULT_LAYOUT, 0)
        throttle = AccuracyThrottle(inner, min_samples=2, window=8)
        throttle.notify_unused()
        throttle.notify_unused()
        assert throttle.suspended
        throttle.observe(access(5, 1, 0))
        assert inner.table_sizes()["filter"] == 1  # still learning

    def test_storage_and_activity_delegate(self):
        throttle = make_throttle()
        assert throttle.storage_bits() >= throttle.inner.storage_bits()
        assert throttle.activity is throttle.inner.activity


class TestEndToEnd:
    def test_throttling_cuts_wasteful_traffic(self):
        from repro.sim.runner import compare_prefetchers

        results = compare_prefetchers(
            "NBA2", ("none", "bop", "bop-throttled"), length=20_000, seed=7)
        base = results["none"]
        raw = results["bop"].traffic_overhead_vs(base)
        throttled = results["bop-throttled"].traffic_overhead_vs(base)
        assert throttled < raw * 0.6  # most junk traffic suppressed

    def test_throttling_keeps_planaria_gains(self):
        from repro.sim.runner import compare_prefetchers

        results = compare_prefetchers(
            "CFM", ("none", "planaria", "planaria-throttled"),
            length=20_000, seed=7)
        base = results["none"]
        accurate = results["planaria"].amat_reduction_vs(base)
        throttled = results["planaria-throttled"].amat_reduction_vs(base)
        # An accurate prefetcher should rarely be suspended.
        assert throttled > accurate * 0.7
