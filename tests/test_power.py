"""Power model: DRAM event energies, prefetcher SRAM energy, reports."""

import pytest

from repro.config import DRAMTiming, PowerConfig
from repro.dram.stats import DRAMStats
from repro.power import (
    DRAMPowerModel,
    MemorySystemPower,
    PrefetcherPowerModel,
)
from repro.power.prefetcher_power import PrefetcherActivity


def stats_with(**kwargs):
    stats = DRAMStats()
    for name, value in kwargs.items():
        setattr(stats, name, value)
    return stats


class TestDRAMPower:
    def setup_method(self):
        self.model = DRAMPowerModel(PowerConfig(), DRAMTiming())

    def test_idle_channel_only_background(self):
        breakdown = self.model.estimate(stats_with(elapsed_cycles=10_000))
        assert breakdown.activate_nj == 0.0
        assert breakdown.read_nj == 0.0
        assert breakdown.background_nj > 0.0
        assert breakdown.total_nj == pytest.approx(breakdown.background_nj)

    def test_energy_scales_with_events(self):
        one = self.model.estimate(stats_with(activates=1, elapsed_cycles=1000))
        ten = self.model.estimate(stats_with(activates=10, elapsed_cycles=1000))
        assert ten.activate_nj == pytest.approx(10 * one.activate_nj)

    def test_reads_and_prefetches_cost_the_same(self):
        demand = self.model.estimate(stats_with(demand_reads=5, elapsed_cycles=100))
        prefetch = self.model.estimate(stats_with(prefetch_reads=5, elapsed_cycles=100))
        assert demand.read_nj == pytest.approx(prefetch.read_nj)

    def test_average_power(self):
        breakdown = self.model.estimate(stats_with(
            demand_reads=100, activates=50, elapsed_cycles=100_000,
            data_bus_cycles=800,
        ))
        assert breakdown.average_power_mw > 0
        assert breakdown.elapsed_seconds == pytest.approx(100_000 / 1.6e9)

    def test_zero_elapsed(self):
        breakdown = self.model.estimate(stats_with())
        assert breakdown.average_power_mw == 0.0

    def test_refresh_energy(self):
        breakdown = self.model.estimate(stats_with(refreshes=3, elapsed_cycles=10_000))
        assert breakdown.refresh_nj > 0


class TestPrefetcherPower:
    def test_dynamic_energy(self):
        model = PrefetcherPowerModel(PowerConfig())
        quiet = model.energy_nj(PrefetcherActivity(), elapsed_cycles=1000)
        busy = model.energy_nj(
            PrefetcherActivity(table_reads=1000, table_writes=500),
            elapsed_cycles=1000,
        )
        assert busy > quiet

    def test_leakage_scales_with_storage(self):
        model = PrefetcherPowerModel(PowerConfig())
        small = model.energy_nj(PrefetcherActivity(storage_bits=8 * 1024),
                                elapsed_cycles=1_000_000)
        large = model.energy_nj(PrefetcherActivity(storage_bits=8 * 1024 * 100),
                                elapsed_cycles=1_000_000)
        assert large > small


class TestMemorySystemPower:
    def test_report_composition(self):
        system = MemorySystemPower(PowerConfig(), DRAMTiming())
        report = system.report(
            stats_with(demand_reads=100, activates=40, elapsed_cycles=50_000),
            PrefetcherActivity(table_reads=200, table_writes=100,
                               storage_bits=1 << 20),
        )
        assert report.total_nj == pytest.approx(
            report.dram.total_nj + report.prefetcher_nj
        )
        assert report.average_power_mw > 0

    def test_overhead_vs_baseline(self):
        system = MemorySystemPower(PowerConfig(), DRAMTiming())
        baseline = system.report(
            stats_with(demand_reads=100, elapsed_cycles=50_000),
            PrefetcherActivity(),
        )
        heavier = system.report(
            stats_with(demand_reads=100, prefetch_reads=50, activates=20,
                       elapsed_cycles=50_000),
            PrefetcherActivity(table_reads=1000, storage_bits=1 << 20),
        )
        assert heavier.overhead_vs(baseline) > 0
        assert baseline.overhead_vs(heavier) < 0
        assert baseline.overhead_vs(baseline) == pytest.approx(0.0)

    def test_prefetching_can_reduce_power_via_row_hits(self):
        # Same read volume; the prefetched run needs half the activates.
        system = MemorySystemPower(PowerConfig(), DRAMTiming())
        scattered = system.report(
            stats_with(demand_reads=2000, activates=1800, elapsed_cycles=200_000),
            PrefetcherActivity(),
        )
        bursty = system.report(
            stats_with(demand_reads=1000, prefetch_reads=1040, activates=700,
                       elapsed_cycles=200_000),
            PrefetcherActivity(table_reads=2000, table_writes=1000,
                               storage_bits=2_800_000),
        )
        assert bursty.overhead_vs(scattered) < 0  # the HI3/PM effect
