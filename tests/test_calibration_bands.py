"""Calibration regression bands.

Broad per-app guards over the trace-level targets (Figures 4/5) and the
per-app prefetcher behaviour classes that EXPERIMENTS.md reports.  They
run at reduced length, so the bands are intentionally loose: the goal is to
catch a generator or simulator change that silently breaks an app's
*character* (e.g. Fort becoming SLP-friendly), not to pin exact numbers.
"""

import pytest

from repro.analysis import learnable_neighbor_fraction, window_overlap_rate
from repro.sim.runner import compare_prefetchers
from repro.trace.generator import generate_trace, get_profile, list_workloads

LENGTH = 30_000
SEED = 17


@pytest.fixture(scope="module")
def traces():
    return {app: generate_trace(get_profile(app), LENGTH, seed=SEED)
            for app in list_workloads()}


class TestTraceLevelTargets:
    def test_overlap_rate_band(self, traces):
        # Figure 4: every app's snapshots are stable (paper avg > 0.80;
        # short traces run a little lower).
        for app, records in traces.items():
            overlap = window_overlap_rate(records).mean_overlap
            assert 0.65 <= overlap <= 0.95, (app, overlap)

    def test_neighbor_fraction_band(self, traces):
        # Figure 5: the neighbouring property exists at every distance and
        # grows with it.
        for app, records in traces.items():
            result = learnable_neighbor_fraction(records, (4, 64))
            at4, at64 = result.fraction_at(4), result.fraction_at(64)
            assert 0.05 <= at4 <= 0.45, (app, at4)
            assert at4 <= at64 <= 0.75, (app, at64)

    def test_working_sets_exceed_experiment_cache(self, traces):
        # The scaled SC (8192 blocks) must stay under pressure or every
        # prefetcher comparison degenerates.  At this reduced trace length
        # the reuse-heaviest app (HI3) sits near the capacity point, so the
        # floor is set just below it; full-length benches run well above.
        for app, records in traces.items():
            blocks = {record.address >> 6 for record in records}
            assert len(blocks) > 6_500, (app, len(blocks))


class TestBehaviourClasses:
    @pytest.fixture(scope="class")
    def planaria_runs(self, traces):
        from repro.sim.runner import simulate

        runs = {}
        for app in ("CFM", "Fort", "NBA2"):
            results = {}
            for name in ("none", "planaria"):
                results[name] = simulate(traces[app], name,
                                         workload_name=app).metrics
            runs[app] = results
        return runs

    def test_planaria_band_per_app(self, planaria_runs):
        for app, results in planaria_runs.items():
            reduction = results["planaria"].amat_reduction_vs(results["none"])
            assert 0.05 <= reduction <= 0.50, (app, reduction)

    def test_slp_tlp_character(self, planaria_runs):
        cfm = planaria_runs["CFM"]["planaria"].prefetch_useful_by_source
        fort = planaria_runs["Fort"]["planaria"].prefetch_useful_by_source
        cfm_slp_share = cfm.get("slp", 0) / max(1, sum(cfm.values()))
        fort_slp_share = fort.get("slp", 0) / max(1, sum(fort.values()))
        assert cfm_slp_share > 0.6        # SLP app
        assert fort_slp_share < 0.5       # TLP app
