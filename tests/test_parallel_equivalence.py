"""Serial/parallel equivalence: the executor's bit-identity contract.

The whole point of the parallel execution layer (repro.sim.executor) is
that it changes *where* simulations run, never *what* they compute.  These
tests drive the same seeded workload through ``parallelism="serial"`` and
``parallelism=2`` at both grains and require every ``RunMetrics`` field —
including floats and the Figure-9 per-source attribution counts — to be
exactly equal.
"""

import pytest

from repro.sim.executor import pool_available, resolve_parallelism
from repro.sim.runner import compare_prefetchers, run_workload

APP = "CFM"
LENGTH = 8_000
SEED = 3
needs_pool = pytest.mark.skipif(
    not pool_available(),
    reason="multiprocessing pool unavailable in this environment")


def assert_identical(serial, parallel):
    """Field-for-field equality, with a readable per-field diff on failure."""
    assert serial.workload == parallel.workload
    assert serial.prefetcher == parallel.prefetcher
    for field_name in ("amat", "hit_rate", "demand_accesses", "demand_misses",
                       "dram_traffic", "prefetch_issued", "prefetch_fills",
                       "prefetch_useful", "prefetch_useful_by_source",
                       "prefetch_unused", "power_mw", "energy_nj",
                       "storage_bits", "p99_latency"):
        serial_value = getattr(serial, field_name)
        parallel_value = getattr(parallel, field_name)
        assert serial_value == parallel_value, (
            f"{serial.prefetcher}.{field_name}: serial={serial_value!r} "
            f"parallel={parallel_value!r}")
    # Derived quantities follow, but assert them anyway: they are what
    # figures are built from.
    assert serial.accuracy == parallel.accuracy
    assert serial.coverage == parallel.coverage
    # The belt-and-braces check: frozen-dataclass equality over all fields.
    assert serial == parallel


@needs_pool
def test_task_grain_equivalence():
    """compare_prefetchers: process-pool tasks == in-process loop."""
    serial = compare_prefetchers(APP, ("none", "bop", "planaria"),
                                 length=LENGTH, seed=SEED,
                                 parallelism="serial")
    parallel = compare_prefetchers(APP, ("none", "bop", "planaria"),
                                   length=LENGTH, seed=SEED, parallelism=2)
    assert list(serial) == list(parallel)
    for name in serial:
        assert_identical(serial[name], parallel[name])


@needs_pool
def test_task_grain_figure9_attribution():
    """Planaria's SLP/TLP attribution survives the process boundary."""
    serial = compare_prefetchers(APP, ("planaria",), length=LENGTH,
                                 seed=SEED, parallelism="serial")["planaria"]
    parallel = compare_prefetchers(APP, ("planaria",), length=LENGTH,
                                   seed=SEED, parallelism=2)["planaria"]
    assert serial.prefetch_useful_by_source == parallel.prefetch_useful_by_source


@needs_pool
def test_channel_grain_equivalence():
    """run_workload: per-channel processes == in-process channel loop."""
    serial = run_workload(APP, "planaria", length=LENGTH, seed=SEED,
                          parallelism="serial")
    parallel = run_workload(APP, "planaria", length=LENGTH, seed=SEED,
                            parallelism=2)
    assert_identical(serial, parallel)


def test_auto_mode_matches_serial():
    """``parallelism="auto"`` must be a pure performance knob regardless of
    how many workers it resolves to on this machine."""
    serial = compare_prefetchers(APP, ("none", "planaria"), length=LENGTH,
                                 seed=SEED, parallelism="serial")
    auto = compare_prefetchers(APP, ("none", "planaria"), length=LENGTH,
                               seed=SEED, parallelism="auto")
    for name in serial:
        assert_identical(serial[name], auto[name])


class TestResolveParallelism:
    def test_serial_is_one_worker(self):
        assert resolve_parallelism("serial") == 1

    def test_explicit_count(self):
        assert resolve_parallelism(3) == 3
        assert resolve_parallelism("3") == 3

    def test_clamped_to_task_count(self):
        assert resolve_parallelism(8, task_count=2) == 2
        assert resolve_parallelism(8, task_count=0) == 1

    def test_auto_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_PARALLELISM", "5")
        assert resolve_parallelism("auto") == 5

    def test_auto_defaults_to_cpu_count(self, monkeypatch):
        import os

        monkeypatch.delenv("REPRO_PARALLELISM", raising=False)
        assert resolve_parallelism("auto") == (os.cpu_count() or 1)

    def test_rejects_junk(self):
        from repro.errors import ConfigError

        with pytest.raises(ConfigError):
            resolve_parallelism("fast")
        with pytest.raises(ConfigError):
            resolve_parallelism(0)
