"""Differential oracle: the batch engine versus the scalar loops.

The batch engine (``repro.sim.batch``) re-implements the demand and
prefetcher paths as fused loops over array state, and its one correctness
contract is *bit-identity*: after consuming the same records through any
chunking, a batch-mode simulator must be indistinguishable from a
scalar-mode one — not just in ``RunMetrics``, but in every field of every
component snapshot (cache blocks and LRU ticks, DRAM bank timing and
latency aggregates, queue contents and drop counters, prefetcher tables
in dict order, metric Welford accumulators down to the last float bit,
observability timelines).

:func:`assert_equivalent` is that comparison, packaged for reuse — the
property suite (``tests/test_batch_properties.py``) drives the same
helper with adversarial traces.  The comparator is intentionally paranoid:
it recurses into ``__dict__``/``__slots__`` of unknown objects, checks
dict *key order* (checkpoint schemas expose it), and compares floats by
``repr`` so a single ULP of drift fails loudly.
"""

from dataclasses import asdict
from collections import deque

import pytest

from repro.config import SimConfig
from repro.obs import attach_observability
from repro.prefetch.registry import PREFETCHER_FACTORIES, make_prefetcher
from repro.sim.engine import SystemSimulator, channel_warmup_counts
from repro.sim.runner import _collect
from repro.trace.generator import generate_trace_buffer, get_profile

ALL_PREFETCHERS = sorted(PREFETCHER_FACTORIES)
WORKLOADS = ("CFM", "Fort")
LENGTH = 2_500
SEED = 13


# ----------------------------------------------------------------------
# Deep bit-exact comparison
# ----------------------------------------------------------------------
def _state_of(obj):
    """Attribute dict of an arbitrary object (``__dict__`` or slots)."""
    if hasattr(obj, "__dict__"):
        return dict(obj.__dict__)
    out = {}
    for klass in type(obj).__mro__:
        for slot in getattr(klass, "__slots__", ()):
            if hasattr(obj, slot):
                out[slot] = getattr(obj, slot)
    return out


def deep_diff(a, b, path="", out=None, limit=10):
    """Collect human-readable paths where two state trees differ.

    Stricter than ``==``: dict key *order* must match (snapshot schemas
    expose insertion order), floats must agree by ``repr`` (so ``-0.0``
    vs ``0.0`` or one ULP of Welford drift is a difference), and unknown
    objects are recursed via their attribute dicts rather than relying on
    a possibly-sloppy ``__eq__``.
    """
    if out is None:
        out = []
    if len(out) >= limit:
        return out
    if type(a) is not type(b):
        out.append(f"{path}: type {type(a).__name__} vs {type(b).__name__}")
        return out
    if isinstance(a, dict):
        if list(a.keys()) != list(b.keys()):
            out.append(f"{path}: dict keys/order differ: "
                       f"{list(a)[:6]!r} vs {list(b)[:6]!r}")
            return out
        for key in a:
            deep_diff(a[key], b[key], f"{path}.{key}", out, limit)
        return out
    if isinstance(a, (list, tuple, deque)):
        if len(a) != len(b):
            out.append(f"{path}: len {len(a)} vs {len(b)}")
            return out
        for index, (item_a, item_b) in enumerate(zip(a, b)):
            deep_diff(item_a, item_b, f"{path}[{index}]", out, limit)
        return out
    if isinstance(a, (set, frozenset)):
        if a != b:
            out.append(f"{path}: set diff {a ^ b}")
        return out
    if isinstance(a, float):
        if repr(a) != repr(b):
            out.append(f"{path}: {a!r} vs {b!r}")
        return out
    if isinstance(a, (int, str, bytes, bool, type(None))):
        if a != b:
            out.append(f"{path}: {a!r} vs {b!r}")
        return out
    deep_diff(_state_of(a), _state_of(b), f"{path}<{type(a).__name__}>",
              out, limit)
    return out


# ----------------------------------------------------------------------
# The oracle harness
# ----------------------------------------------------------------------
def _drive(config, buffer, cuts, engine_mode, prefetcher, obs_epoch_records):
    simulator = SystemSimulator(
        config,
        lambda layout, channel: make_prefetcher(prefetcher, layout, channel),
        engine_mode=engine_mode,
    )
    collectors = None
    if obs_epoch_records is not None:
        collectors = attach_observability(simulator,
                                          epoch_records=obs_epoch_records)
    if cuts:
        simulator.set_stream_warmup(channel_warmup_counts(buffer, config))
        previous = 0
        for cut in list(cuts) + [len(buffer)]:
            simulator.feed(buffer[previous:cut])
            previous = cut
    else:
        simulator.run(buffer)
    return simulator, collectors


def assert_equivalent(config, buffer, cuts=(), prefetcher="none",
                      obs_epoch_records=None):
    """Run ``buffer`` through scalar and batch engines; fail on ANY drift.

    Args:
        config: the :class:`SimConfig` both simulators are built from.
        buffer: a :class:`TraceBuffer` of the full trace.
        cuts: sorted stream positions where the trace is split into
            ``feed()`` chunks (empty = one ``run()`` call).  Cuts land at
            arbitrary points: mid page-run, inside warmup, wherever.
        prefetcher: registered prefetcher name.
        obs_epoch_records: when set, attach observability with this epoch
            size to both simulators and compare timelines too.

    Returns the batch simulator's ``RunMetrics`` dict (handy for callers
    asserting workload-level facts on top of equivalence).
    """
    scalar_sim, scalar_obs = _drive(config, buffer, cuts, "scalar",
                                    prefetcher, obs_epoch_records)
    batch_sim, batch_obs = _drive(config, buffer, cuts, "batch",
                                  prefetcher, obs_epoch_records)

    scalar_metrics = asdict(_collect(scalar_sim, "oracle", prefetcher))
    batch_metrics = asdict(_collect(batch_sim, "oracle", prefetcher))
    diffs = deep_diff(scalar_metrics, batch_metrics, path="RunMetrics")

    for index, (scalar_ch, batch_ch) in enumerate(
            zip(scalar_sim.channels, batch_sim.channels)):
        deep_diff(scalar_ch.state_dict(), batch_ch.state_dict(),
                  path=f"channel[{index}]", out=diffs)

    if obs_epoch_records is not None:
        for index, (scalar_col, batch_col) in enumerate(
                zip(scalar_obs.collectors, batch_obs.collectors)):
            deep_diff([asdict(epoch) for epoch in scalar_col.epochs],
                      [asdict(epoch) for epoch in batch_col.epochs],
                      path=f"obs[{index}].epochs", out=diffs)

    assert not diffs, ("batch engine diverged from scalar oracle "
                       f"({prefetcher}):\n  " + "\n  ".join(diffs))
    return batch_metrics


# ----------------------------------------------------------------------
# Fixtures
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def config():
    return SimConfig.experiment_scale()


@pytest.fixture(scope="module")
def buffers(config):
    return {
        workload: generate_trace_buffer(get_profile(workload), LENGTH,
                                        seed=SEED, layout=config.layout)
        for workload in WORKLOADS
    }


# ----------------------------------------------------------------------
# The matrix the tentpole promises: every prefetcher, both workload
# generators, obs on/off, chunked and unchunked.
# ----------------------------------------------------------------------
@pytest.mark.parametrize("workload", WORKLOADS)
@pytest.mark.parametrize("prefetcher", ALL_PREFETCHERS)
def test_batch_matches_scalar_full_run(config, buffers, prefetcher,
                                       workload):
    assert_equivalent(config, buffers[workload], prefetcher=prefetcher)


@pytest.mark.parametrize("prefetcher", ALL_PREFETCHERS)
def test_batch_matches_scalar_with_observability(config, buffers,
                                                 prefetcher):
    """Epoch slicing cuts chunks at every epoch edge; still bit-exact."""
    assert_equivalent(config, buffers["CFM"], prefetcher=prefetcher,
                      obs_epoch_records=400)


@pytest.mark.parametrize("prefetcher", ALL_PREFETCHERS)
def test_batch_matches_scalar_chunked_feed(config, buffers, prefetcher):
    """Awkward feed() cuts — inside warmup, mid run, a 1-record chunk."""
    cuts = (1, 311, 312, 1000, 2201)
    assert_equivalent(config, buffers["CFM"], cuts=cuts,
                      prefetcher=prefetcher)


def test_batch_engine_resolves_for_lru_only(config):
    """engine_mode='auto' picks batch for LRU and scalar otherwise."""
    import dataclasses

    from repro.cache.array_state import ArrayCache
    from repro.cache.cache import SetAssociativeCache
    from repro.errors import SimulationError

    auto = SystemSimulator(
        config, lambda layout, ch: make_prefetcher("none", layout, ch),
        engine_mode="auto")
    assert all(isinstance(ch.cache, ArrayCache) for ch in auto.channels)

    fifo_config = dataclasses.replace(
        config, cache=dataclasses.replace(config.cache,
                                          replacement_policy="fifo"))
    fifo = SystemSimulator(
        fifo_config, lambda layout, ch: make_prefetcher("none", layout, ch),
        engine_mode="auto")
    assert all(isinstance(ch.cache, SetAssociativeCache)
               for ch in fifo.channels)
    assert all(ch.engine_mode == "scalar" for ch in fifo.channels)

    with pytest.raises(SimulationError):
        SystemSimulator(
            fifo_config,
            lambda layout, ch: make_prefetcher("none", layout, ch),
            engine_mode="batch")


def test_batch_falls_back_for_restored_prefetched_blocks(config, buffers):
    """A passive batch run over a checkpoint holding live prefetched
    blocks declines the fused demand loop and still matches scalar."""
    buffer = buffers["CFM"]
    cut = LENGTH // 2

    def restored(engine_mode):
        donor = SystemSimulator(
            config,
            lambda layout, ch: make_prefetcher("planaria", layout, ch),
            engine_mode=engine_mode)
        donor.set_stream_warmup(channel_warmup_counts(buffer, config))
        donor.feed(buffer[:cut])
        # Adopt the active run's cache/DRAM state into a *passive*
        # simulator: resident prefetched blocks force the fallback.
        target = SystemSimulator(
            config, lambda layout, ch: make_prefetcher("none", layout, ch),
            engine_mode=engine_mode)
        target.set_stream_warmup(channel_warmup_counts(buffer, config))
        for target_ch, donor_ch in zip(target.channels, donor.channels):
            donor_state = donor_ch.state_dict()
            target_ch.cache.load_state(donor_state["cache"])
            target_ch.dram.load_state(donor_state["dram"])
            target_ch._records_seen = donor_state["records_seen"]
            target_ch._last_time = donor_state["last_time"]
        live_prefetches = any(ch.cache.resident_prefetches()
                              for ch in target.channels)
        target.feed(buffer[cut:])
        return target, live_prefetches

    scalar_sim, _ = restored("scalar")
    batch_sim, fallback_triggered = restored("batch")
    assert fallback_triggered, "fixture lost its live prefetched blocks"

    diffs = []
    for index, (scalar_ch, batch_ch) in enumerate(
            zip(scalar_sim.channels, batch_sim.channels)):
        deep_diff(scalar_ch.state_dict(), batch_ch.state_dict(),
                  path=f"channel[{index}]", out=diffs)
    assert not diffs, "\n".join(diffs)
