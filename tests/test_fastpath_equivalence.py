"""Columnar fast loop ⇔ object-record path equivalence.

``SystemSimulator.run`` accepts the same trace in two forms: the columnar
:class:`TraceBuffer` driven through ``ChannelSimulator.run_buffer`` (the
default) and the legacy per-record-object loop (``columnar=False``).  The
fast loop skips every per-record allocation, so this suite is the proof
that it cut *work*, not *behaviour*: every RunMetrics field must be
bit-identical between the two paths, serially and under channel-grain
parallelism, on a generated trace and on the committed golden fixture.
"""

from dataclasses import asdict
from pathlib import Path

import pytest

from repro.config import SimConfig
from repro.prefetch.registry import make_prefetcher
from repro.sim.engine import SystemSimulator
from repro.sim.runner import _collect
from repro.trace.generator import generate_trace_buffer, get_profile
from repro.trace.io import read_trace

PREFETCHERS = ("none", "bop", "spp", "planaria")
GOLDEN_TRACE = Path(__file__).parent / "golden" / "trace_CFM_4k.csv"


def _run(records, prefetcher_name, columnar, parallelism="serial"):
    config = SimConfig.experiment_scale()
    simulator = SystemSimulator(
        config, lambda layout, channel: make_prefetcher(prefetcher_name,
                                                        layout, channel))
    simulator.run(records, parallelism=parallelism, columnar=columnar)
    return asdict(_collect(simulator, "equivalence", prefetcher_name))


@pytest.fixture(scope="module")
def buffer():
    return generate_trace_buffer(get_profile("CFM"), 8_000, seed=11)


@pytest.mark.parametrize("name", PREFETCHERS)
def test_columnar_matches_object_path(buffer, name):
    assert _run(buffer, name, columnar=True) == _run(buffer, name,
                                                     columnar=False)


@pytest.mark.parametrize("name", PREFETCHERS)
def test_columnar_parallel_matches_object_serial(buffer, name):
    """Fast loop under channel-grain parallelism vs the serial object loop."""
    assert _run(buffer, name, columnar=True, parallelism="auto") == _run(
        buffer, name, columnar=False, parallelism="serial")


@pytest.mark.parametrize("name", PREFETCHERS)
def test_golden_trace_identical_through_both_paths(name):
    records = list(read_trace(GOLDEN_TRACE))
    assert _run(records, name, columnar=True) == _run(records, name,
                                                      columnar=False)


def test_passive_fast_loop_matches_object_path(buffer):
    """The demand-only loop (passive prefetcher specialisation) is exact."""
    metrics = _run(buffer, "none", columnar=True)
    assert metrics == _run(buffer, "none", columnar=False)
    assert metrics["demand_accesses"] == len(buffer)
