"""Columnar fast loop ⇔ object-record path equivalence.

``SystemSimulator.run`` accepts the same trace in two forms: the columnar
:class:`TraceBuffer` driven through ``ChannelSimulator.run_buffer`` (the
default) and the legacy per-record-object loop (``columnar=False``).  The
fast loop skips every per-record allocation, so this suite is the proof
that it cut *work*, not *behaviour*: every RunMetrics field must be
bit-identical between the two paths, serially and under channel-grain
parallelism, on a generated trace and on the committed golden fixture.

The same proof obligation extends to the batch engine (``engine_mode``):
the fused array loops must reproduce the committed golden expectations —
numbers originally pinned by the scalar paths — bit-for-bit.
"""

import json
from dataclasses import asdict
from pathlib import Path

import pytest

from repro.config import SimConfig
from repro.prefetch.registry import make_prefetcher
from repro.sim.engine import SystemSimulator
from repro.sim.runner import _collect
from repro.trace.generator import generate_trace_buffer, get_profile
from repro.trace.io import read_trace

PREFETCHERS = ("none", "bop", "spp", "planaria")
GOLDEN_TRACE = Path(__file__).parent / "golden" / "trace_CFM_4k.csv"
GOLDEN_EXPECTED = Path(__file__).parent / "golden" / "expected_metrics.json"


def _run(records, prefetcher_name, columnar, parallelism="serial",
         engine_mode="auto"):
    config = SimConfig.experiment_scale()
    simulator = SystemSimulator(
        config, lambda layout, channel: make_prefetcher(prefetcher_name,
                                                        layout, channel),
        engine_mode=engine_mode)
    simulator.run(records, parallelism=parallelism, columnar=columnar)
    return asdict(_collect(simulator, "equivalence", prefetcher_name))


@pytest.fixture(scope="module")
def buffer():
    return generate_trace_buffer(get_profile("CFM"), 8_000, seed=11)


@pytest.mark.parametrize("name", PREFETCHERS)
def test_columnar_matches_object_path(buffer, name):
    assert _run(buffer, name, columnar=True) == _run(buffer, name,
                                                     columnar=False)


@pytest.mark.parametrize("name", PREFETCHERS)
def test_columnar_parallel_matches_object_serial(buffer, name):
    """Fast loop under channel-grain parallelism vs the serial object loop."""
    assert _run(buffer, name, columnar=True, parallelism="auto") == _run(
        buffer, name, columnar=False, parallelism="serial")


@pytest.mark.parametrize("name", PREFETCHERS)
def test_golden_trace_identical_through_both_paths(name):
    records = list(read_trace(GOLDEN_TRACE))
    assert _run(records, name, columnar=True) == _run(records, name,
                                                      columnar=False)


@pytest.mark.parametrize("name", PREFETCHERS)
def test_golden_trace_identical_across_engines(name):
    """Batch engine vs scalar engine on the committed golden trace."""
    records = list(read_trace(GOLDEN_TRACE))
    batch = _run(records, name, columnar=True, engine_mode="batch")
    scalar = _run(records, name, columnar=False, engine_mode="scalar")
    assert batch == scalar


@pytest.mark.parametrize("name", PREFETCHERS)
def test_golden_expectations_hold_on_batch_path(name):
    """The batch engine reproduces the *committed* golden numbers — the
    fixtures regression-pin the fused loops, not just engine-vs-engine
    agreement on whatever today's behaviour is."""
    records = list(read_trace(GOLDEN_TRACE))
    expected = json.loads(GOLDEN_EXPECTED.read_text())[name]
    batch = _run(records, name, columnar=True, engine_mode="batch")
    for field_name, want in expected.items():
        if field_name == "workload":
            continue  # run label, set by the harness, not a measurement
        assert batch[field_name] == want, (
            f"{name}.{field_name}: batch {batch[field_name]!r} "
            f"vs golden {want!r}")


@pytest.mark.parametrize("name", PREFETCHERS)
def test_batch_parallel_matches_scalar_serial(buffer, name):
    """Fused loops under channel-grain parallelism vs the scalar serial
    object path — the two most distant execution configurations."""
    assert _run(buffer, name, columnar=True, parallelism="auto",
                engine_mode="batch") == _run(
        buffer, name, columnar=False, parallelism="serial",
        engine_mode="scalar")


def test_passive_fast_loop_matches_object_path(buffer):
    """The demand-only loop (passive prefetcher specialisation) is exact."""
    metrics = _run(buffer, "none", columnar=True)
    assert metrics == _run(buffer, "none", columnar=False)
    assert metrics["demand_accesses"] == len(buffer)
