"""Experiment registry: every figure module runs and reports sane shapes.

These run at a deliberately small trace length — the full-size numbers are
produced by ``pytest benchmarks/``; here we verify the machinery and the
qualitative direction of each result.
"""

import pytest

from repro.experiments import (
    ALL_EXPERIMENTS,
    ExperimentSettings,
    run_matrix,
)
from repro.experiments.matrix import breakdown_matrix, clear_caches
from repro.experiments.report import ExperimentReport

SMALL = ExperimentSettings(trace_length=15_000, seed=13,
                           apps=("CFM", "Fort"))


@pytest.fixture(scope="module", autouse=True)
def fresh_caches():
    clear_caches()
    yield
    clear_caches()


class TestReportContainer:
    def test_row_arity_enforced(self):
        report = ExperimentReport("x", "t", ["a", "b"])
        with pytest.raises(ValueError):
            report.add_row([1])

    def test_format_table(self):
        report = ExperimentReport("x", "t", ["a", "b"])
        report.add_row([1, 2.5])
        report.summary["note"] = 3.0
        text = report.format_table()
        assert "== x: t" in text
        assert "2.500" in text
        assert "note" in text


class TestSettings:
    def test_defaults_cover_all_apps(self):
        settings = ExperimentSettings()
        assert len(settings.apps) == 10

    def test_cache_key_stable(self):
        assert SMALL.cache_key() == ExperimentSettings(
            trace_length=15_000, seed=13, apps=("CFM", "Fort")).cache_key()


class TestMatrix:
    def test_matrix_covers_grid(self):
        matrix = run_matrix(SMALL)
        assert set(matrix) == {"CFM", "Fort"}
        for app in matrix:
            assert set(matrix[app]) == set(SMALL.prefetchers)

    def test_matrix_cached(self):
        first = run_matrix(SMALL)
        second = run_matrix(SMALL)
        assert first is second

    def test_breakdown_adds_subprefetchers(self):
        matrix = breakdown_matrix(SMALL)
        assert set(matrix["CFM"]) == {"none", "slp", "tlp", "planaria"}


class TestFigureRuns:
    def test_fig2(self):
        report = ALL_EXPERIMENTS["fig2"](SMALL)
        assert report.experiment_id == "fig2"
        values = dict((row[0], row[1]) for row in report.rows)
        assert values["bursts (snapshot episodes)"] >= 2

    def test_fig4(self):
        report = ALL_EXPERIMENTS["fig4"](SMALL)
        assert len(report.rows) == 2
        assert report.summary["average overlap rate (measured)"] > 0.6

    def test_fig5(self):
        report = ALL_EXPERIMENTS["fig5"](SMALL)
        measured_4 = report.summary["average fraction at distance 4 (measured)"]
        measured_64 = report.summary["average fraction at distance 64 (measured)"]
        assert 0.0 < measured_4 <= measured_64 <= 1.0

    def test_fig7_planaria_wins_hit_rate(self):
        report = ALL_EXPERIMENTS["fig7"](SMALL)
        assert report.summary["planaria minus none (pp)"] > 0
        columns = report.columns
        for row in report.rows:
            none_hit = row[columns.index("none")]
            planaria_hit = row[columns.index("planaria")]
            assert planaria_hit > none_hit

    def test_fig8_planaria_reduces_amat(self):
        report = ALL_EXPERIMENTS["fig8"](SMALL)
        assert report.summary["planaria AMAT reduction vs none (measured)"] > 0

    def test_fig9_fort_is_tlp_territory(self):
        report = ALL_EXPERIMENTS["fig9"](SMALL)
        shares = {row[0]: row[1] for row in report.rows}
        assert shares["CFM"] > shares["Fort"]  # SLP dominates CFM, not Fort

    def test_fig10_planaria_cheapest(self):
        report = ALL_EXPERIMENTS["fig10"](SMALL)
        summary = report.summary
        planaria = summary["mean power overhead [planaria] (measured)"]
        bop = summary["mean power overhead [bop] (measured)"]
        spp = summary["mean power overhead [spp] (measured)"]
        assert planaria < spp < bop

    def test_headline_numbers(self):
        report = ALL_EXPERIMENTS["headline"](SMALL)
        summary = report.summary
        assert summary["IPC gain vs none (measured)"] > 0
        assert summary["Planaria storage KiB (computed)"] == pytest.approx(
            345.2, rel=0.03)
        assert summary["BOP traffic overhead (measured)"] > \
            summary["SPP traffic overhead (measured)"] > 0


class TestSettingsEnv:
    def test_env_length(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_LENGTH", "12345")
        settings = ExperimentSettings()
        assert settings.trace_length == 12345

    def test_env_length_floor(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_LENGTH", "10")
        assert ExperimentSettings().trace_length == 1_000

    def test_env_length_garbage_falls_back(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_LENGTH", "lots")
        assert ExperimentSettings().trace_length == 80_000

    def test_env_apps(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_APPS", "CFM, Fort")
        assert ExperimentSettings().apps == ("CFM", "Fort")

    def test_env_apps_unknown_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_APPS", "CFM,WoW")
        with pytest.raises(ValueError, match="WoW"):
            ExperimentSettings()
