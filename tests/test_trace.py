"""Trace records, file I/O, filters and statistics."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import TraceFormatError
from repro.geometry import DEFAULT_LAYOUT
from repro.trace import (
    AccessType,
    DeviceID,
    TraceRecord,
    compute_trace_stats,
    read_trace,
    read_trace_binary,
    write_trace,
    write_trace_binary,
)
from repro.trace.filters import (
    filter_by_channel,
    filter_by_device,
    filter_by_page,
    filter_by_time_window,
    filter_by_type,
    hottest_pages,
    take,
)


def make_records():
    return [
        TraceRecord(0x1000, AccessType.READ, DeviceID.CPU, 10),
        TraceRecord(0x1040, AccessType.WRITE, DeviceID.GPU, 20),
        TraceRecord(0x2000, AccessType.READ, DeviceID.DSP, 30),
        TraceRecord(0x2400, AccessType.READ, DeviceID.CPU, 40),
    ]


class TestRecord:
    def test_defaults(self):
        record = TraceRecord(0x1000)
        assert record.is_read and not record.is_write
        assert record.device == DeviceID.CPU

    def test_rejects_negative_address(self):
        with pytest.raises(TraceFormatError):
            TraceRecord(-1)

    def test_rejects_negative_time(self):
        with pytest.raises(TraceFormatError):
            TraceRecord(0, arrival_time=-5)

    def test_csv_roundtrip(self):
        record = TraceRecord(0xDEADBEEF, AccessType.WRITE, DeviceID.ISP, 999)
        assert TraceRecord.from_csv_row(record.to_csv_row()) == record

    def test_csv_parse_variants(self):
        record = TraceRecord.from_csv_row("0x100,R,GPU,5")
        assert record.access_type == AccessType.READ
        assert record.device == DeviceID.GPU
        record = TraceRecord.from_csv_row("256,WRITE,1,5")
        assert record.address == 256
        assert record.access_type == AccessType.WRITE

    def test_csv_parse_errors(self):
        with pytest.raises(TraceFormatError):
            TraceRecord.from_csv_row("0x100,R,GPU")
        with pytest.raises(TraceFormatError):
            TraceRecord.from_csv_row("xyz,R,GPU,5")
        with pytest.raises(TraceFormatError):
            TraceRecord.from_csv_row("0x100,Q,GPU,5")
        with pytest.raises(TraceFormatError):
            TraceRecord.from_csv_row("0x100,R,XPU,5")
        with pytest.raises(TraceFormatError):
            TraceRecord.from_csv_row("0x100,R,GPU,soon")


class TestIO:
    def test_csv_roundtrip(self, tmp_path):
        records = make_records()
        path = tmp_path / "trace.csv"
        assert write_trace(path, records) == len(records)
        assert list(read_trace(path)) == records

    def test_csv_skips_comments(self, tmp_path):
        path = tmp_path / "trace.csv"
        path.write_text("# comment\n\n0x1000,R,CPU,1\n")
        assert len(list(read_trace(path))) == 1

    def test_csv_error_carries_line(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("0x1000,R,CPU,1\ngarbage line\n")
        with pytest.raises(TraceFormatError, match="bad.csv:2"):
            list(read_trace(path))

    def test_binary_roundtrip(self, tmp_path):
        records = make_records()
        path = tmp_path / "trace.bin"
        assert write_trace_binary(path, records) == len(records)
        assert read_trace_binary(path) == records

    def test_binary_detects_truncation(self, tmp_path):
        path = tmp_path / "trace.bin"
        write_trace_binary(path, make_records())
        data = path.read_bytes()
        path.write_bytes(data[:-4])
        with pytest.raises(TraceFormatError, match="expected"):
            read_trace_binary(path)

    def test_binary_detects_bad_magic(self, tmp_path):
        path = tmp_path / "trace.bin"
        path.write_bytes(b"NOTMAGIC" + b"\x00" * 8)
        with pytest.raises(TraceFormatError, match="magic"):
            read_trace_binary(path)

    @given(st.lists(
        st.builds(
            TraceRecord,
            address=st.integers(min_value=0, max_value=(1 << 48) - 1),
            access_type=st.sampled_from(AccessType),
            device=st.sampled_from(DeviceID),
            arrival_time=st.integers(min_value=0, max_value=(1 << 40) - 1),
        ),
        max_size=32,
    ))
    def test_binary_roundtrip_property(self, records):
        import os
        import tempfile

        handle, path = tempfile.mkstemp(suffix=".bin")
        os.close(handle)
        try:
            write_trace_binary(path, records)
            assert read_trace_binary(path) == records
        finally:
            os.unlink(path)


class TestFilters:
    def test_by_device(self):
        cpu = list(filter_by_device(make_records(), DeviceID.CPU))
        assert len(cpu) == 2

    def test_by_type(self):
        writes = list(filter_by_type(make_records(), AccessType.WRITE))
        assert len(writes) == 1

    def test_by_channel(self):
        records = make_records()
        by_channel = [
            len(list(filter_by_channel(records, channel)))
            for channel in range(4)
        ]
        assert sum(by_channel) == len(records)
        with pytest.raises(ValueError):
            list(filter_by_channel(records, 9))

    def test_by_time_window(self):
        window = list(filter_by_time_window(make_records(), 15, 35))
        assert [record.arrival_time for record in window] == [20, 30]
        with pytest.raises(ValueError):
            list(filter_by_time_window(make_records(), 10, 5))

    def test_by_page(self):
        page1 = list(filter_by_page(make_records(), 1))
        assert len(page1) == 2

    def test_take(self):
        assert len(list(take(make_records(), 2))) == 2
        assert len(list(take(make_records(), 100))) == 4
        with pytest.raises(ValueError):
            list(take(make_records(), -1))

    def test_hottest_pages(self):
        records = make_records()
        pages = hottest_pages(records, count=2)
        assert pages[0] in (1, 2)
        filtered = hottest_pages(records, count=2, min_blocks=2)
        assert all(page in (1, 2) for page in filtered)


class TestStats:
    def test_compute(self):
        stats = compute_trace_stats(make_records())
        assert stats.num_records == 4
        assert stats.num_reads == 3
        assert stats.num_writes == 1
        assert stats.unique_pages == 2
        assert stats.unique_blocks == 4
        assert stats.duration == 30
        assert stats.read_fraction == pytest.approx(0.75)
        assert stats.device_mix["CPU"] == 2

    def test_empty_trace(self):
        stats = compute_trace_stats([])
        assert stats.num_records == 0
        assert stats.read_fraction == 0.0
        assert stats.duration == 0

    def test_format_table_mentions_counts(self):
        text = compute_trace_stats(make_records()).format_table()
        assert "records" in text
        assert "unique pages" in text
