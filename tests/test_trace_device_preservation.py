"""Device-tag preservation through trace filtering and sampling.

Multi-tenant attribution keys everything on the record's device tag, so
any helper that carves up a trace must pass records through whole — a
filter that rebuilt records and dropped or defaulted ``device`` would
silently collapse every tenant into one.  These tests pin that for every
helper in :mod:`repro.trace.filters` and :mod:`repro.trace.sampling`,
driving them with a merged multi-tenant trace where the device column
actually varies.
"""

import numpy as np
import pytest

from repro.tenancy import TenantSpec, merge_traces
from repro.trace.buffer import TraceBuffer
from repro.trace.filters import (filter_by_channel, filter_by_device,
                                 filter_by_time_window, filter_by_type,
                                 take)
from repro.trace.record import AccessType, DeviceID
from repro.trace.sampling import (downsample_preserving_pages,
                                  interval_samples, time_slice)


@pytest.fixture(scope="module")
def merged_records():
    merged = merge_traces([
        TenantSpec("CFM", "CPU", length=400, seed=1),
        TenantSpec("HoK", "GPU", length=400, seed=2, phase_offset=37),
        TenantSpec("QSM", "NPU", length=300, seed=3, intensity=2.0),
    ])
    return merged.to_records()


def _by_identity(records):
    """Key records by everything *except* device, to find the original."""
    return {(r.address, r.arrival_time, r.access_type): r.device
            for r in records}


def _assert_devices_preserved(original, subset):
    source = _by_identity(original)
    assert subset, "filter produced nothing to check"
    for record in subset:
        key = (record.address, record.arrival_time, record.access_type)
        assert record.device == source[key]


class TestFilters:
    def test_filter_by_device_keeps_only_and_all_of_that_device(
            self, merged_records):
        kept = list(filter_by_device(merged_records, DeviceID.GPU))
        assert all(r.device == DeviceID.GPU for r in kept)
        assert len(kept) == sum(1 for r in merged_records
                                if r.device == DeviceID.GPU) == 400

    def test_filter_by_type_preserves_devices(self, merged_records):
        kept = list(filter_by_type(merged_records, AccessType.READ))
        _assert_devices_preserved(merged_records, kept)
        assert {r.device for r in kept} == {DeviceID.CPU, DeviceID.GPU,
                                            DeviceID.NPU}

    def test_filter_by_channel_preserves_devices(self, merged_records):
        kept = list(filter_by_channel(merged_records, 0))
        _assert_devices_preserved(merged_records, kept)

    def test_filter_by_time_window_preserves_devices(self, merged_records):
        end = merged_records[len(merged_records) // 2].arrival_time
        kept = list(filter_by_time_window(merged_records, 0, end + 1))
        _assert_devices_preserved(merged_records, kept)

    def test_take_preserves_devices_and_order(self, merged_records):
        kept = list(take(merged_records, 100))
        assert kept == merged_records[:100]


class TestSampling:
    def test_interval_samples_preserve_devices(self, merged_records):
        samples = interval_samples(merged_records, interval_length=100,
                                   keep_every=3, warmup_length=50)
        assert samples
        for sample in samples:
            _assert_devices_preserved(merged_records, sample.records)

    def test_interval_samples_work_on_trace_buffers(self, merged_records):
        """Buffer slicing hands back views; records keep their tags."""
        buffer = TraceBuffer.from_records(merged_records)
        samples = interval_samples(buffer, interval_length=100,
                                   keep_every=3, warmup_length=50)
        for sample, reference in zip(
                samples, interval_samples(merged_records, 100, 3, 50)):
            assert sample.records == reference.records

    def test_time_slice_preserves_devices(self, merged_records):
        mid = merged_records[len(merged_records) // 2].arrival_time
        kept = time_slice(merged_records, 0, mid + 1)
        _assert_devices_preserved(merged_records, kept)

    def test_page_downsample_preserves_devices(self, merged_records):
        kept = downsample_preserving_pages(merged_records, 0.5, seed=3)
        _assert_devices_preserved(merged_records, kept)
        assert len({r.device for r in kept}) > 1


def test_buffer_round_trip_preserves_device_column():
    merged = merge_traces([TenantSpec("CFM", "ISP", length=150, seed=0),
                           TenantSpec("HoK", "DSP", length=150, seed=1)])
    round_tripped = TraceBuffer.from_records(merged.to_records())
    assert np.array_equal(round_tripped.devices, merged.devices)
    assert round_tripped == merged
