"""Shared pytest configuration for the unit-test suite."""


def pytest_addoption(parser):
    parser.addoption(
        "--update-golden", action="store_true", default=False,
        help="regenerate tests/golden/expected_metrics.json from the "
             "committed golden trace instead of comparing against it",
    )
