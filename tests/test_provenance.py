"""Tests for the shared provenance helpers (repro.utils.provenance)."""

import platform

from repro.config import SimConfig
from repro.service.checkpoint import atomic_write_bytes
from repro.service.checkpoint import config_fingerprint as checkpoint_fp
from repro.utils.provenance import (config_fingerprint, degraded_scaling,
                                    git_revision, runtime_provenance)


class TestRuntimeProvenance:
    def test_standard_keys(self):
        stamp = runtime_provenance()
        assert stamp["python"] == platform.python_version()
        assert isinstance(stamp["numpy"], str) and stamp["numpy"]
        assert isinstance(stamp["cpu_count"], int) and stamp["cpu_count"] >= 1
        assert "platform" in stamp
        assert "git_rev" in stamp  # str or None, never missing

    def test_no_timestamps(self):
        # Provenance feeds bit-identity comparisons across reruns, so wall
        # clocks must never leak in.
        stamp = runtime_provenance()
        for key in stamp:
            assert "time" not in key and "date" not in key

    def test_extra_keys_merge(self):
        stamp = runtime_provenance(role="test", attempt=2)
        assert stamp["role"] == "test"
        assert stamp["attempt"] == 2

    def test_deterministic(self):
        assert runtime_provenance() == runtime_provenance()


class TestGitRevision:
    def test_in_repo_returns_hex_or_none(self):
        rev = git_revision()
        assert rev is None or (
            isinstance(rev, str) and len(rev) >= 7
            and all(ch in "0123456789abcdef" for ch in rev))

    def test_bogus_root_returns_none(self, tmp_path):
        assert git_revision(tmp_path) is None


class TestConfigFingerprint:
    def test_stable_and_prefetcher_sensitive(self):
        config = SimConfig.experiment_scale()
        assert (config_fingerprint("planaria", config)
                == config_fingerprint("planaria", config))
        assert (config_fingerprint("planaria", config)
                != config_fingerprint("bop", config))

    def test_checkpoint_reexport_is_same_function(self):
        # service.checkpoint re-exports the shared helper; restore
        # validation and campaign provenance must agree byte for byte.
        assert checkpoint_fp is config_fingerprint

    def test_sixteen_hex_chars(self):
        fp = config_fingerprint("none", SimConfig.experiment_scale())
        assert len(fp) == 16
        assert all(ch in "0123456789abcdef" for ch in fp)


class TestDegradedScaling:
    def test_degraded_when_fewer_cores_than_workers(self):
        warning = degraded_scaling(1, 4)
        assert warning is not None and "1" in warning and "4" in warning

    def test_silent_when_enough_cores(self):
        assert degraded_scaling(8, 4) is None
        assert degraded_scaling(4, 4) is None


class TestAtomicWriteBytes:
    def test_write_and_replace(self, tmp_path):
        target = tmp_path / "deep" / "state.json"
        atomic_write_bytes(target, b"one")
        assert target.read_bytes() == b"one"
        atomic_write_bytes(target, b"two")
        assert target.read_bytes() == b"two"
        # no stray tmp files left behind
        assert [p.name for p in target.parent.iterdir()] == ["state.json"]
