"""Config JSON (de)serialization round trips."""

import json

import pytest

from repro.config import (
    CacheConfig,
    DRAMTiming,
    PlanariaConfig,
    SimConfig,
    SLPConfig,
    TLPConfig,
)
from repro.config_io import (
    from_dict,
    load_planaria_config,
    load_sim_config,
    save_config,
    to_dict,
)
from repro.errors import ConfigError


class TestToDict:
    def test_flat(self):
        data = to_dict(CacheConfig())
        assert data["size_bytes"] == 1 << 20
        assert data["replacement_policy"] == "lru"

    def test_nested(self):
        data = to_dict(SimConfig())
        assert data["dram"]["timing"]["tRAS"] == 51
        assert data["cache"]["associativity"] == 16
        assert data["layout"]["num_channels"] == 4

    def test_tuples_become_lists(self):
        data = to_dict(PlanariaConfig())
        assert isinstance(to_dict(SimConfig()), dict)
        from repro.config import BOPConfig

        assert isinstance(to_dict(BOPConfig())["offsets"], list)

    def test_rejects_non_dataclass(self):
        with pytest.raises(ConfigError):
            to_dict({"not": "a dataclass"})


class TestFromDict:
    def test_roundtrip_sim(self):
        original = SimConfig.experiment_scale()
        rebuilt = from_dict(SimConfig, to_dict(original))
        assert rebuilt == original

    def test_roundtrip_planaria(self):
        original = PlanariaConfig(
            slp=SLPConfig(at_timeout=12_345),
            tlp=TLPConfig(distance_threshold=32),
            coordinator="parallel",
        )
        rebuilt = from_dict(PlanariaConfig, to_dict(original))
        assert rebuilt == original

    def test_partial_dict_uses_defaults(self):
        rebuilt = from_dict(CacheConfig, {"size_bytes": 64 * 1024})
        assert rebuilt.size_bytes == 64 * 1024
        assert rebuilt.associativity == 16

    def test_unknown_key_rejected(self):
        with pytest.raises(ConfigError, match="unknown keys"):
            from_dict(CacheConfig, {"size_byte": 1024})

    def test_validation_still_runs(self):
        with pytest.raises(ConfigError):
            from_dict(CacheConfig, {"size_bytes": 999})

    def test_unsupported_type_rejected(self):
        class Strange:
            pass

        with pytest.raises(ConfigError):
            from_dict(Strange, {})


class TestFiles:
    def test_save_and_load_sim(self, tmp_path):
        path = save_config(SimConfig.experiment_scale(), tmp_path / "sim.json")
        loaded = load_sim_config(path)
        assert loaded == SimConfig.experiment_scale()
        # The file is real, human-editable JSON.
        data = json.loads(path.read_text())
        assert data["sc_hit_latency"] == 30

    def test_save_and_load_planaria(self, tmp_path):
        original = PlanariaConfig(tlp=TLPConfig(rpt_entries=64))
        path = save_config(original, tmp_path / "planaria.json")
        assert load_planaria_config(path) == original

    def test_edited_file_round_trips(self, tmp_path):
        path = save_config(SimConfig(), tmp_path / "sim.json")
        data = json.loads(path.read_text())
        data["cache"]["size_bytes"] = 256 * 1024
        path.write_text(json.dumps(data))
        assert load_sim_config(path).cache.size_bytes == 256 * 1024
