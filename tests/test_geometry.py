"""Address geometry: decomposition, composition, channel mapping."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import AddressError, ConfigError
from repro.geometry import AddressLayout, DEFAULT_LAYOUT


class TestDefaults:
    def test_paper_parameters(self):
        layout = DEFAULT_LAYOUT
        assert layout.block_size == 64
        assert layout.page_size == 4096
        assert layout.num_channels == 4

    def test_derived_sizes(self):
        layout = DEFAULT_LAYOUT
        assert layout.block_bits == 6
        assert layout.page_bits == 12
        assert layout.blocks_per_page == 64
        assert layout.blocks_per_segment == 16
        assert layout.segment_bits == 4
        assert layout.channel_bits == 2


class TestDecomposition:
    def test_block_address(self):
        assert DEFAULT_LAYOUT.block_address(0) == 0
        assert DEFAULT_LAYOUT.block_address(63) == 0
        assert DEFAULT_LAYOUT.block_address(64) == 1
        assert DEFAULT_LAYOUT.block_address(0x1000) == 64

    def test_page_number(self):
        assert DEFAULT_LAYOUT.page_number(0xFFF) == 0
        assert DEFAULT_LAYOUT.page_number(0x1000) == 1
        assert DEFAULT_LAYOUT.page_number(0x12345678) == 0x12345

    def test_block_in_page(self):
        assert DEFAULT_LAYOUT.block_in_page(0) == 0
        assert DEFAULT_LAYOUT.block_in_page(64) == 1
        assert DEFAULT_LAYOUT.block_in_page(0x1000 - 64) == 63
        assert DEFAULT_LAYOUT.block_in_page(0x1000) == 0

    def test_channel_segment_mapping(self):
        # Blocks 0-15 of a page -> channel 0; 16-31 -> channel 1; etc.
        for block in range(64):
            addr = block * 64
            assert DEFAULT_LAYOUT.channel(addr) == block // 16
            assert DEFAULT_LAYOUT.block_in_segment(addr) == block % 16

    def test_channel_is_page_independent(self):
        for page in (0, 1, 17, 12345):
            addr = page * 4096 + 20 * 64  # block 20 -> channel 1
            assert DEFAULT_LAYOUT.channel(addr) == 1

    def test_negative_address_rejected(self):
        with pytest.raises(AddressError):
            DEFAULT_LAYOUT.page_number(-1)

    def test_block_align(self):
        assert DEFAULT_LAYOUT.block_align(0x1234) == 0x1200
        assert DEFAULT_LAYOUT.block_align(0x1200) == 0x1200


class TestComposition:
    def test_compose_roundtrip_simple(self):
        addr = DEFAULT_LAYOUT.compose(page_number=5, channel=2, block_in_segment=3)
        assert DEFAULT_LAYOUT.page_number(addr) == 5
        assert DEFAULT_LAYOUT.channel(addr) == 2
        assert DEFAULT_LAYOUT.block_in_segment(addr) == 3

    def test_compose_rejects_bad_channel(self):
        with pytest.raises(AddressError):
            DEFAULT_LAYOUT.compose(1, 4, 0)

    def test_compose_rejects_bad_offset(self):
        with pytest.raises(AddressError):
            DEFAULT_LAYOUT.compose(1, 0, 16)

    def test_compose_rejects_negative_page(self):
        with pytest.raises(AddressError):
            DEFAULT_LAYOUT.compose(-1, 0, 0)

    @given(
        page=st.integers(min_value=0, max_value=1 << 24),
        channel=st.integers(min_value=0, max_value=3),
        offset=st.integers(min_value=0, max_value=15),
    )
    def test_compose_decompose_roundtrip(self, page, channel, offset):
        addr = DEFAULT_LAYOUT.compose(page, channel, offset)
        assert DEFAULT_LAYOUT.page_number(addr) == page
        assert DEFAULT_LAYOUT.channel(addr) == channel
        assert DEFAULT_LAYOUT.block_in_segment(addr) == offset
        assert addr % 64 == 0

    @given(addr=st.integers(min_value=0, max_value=1 << 40))
    def test_decompose_compose_roundtrip(self, addr):
        layout = DEFAULT_LAYOUT
        rebuilt = layout.compose(
            layout.page_number(addr), layout.channel(addr),
            layout.block_in_segment(addr),
        )
        assert rebuilt == layout.block_align(addr)


class TestValidation:
    def test_non_power_of_two_block(self):
        with pytest.raises(ConfigError):
            AddressLayout(block_size=48)

    def test_non_power_of_two_page(self):
        with pytest.raises(ConfigError):
            AddressLayout(page_size=5000)

    def test_page_smaller_than_block(self):
        with pytest.raises(ConfigError):
            AddressLayout(block_size=4096, page_size=64)

    def test_alternative_geometry(self):
        layout = AddressLayout(block_size=64, page_size=8192, num_channels=2)
        assert layout.blocks_per_page == 128
        assert layout.blocks_per_segment == 64
