"""Prefetch lineage: neutrality, accounting invariants, fate
reconciliation, checkpointing, and the per-origin queue-drop counters.

The contract under test (docs/observability.md, "Prefetch lineage"):

* **Neutrality** — attaching lineage never changes simulated state:
  ``RunMetrics``, cache/queue stats and epoch timelines are bit-identical
  lineage-on vs lineage-off, across the scalar loop, the batch engine's
  scalar fallback, the parallel executor and a checkpoint/resume cycle.
* **Invariants** — every issued prefetch is accounted for exactly once
  per pipeline stage (``lineage_consistent``).
* **Reconciliation** — the fate counters agree exactly with the cache's
  own usefulness accounting (``useful_total``/``unused_total``/late).
"""

import dataclasses

import pytest
from hypothesis import given, settings, strategies as st

from repro.config import SimConfig
from repro.errors import ServiceError
from repro.obs.lineage import (LineageCollector, attach_lineage,
                               detach_lineage, fate_events_to_chrome,
                               lineage_consistent, merge_lineage_summaries,
                               wire_lineage, write_fate_trace)
from repro.prefetch.base import PrefetchCandidate
from repro.prefetch.queue import PrefetchQueue, QueueStats
from repro.prefetch.registry import make_prefetcher
from repro.sim.engine import SystemSimulator
from repro.trace.generator import generate_trace_buffer, get_profile

LENGTH = 12_000
SEED = 7


def make_simulator(prefetcher="planaria", config=None, engine_mode="auto"):
    config = config or SimConfig.experiment_scale()
    return SystemSimulator(
        config,
        lambda layout, channel: make_prefetcher(prefetcher, layout, channel),
        engine_mode=engine_mode)


def trace(app="CFM", length=LENGTH, seed=SEED, config=None):
    config = config or SimConfig.experiment_scale()
    return generate_trace_buffer(get_profile(app), length, seed=seed,
                                 layout=config.layout)


def run_with_lineage(prefetcher="planaria", app="CFM", length=LENGTH,
                     seed=SEED, engine_mode="auto", parallelism="serial"):
    buffer = trace(app=app, length=length, seed=seed)
    simulator = make_simulator(prefetcher, engine_mode=engine_mode)
    lineage = attach_lineage(simulator)
    simulator.run(buffer, parallelism=parallelism)
    return simulator, lineage


class TestInvariants:
    @pytest.mark.parametrize("prefetcher", [
        "planaria", "planaria-throttled", "planaria-parallel", "bop",
        "none"])
    def test_pipeline_accounting(self, prefetcher):
        _, lineage = run_with_lineage(prefetcher)
        summary = lineage.summary()
        assert lineage_consistent(summary)
        # Per-channel summaries satisfy the invariants independently too.
        for collector in lineage.collectors:
            assert lineage_consistent(collector.summary())

    def test_fates_reconcile_with_cache_stats(self):
        simulator, lineage = run_with_lineage("planaria")
        totals = lineage.summary()["totals"]
        cache_stats = simulator.merged_cache_stats()
        assert (totals["used_timely"] + totals["used_late"]
                == cache_stats.useful_total())
        assert totals["used_late"] == sum(
            cache_stats.prefetch_late.values())
        assert totals["evicted_unused"] == cache_stats.unused_total()

    def test_issue_totals_match_queue_gate(self):
        """Every candidate the queue gates on appears in ``issued``."""
        simulator, lineage = run_with_lineage("planaria")
        totals = lineage.summary()["totals"]
        queue_stats = simulator.merged_queue_stats()
        assert totals["accepted"] == queue_stats.accepted
        assert (totals["dropped_duplicate"] + totals["dropped_degree"]
                + totals["dropped_full"]
                == queue_stats.dropped_total())

    def test_buckets_cover_slp_and_tlp_origins(self):
        _, lineage = run_with_lineage("planaria")
        buckets = lineage.summary()["buckets"]
        assert any(bucket.startswith("slp/d") for bucket in buckets)
        assert any(bucket.startswith("tlp/") for bucket in buckets)
        # Bucket rows sum to the stage totals.
        totals = lineage.summary()["totals"]
        for stage in ("issued", "filled", "used_timely"):
            assert totals[stage] == sum(
                row.get(stage, 0) for row in buckets.values())

    def test_snapshot_reuse_tracked(self):
        _, lineage = run_with_lineage("planaria")
        reuse = lineage.summary()["snapshot_reuse"]
        assert reuse["tracked"] >= 1
        assert sum(reuse["histogram"].values()) >= reuse["tracked"]


class TestForcedPaths:
    def test_suppressed_candidates_counted(self):
        """A suspended accuracy throttle surfaces as ``suppressed``."""
        buffer = trace()
        simulator = make_simulator("planaria-throttled")
        lineage = attach_lineage(simulator)
        for channel_sim in simulator.channels:
            throttle = channel_sim.prefetcher
            throttle._suspended = True
            # Unreachable recovery watermark: stays suspended all run.
            throttle.high_watermark = 2.0
        simulator.run(buffer)
        summary = lineage.summary()
        assert summary["totals"]["suppressed"] > 0
        assert summary["totals"]["accepted"] == 0
        assert lineage_consistent(summary)

    def test_pollution_attributed_per_device(self):
        """Evicted-unused fates attribute to the triggering device."""
        config = SimConfig.experiment_scale()
        config = dataclasses.replace(
            config,
            cache=dataclasses.replace(config.cache, size_bytes=32_768))
        buffer = trace(config=config)
        simulator = SystemSimulator(
            config, lambda layout, channel: make_prefetcher(
                "planaria", layout, channel))
        lineage = attach_lineage(simulator)
        simulator.run(buffer)
        summary = lineage.summary()
        assert summary["totals"]["evicted_unused"] > 0
        assert summary["pollution_by_device"]
        assert (sum(summary["pollution_by_device"].values())
                <= summary["totals"]["evicted_unused"])
        assert lineage_consistent(summary)

    @pytest.mark.parametrize("engine_mode", ["scalar", "batch"])
    def test_invalidate_resolves_live_blocks(self, engine_mode):
        """Both cache backends report explicit invalidations."""
        simulator, lineage = run_with_lineage("planaria",
                                              engine_mode=engine_mode)
        invalidated = 0
        for channel_sim in simulator.channels:
            collector = channel_sim.lineage
            for block in list(collector._live):
                assert channel_sim.cache.invalidate(block)
                invalidated += 1
        assert invalidated > 0
        summary = lineage.summary()
        assert summary["totals"]["invalidated"] == invalidated
        assert summary["totals"]["resident"] == 0
        assert lineage_consistent(summary)


class TestNeutrality:
    @pytest.mark.parametrize("prefetcher", ["planaria", "planaria-throttled",
                                            "bop"])
    def test_metrics_identical_lineage_on_vs_off(self, prefetcher):
        buffer = trace()
        plain = make_simulator(prefetcher)
        plain.run(buffer)
        observed = make_simulator(prefetcher)
        attach_lineage(observed)
        observed.run(buffer)
        assert (plain.merged_metrics().state_dict()
                == observed.merged_metrics().state_dict())
        assert (plain.merged_cache_stats().state_dict()
                == observed.merged_cache_stats().state_dict())
        assert (plain.merged_queue_stats().state_dict()
                == observed.merged_queue_stats().state_dict())

    def test_batch_fallback_is_bit_identical(self):
        """Batch mode + lineage falls back to the scalar loop; metrics
        stay identical to both the plain batch run and the scalar run."""
        buffer = trace()
        batch_plain = make_simulator(engine_mode="batch")
        batch_plain.run(buffer)
        batch_lineage = make_simulator(engine_mode="batch")
        lineage = attach_lineage(batch_lineage)
        batch_lineage.run(buffer)
        scalar_lineage = make_simulator(engine_mode="scalar")
        scalar = attach_lineage(scalar_lineage)
        scalar_lineage.run(buffer)
        assert (batch_plain.merged_metrics().state_dict()
                == batch_lineage.merged_metrics().state_dict())
        assert (batch_plain.merged_queue_stats().state_dict()
                == batch_lineage.merged_queue_stats().state_dict())
        assert lineage.summary() == scalar.summary()
        assert lineage_consistent(lineage.summary())

    def test_parallel_summary_matches_serial(self):
        _, serial = run_with_lineage("planaria", parallelism="serial")
        _, parallel = run_with_lineage("planaria", parallelism=2)
        assert serial.summary() == parallel.summary()
        assert serial.events() == parallel.events()

    def test_timeline_identical_lineage_on_vs_off(self):
        from repro.obs import attach_observability

        buffer = trace()
        plain = make_simulator()
        obs_plain = attach_observability(plain, epoch_records=1024)
        plain.run(buffer)
        both = make_simulator()
        obs_both = attach_observability(both, epoch_records=1024)
        attach_lineage(both)
        both.run(buffer)
        assert (obs_plain.merged_timeline(include_partial=True)
                == obs_both.merged_timeline(include_partial=True))

    def test_detach_restores_plain_run(self):
        buffer = trace()
        simulator = make_simulator()
        attach_lineage(simulator)
        detach_lineage(simulator)
        simulator.run(buffer)
        plain = make_simulator()
        plain.run(buffer)
        assert (simulator.merged_metrics().state_dict()
                == plain.merged_metrics().state_dict())
        for channel_sim in simulator.channels:
            assert channel_sim.lineage is None
            assert channel_sim.queue.lineage is None
            assert channel_sim.cache.lineage is None
            assert channel_sim.prefetcher.lineage is None


class TestCheckpoint:
    def test_collector_state_round_trip(self):
        _, lineage = run_with_lineage("planaria")
        for collector in lineage.collectors:
            restored = LineageCollector(channel=collector.channel)
            restored.load_state(collector.state_dict())
            assert restored.summary() == collector.summary()
            assert restored.events() == collector.events()
            assert restored.state_dict() == collector.state_dict()

    def test_collector_rejects_foreign_schema(self):
        collector = LineageCollector(channel=0)
        state = collector.state_dict()
        state["schema"] = 99
        with pytest.raises(ValueError, match="schema 99"):
            LineageCollector(channel=0).load_state(state)

    def test_simulator_checkpoint_resume_is_exact(self):
        """Split run (checkpoint at half) == straight-through run."""
        from repro.sim.engine import channel_warmup_counts

        config = SimConfig.experiment_scale()
        buffer = trace(length=LENGTH)
        half = len(buffer) // 2
        warmup = channel_warmup_counts(buffer, config)

        first = make_simulator()
        attach_lineage(first)
        first.set_stream_warmup(warmup)
        first.feed(buffer[:half])
        state = first.state_dict()

        second = make_simulator()
        resumed = attach_lineage(second)
        second.load_state(state)
        second.feed(buffer[half:])

        straight = make_simulator()
        reference = attach_lineage(straight)
        straight.set_stream_warmup(warmup)
        straight.feed(buffer)

        assert (second.merged_metrics().state_dict()
                == straight.merged_metrics().state_dict())
        assert resumed.summary() == reference.summary()
        assert lineage_consistent(resumed.summary())

    def test_checkpoint_without_lineage_loads_into_lineage_off(self):
        """A plain checkpoint restores into a plain simulator (the
        conditional state key never poisons lineage-off restores)."""
        buffer = trace(length=4_000)
        plain = make_simulator()
        plain.run(buffer)
        state = plain.state_dict()
        for channel_state in state["channels"]:
            assert "lineage" not in channel_state
        restored = make_simulator()
        restored.load_state(state)
        assert (restored.merged_metrics().state_dict()
                == plain.merged_metrics().state_dict())


class TestQueueDropOrigins:
    def _candidate(self, block, source="slp"):
        return PrefetchCandidate(block_addr=block, source=source)

    def test_per_origin_drop_counts(self):
        config = SimConfig.experiment_scale()
        queue = PrefetchQueue(dataclasses.replace(
            config.queue, depth=4, max_degree=2))
        queue.push([self._candidate(1, "slp"), self._candidate(2, "tlp"),
                    self._candidate(3, "tlp")])  # degree-drops #3
        queue.push([self._candidate(1, "slp")])  # duplicate
        queue.push([self._candidate(10, "bop"), self._candidate(11, "bop")])
        queue.push([self._candidate(12, "bop")])  # queue full
        stats = queue.stats
        assert stats.dropped_by_origin == {"tlp": 1, "slp": 1, "bop": 1}
        assert (sum(stats.dropped_by_origin.values())
                == stats.dropped_total())

    def test_merge_sums_origins(self):
        left = QueueStats(dropped_by_origin={"slp": 2, "tlp": 1})
        right = QueueStats(dropped_by_origin={"tlp": 3, "bop": 4})
        left.merge(right)
        assert left.dropped_by_origin == {"slp": 2, "tlp": 4, "bop": 4}

    def test_state_round_trip_and_back_compat(self):
        stats = QueueStats(accepted=5,
                           dropped_by_origin={"slp": 2})
        restored = QueueStats()
        restored.load_state(stats.state_dict())
        assert restored.dropped_by_origin == {"slp": 2}
        # Pre-lineage checkpoints carry no origin table: loads as empty.
        legacy = stats.state_dict()
        del legacy["dropped_by_origin"]
        fresh = QueueStats()
        fresh.load_state(legacy)
        assert fresh.accepted == 5
        assert fresh.dropped_by_origin == {}

    def test_system_runs_populate_origins(self):
        simulator, _ = run_with_lineage("planaria")
        origins = simulator.merged_queue_stats().dropped_by_origin
        assert origins  # planaria always duplicates some slp/tlp issues
        assert set(origins) <= {"slp", "tlp"}


class TestWiring:
    def test_wire_lineage_reaches_nested_prefetchers(self):
        config = SimConfig.experiment_scale()
        prefetcher = make_prefetcher("planaria-throttled", config.layout, 0)
        collector = LineageCollector(channel=0)
        wire_lineage(prefetcher, collector)
        assert prefetcher.lineage is collector
        assert prefetcher.inner.lineage is collector
        assert prefetcher.inner.slp.lineage is collector
        assert prefetcher.inner.tlp.lineage is collector
        wire_lineage(prefetcher, None)
        assert prefetcher.inner.slp.lineage is None

    def test_merge_of_empty_is_zeroed(self):
        merged = merge_lineage_summaries([])
        assert merged["totals"]["issued"] == 0
        assert merged["buckets"] == {}
        assert lineage_consistent(merged)


class TestFateEvents:
    def test_ring_is_bounded(self):
        buffer = trace()
        simulator = make_simulator()
        for channel_sim in simulator.channels:
            from repro.obs.lineage import wire_channel_lineage

            wire_channel_lineage(channel_sim, LineageCollector(
                channel=channel_sim.channel, event_capacity=8))
        simulator.run(buffer)
        for channel_sim in simulator.channels:
            assert len(channel_sim.lineage.events()) <= 8

    def test_chrome_export_shape(self, tmp_path):
        _, lineage = run_with_lineage("planaria")
        events = lineage.events()
        assert events == sorted(
            events, key=lambda event: (event["time"], event["channel"],
                                       event["block"]))
        chrome = fate_events_to_chrome(events)
        assert len(chrome["traceEvents"]) == len(events)
        for entry in chrome["traceEvents"][:4]:
            assert entry["ph"] == "i"
            assert entry["name"].startswith("fate:")
        path = write_fate_trace(tmp_path / "fates.json", events)
        import json

        decoded = json.loads(path.read_text(encoding="utf-8"))
        assert decoded["otherData"]["format"] == "planaria-lineage-fates"


class TestService:
    def test_session_lineage_matches_offline(self):
        from repro.service.session import SessionManager

        buffer = trace()
        manager = SessionManager()
        try:
            manager.open("lin", "planaria", lineage=True)
            manager.feed("lin", buffer)
            served = manager.lineage("lin")
            manager.close("lin")
        finally:
            manager.shutdown(checkpoint=False)
        _, offline = run_with_lineage("planaria")
        assert served == offline.summary()

    def test_session_without_lineage_raises(self):
        from repro.service.session import SessionManager

        manager = SessionManager()
        try:
            manager.open("plain", "planaria")
            with pytest.raises(ServiceError, match="without lineage"):
                manager.lineage("plain")
        finally:
            manager.shutdown(checkpoint=False)

    def test_session_checkpoint_resume_matches_straight_run(self, tmp_path):
        from repro.service.session import SessionManager

        buffer = trace()
        half = len(buffer) // 2
        manager = SessionManager(checkpoint_dir=tmp_path)
        try:
            manager.open("r", "planaria", lineage=True)
            manager.feed("r", buffer[:half])
            manager.checkpoint("r")
            manager._sessions.clear()  # simulate a crash
            manager.open("r", "planaria", resume=True)
            manager.feed("r", buffer[half:])
            resumed = manager.lineage("r")
        finally:
            manager.shutdown(checkpoint=False)
        _, reference = run_with_lineage("planaria")
        assert resumed == reference.summary()

    def test_metrics_text_exposes_lineage_series(self):
        from repro.service.session import SessionManager

        manager = SessionManager()
        try:
            manager.open("lin", "planaria", lineage=True)
            manager.feed("lin", trace(length=4_000))
            manager.lineage("lin")  # quiesce: the scrape never blocks
            text = manager.metrics_text()
        finally:
            manager.shutdown(checkpoint=False)
        assert "planaria_lineage_issued_total{" in text
        assert 'fate="used_timely"' in text
        assert "planaria_lineage_resident{" in text


class TestPropertyNeutrality:
    @settings(max_examples=8, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**16),
           length=st.integers(min_value=512, max_value=4_096),
           app=st.sampled_from(["CFM", "HoK", "Fort"]))
    def test_random_traces_neutral_and_consistent(self, seed, length, app):
        buffer = trace(app=app, length=length, seed=seed)
        plain = make_simulator()
        plain.run(buffer)
        observed = make_simulator()
        lineage = attach_lineage(observed)
        observed.run(buffer)
        assert (plain.merged_metrics().state_dict()
                == observed.merged_metrics().state_dict())
        summary = lineage.summary()
        assert lineage_consistent(summary)
        cache_stats = observed.merged_cache_stats()
        totals = summary["totals"]
        assert (totals["used_timely"] + totals["used_late"]
                == cache_stats.useful_total())
        assert totals["evicted_unused"] == cache_stats.unused_total()
