"""Simulation engine: channel routing, latency accounting, prefetch flow."""

import pytest

from repro.config import CacheConfig, SimConfig
from repro.errors import SimulationError
from repro.prefetch.registry import make_prefetcher
from repro.sim.engine import ChannelSimulator, SystemSimulator
from repro.trace.generator import generate_trace, get_profile
from repro.trace.record import AccessType, DeviceID, TraceRecord


def tiny_config():
    return SimConfig(cache=CacheConfig(size_bytes=16 * 1024))


def channel_sim(prefetcher="none", channel=0, config=None):
    config = config or tiny_config()
    return ChannelSimulator(channel, config,
                            make_prefetcher(prefetcher, config.layout, channel))


def read(addr, time):
    return TraceRecord(addr, AccessType.READ, DeviceID.CPU, time)


def write(addr, time):
    return TraceRecord(addr, AccessType.WRITE, DeviceID.CPU, time)


class TestChannelSimulator:
    def test_miss_then_hit_latency(self):
        sim = channel_sim()
        miss_latency = sim.step(read(0x0, 100))
        assert miss_latency > sim.config.sc_hit_latency
        hit_latency = sim.step(read(0x0, miss_latency + 200))
        assert hit_latency == sim.config.sc_hit_latency

    def test_mshr_merge_latency(self):
        sim = channel_sim()
        sim.step(read(0x0, 100))
        # A second access before the fill completes waits the remainder.
        merged = sim.step(read(0x0, 110))
        assert sim.config.sc_hit_latency < merged
        assert sim.cache.stats.delayed_hits == 1
        # No second DRAM read was issued.
        assert sim.dram.stats.demand_reads == 1

    def test_write_posted_off_critical_path(self):
        sim = channel_sim()
        latency = sim.step(write(0x40, 100))
        assert latency == sim.config.sc_hit_latency
        # The fetch-for-ownership still reached DRAM and the block is dirty.
        assert sim.dram.stats.demand_reads == 1
        assert sim.cache.probe(1).dirty

    def test_dirty_eviction_writes_back(self):
        config = SimConfig(cache=CacheConfig(size_bytes=1024, associativity=1))
        sim = channel_sim(config=config)
        sets = config.cache.num_sets
        sim.step(write(0x0, 100))
        sim.step(read(sets * 64, 10_000))  # same set, evicts dirty block
        assert sim.dram.stats.writebacks == 1

    def test_warmup_suppresses_metrics(self):
        sim = channel_sim()
        records = [read(index * 64, 100 + index * 200) for index in range(10)]
        sim.run(records, warmup_records=5)
        assert sim.metrics.demand_reads == 5

    def test_set_warmup_drives_default_step(self):
        """step() with no explicit record_metrics honours set_warmup."""
        sim = channel_sim()
        sim.set_warmup(3)
        for index in range(10):
            sim.step(read(index * 64, 100 + index * 200))
        assert sim.metrics.demand_reads == 7

    def test_set_warmup_records_seen_hint_resumes_window(self):
        """A simulator resumed mid-stream (records_seen_hint > 0) counts
        warmup from the stream's absolute start, not from the resume."""
        sim = channel_sim()
        records = [read(index * 64, 100 + index * 200) for index in range(10)]
        sim.set_warmup(5)
        for record in records[:4]:
            sim.step(record)
        # Resume: 4 already seen, warmup window of 5 still has 1 to go.
        sim.set_warmup(5, records_seen_hint=4)
        for record in records[4:]:
            sim.step(record)
        assert sim.metrics.demand_reads == 5

    def test_run_resumes_after_partial_stepping(self):
        """run() after manual step()s keeps counting from where the
        stream left off instead of restarting the warmup window."""
        sim = channel_sim()
        records = [read(index * 64, 100 + index * 200) for index in range(10)]
        sim.set_warmup(5)
        for record in records[:4]:
            sim.step(record)
        sim.run(records[4:], warmup_records=5)
        assert sim.metrics.demand_reads == 5

    def test_explicit_record_metrics_overrides_warmup(self):
        sim = channel_sim()
        sim.set_warmup(100)
        sim.step(read(0, 100), record_metrics=True)
        assert sim.metrics.demand_reads == 1
        sim.step(read(64, 300), record_metrics=False)
        assert sim.metrics.demand_reads == 1

    def test_prefetcher_channel_mismatch_rejected(self):
        config = tiny_config()
        prefetcher = make_prefetcher("none", config.layout, 1)
        with pytest.raises(SimulationError):
            ChannelSimulator(0, config, prefetcher)

    def test_wrong_channel_records_still_process(self):
        # The engine trusts callers to route; a record for another channel
        # is processed under this channel's cache (SystemSimulator routes).
        sim = channel_sim(channel=0)
        latency = sim.step(read(0x400, 100))  # maps to channel 1
        assert latency > 0


class TestPrefetchIntegration:
    def test_nextline_prefetch_fills_cache(self):
        sim = channel_sim("nextline")
        sim.step(read(0x0, 100))  # miss -> prefetch block 1 of the segment
        assert sim.cache.contains(1)
        assert sim.dram.stats.prefetch_reads == 1

    def test_prefetch_hit_counts_useful(self):
        sim = channel_sim("nextline")
        sim.step(read(0x0, 100))
        sim.step(read(0x40, 5_000))  # block 1 was prefetched
        assert sim.cache.stats.prefetch_useful.get("nextline") == 1

    def test_duplicate_prefetch_not_refetched(self):
        sim = channel_sim("nextline")
        sim.step(read(0x0, 100))
        before = sim.dram.stats.prefetch_reads
        sim.step(read(0x80, 5_000))  # miss on block 2: prefetch block 3
        sim.step(read(0x80, 10_000))
        assert sim.dram.stats.prefetch_reads <= before + 2

    def test_prefetch_disabled_by_config(self):
        config = SimConfig(cache=CacheConfig(size_bytes=16 * 1024),
                           prefetch_fill_sc=False)
        sim = channel_sim("nextline", config=config)
        sim.step(read(0x0, 100))
        assert sim.dram.stats.prefetch_reads == 0
        assert not sim.cache.contains(1)

    def test_planaria_attribution_reaches_cache_stats(self):
        config = tiny_config()
        sim = channel_sim("planaria", config=config)
        profile = get_profile("CFM")
        records = [r for r in generate_trace(profile, 30_000, seed=11)
                   if config.layout.channel(r.address) == 0]
        sim.run(records)
        useful = sim.cache.stats.prefetch_useful
        assert useful.get("slp", 0) > 0  # SLP useful prefetches observed


class TestSystemSimulator:
    def make_system(self, prefetcher="none", config=None):
        config = config or tiny_config()
        return SystemSimulator(
            config,
            lambda layout, channel: make_prefetcher(prefetcher, layout, channel),
        )

    def test_routes_by_channel(self):
        system = self.make_system()
        records = [read(block * 64, 100 + block * 50) for block in range(64)]
        system.run(records, warmup_fraction=0.0)
        for channel_sim in system.channels:
            assert channel_sim.cache.stats.demand_accesses == 16

    def test_merged_metrics_cover_all_records(self):
        system = self.make_system()
        records = [read(block * 64, 100 + block * 50) for block in range(64)]
        system.run(records, warmup_fraction=0.0)
        merged = system.merged_metrics()
        assert merged.demand_reads == 64

    def test_power_report_positive(self):
        system = self.make_system("planaria")
        records = generate_trace(get_profile("CFM"), 5_000, seed=1)
        system.run(records)
        report = system.power_report()
        assert report.total_nj > 0
        assert report.average_power_mw > 0

    def test_storage_bits_scale_with_channels(self):
        system = self.make_system("planaria")
        single = system.channels[0].prefetcher.storage_bits()
        assert system.storage_bits() == 4 * single

    def test_merged_queue_stats_sum_channels(self):
        system = self.make_system("planaria")
        records = generate_trace(get_profile("CFM"), 10_000, seed=1)
        system.run(records)
        merged = system.merged_queue_stats()
        assert merged.accepted == sum(
            channel.queue.stats.accepted for channel in system.channels)
        assert merged.dropped_total() == sum(
            channel.queue.stats.dropped_total()
            for channel in system.channels)
        assert merged.accepted > 0

    def test_queue_stats_merge_empty_channel(self):
        from repro.prefetch.queue import QueueStats

        merged = QueueStats(accepted=5, dropped_duplicate=2,
                            dropped_degree=1, dropped_full=3)
        merged.merge(QueueStats())  # channel that never pushed a candidate
        assert merged == QueueStats(accepted=5, dropped_duplicate=2,
                                    dropped_degree=1, dropped_full=3)
        assert merged.dropped_total() == 6

    def test_warmup_fraction_default_from_config(self):
        config = SimConfig(cache=CacheConfig(size_bytes=16 * 1024),
                           warmup_fraction=0.5)
        system = SystemSimulator(
            config, lambda layout, channel: make_prefetcher("none", layout, channel))
        records = [read(block * 64 * 4, 100 + block * 50) for block in range(40)]
        system.run(records)
        assert system.merged_metrics().demand_reads == 20
