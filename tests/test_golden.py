"""Golden-trace regression fixtures.

A small committed trace (``tests/golden/trace_CFM_4k.csv``) is driven
through every default prefetcher and the resulting :class:`RunMetrics`
are compared *field-for-field, bit-for-bit* against the committed
expectations in ``tests/golden/expected_metrics.json``.  Any drift in
cache behaviour, DRAM timing, prefetcher decisions, power modelling or
metric plumbing shows up here as a precise per-field diff.

When a behaviour change is intentional, regenerate the expectations:

    PYTHONPATH=src python -m pytest tests/test_golden.py --update-golden

and commit the updated JSON together with the change that caused it
(see docs/calibration.md).
"""

import json
from dataclasses import asdict
from pathlib import Path

import pytest

from repro.config import SimConfig
from repro.sim.runner import DEFAULT_PREFETCHERS, simulate
from repro.trace.io import read_trace

GOLDEN_DIR = Path(__file__).parent / "golden"
TRACE_PATH = GOLDEN_DIR / "trace_CFM_4k.csv"
EXPECTED_PATH = GOLDEN_DIR / "expected_metrics.json"


def compute_golden_metrics() -> dict:
    """``{prefetcher: {field: value}}`` over the committed golden trace."""
    records = list(read_trace(TRACE_PATH))
    config = SimConfig.experiment_scale()
    results = {}
    for name in DEFAULT_PREFETCHERS:
        metrics = simulate(records, name, workload_name="golden-CFM",
                           config=config).metrics
        results[name] = asdict(metrics)
    return results


def update_golden_file() -> dict:
    expected = compute_golden_metrics()
    EXPECTED_PATH.write_text(json.dumps(expected, indent=2, sort_keys=True)
                             + "\n")
    return expected


def test_golden_trace_metrics(request):
    if request.config.getoption("--update-golden"):
        update_golden_file()
        pytest.skip("regenerated tests/golden/expected_metrics.json")
    assert EXPECTED_PATH.exists(), (
        "missing golden expectations; run pytest tests/test_golden.py "
        "--update-golden once and commit the JSON")
    expected = json.loads(EXPECTED_PATH.read_text())
    actual = compute_golden_metrics()
    assert sorted(actual) == sorted(expected)
    for prefetcher in expected:
        for field_name, want in expected[prefetcher].items():
            got = actual[prefetcher][field_name]
            assert got == want, (
                f"{prefetcher}.{field_name} drifted: "
                f"expected {want!r}, got {got!r}")


def test_golden_trace_is_committed_verbatim():
    """Guard against the fixture being silently regenerated: pin its size
    and first data record (generator output for CFM, length=4000,
    seed=11).  If the trace *must* change, update these literals and the
    expectations JSON together."""
    lines = TRACE_PATH.read_text().splitlines()
    assert len(lines) == 4001  # header + 4000 records
    assert lines[0] == "# address,access_type,device,arrival_time"
    assert lines[1] == "0x40f2d3c0,WRITE,DSP,7"
