"""Sharded service: router + engine worker processes, live migration.

Headline property: a session served by the cluster stays bit-identical
to offline ``simulate()`` even while it is live-migrated between worker
processes mid-feed — the checkpoint hand-off (quiesce → atomic snapshot
→ fingerprint-validated restore → route flip) is invisible in the
numbers.  Alongside the end-to-end runs, hypothesis pins the consistent
hashing contract the migration layer relies on: a key's placement moves
only when its owning worker leaves the ring.
"""

import functools
import json
import threading
import urllib.request

import pytest
from hypothesis import given, settings as hsettings, strategies as st

from repro.config import SimConfig
from repro.errors import CheckpointMismatchError, ServiceError
from repro.obs import attach_observability
from repro.obs.health import DetectorVerdict, HealthReport
from repro.prefetch.registry import make_prefetcher
from repro.service.bench import ClusterThread
from repro.service.checkpoint import (config_fingerprint, load_checkpoint,
                                      restore_simulator)
from repro.service.client import ServiceClient
from repro.service.cluster import (HashRing, compose_health,
                                   merge_span_summaries,
                                   merge_worker_metrics)
from repro.service.session import SessionManager
from repro.sim.engine import SystemSimulator, channel_warmup_counts
from repro.sim.runner import simulate
from repro.trace.generator import generate_trace_buffer, get_profile

LENGTH = 2400
SEED = 17
EPOCH_RECORDS = 256
CHUNK = 200


@functools.lru_cache(maxsize=None)
def _config():
    return SimConfig.experiment_scale()


@functools.lru_cache(maxsize=None)
def _trace():
    return generate_trace_buffer(get_profile("CFM"), LENGTH, seed=SEED,
                                 layout=_config().layout)


@functools.lru_cache(maxsize=None)
def _warmup():
    return channel_warmup_counts(_trace(), _config())


@functools.lru_cache(maxsize=None)
def _offline_metrics(prefetcher="planaria"):
    return simulate(_trace(), prefetcher, workload_name="bench",
                    config=_config()).metrics


@functools.lru_cache(maxsize=None)
def _offline_obs():
    sim = SystemSimulator(
        _config(),
        lambda layout, channel: make_prefetcher("planaria", layout, channel))
    obs = attach_observability(sim, epoch_records=EPOCH_RECORDS)
    sim.set_stream_warmup(_warmup())
    sim.feed(_trace())
    return obs


# ----------------------------------------------------------------------
# Consistent hashing (pure, hypothesis-driven)
# ----------------------------------------------------------------------
worker_sets = st.sets(st.integers(min_value=0, max_value=40),
                      min_size=2, max_size=8)
keys = st.lists(st.text(min_size=1, max_size=12), min_size=1, max_size=30,
                unique=True)


class TestHashRing:
    @given(workers=worker_sets, names=keys)
    @hsettings(max_examples=60, deadline=None)
    def test_keys_move_only_when_their_owner_leaves(self, workers, names):
        ring = HashRing()
        for worker in workers:
            ring.add(worker)
        before = {name: ring.owner(name) for name in names}
        leaving = sorted(workers)[0]
        ring.remove(leaving)
        for name in names:
            after = ring.owner(name)
            if before[name] != leaving:
                assert after == before[name], (
                    f"{name!r} moved although its owner {before[name]} "
                    f"stayed in the ring")
            else:
                assert after != leaving

    @given(workers=worker_sets, names=keys,
           joiner=st.integers(min_value=41, max_value=60))
    @hsettings(max_examples=60, deadline=None)
    def test_join_only_pulls_keys_to_the_new_worker(self, workers, names,
                                                    joiner):
        ring = HashRing()
        for worker in workers:
            ring.add(worker)
        before = {name: ring.owner(name) for name in names}
        ring.add(joiner)
        for name in names:
            after = ring.owner(name)
            assert after == before[name] or after == joiner

    @given(workers=worker_sets, names=keys)
    @hsettings(max_examples=30, deadline=None)
    def test_placement_is_deterministic(self, workers, names):
        first, second = HashRing(), HashRing()
        for worker in sorted(workers):
            first.add(worker)
        for worker in sorted(workers, reverse=True):
            second.add(worker)
        for name in names:
            assert first.owner(name) == second.owner(name)

    def test_empty_ring_rejected(self):
        with pytest.raises(ServiceError, match="no workers"):
            HashRing().owner("anything")


# ----------------------------------------------------------------------
# Observability merge helpers (pure)
# ----------------------------------------------------------------------
class TestMergeWorkerMetrics:
    def test_labels_injected_and_headers_deduplicated(self):
        worker0 = ("# HELP planaria_up Up.\n"
                   "# TYPE planaria_up gauge\n"
                   'planaria_up{session="a"} 1\n'
                   "planaria_total 5\n")
        worker1 = ("# HELP planaria_up Up.\n"
                   "# TYPE planaria_up gauge\n"
                   'planaria_up{session="b"} 1\n'
                   "planaria_total 7\n")
        merged = merge_worker_metrics({0: worker0, 1: worker1})
        assert merged.count("# HELP planaria_up") == 1
        assert merged.count("# TYPE planaria_up") == 1
        assert 'planaria_up{session="a",worker="0"} 1' in merged
        assert 'planaria_up{session="b",worker="1"} 1' in merged
        # Unlabelled samples gain a fresh label set.
        assert 'planaria_total{worker="0"} 5' in merged
        assert 'planaria_total{worker="1"} 7' in merged

    def test_router_text_stays_unlabelled(self):
        merged = merge_worker_metrics(
            {0: "planaria_total 1\n"},
            router_text="# HELP planaria_cluster_workers W.\n"
                        "# TYPE planaria_cluster_workers gauge\n"
                        "planaria_cluster_workers 3\n")
        assert "planaria_cluster_workers 3" in merged
        assert 'planaria_total{worker="0"} 1' in merged


class TestMergeSpanSummaries:
    def test_counts_sum_and_means_weight(self):
        merged = merge_span_summaries([
            {"request.feed": {"count": 3, "mean_us": 10.0, "max_us": 30.0,
                              "p50_us": 9.0, "p95_us": 25.0, "p99_us": 29.0}},
            {"request.feed": {"count": 1, "mean_us": 50.0, "max_us": 50.0,
                              "p50_us": 50.0, "p95_us": 50.0,
                              "p99_us": 50.0}},
        ])
        entry = merged["request.feed"]
        assert entry["count"] == 4
        assert entry["mean_us"] == pytest.approx(20.0)  # (3*10 + 1*50) / 4
        assert entry["max_us"] == 50.0
        assert entry["p95_us"] == 50.0  # max across processes (upper bound)


class TestComposeHealth:
    def _report(self, status="ok", detail="", ok=True):
        return HealthReport(
            status=status,
            verdicts=[DetectorVerdict(detector="accuracy", ok=ok, value=0.5,
                                      threshold=0.1, detail=detail)],
            sessions={f"s-{status}": status})

    def test_worst_status_wins_and_details_name_workers(self):
        merged = compose_health(
            {0: self._report(), 1: self._report("degraded", "bad", ok=False)},
            unreachable=[])
        assert merged.status == "degraded"
        assert not merged.ok
        details = [verdict.detail for verdict in merged.verdicts]
        assert "worker 0" in details
        assert "worker 1: bad" in details
        assert set(merged.sessions) == {"s-ok", "s-degraded"}

    def test_unreachable_worker_degrades_the_fleet(self):
        merged = compose_health({0: self._report()}, unreachable=[1])
        assert merged.status == "degraded"

    def test_all_ok(self):
        merged = compose_health({0: self._report(), 1: self._report()},
                                unreachable=[])
        assert merged.status == "ok" and merged.ok


# ----------------------------------------------------------------------
# Checkpoint fingerprint validation (satellite 2)
# ----------------------------------------------------------------------
class TestCheckpointMismatch:
    def _checkpointed(self, tmp_path, prefetcher="planaria"):
        manager = SessionManager(checkpoint_dir=tmp_path / "ckpt",
                                 default_config=_config())
        manager.open("sess", prefetcher, warmup_records=_warmup())
        manager.feed("sess", _trace()[:400]).result()
        manager.close("sess", delete_checkpoint=False)
        return manager

    def test_resume_with_other_prefetcher_names_both_fingerprints(
            self, tmp_path):
        manager = self._checkpointed(tmp_path)
        with pytest.raises(CheckpointMismatchError) as excinfo:
            manager.open("sess", "stride", resume=True)
        error = excinfo.value
        assert error.checkpoint_fingerprint == config_fingerprint(
            "planaria", _config())
        assert error.target_fingerprint == config_fingerprint(
            "stride", _config())
        assert error.checkpoint_fingerprint in str(error)
        assert error.target_fingerprint in str(error)
        assert "prefetcher" in str(error)
        manager.shutdown(checkpoint=False)

    def test_resume_with_other_config_refused(self, tmp_path):
        manager = self._checkpointed(tmp_path)
        import dataclasses

        other = dataclasses.replace(
            _config(), sc_hit_latency=_config().sc_hit_latency + 1)
        with pytest.raises(CheckpointMismatchError, match="config differs"):
            manager.open("sess", "planaria", config=other, resume=True)
        manager.shutdown(checkpoint=False)

    def test_matching_resume_still_works(self, tmp_path):
        manager = self._checkpointed(tmp_path)
        snapshot = manager.open("sess", "planaria", resume=True)
        assert snapshot.records_fed == 400
        manager.shutdown(checkpoint=False)

    def test_restore_simulator_validates_when_target_given(self, tmp_path):
        manager = self._checkpointed(tmp_path)
        path = (tmp_path / "ckpt" / "sess.ckpt")
        checkpoint = load_checkpoint(path)
        restore_simulator(checkpoint, prefetcher="planaria",
                          config=_config())  # must not raise
        with pytest.raises(CheckpointMismatchError):
            restore_simulator(checkpoint, prefetcher="bop")
        manager.shutdown(checkpoint=False)


# ----------------------------------------------------------------------
# Cluster end to end (one shared two-worker fleet; spawns are slow)
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def cluster(tmp_path_factory):
    checkpoints = tmp_path_factory.mktemp("cluster-ckpt")
    with ClusterThread(2, max_inflight_chunks=2, worker_threads=2,
                       checkpoint_dir=str(checkpoints), tracing=True,
                       metrics_port=0) as running:
        yield running


@pytest.fixture
def client(cluster):
    with ServiceClient.connect(port=cluster.port) as connected:
        yield connected


class TestClusterBitIdentity:
    def test_session_migrated_twice_under_load_matches_offline(
            self, cluster, client):
        """The ISSUE's headline gate: continuous feed + two live
        migrations, then RunMetrics AND epoch timelines must equal the
        offline run exactly."""
        trace = _trace()
        name = "migrating"
        client.open(name, "planaria", workload="bench", config=_config(),
                    warmup_records=_warmup(), epoch_records=EPOCH_RECORDS)
        moved = []
        errors = []

        def migrate_twice():
            try:
                with ServiceClient.connect(port=cluster.port) as control:
                    for _ in range(2):
                        result = control.migrate(name)
                        assert result["migrated"], result
                        moved.append(result["worker"])
            except BaseException as exc:
                errors.append(exc)

        controller = threading.Thread(target=migrate_twice)
        controller.start()
        for start in range(0, len(trace), CHUNK):
            client.feed(name, trace[start:start + CHUNK])
        controller.join(timeout=120)
        assert not errors, errors
        assert len(moved) == 2 and moved[0] != moved[1]

        epochs, _ = client.timeline(name, include_partial=True)
        assert epochs == _offline_obs().merged_timeline(include_partial=True)
        snapshot = client.close_session(name)
        assert snapshot.metrics == _offline_metrics()

    def test_sessions_spread_and_all_match_offline(self, cluster):
        plan = [(f"spread-{i}", prefetcher) for i, prefetcher in
                enumerate(("none", "stride", "planaria"))]
        results = {}

        def drive(name, prefetcher):
            with ServiceClient.connect(port=cluster.port) as worker_client:
                worker_client.open(name, prefetcher, workload="bench",
                                   config=_config(),
                                   warmup_records=_warmup())
                worker_client.feed_trace(name, _trace(), chunk_records=CHUNK)
                results[name] = worker_client.close_session(name).metrics

        threads = [threading.Thread(target=drive, args=spec)
                   for spec in plan]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=300)
        assert len(results) == len(plan)
        for name, prefetcher in plan:
            assert results[name] == _offline_metrics(prefetcher), name


class TestClusterOps:
    def test_explicit_migrate_to_named_worker(self, client):
        client.open("pinned", "stride", workload="bench", config=_config(),
                    warmup_records=_warmup())
        client.feed("pinned", _trace()[:CHUNK])
        here = next(entry["worker"] for entry
                    in client.cluster()["workers"]
                    if "pinned" in entry["sessions"])
        target = 1 - here
        result = client.migrate("pinned", target=target)
        assert result["migrated"] and result["worker"] == target
        # Migrating to the current owner is an acknowledged no-op.
        again = client.migrate("pinned", target=target)
        assert again["ok"] and not again["migrated"]
        client.feed("pinned", _trace()[CHUNK:2 * CHUNK])
        snapshot = client.close_session("pinned")
        assert snapshot.records_fed == 2 * CHUNK

    def test_migrate_unknown_session_fails(self, client):
        with pytest.raises(ServiceError, match="no-such"):
            client.migrate("no-such")

    def test_cluster_topology(self, client):
        topology = client.cluster()
        assert [entry["worker"] for entry in topology["workers"]] == [0, 1]
        assert all(entry["alive"] for entry in topology["workers"])
        assert topology["router"]["worker_count"] == 2

    def test_stats_aggregate_and_per_worker(self, client):
        client.open("stat", "none", workload="bench", config=_config())
        client.feed("stat", _trace()[:CHUNK])
        stats = client.stats()
        assert stats["stats"]["workers"] == 2
        assert set(stats["workers"]) == {"0", "1"}
        assert stats["stats"]["records_executed"] == sum(
            entry["records_executed"]
            for entry in stats["workers"].values())
        client.close_session("stat")

    def test_merged_metrics_carry_worker_labels(self, client):
        client.open("metric", "none", workload="bench", config=_config())
        client.feed("metric", _trace()[:CHUNK])
        text = client.metrics_text()
        assert 'worker="0"' in text or 'worker="1"' in text
        assert "planaria_cluster_workers 2" in text
        assert "planaria_cluster_migrations" in text
        assert text.count("# HELP planaria_cluster_workers") == 1
        client.close_session("metric")

    def test_composed_health(self, client):
        client.open("healthy", "planaria", workload="bench",
                    config=_config(), warmup_records=_warmup())
        client.feed("healthy", _trace()[:5 * CHUNK])
        report = client.health()
        assert report.status in ("ok", "degraded")
        assert "healthy" in report.sessions
        assert all("worker" in verdict.detail
                   for verdict in report.verdicts)
        client.close_session("healthy")

    def test_router_spans_parent_the_worker_request(self, cluster):
        with ServiceClient.connect(port=cluster.port,
                                   tracing=True) as traced:
            traced.open("traced", "none", workload="bench",
                        config=_config())
            traced.feed("traced", _trace()[:CHUNK])
            traced.close_session("traced")
            spans, summary = traced.server_spans()
            client_spans = traced.client_spans()
        forwards = [span for span in spans if span.name == "router.forward"]
        assert forwards, "router recorded no forward hops"
        client_feed = next(span for span in client_spans
                           if span.name == "client.feed")
        feed_hop = next(span for span in forwards
                        if span.trace_id == client_feed.trace_id)
        assert feed_hop.parent_id == client_feed.span_id
        # The worker's request span continues the same trace under the
        # router hop: client → router → worker, one causal chain.
        worker_feed = next(span for span in spans
                           if span.name == "request.feed"
                           and span.trace_id == client_feed.trace_id)
        assert worker_feed.parent_id == feed_hop.span_id
        assert "router.forward" in summary

    def test_http_metrics_and_healthz(self, cluster, client):
        client.open("http", "none", workload="bench", config=_config())
        client.feed("http", _trace()[:CHUNK])
        base = f"http://127.0.0.1:{cluster.metrics_port}"
        with urllib.request.urlopen(f"{base}/metrics", timeout=30) as reply:
            text = reply.read().decode("utf-8")
        assert "planaria_cluster_workers 2" in text
        with urllib.request.urlopen(f"{base}/healthz", timeout=30) as reply:
            payload = json.loads(reply.read().decode("utf-8"))
        assert payload["status"] in ("ok", "degraded")
        assert set(payload["workers"]) <= {"0", "1"}
        assert payload["unreachable_workers"] == []
        client.close_session("http")


# ----------------------------------------------------------------------
# Scale + drain (own fleets — they mutate topology)
# ----------------------------------------------------------------------
class TestScaleAndDrain:
    def test_scale_up_rebalances_and_scale_down_drains_back(self, tmp_path):
        with ClusterThread(1, max_inflight_chunks=2, worker_threads=2,
                           checkpoint_dir=str(tmp_path / "ckpt")) as running:
            with ServiceClient.connect(port=running.port) as client:
                sessions = [f"scale-{i}" for i in range(4)]
                for name in sessions:
                    client.open(name, "stride", workload="bench",
                                config=_config(), warmup_records=_warmup())
                    client.feed(name, _trace()[:CHUNK])
                grown = client.scale(3)
                assert grown["workers"] == [0, 1, 2]
                assert grown["added"] == [1, 2]
                # Live rebalancing: sessions the ring now assigns to the
                # joiners moved over via their checkpoints.
                placed = {entry["worker"]: entry["sessions"]
                          for entry in client.cluster()["workers"]}
                assert sorted(sum(placed.values(), [])) == sorted(sessions)
                for name in sessions:  # fleet survives a feed after move
                    client.feed(name, _trace()[CHUNK:2 * CHUNK])
                shrunk = client.scale(1)
                assert shrunk["workers"] == [0]
                assert shrunk["removed"] == [2, 1]
                for name in sessions:
                    client.feed(name, _trace()[2 * CHUNK:3 * CHUNK])
                    snapshot = client.close_session(name)
                    assert snapshot.records_fed == 3 * CHUNK
                final = client.cluster()
                assert final["router"]["worker_count"] == 1

    def test_drain_checkpoints_open_sessions(self, tmp_path):
        checkpoints = tmp_path / "ckpt"
        with ClusterThread(2, max_inflight_chunks=2, worker_threads=2,
                           checkpoint_dir=str(checkpoints)) as running:
            with ServiceClient.connect(port=running.port) as client:
                for name in ("drain-a", "drain-b", "drain-c"):
                    client.open(name, "stride", workload="bench",
                                config=_config(), warmup_records=_warmup())
                    client.feed(name, _trace()[:CHUNK])
        # ClusterThread.__exit__ drains the fleet: every open session
        # must have been checkpointed by its worker on the way down.
        saved = {path.stem for path in checkpoints.glob("*.ckpt")}
        assert {"drain-a", "drain-b", "drain-c"} <= saved
