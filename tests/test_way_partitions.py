"""Tenant way-partitioned system cache.

Three contracts:

* Validation — ``CacheConfig.way_partitions`` entries fail loudly at
  construction (unknown device, bad mask, wrong policy), with the typed
  :class:`UnknownDeviceError` naming the valid :class:`DeviceID` members.
* Mechanism — a tenant's fills only ever displace blocks inside its way
  mask, while lookups stay global; identical on both cache backends.
* Equivalence — shared mode (no partitions) is the pre-existing cache
  bit-for-bit, a full-mask partition is behaviourally identical to no
  partition, and the batch engine correctly refuses / falls back.
"""

from dataclasses import replace

import pytest

from repro.cache.array_state import ArrayCache
from repro.cache.cache import SetAssociativeCache
from repro.config import CacheConfig, SimConfig
from repro.errors import ConfigError, SimulationError, UnknownDeviceError
from repro.sim.runner import simulate
from repro.tenancy import TenantSpec, default_way_partitions, merge_traces
from repro.trace.record import DeviceID

CPU = DeviceID.CPU.value
GPU = DeviceID.GPU.value


def _small_config(**overrides):
    """2-way, 4-set cache: way 0 is CPU's, way 1 is GPU's."""
    fields = dict(size_bytes=2 * 4 * 64, associativity=2, block_size=64,
                  way_partitions=("CPU:0x1", "GPU:0x2"))
    fields.update(overrides)
    return CacheConfig(**fields)


class TestConfigValidation:
    def test_unknown_device_is_typed_and_names_the_members(self):
        with pytest.raises(UnknownDeviceError) as excinfo:
            _small_config(way_partitions=("TPU:0x1",))
        message = str(excinfo.value)
        assert "TPU" in message
        for member in DeviceID:
            assert member.name in message
        assert isinstance(excinfo.value, ConfigError)

    @pytest.mark.parametrize("entry", ["CPU", "CPU:zero", "CPU:0x0",
                                       "CPU:0x4"])
    def test_malformed_entries_rejected(self, entry):
        with pytest.raises(ConfigError):
            _small_config(way_partitions=(entry,))

    def test_duplicate_device_rejected(self):
        with pytest.raises(ConfigError, match="duplicate"):
            _small_config(way_partitions=("CPU:0x1", "CPU:0x2"))

    def test_partitions_require_lru(self):
        with pytest.raises(ConfigError, match="lru"):
            _small_config(replacement_policy="drrip")

    def test_masks_parse_hex_and_decimal(self):
        config = _small_config(way_partitions=("CPU:0x1", "GPU:2"))
        assert config.partition_masks() == {"CPU": 0x1, "GPU": 0x2}

    def test_default_is_unpartitioned(self):
        assert CacheConfig().way_partitions == ()
        assert CacheConfig().partition_masks() == {}


@pytest.mark.parametrize("cache_cls", [SetAssociativeCache, ArrayCache])
class TestPartitionedFills:
    def test_tenant_fills_stay_inside_its_ways(self, cache_cls):
        cache = cache_cls(_small_config())
        # Blocks 0, 4, 8 all map to set 0 (4 sets).
        cache.fill(0, now=0, ready_time=0, requester=CPU)
        cache.fill(4, now=1, ready_time=1, requester=CPU)
        # CPU owns only way 0: its second fill evicts its own block.
        assert not cache.contains(0)
        assert cache.contains(4)
        cache.fill(8, now=2, ready_time=2, requester=GPU)
        # GPU fills way 1, leaving CPU's block resident.
        assert cache.contains(4)
        assert cache.contains(8)

    def test_partition_victim_is_lru_within_the_mask(self, cache_cls):
        config = _small_config(size_bytes=4 * 2 * 64, associativity=4,
                               way_partitions=("CPU:0x3", "GPU:0xc"))
        cache = cache_cls(config)
        # Fill CPU's two ways (set 0: blocks 0, 2, 4...; 2 sets).
        cache.fill(0, now=0, ready_time=0, requester=CPU)
        cache.fill(2, now=1, ready_time=1, requester=CPU)
        cache.access(0, now=2)  # block 0 becomes MRU
        cache.fill(4, now=3, ready_time=3, requester=CPU)
        assert cache.contains(0)       # MRU survived
        assert not cache.contains(2)   # LRU within the partition evicted
        assert cache.contains(4)

    def test_lookups_stay_global_across_partitions(self, cache_cls):
        cache = cache_cls(_small_config())
        cache.fill(0, now=0, ready_time=0, requester=CPU)
        # GPU hits CPU's resident block: partitions bound fills, not hits.
        result = cache.access(0, now=1)
        assert result.hit

    def test_unknown_requester_uses_global_replacement(self, cache_cls):
        cache = cache_cls(_small_config())
        # NPU has no partition entry: it may fill anywhere (both ways).
        cache.fill(0, now=0, ready_time=0, requester=DeviceID.NPU.value)
        cache.fill(4, now=1, ready_time=1, requester=DeviceID.NPU.value)
        assert cache.contains(0)
        assert cache.contains(4)


def _specs():
    return [TenantSpec("CFM", "CPU", length=2500, seed=1),
            TenantSpec("HoK", "GPU", length=2500, seed=2)]


def _config(**cache_overrides):
    base = SimConfig.experiment_scale()
    if cache_overrides:
        base = replace(base, cache=replace(base.cache, **cache_overrides))
    return base


class TestEngineEquivalence:
    def test_full_mask_partition_equals_unpartitioned(self):
        """Partition code path with an all-ways mask == no partition.

        The restricted victim scan over *all* ways implements the same
        first-invalid / min-touch rule as LRUPolicy.victim, so metrics
        (including per-tenant attribution) must be bit-identical.
        """
        merged = merge_traces(_specs())
        full = (1 << 16) - 1
        partitioned = _config(way_partitions=(f"CPU:{hex(full)}",
                                              f"GPU:{hex(full)}"))
        baseline = simulate(merged, "planaria", config=_config(),
                            engine_mode="scalar").metrics
        behind_partitions = simulate(merged, "planaria", config=partitioned,
                                     engine_mode="scalar").metrics
        assert behind_partitions == baseline

    def test_shared_mode_batch_matches_scalar_with_tenant_stats(self):
        merged = merge_traces(_specs())
        scalar = simulate(merged, "planaria", config=_config(),
                          engine_mode="scalar").metrics
        batch = simulate(merged, "planaria", config=_config(),
                         engine_mode="batch").metrics
        assert batch == scalar
        assert set(batch.tenant_stats) == {"CPU", "GPU"}
        # Dict insertion order is part of the contract.
        assert list(batch.tenant_stats) == list(scalar.tenant_stats)

    def test_partitioned_run_differs_but_conserves_accesses(self):
        merged = merge_traces(_specs())
        shared = simulate(merged, "planaria", config=_config()).metrics
        config = _config(way_partitions=default_way_partitions(_specs(), 16))
        partitioned = simulate(merged, "planaria", config=config).metrics
        assert partitioned.demand_accesses == shared.demand_accesses
        for device in ("CPU", "GPU"):
            assert (partitioned.tenant_stats[device]["accesses"]
                    == shared.tenant_stats[device]["accesses"])
        assert partitioned.hit_rate != shared.hit_rate

    def test_explicit_batch_refuses_partitions(self):
        config = _config(way_partitions=("CPU:0xff", "GPU:0xff00"))
        with pytest.raises(SimulationError, match="way_partitions"):
            simulate(merge_traces(_specs()), "none", config=config,
                     engine_mode="batch")

    def test_auto_falls_back_to_scalar_under_partitions(self):
        merged = merge_traces(_specs())
        config = _config(way_partitions=("CPU:0xff", "GPU:0xff00"))
        auto = simulate(merged, "none", config=config,
                        engine_mode="auto").metrics
        scalar = simulate(merged, "none", config=config,
                          engine_mode="scalar").metrics
        assert auto == scalar
