"""Streaming-state equivalence: feed/state_dict/checkpoint vs. batch run.

The service layers are only trustworthy if simulator state is *complete*:
any chunking of a trace, any ``state_dict()`` → ``load_state()`` hop, and
any trip through the on-disk checkpoint format must land on RunMetrics
bit-identical to one offline :func:`repro.sim.runner.simulate` of the
same records.  These tests pin that for every registered prefetcher; the
hypothesis test additionally roams the cut point so boundary placement
(including cuts inside a channel's warmup window) can't hide partial
state capture.
"""

import functools

import pytest
from hypothesis import given, settings as hsettings, strategies as st

from repro.config import SimConfig
from repro.prefetch.registry import PREFETCHER_FACTORIES, make_prefetcher
from repro.service.checkpoint import (Checkpoint, load_checkpoint,
                                      restore_simulator, save_checkpoint)
from repro.errors import CheckpointError
from repro.sim.engine import SystemSimulator, channel_warmup_counts
from repro.sim.runner import collect_metrics, simulate
from repro.trace.generator import generate_trace_buffer, get_profile

ALL_PREFETCHERS = sorted(PREFETCHER_FACTORIES)
LENGTH = 600
SEED = 11


@functools.lru_cache(maxsize=None)
def _config():
    return SimConfig.experiment_scale()


@functools.lru_cache(maxsize=None)
def _trace():
    return generate_trace_buffer(get_profile("CFM"), LENGTH, seed=SEED,
                                 layout=_config().layout)


@functools.lru_cache(maxsize=None)
def _offline_metrics(prefetcher):
    return simulate(_trace(), prefetcher, workload_name="stream",
                    config=_config()).metrics


def _streaming_simulator(prefetcher, engine_mode="auto"):
    simulator = SystemSimulator(
        _config(),
        lambda layout, channel: make_prefetcher(prefetcher, layout, channel),
        engine_mode=engine_mode)
    simulator.set_stream_warmup(channel_warmup_counts(_trace(), _config()))
    return simulator


def _metrics(simulator, prefetcher):
    return collect_metrics(simulator, "stream", prefetcher)


@pytest.mark.parametrize("prefetcher", ALL_PREFETCHERS)
def test_chunked_feed_matches_batch(prefetcher):
    trace = _trace()
    simulator = _streaming_simulator(prefetcher)
    for start in range(0, len(trace), 157):  # deliberately awkward chunks
        simulator.feed(trace[start:start + 157])
    simulator.feed(trace[len(trace):])  # empty chunk must be a no-op
    assert _metrics(simulator, prefetcher) == _offline_metrics(prefetcher)


@pytest.mark.parametrize("prefetcher", ALL_PREFETCHERS)
def test_state_round_trip_mid_trace(prefetcher):
    trace = _trace()
    cut = len(trace) // 2
    first = _streaming_simulator(prefetcher)
    first.feed(trace[:cut])
    state = first.state_dict()
    first.feed(trace[cut:cut + 40])  # mutate the donor: copy must detach

    second = _streaming_simulator(prefetcher)
    second.load_state(state)
    second.feed(trace[cut:])
    assert _metrics(second, prefetcher) == _offline_metrics(prefetcher)


@pytest.mark.parametrize("prefetcher", ALL_PREFETCHERS)
def test_checkpoint_file_round_trip(tmp_path, prefetcher):
    trace = _trace()
    cut = 2 * len(trace) // 3
    simulator = _streaming_simulator(prefetcher)
    simulator.feed(trace[:cut])
    path = save_checkpoint(
        tmp_path / "session.ckpt",
        Checkpoint(prefetcher=prefetcher, workload="stream",
                   config=_config(), records_fed=cut, chunks_fed=1,
                   state=simulator.state_dict()))

    checkpoint = load_checkpoint(path)
    assert checkpoint.records_fed == cut
    resumed = restore_simulator(checkpoint)
    resumed.feed(trace[cut:])
    assert _metrics(resumed, prefetcher) == _offline_metrics(prefetcher)


class TestStateAtRandomBoundaries:
    """Hypothesis roams the cut point over the whole trace, per prefetcher."""

    @pytest.mark.parametrize("prefetcher", ALL_PREFETCHERS)
    @hsettings(max_examples=5, deadline=None)
    @given(cut=st.integers(min_value=0, max_value=LENGTH))
    def test_round_trip_at_any_boundary(self, prefetcher, cut):
        trace = _trace()
        donor = _streaming_simulator(prefetcher)
        donor.feed(trace[:cut])
        resumed = _streaming_simulator(prefetcher)
        resumed.load_state(donor.state_dict())
        resumed.feed(trace[cut:])
        assert _metrics(resumed, prefetcher) == _offline_metrics(prefetcher)


class TestCrossEngineResume:
    """A checkpoint cut mid-trace — i.e. mid run-length batch, anywhere the
    cut lands — taken on one engine and resumed on the other must finish in
    exactly the state an uninterrupted scalar run reaches: state_dict is an
    engine-neutral format, and the batch engine neither loses deferred
    work at a checkpoint nor misreads a scalar-written snapshot."""

    # One prefetcher per engine regime: passive demand loop, run-foldable
    # composite, throttle wrapper, per-record trigger path.
    PREFETCHERS = ("none", "planaria", "planaria-throttled", "bop")

    @pytest.mark.parametrize("prefetcher", PREFETCHERS)
    @hsettings(max_examples=5, deadline=None)
    @given(cut=st.integers(min_value=0, max_value=LENGTH),
           donor_engine=st.sampled_from(("scalar", "batch")))
    def test_round_trip_across_engines(self, prefetcher, cut, donor_engine):
        from tests.test_batch_oracle import deep_diff

        trace = _trace()
        resume_engine = "batch" if donor_engine == "scalar" else "scalar"
        donor = _streaming_simulator(prefetcher, engine_mode=donor_engine)
        donor.feed(trace[:cut])
        resumed = _streaming_simulator(prefetcher, engine_mode=resume_engine)
        resumed.load_state(donor.state_dict())
        resumed.feed(trace[cut:])
        assert _metrics(resumed, prefetcher) == _offline_metrics(prefetcher)

        reference = _streaming_simulator(prefetcher, engine_mode="scalar")
        reference.feed(trace)
        diffs = []
        for index, (ref_ch, res_ch) in enumerate(zip(reference.channels,
                                                     resumed.channels)):
            deep_diff(ref_ch.state_dict(), res_ch.state_dict(),
                      path=f"channel[{index}]", out=diffs)
        assert not diffs, (
            f"{donor_engine}→{resume_engine} resume at cut {cut} diverged "
            "from the uninterrupted scalar run:\n  " + "\n  ".join(diffs))

    @pytest.mark.parametrize("prefetcher", ("none", "planaria"))
    def test_checkpoint_file_written_by_batch_engine(self, tmp_path,
                                                     prefetcher):
        """The on-disk format round-trips a batch-engine snapshot too."""
        trace = _trace()
        cut = len(trace) // 3
        simulator = _streaming_simulator(prefetcher, engine_mode="batch")
        simulator.feed(trace[:cut])
        path = save_checkpoint(
            tmp_path / "batch.ckpt",
            Checkpoint(prefetcher=prefetcher, workload="stream",
                       config=_config(), records_fed=cut, chunks_fed=1,
                       state=simulator.state_dict()))
        resumed = restore_simulator(load_checkpoint(path))
        resumed.feed(trace[cut:])
        assert _metrics(resumed, prefetcher) == _offline_metrics(prefetcher)


class TestCheckpointFileFormat:
    def test_rejects_missing_file(self, tmp_path):
        with pytest.raises(CheckpointError, match="no checkpoint"):
            load_checkpoint(tmp_path / "absent.ckpt")

    def test_rejects_garbage(self, tmp_path):
        path = tmp_path / "garbage.ckpt"
        path.write_bytes(b"\x00not a pickle")
        with pytest.raises(CheckpointError, match="not a readable"):
            load_checkpoint(path)

    def test_rejects_foreign_pickle(self, tmp_path):
        import pickle

        path = tmp_path / "foreign.ckpt"
        path.write_bytes(pickle.dumps({"magic": "something-else"}))
        with pytest.raises(CheckpointError, match="not a planaria"):
            load_checkpoint(path)

    def test_rejects_future_version(self, tmp_path):
        simulator = _streaming_simulator("none")
        checkpoint = Checkpoint(prefetcher="none", workload="w",
                                config=_config(), records_fed=0,
                                chunks_fed=0, state=simulator.state_dict(),
                                version=99)
        path = save_checkpoint(tmp_path / "future.ckpt", checkpoint)
        with pytest.raises(CheckpointError, match="version 99"):
            load_checkpoint(path)

    def test_save_is_atomic_no_stray_temp_files(self, tmp_path):
        simulator = _streaming_simulator("none")
        checkpoint = Checkpoint(prefetcher="none", workload="w",
                                config=_config(), records_fed=0,
                                chunks_fed=0, state=simulator.state_dict())
        save_checkpoint(tmp_path / "a.ckpt", checkpoint)
        save_checkpoint(tmp_path / "a.ckpt", checkpoint)  # overwrite in place
        assert sorted(p.name for p in tmp_path.iterdir()) == ["a.ckpt"]
