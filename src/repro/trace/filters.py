"""Trace filtering and slicing utilities.

Real-system traces interleave every SoC device; these helpers let analyses
and examples carve out sub-traces (one device, one channel, one time window)
without copying the whole record list through ad-hoc loops.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional, Sequence

from repro.geometry import AddressLayout, DEFAULT_LAYOUT
from repro.trace.record import AccessType, DeviceID, TraceRecord


def filter_by_device(
    records: Iterable[TraceRecord], device: DeviceID
) -> Iterator[TraceRecord]:
    """Keep only accesses issued by ``device``."""
    return (record for record in records if record.device == device)


def filter_by_type(
    records: Iterable[TraceRecord], access_type: AccessType
) -> Iterator[TraceRecord]:
    """Keep only reads or only writes."""
    return (record for record in records if record.access_type == access_type)


def filter_by_channel(
    records: Iterable[TraceRecord],
    channel: int,
    layout: AddressLayout = DEFAULT_LAYOUT,
) -> Iterator[TraceRecord]:
    """Keep only accesses that map to one DRAM channel / SC slice."""
    if not 0 <= channel < layout.num_channels:
        raise ValueError(f"channel {channel} out of range 0..{layout.num_channels - 1}")
    return (record for record in records if layout.channel(record.address) == channel)


def filter_by_time_window(
    records: Iterable[TraceRecord], start: int, end: int
) -> Iterator[TraceRecord]:
    """Keep accesses with ``start <= arrival_time < end``."""
    if end < start:
        raise ValueError(f"empty window: start={start} end={end}")
    return (r for r in records if start <= r.arrival_time < end)


def filter_by_page(
    records: Iterable[TraceRecord],
    page_number: int,
    layout: AddressLayout = DEFAULT_LAYOUT,
) -> Iterator[TraceRecord]:
    """Keep accesses landing in one 4 KB page (used for Figure 2)."""
    return (r for r in records if layout.page_number(r.address) == page_number)


def take(records: Iterable[TraceRecord], limit: int) -> Iterator[TraceRecord]:
    """Yield at most ``limit`` records."""
    if limit < 0:
        raise ValueError(f"limit must be >= 0, got {limit}")
    for index, record in enumerate(records):
        if index >= limit:
            return
        yield record


def hottest_pages(
    records: Sequence[TraceRecord],
    count: int = 1,
    layout: AddressLayout = DEFAULT_LAYOUT,
    min_blocks: Optional[int] = None,
) -> list:
    """Page numbers sorted by access count, descending.

    Args:
        count: how many page numbers to return.
        min_blocks: if given, only consider pages touching at least this
            many distinct blocks (Figure 2 wants a page with a rich
            footprint, not a single hot block).
    """
    from collections import Counter

    hits: Counter = Counter()
    blocks: dict = {}
    for record in records:
        page = layout.page_number(record.address)
        hits[page] += 1
        blocks.setdefault(page, set()).add(layout.block_in_page(record.address))
    candidates = [
        (page, n) for page, n in hits.most_common()
        if min_blocks is None or len(blocks[page]) >= min_blocks
    ]
    return [page for page, _ in candidates[:count]]
