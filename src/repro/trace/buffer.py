"""Columnar (structure-of-arrays) trace representation.

The paper replays 66-71 M bus requests per workload; a Python object per
request is the single biggest simulation cost.  :class:`TraceBuffer` keeps
the four record fields as parallel NumPy arrays instead:

* ``addresses`` — ``uint64`` physical byte addresses,
* ``access_types`` — ``uint8`` :class:`~repro.trace.record.AccessType` values,
* ``devices`` — ``uint8`` :class:`~repro.trace.record.DeviceID` values,
* ``arrival_times`` — ``int64`` memory-controller cycles.

This is the canonical in-memory form: the generator fills columns directly,
:meth:`split_channels` routes the whole bus trace per channel in one
vectorized pass, the parallel executor ships arrays (compact buffers)
across process boundaries instead of pickling record-object lists, and the
engine's demand loop iterates the columns without materialising records.

The object-record API stays available as a thin compatibility layer:
:meth:`from_records` / :meth:`iter_records` / :meth:`to_records` convert
losslessly, and the engine accepts either form.  The column values are the
exact integers a :class:`~repro.trace.record.TraceRecord` would carry
(``.tolist()`` hands back Python ints), so both paths are bit-identical —
``tests/test_fastpath_equivalence.py`` and the golden-trace fixtures
enforce this.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Sequence, Tuple

import numpy as np

from repro.errors import TraceFormatError
from repro.geometry import AddressLayout
from repro.trace.record import AccessType, DeviceID, TraceRecord

#: Enum lookup tables indexed by stored value — avoids an enum construction
#: per record on the compatibility path.
_ACCESS_TYPE_BY_VALUE = {int(member): member for member in AccessType}
_DEVICE_BY_VALUE = {int(member): member for member in DeviceID}


class TraceBuffer:
    """One bus trace as four parallel NumPy columns.

    Instances are cheap to slice (shares memory), cheap to pickle (raw
    array buffers), and iterate ~10× faster through the engine's columnar
    fast path than the equivalent ``List[TraceRecord]``.
    """

    __slots__ = ("addresses", "access_types", "devices", "arrival_times")

    def __init__(
        self,
        addresses: np.ndarray,
        access_types: np.ndarray,
        devices: np.ndarray,
        arrival_times: np.ndarray,
    ) -> None:
        try:
            self.addresses = np.ascontiguousarray(addresses, dtype=np.uint64)
        except (OverflowError, ValueError) as exc:
            raise TraceFormatError(f"bad address column: {exc}") from exc
        self.access_types = np.ascontiguousarray(access_types, dtype=np.uint8)
        self.devices = np.ascontiguousarray(devices, dtype=np.uint8)
        try:
            self.arrival_times = np.ascontiguousarray(arrival_times,
                                                      dtype=np.int64)
        except (OverflowError, ValueError) as exc:
            raise TraceFormatError(f"bad arrival-time column: {exc}") from exc
        length = len(self.addresses)
        if not (len(self.access_types) == len(self.devices)
                == len(self.arrival_times) == length):
            raise TraceFormatError(
                "column length mismatch: "
                f"{length} addresses, {len(self.access_types)} types, "
                f"{len(self.devices)} devices, {len(self.arrival_times)} times"
            )
        if length:
            # Mirror TraceRecord.__post_init__ / enum validation in bulk.
            if int(self.arrival_times.min()) < 0:
                raise TraceFormatError("negative arrival time in trace buffer")
            if int(self.access_types.max()) not in _ACCESS_TYPE_BY_VALUE:
                raise TraceFormatError("unknown access type value in trace buffer")
            if int(self.devices.max()) not in _DEVICE_BY_VALUE:
                raise TraceFormatError("unknown device value in trace buffer")

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_columns(
        cls,
        addresses: Sequence[int],
        access_types: Sequence[int],
        devices: Sequence[int],
        arrival_times: Sequence[int],
    ) -> "TraceBuffer":
        """Build from plain integer sequences (the generator's output)."""
        return cls(addresses, access_types, devices, arrival_times)

    @classmethod
    def from_records(cls, records: Iterable[TraceRecord]) -> "TraceBuffer":
        """Pack object records into columns (compatibility layer)."""
        addresses: List[int] = []
        access_types: List[int] = []
        devices: List[int] = []
        arrival_times: List[int] = []
        for record in records:
            addresses.append(record.address)
            access_types.append(int(record.access_type))
            devices.append(int(record.device))
            arrival_times.append(record.arrival_time)
        return cls.from_columns(addresses, access_types, devices, arrival_times)

    @classmethod
    def empty(cls) -> "TraceBuffer":
        return cls.from_columns([], [], [], [])

    # ------------------------------------------------------------------
    # Sequence protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.addresses)

    def __getitem__(self, index):
        """``buffer[i]`` → TraceRecord; ``buffer[a:b]`` → TraceBuffer view."""
        if isinstance(index, slice):
            return TraceBuffer(
                self.addresses[index], self.access_types[index],
                self.devices[index], self.arrival_times[index],
            )
        return self.record(index)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TraceBuffer):
            return NotImplemented
        return (
            np.array_equal(self.addresses, other.addresses)
            and np.array_equal(self.access_types, other.access_types)
            and np.array_equal(self.devices, other.devices)
            and np.array_equal(self.arrival_times, other.arrival_times)
        )

    def __repr__(self) -> str:
        return f"TraceBuffer({len(self)} records, {self.nbytes} bytes)"

    @property
    def nbytes(self) -> int:
        """Total column payload in bytes (18 B/record vs ~200 B/object)."""
        return (self.addresses.nbytes + self.access_types.nbytes
                + self.devices.nbytes + self.arrival_times.nbytes)

    # ------------------------------------------------------------------
    # Record-object compatibility layer
    # ------------------------------------------------------------------
    def record(self, index: int) -> TraceRecord:
        """Materialise one record (bit-identical to the packed values)."""
        return TraceRecord(
            address=int(self.addresses[index]),
            access_type=_ACCESS_TYPE_BY_VALUE[int(self.access_types[index])],
            device=_DEVICE_BY_VALUE[int(self.devices[index])],
            arrival_time=int(self.arrival_times[index]),
        )

    def iter_records(self) -> Iterator[TraceRecord]:
        """Yield TraceRecord objects for consumers of the object API."""
        type_table = _ACCESS_TYPE_BY_VALUE
        device_table = _DEVICE_BY_VALUE
        for address, type_value, device_value, arrival_time in zip(
            self.addresses.tolist(), self.access_types.tolist(),
            self.devices.tolist(), self.arrival_times.tolist(),
        ):
            yield TraceRecord(
                address=address,
                access_type=type_table[type_value],
                device=device_table[device_value],
                arrival_time=arrival_time,
            )

    def to_records(self) -> List[TraceRecord]:
        return list(self.iter_records())

    def columns_as_lists(self) -> Tuple[List[int], List[int], List[int], List[int]]:
        """The four columns as Python-int lists (the fast loop's input).

        ``ndarray.tolist()`` converts in C and hands back exact Python
        ints, so downstream arithmetic is bit-identical to the object path.
        """
        return (
            self.addresses.tolist(),
            self.access_types.tolist(),
            self.devices.tolist(),
            self.arrival_times.tolist(),
        )

    # ------------------------------------------------------------------
    # Vectorized routing
    # ------------------------------------------------------------------
    def channel_indices(self, layout: AddressLayout) -> np.ndarray:
        """Per-record DRAM channel, computed in one vectorized pass."""
        block_in_page = (
            (self.addresses >> np.uint64(layout.block_bits))
            & np.uint64(layout.blocks_per_page - 1)
        )
        return (block_in_page >> np.uint64(layout.segment_bits)).astype(np.int64)

    def split_channels(self, layout: AddressLayout) -> List["TraceBuffer"]:
        """Route the bus trace per channel, preserving arrival order.

        Replaces the engine's per-record routing loop: boolean-mask
        indexing keeps each channel's records in original (arrival) order,
        exactly as appending to per-channel lists would.
        """
        channels = self.channel_indices(layout)
        streams: List[TraceBuffer] = []
        for channel in range(layout.num_channels):
            mask = channels == channel
            streams.append(TraceBuffer(
                self.addresses[mask], self.access_types[mask],
                self.devices[mask], self.arrival_times[mask],
            ))
        return streams
