"""Memory trace substrate: records, file I/O, filters and statistics.

The paper records real traces from a bus monitor inside a mobile phone; each
entry carries the physical address, access type (read/write), requesting
device (CPU/GPU/DSP/...) and arrival time.  :class:`~repro.trace.record.TraceRecord`
mirrors that format exactly; the :mod:`repro.trace.generator` subpackage
synthesises workloads with the same statistical structure.
"""

from repro.trace.record import AccessType, DeviceID, TraceRecord
from repro.trace.buffer import TraceBuffer
from repro.trace.io import (
    read_trace,
    read_trace_binary,
    read_trace_buffer,
    read_trace_binary_buffer,
    write_trace,
    write_trace_binary,
    write_trace_buffer,
    write_trace_binary_buffer,
)
from repro.trace.stats import TraceStats, compute_trace_stats

__all__ = [
    "AccessType",
    "DeviceID",
    "TraceRecord",
    "TraceBuffer",
    "read_trace",
    "write_trace",
    "read_trace_binary",
    "write_trace_binary",
    "read_trace_buffer",
    "write_trace_buffer",
    "read_trace_binary_buffer",
    "write_trace_binary_buffer",
    "TraceStats",
    "compute_trace_stats",
]
