"""Trace record format, mirroring the paper's bus-monitor entries.

Each entry records the physical access address, the access type (read or
write), the requesting device ID (CPU, GPU, DSP, ...) and the access arrival
time (Section 5).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import TraceFormatError


class AccessType(enum.IntEnum):
    """Demand access direction on the memory bus."""

    READ = 0
    WRITE = 1

    @classmethod
    def parse(cls, text: str) -> "AccessType":
        normalized = text.strip().upper()
        if normalized in ("R", "READ", "0"):
            return cls.READ
        if normalized in ("W", "WRITE", "1"):
            return cls.WRITE
        raise TraceFormatError(f"unknown access type {text!r}")


class DeviceID(enum.IntEnum):
    """Requesting device on the heterogeneous SoC.

    The system cache is shared among all of these (Section 1); the absence
    of a usable per-device PC is exactly why Planaria indexes by page number.
    """

    CPU = 0
    GPU = 1
    NPU = 2
    ISP = 3
    DSP = 4

    @classmethod
    def parse(cls, text: str) -> "DeviceID":
        normalized = text.strip().upper()
        try:
            return cls[normalized]
        except KeyError:
            try:
                return cls(int(normalized))
            except (ValueError, KeyError) as exc:
                raise TraceFormatError(f"unknown device {text!r}") from exc


@dataclass(frozen=True)
class TraceRecord:
    """One memory-bus transaction.

    Attributes:
        address: physical byte address.
        access_type: read or write.
        device: requesting device.
        arrival_time: arrival time in memory-controller cycles.
    """

    address: int
    access_type: AccessType = AccessType.READ
    device: DeviceID = DeviceID.CPU
    arrival_time: int = 0

    def __post_init__(self) -> None:
        if self.address < 0:
            raise TraceFormatError(f"negative address {self.address:#x}")
        if self.arrival_time < 0:
            raise TraceFormatError(f"negative arrival time {self.arrival_time}")

    @property
    def is_read(self) -> bool:
        return self.access_type == AccessType.READ

    @property
    def is_write(self) -> bool:
        return self.access_type == AccessType.WRITE

    def to_csv_row(self) -> str:
        """Serialize as the canonical CSV line (hex address)."""
        return (
            f"{self.address:#x},{self.access_type.name},"
            f"{self.device.name},{self.arrival_time}"
        )

    @classmethod
    def from_csv_row(cls, line: str) -> "TraceRecord":
        """Parse one canonical CSV line; raises TraceFormatError on junk."""
        parts = line.strip().split(",")
        if len(parts) != 4:
            raise TraceFormatError(f"expected 4 fields, got {len(parts)}: {line!r}")
        address_text, type_text, device_text, time_text = parts
        try:
            address = int(address_text, 0)
        except ValueError as exc:
            raise TraceFormatError(f"bad address field {address_text!r}") from exc
        try:
            arrival_time = int(time_text)
        except ValueError as exc:
            raise TraceFormatError(f"bad arrival time {time_text!r}") from exc
        return cls(
            address=address,
            access_type=AccessType.parse(type_text),
            device=DeviceID.parse(device_text),
            arrival_time=arrival_time,
        )
