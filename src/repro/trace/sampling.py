"""Trace sampling for long recordings.

The paper's traces are 66-71 M requests; a pure-Python run over that length
is impractical, and users bringing their own bus recordings face the same
problem.  These helpers implement the standard trace-sampling workflows:

* :func:`interval_samples` — SimPoint-style systematic sampling: split the
  trace into fixed-size intervals and keep every k-th one; each kept
  interval carries a warmup prefix so caches/tables re-warm before its
  measured region.
* :func:`time_slice` — cut a wall-clock window out of a trace.
* :func:`downsample_preserving_pages` — keep every access of a random page
  subset, preserving the per-page structure SLP/TLP learn from (naive
  1-in-k record dropping destroys footprint snapshots).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterable, List, Sequence

from repro.geometry import AddressLayout, DEFAULT_LAYOUT
from repro.trace.record import TraceRecord


@dataclass(frozen=True)
class SampledInterval:
    """One kept interval: warmup records then measured records."""

    warmup: List[TraceRecord]
    measured: List[TraceRecord]

    @property
    def records(self) -> List[TraceRecord]:
        return self.warmup + self.measured

    @property
    def warmup_count(self) -> int:
        return len(self.warmup)


def interval_samples(
    records: Sequence[TraceRecord],
    interval_length: int = 100_000,
    keep_every: int = 10,
    warmup_length: int = 20_000,
) -> List[SampledInterval]:
    """Systematic interval sampling with per-interval warmup prefixes.

    Args:
        interval_length: measured records per kept interval.
        keep_every: keep one interval out of this many.
        warmup_length: records immediately preceding each kept interval,
            replayed unmeasured to re-warm caches and prefetcher tables.
    """
    if interval_length < 1:
        raise ValueError(f"interval_length must be >= 1, got {interval_length}")
    if keep_every < 1:
        raise ValueError(f"keep_every must be >= 1, got {keep_every}")
    if warmup_length < 0:
        raise ValueError(f"warmup_length must be >= 0, got {warmup_length}")
    samples: List[SampledInterval] = []
    for start in range(0, len(records), interval_length * keep_every):
        end = min(start + interval_length, len(records))
        if end <= start:
            break
        warmup_start = max(0, start - warmup_length)
        samples.append(SampledInterval(
            warmup=list(records[warmup_start:start]),
            measured=list(records[start:end]),
        ))
    return samples


def time_slice(records: Iterable[TraceRecord], start: int,
               duration: int) -> List[TraceRecord]:
    """Records with ``start <= arrival_time < start + duration``."""
    if duration < 0:
        raise ValueError(f"duration must be >= 0, got {duration}")
    end = start + duration
    return [record for record in records
            if start <= record.arrival_time < end]


def downsample_preserving_pages(
    records: Sequence[TraceRecord],
    keep_fraction: float,
    seed: int = 0,
    layout: AddressLayout = DEFAULT_LAYOUT,
) -> List[TraceRecord]:
    """Keep all accesses of a random ``keep_fraction`` of pages.

    Page-stratified sampling keeps footprint snapshots and neighbour
    relations intact for the surviving pages, unlike record-level
    decimation which leaves every page looking sparse.
    """
    if not 0.0 < keep_fraction <= 1.0:
        raise ValueError(f"keep_fraction must be in (0, 1], got {keep_fraction}")
    if keep_fraction == 1.0:
        return list(records)
    pages = sorted({layout.page_number(record.address) for record in records})
    rng = random.Random(seed)
    kept_count = max(1, int(len(pages) * keep_fraction))
    kept = set(rng.sample(pages, kept_count))
    return [record for record in records
            if layout.page_number(record.address) in kept]
