"""Trace file readers and writers.

Two interchangeable formats:

* **CSV** — human-readable, one ``address,type,device,arrival_time`` line per
  record, ``#`` comments allowed.  Good for small fixtures and debugging.
* **Packed binary** — fixed 16-byte little-endian records
  (``<QBBxxxxxx`` would waste space; we use ``<QIHBB``:
  48-bit-capable address in a u64, u32 arrival-time delta, u16 reserved,
  u8 type, u8 device).  Good for the multi-hundred-thousand-record
  benchmark traces.

Binary files start with an 8-byte magic + u32 record count header so a
truncated file is detected instead of silently yielding garbage.
"""

from __future__ import annotations

import struct
from pathlib import Path
from typing import Iterable, Iterator, List, Union

import numpy as np

from repro.errors import TraceFormatError
from repro.trace.buffer import TraceBuffer
from repro.trace.record import AccessType, DeviceID, TraceRecord

_MAGIC = b"PLNRTRC1"
_HEADER = struct.Struct("<8sI")
_RECORD = struct.Struct("<QQBB")
#: NumPy view of one packed record — same 18-byte layout as ``_RECORD``
#: (``<`` disables struct padding, and the dtype is unaligned by default),
#: so the columnar reader/writer and the object reader/writer are
#: byte-interchangeable.
_RECORD_DTYPE = np.dtype([
    ("address", "<u8"),
    ("arrival_time", "<u8"),
    ("access_type", "u1"),
    ("device", "u1"),
])
assert _RECORD_DTYPE.itemsize == _RECORD.size

PathLike = Union[str, Path]


def write_trace(path: PathLike, records: Iterable[TraceRecord]) -> int:
    """Write records as CSV; returns the number of records written."""
    count = 0
    with open(path, "w", encoding="utf-8") as handle:
        handle.write("# address,access_type,device,arrival_time\n")
        for record in records:
            handle.write(record.to_csv_row() + "\n")
            count += 1
    return count


def read_trace(path: PathLike) -> Iterator[TraceRecord]:
    """Stream records from a CSV trace, skipping blank and ``#`` lines."""
    with open(path, "r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            stripped = line.strip()
            if not stripped or stripped.startswith("#"):
                continue
            try:
                yield TraceRecord.from_csv_row(stripped)
            except TraceFormatError as exc:
                raise TraceFormatError(f"{path}:{line_number}: {exc}") from exc


def write_trace_binary(path: PathLike, records: Iterable[TraceRecord]) -> int:
    """Write records in the packed binary format; returns the record count."""
    body: List[bytes] = []
    for record in records:
        body.append(
            _RECORD.pack(
                record.address,
                record.arrival_time,
                int(record.access_type),
                int(record.device),
            )
        )
    with open(path, "wb") as handle:
        handle.write(_HEADER.pack(_MAGIC, len(body)))
        handle.write(b"".join(body))
    return len(body)


def read_trace_binary(path: PathLike) -> List[TraceRecord]:
    """Read a packed binary trace fully into memory.

    Raises:
        TraceFormatError: on a bad magic, truncated body, or corrupt record.
    """
    with open(path, "rb") as handle:
        header = handle.read(_HEADER.size)
        if len(header) != _HEADER.size:
            raise TraceFormatError(f"{path}: truncated header")
        magic, count = _HEADER.unpack(header)
        if magic != _MAGIC:
            raise TraceFormatError(f"{path}: bad magic {magic!r}")
        body = handle.read()
    expected = count * _RECORD.size
    if len(body) != expected:
        raise TraceFormatError(
            f"{path}: expected {expected} body bytes for {count} records, got {len(body)}"
        )
    records: List[TraceRecord] = []
    for offset in range(0, expected, _RECORD.size):
        address, arrival_time, type_value, device_value = _RECORD.unpack_from(body, offset)
        try:
            records.append(
                TraceRecord(
                    address=address,
                    arrival_time=arrival_time,
                    access_type=AccessType(type_value),
                    device=DeviceID(device_value),
                )
            )
        except ValueError as exc:
            raise TraceFormatError(f"{path}: corrupt record at byte {offset}") from exc
    return records


# ----------------------------------------------------------------------
# Columnar (TraceBuffer) I/O
# ----------------------------------------------------------------------
def read_trace_buffer(path: PathLike) -> TraceBuffer:
    """Read a CSV trace straight into a :class:`TraceBuffer`.

    Same format and tolerance (blank / ``#`` lines) as :func:`read_trace`,
    but parses into columns without building record objects.
    """
    addresses: List[int] = []
    access_types: List[int] = []
    devices: List[int] = []
    arrival_times: List[int] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            stripped = line.strip()
            if not stripped or stripped.startswith("#"):
                continue
            parts = stripped.split(",")
            if len(parts) != 4:
                raise TraceFormatError(
                    f"{path}:{line_number}: expected 4 fields, got "
                    f"{len(parts)}: {stripped!r}")
            address_text, type_text, device_text, time_text = parts
            try:
                addresses.append(int(address_text, 0))
                arrival_times.append(int(time_text))
            except ValueError as exc:
                raise TraceFormatError(
                    f"{path}:{line_number}: {exc}") from exc
            try:
                access_types.append(int(AccessType.parse(type_text)))
                devices.append(int(DeviceID.parse(device_text)))
            except TraceFormatError as exc:
                raise TraceFormatError(f"{path}:{line_number}: {exc}") from exc
    try:
        return TraceBuffer.from_columns(addresses, access_types, devices,
                                        arrival_times)
    except TraceFormatError as exc:
        raise TraceFormatError(f"{path}: {exc}") from exc


def write_trace_buffer(path: PathLike, buffer: TraceBuffer) -> int:
    """Write a :class:`TraceBuffer` as canonical CSV; returns record count.

    Produces byte-identical output to :func:`write_trace` over
    ``buffer.iter_records()``.
    """
    type_names = {int(member): member.name for member in AccessType}
    device_names = {int(member): member.name for member in DeviceID}
    with open(path, "w", encoding="utf-8") as handle:
        handle.write("# address,access_type,device,arrival_time\n")
        handle.writelines(
            f"{address:#x},{type_names[type_value]},"
            f"{device_names[device_value]},{arrival_time}\n"
            for address, type_value, device_value, arrival_time
            in zip(*buffer.columns_as_lists())
        )
    return len(buffer)


def write_trace_binary_buffer(path: PathLike, buffer: TraceBuffer) -> int:
    """Write a :class:`TraceBuffer` in the packed binary format.

    Byte-identical to :func:`write_trace_binary` over the same records,
    but packs the body in one vectorized copy instead of a struct call
    per record.
    """
    packed = np.empty(len(buffer), dtype=_RECORD_DTYPE)
    packed["address"] = buffer.addresses
    packed["arrival_time"] = buffer.arrival_times.astype(np.uint64)
    packed["access_type"] = buffer.access_types
    packed["device"] = buffer.devices
    with open(path, "wb") as handle:
        handle.write(_HEADER.pack(_MAGIC, len(buffer)))
        handle.write(packed.tobytes())
    return len(buffer)


def read_trace_binary_buffer(path: PathLike) -> TraceBuffer:
    """Read a packed binary trace into a :class:`TraceBuffer`.

    Raises:
        TraceFormatError: on a bad magic, truncated body, or corrupt record.
    """
    with open(path, "rb") as handle:
        header = handle.read(_HEADER.size)
        if len(header) != _HEADER.size:
            raise TraceFormatError(f"{path}: truncated header")
        magic, count = _HEADER.unpack(header)
        if magic != _MAGIC:
            raise TraceFormatError(f"{path}: bad magic {magic!r}")
        body = handle.read()
    expected = count * _RECORD.size
    if len(body) != expected:
        raise TraceFormatError(
            f"{path}: expected {expected} body bytes for {count} records, got {len(body)}"
        )
    packed = np.frombuffer(body, dtype=_RECORD_DTYPE)
    try:
        return TraceBuffer(
            packed["address"], packed["access_type"], packed["device"],
            packed["arrival_time"].astype(np.int64),
        )
    except TraceFormatError as exc:
        raise TraceFormatError(f"{path}: {exc}") from exc
