"""Aggregate statistics over a memory trace.

Used by tests to validate generator calibration and by examples to summarise
workloads the way Table 2 of the paper does.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, Iterable

from repro.geometry import AddressLayout, DEFAULT_LAYOUT
from repro.trace.record import DeviceID, TraceRecord


@dataclass
class TraceStats:
    """Summary of a trace: volume, footprint, device/type mix, locality."""

    num_records: int = 0
    num_reads: int = 0
    num_writes: int = 0
    unique_blocks: int = 0
    unique_pages: int = 0
    duration: int = 0
    device_mix: Dict[str, int] = field(default_factory=dict)
    channel_mix: Dict[int, int] = field(default_factory=dict)
    mean_blocks_per_page: float = 0.0

    @property
    def read_fraction(self) -> float:
        return self.num_reads / self.num_records if self.num_records else 0.0

    @property
    def footprint_bytes(self) -> int:
        """Distinct bytes touched, at block granularity."""
        return self.unique_blocks * 64

    def format_table(self) -> str:
        """Render a small human-readable report."""
        lines = [
            f"records          : {self.num_records}",
            f"reads / writes   : {self.num_reads} / {self.num_writes}",
            f"unique pages     : {self.unique_pages}",
            f"unique blocks    : {self.unique_blocks}",
            f"footprint        : {self.footprint_bytes / (1 << 20):.2f} MiB",
            f"duration (cyc)   : {self.duration}",
            f"blocks per page  : {self.mean_blocks_per_page:.2f}",
        ]
        for device, count in sorted(self.device_mix.items()):
            lines.append(f"device {device:<10}: {count}")
        return "\n".join(lines)


def compute_trace_stats(
    records: Iterable[TraceRecord],
    layout: AddressLayout = DEFAULT_LAYOUT,
) -> TraceStats:
    """Single pass over ``records`` producing a :class:`TraceStats`."""
    stats = TraceStats()
    blocks = set()
    page_blocks: Dict[int, set] = {}
    devices: Counter = Counter()
    channels: Counter = Counter()
    first_time = None
    last_time = 0
    for record in records:
        stats.num_records += 1
        if record.is_read:
            stats.num_reads += 1
        else:
            stats.num_writes += 1
        block = layout.block_address(record.address)
        blocks.add(block)
        page = layout.page_number(record.address)
        page_blocks.setdefault(page, set()).add(layout.block_in_page(record.address))
        devices[DeviceID(record.device).name] += 1
        channels[layout.channel(record.address)] += 1
        if first_time is None:
            first_time = record.arrival_time
        last_time = max(last_time, record.arrival_time)
    stats.unique_blocks = len(blocks)
    stats.unique_pages = len(page_blocks)
    stats.duration = (last_time - first_time) if first_time is not None else 0
    stats.device_mix = dict(devices)
    stats.channel_mix = dict(channels)
    if page_blocks:
        stats.mean_blocks_per_page = sum(len(v) for v in page_blocks.values()) / len(page_blocks)
    return stats
