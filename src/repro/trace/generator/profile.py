"""Workload profile: the knobs that shape one application's memory trace."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.errors import ConfigError
from repro.trace.record import DeviceID


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ConfigError(message)


@dataclass(frozen=True)
class WorkloadProfile:
    """Statistical description of one mobile application's SC-level trace.

    Attributes:
        name: full application name (Table 2).
        abbr: paper abbreviation (CFM, HoK, ...).
        description: one-line description from Table 2.
        paper_length_millions: trace length in the paper, in millions of
            requests (Table 2); kept as metadata, actual generated length is
            the ``length`` argument of the synthesiser.
        num_pages: size of the page working set.
        page_base: first page number of the working set.
        pattern_library_size: number of distinct 64-block footprint patterns
            shared across the working set.
        cluster_size: contiguous pages form clusters that tend to share one
            library pattern — this creates TLP's learnable neighbours.
        pattern_run_length: contiguous pages within a cluster that share
            one pattern choice (a multi-page buffer/object); drives the
            short-distance learnable-neighbour fraction of Figure 5.
        neighbor_similarity: probability a page adopts its cluster's pattern
            (vs. an unrelated library pattern).  Higher → more Figure-5
            neighbours.
        blocks_per_page_mean: mean set bits in a page's 64-block footprint.
        pattern_strides: candidate intra-run strides (block-granular object
            sizes) a footprint run may use.  Stride-1-heavy tuples are
            friendly to offset/next-line prefetchers; wider strides leave
            only per-signature learners (SPP) and bitmap replay (SLP/TLP)
            effective.
        pattern_scatter: fraction of each footprint drawn as isolated random
            blocks instead of contiguous runs.  Scattered footprints have no
            exploitable offset/delta structure, which is what makes BOP's
            learned offset fire blindly on the paper's Fort/NBA2/PM
            applications; bitmap-based SLP/TLP are indifferent.
        snapshot_stability: probability each footprint block reappears in
            the next episode of the same page.  Directly controls the
            Figure-4 overlap rate.
        extra_block_rate: per-episode probability of touching one block
            outside the footprint (snapshot jitter).
        episode_order_entropy: how scrambled the intra-episode block order
            is: 0.0 emits the footprint in ascending block order (a
            delta-prefetcher's dream), 1.0 fully shuffles it (the paper's
            observation ③: "the access order of these blocks is
            non-deterministic").  Mid values locally perturb a sorted
            order.  This is the single knob that governs how well BOP/SPP
            can do on an application, while bitmap-based SLP/TLP are
            order-blind — the paper's central contrast.
        intra_episode_reuse: probability an episode emission re-touches a
            block already accessed in this episode instead of a new one —
            the short-term temporal locality that gives the SC its baseline
            hit rate (Figure 2 shows blocks hit several times within a
            snapshot interval).
        page_revisit_rate: probability a new episode replays a recently
            used page instead of a fresh one.  High → SLP-friendly
            (patterns recur); low → first-touch dominated (TLP territory).
        phase_length: accesses between program-phase switches; 0 disables
            phases.  At a switch, each page re-draws its footprint pattern
            with probability ``phase_drift`` — the §3.2 scenario where "the
            access pattern of a memory page changes ... during program
            phase switches".  The paper measures this drift to be small
            (Figure 4), so drift defaults to 0; the phase-robustness bench
            sweeps it.
        phase_drift: per-page probability of re-drawing its pattern at a
            phase switch.
        revisit_history: how many past pages the revisit draw considers.
        episode_concurrency: number of page episodes interleaved at any
            time (models multi-device concurrency; makes intra-page order
            non-deterministic at the bus).
        stream_fraction: fraction of accesses from sequential streaming
            (GPU framebuffer / video); BOP-friendly when streams are long.
        stream_length_mean: mean stream run length in blocks before the
            stream jumps to a random location.  Short runs bait BOP into
            overshooting — the paper's Fort/NBA2/PM behaviour.
        noise_fraction: fraction of uniformly random single accesses.
        write_fraction: fraction of writes.
        device_weights: relative weights of requesting devices.
        interarrival_mean: mean cycles between bus transactions.
        memory_intensity: fraction of execution time that is memory stall
            at the SC level, used by the AMAT→IPC proxy (Section 6 / the
            abstract's IPC numbers).
    """

    name: str
    abbr: str
    description: str = ""
    paper_length_millions: float = 0.0
    num_pages: int = 16_384
    page_base: int = 0x40_000
    pattern_library_size: int = 48
    cluster_size: int = 32
    pattern_run_length: int = 6
    neighbor_similarity: float = 0.6
    blocks_per_page_mean: float = 20.0
    pattern_strides: tuple = (1, 2, 2, 3, 3, 4)
    pattern_scatter: float = 0.25
    snapshot_stability: float = 0.90
    extra_block_rate: float = 0.05
    episode_order_entropy: float = 0.50
    intra_episode_reuse: float = 0.08
    page_revisit_rate: float = 0.65
    phase_length: int = 0
    phase_drift: float = 0.0
    revisit_history: int = 2048
    episode_concurrency: int = 12
    stream_fraction: float = 0.10
    stream_length_mean: int = 24
    noise_fraction: float = 0.08
    write_fraction: float = 0.30
    device_weights: Dict[DeviceID, float] = field(
        default_factory=lambda: {
            DeviceID.CPU: 0.5,
            DeviceID.GPU: 0.3,
            DeviceID.NPU: 0.05,
            DeviceID.ISP: 0.05,
            DeviceID.DSP: 0.1,
        }
    )
    interarrival_mean: int = 16
    memory_intensity: float = 0.92

    def __post_init__(self) -> None:
        _require(bool(self.name), "name must be non-empty")
        _require(self.num_pages >= 2, "num_pages must be >= 2")
        _require(self.page_base >= 0, "page_base must be >= 0")
        _require(self.pattern_library_size >= 1, "pattern_library_size must be >= 1")
        _require(self.cluster_size >= 1, "cluster_size must be >= 1")
        _require(self.pattern_run_length >= 1, "pattern_run_length must be >= 1")
        for prob_name in (
            "neighbor_similarity",
            "pattern_scatter",
            "snapshot_stability",
            "extra_block_rate",
            "episode_order_entropy",
            "intra_episode_reuse",
            "page_revisit_rate",
            "phase_drift",
            "stream_fraction",
            "noise_fraction",
            "write_fraction",
            "memory_intensity",
        ):
            value = getattr(self, prob_name)
            _require(0.0 <= value <= 1.0, f"{prob_name} must be in [0, 1], got {value}")
        _require(self.stream_fraction + self.noise_fraction < 1.0,
                 "stream_fraction + noise_fraction must leave room for episodes")
        _require(1.0 <= self.blocks_per_page_mean <= 64.0,
                 "blocks_per_page_mean must be in 1..64")
        _require(len(self.pattern_strides) > 0, "pattern_strides must be non-empty")
        _require(all(1 <= s <= 16 for s in self.pattern_strides),
                 "pattern strides must be in 1..16")
        _require(self.episode_concurrency >= 1, "episode_concurrency must be >= 1")
        _require(self.stream_length_mean >= 1, "stream_length_mean must be >= 1")
        _require(self.revisit_history >= 1, "revisit_history must be >= 1")
        _require(self.phase_length >= 0, "phase_length must be >= 0")
        _require(self.interarrival_mean >= 1, "interarrival_mean must be >= 1")
        _require(self.device_weights, "device_weights must be non-empty")
        _require(all(weight >= 0 for weight in self.device_weights.values()),
                 "device weights must be non-negative")
        _require(sum(self.device_weights.values()) > 0, "device weights must sum > 0")
