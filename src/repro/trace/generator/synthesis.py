"""The trace synthesiser: turns a :class:`WorkloadProfile` into records.

Generation model
----------------

The bus-level trace is a superposition of three processes, mirroring what a
real SoC's memory bus carries:

1. **Page episodes** (the dominant component): an *episode* is one use of a
   page — the page's footprint pattern, perturbed by ``snapshot_stability``
   jitter, emitted in random order.  ``episode_concurrency`` episodes are
   live at once and interleave their block emissions, so at the bus the
   per-page access order is non-deterministic (paper Figure 2, observation
   ③).  When an episode finishes, a replacement page is chosen: with
   probability ``page_revisit_rate`` a recently used page (its snapshot
   *recurs* → SLP can learn it), otherwise a fresh page near a slowly
   wandering pointer (address-space temporal locality → its neighbours are
   in TLP's RPT).

2. **Streams**: sequential block runs (GPU/video traffic) of geometric
   length ``stream_length_mean``; runs that end quickly bait offset
   prefetchers into overshooting.

3. **Noise**: uniformly random single accesses over the working set.

Arrival times advance by geometric inter-arrivals with mean
``interarrival_mean`` memory-controller cycles.
"""

from __future__ import annotations

import random
from collections import deque
from typing import Deque, Iterator, List, Optional

from repro.errors import ConfigError
from repro.geometry import AddressLayout, DEFAULT_LAYOUT
from repro.trace.generator.patterns import (
    BLOCKS_PER_PAGE,
    assign_page_patterns,
    build_pattern_library,
)
from repro.trace.generator.profile import WorkloadProfile
from repro.trace.record import AccessType, DeviceID, TraceRecord


class _Episode:
    """One in-flight use of a page: its jittered footprint, shuffled."""

    __slots__ = ("page", "blocks", "index")

    def __init__(self, page: int, blocks: List[int]) -> None:
        self.page = page
        self.blocks = blocks
        self.index = 0

    def next_block(self) -> int:
        block = self.blocks[self.index]
        self.index += 1
        return block

    def reuse_block(self, rng: random.Random) -> Optional[int]:
        """A block already emitted in this episode, if any."""
        if self.index == 0:
            return None
        return self.blocks[rng.randrange(self.index)]

    @property
    def exhausted(self) -> bool:
        return self.index >= len(self.blocks)


class TraceSynthesizer:
    """Stateful generator for one workload profile.

    The synthesiser is deterministic for a given ``(profile, seed)`` pair,
    which the test-suite and benches rely on.
    """

    def __init__(
        self,
        profile: WorkloadProfile,
        seed: int = 0,
        layout: AddressLayout = DEFAULT_LAYOUT,
    ) -> None:
        if layout.blocks_per_page != BLOCKS_PER_PAGE:
            raise ConfigError(
                f"synthesiser assumes {BLOCKS_PER_PAGE} blocks/page, layout has "
                f"{layout.blocks_per_page}"
            )
        self.profile = profile
        self.layout = layout
        self._rng = random.Random(seed)
        self._library = build_pattern_library(profile, self._rng)
        self._page_patterns = assign_page_patterns(profile, self._library, self._rng)
        self._clock = 0
        self._episodes: List[_Episode] = []
        self._history: Deque[int] = deque(maxlen=profile.revisit_history)
        self._walk_position = self._rng.randrange(profile.num_pages)
        self._stream_block: Optional[int] = None
        self._stream_remaining = 0
        self._devices = list(profile.device_weights.keys())
        self._device_weights = list(profile.device_weights.values())
        self._emitted = 0
        self._next_phase_switch = profile.phase_length or None
        self.phase_switches = 0
        while len(self._episodes) < profile.episode_concurrency:
            self._episodes.append(self._new_episode())

    # ------------------------------------------------------------------
    # Page / pattern machinery
    # ------------------------------------------------------------------
    def page_pattern(self, page_index: int) -> int:
        """The assigned 64-bit footprint pattern of working-set page ``page_index``."""
        return self._page_patterns[page_index % self.profile.num_pages]

    def _jittered_footprint(self, page_index: int) -> List[int]:
        """Apply per-episode jitter to the page's base pattern."""
        rng = self._rng
        profile = self.profile
        blocks = [
            block
            for block in range(BLOCKS_PER_PAGE)
            if self.page_pattern(page_index) & (1 << block)
            and rng.random() < profile.snapshot_stability
        ]
        if rng.random() < profile.extra_block_rate:
            blocks.append(rng.randrange(BLOCKS_PER_PAGE))
        if not blocks:
            blocks = [rng.randrange(BLOCKS_PER_PAGE)]
        self._scramble(blocks)
        return blocks

    def _scramble(self, blocks: List[int]) -> None:
        """Perturb ascending order by the profile's order entropy.

        ``episode_order_entropy`` sets the radius of a windowed shuffle:
        0 keeps the sorted order, 1 is a full Fisher-Yates shuffle, and
        intermediate values displace each block by at most
        ``entropy * len(blocks)`` positions — locally scrambled, globally
        still front-to-back, like a real access burst.
        """
        rng = self._rng
        entropy = self.profile.episode_order_entropy
        if entropy >= 1.0:
            rng.shuffle(blocks)
            return
        blocks.sort()
        if entropy <= 0.0:
            return
        radius = max(1, int(entropy * len(blocks)))
        for index in range(len(blocks)):
            other = min(len(blocks) - 1, index + rng.randint(0, radius))
            blocks[index], blocks[other] = blocks[other], blocks[index]

    def _pick_page(self) -> int:
        """Choose the page for a new episode (revisit vs. wandering fresh)."""
        rng = self._rng
        profile = self.profile
        if self._history and rng.random() < profile.page_revisit_rate:
            return rng.choice(list(self._history)) if len(self._history) < 64 else (
                self._history[rng.randrange(len(self._history))]
            )
        # Fresh page near the wandering pointer: keeps consecutive fresh
        # pages within TLP's distance threshold of each other.
        self._walk_position = (
            self._walk_position + rng.randint(0, 8)
        ) % profile.num_pages
        offset = rng.randint(-4, 4)
        return (self._walk_position + offset) % profile.num_pages

    def _new_episode(self) -> _Episode:
        page_index = self._pick_page()
        self._history.append(page_index)
        return _Episode(page_index, self._jittered_footprint(page_index))

    # ------------------------------------------------------------------
    # Emission
    # ------------------------------------------------------------------
    def _advance_clock(self) -> None:
        mean = self.profile.interarrival_mean
        # Geometric inter-arrival with the configured mean (>= 1 cycle).
        self._clock += max(1, int(self._rng.expovariate(1.0 / mean)) + 1)

    def _episode_block_address(self) -> int:
        rng = self._rng
        slot = rng.randrange(len(self._episodes))
        episode = self._episodes[slot]
        block = None
        if rng.random() < self.profile.intra_episode_reuse:
            block = episode.reuse_block(rng)
        if block is None:
            block = episode.next_block()
            if episode.exhausted:
                self._episodes[slot] = self._new_episode()
        page_number = self.profile.page_base + episode.page
        return (page_number << self.layout.page_bits) | (block << self.layout.block_bits)

    def _stream_block_address(self) -> int:
        rng = self._rng
        if self._stream_remaining <= 0 or self._stream_block is None:
            start_page = self.profile.page_base + rng.randrange(self.profile.num_pages)
            self._stream_block = start_page * BLOCKS_PER_PAGE + rng.randrange(BLOCKS_PER_PAGE)
            # Geometric run length with the configured mean.
            self._stream_remaining = max(1, int(rng.expovariate(1.0 / self.profile.stream_length_mean)) + 1)
        address = self._stream_block << self.layout.block_bits
        self._stream_block += 1
        self._stream_remaining -= 1
        return address

    def _noise_block_address(self) -> int:
        rng = self._rng
        page_number = self.profile.page_base + rng.randrange(self.profile.num_pages)
        block = rng.randrange(BLOCKS_PER_PAGE)
        return (page_number << self.layout.page_bits) | (block << self.layout.block_bits)

    def _pick_device(self, streaming: bool) -> DeviceID:
        if streaming:
            return DeviceID.GPU
        return self._rng.choices(self._devices, weights=self._device_weights, k=1)[0]

    def _maybe_switch_phase(self) -> None:
        """At phase boundaries, drift a fraction of page patterns.

        Models program-phase switches (§3.2): each page re-draws its
        footprint from the library with probability ``phase_drift``.
        Sub-run neighbours drift together, preserving the Figure-5
        structure across phases.
        """
        profile = self.profile
        if self._next_phase_switch is None or self._emitted < self._next_phase_switch:
            return
        self._next_phase_switch += profile.phase_length
        self.phase_switches += 1
        if profile.phase_drift <= 0.0:
            return
        rng = self._rng
        run = max(1, profile.pattern_run_length)
        for run_start in range(0, profile.num_pages, run):
            if rng.random() < profile.phase_drift:
                new_pattern = rng.choice(self._library)
                for page in range(run_start, min(run_start + run,
                                                 profile.num_pages)):
                    self._page_patterns[page] = new_pattern

    def _emit(self, length: int) -> Iterator[tuple]:
        """Yield ``length`` ``(address, access_type, device, arrival_time)``
        tuples in arrival-time order.

        This is the single emission loop behind both :meth:`records` (object
        API) and :meth:`columns` (columnar API): the RNG call sequence is
        identical either way, so a given ``(profile, seed, length)`` produces
        bit-identical traces through both.
        """
        if length < 0:
            raise ConfigError(f"length must be >= 0, got {length}")
        rng = self._rng
        profile = self.profile
        for _ in range(length):
            self._emitted += 1
            self._maybe_switch_phase()
            self._advance_clock()
            draw = rng.random()
            streaming = False
            if draw < profile.noise_fraction:
                address = self._noise_block_address()
            elif draw < profile.noise_fraction + profile.stream_fraction:
                address = self._stream_block_address()
                streaming = True
            else:
                address = self._episode_block_address()
            access_type = (
                AccessType.WRITE
                if rng.random() < profile.write_fraction
                else AccessType.READ
            )
            yield address, access_type, self._pick_device(streaming), self._clock

    def records(self, length: int) -> Iterator[TraceRecord]:
        """Yield ``length`` trace records in arrival-time order."""
        for address, access_type, device, arrival_time in self._emit(length):
            yield TraceRecord(
                address=address,
                access_type=access_type,
                device=device,
                arrival_time=arrival_time,
            )

    def columns(self, length: int):
        """Emit ``length`` records as four plain-int column lists.

        The columnar twin of :meth:`records`: no per-record object is
        allocated, which roughly halves generation time for benchmark-size
        traces.  Returns ``(addresses, access_types, devices,
        arrival_times)`` ready for :meth:`TraceBuffer.from_columns`.
        """
        addresses: List[int] = []
        access_types: List[int] = []
        devices: List[int] = []
        arrival_times: List[int] = []
        add_address = addresses.append
        add_type = access_types.append
        add_device = devices.append
        add_time = arrival_times.append
        for address, access_type, device, arrival_time in self._emit(length):
            add_address(address)
            add_type(int(access_type))
            add_device(int(device))
            add_time(arrival_time)
        return addresses, access_types, devices, arrival_times


def generate_trace(
    profile: WorkloadProfile,
    length: int,
    seed: int = 0,
    layout: AddressLayout = DEFAULT_LAYOUT,
) -> List[TraceRecord]:
    """Generate a full trace as a list (convenience wrapper).

    Args:
        profile: the application profile.
        length: number of records.
        seed: RNG seed; same (profile, seed, length) → identical trace.
        layout: address geometry (defaults to the paper's).
    """
    return list(TraceSynthesizer(profile, seed=seed, layout=layout).records(length))


def generate_trace_buffer(
    profile: WorkloadProfile,
    length: int,
    seed: int = 0,
    layout: AddressLayout = DEFAULT_LAYOUT,
):
    """Generate a full trace as a columnar :class:`TraceBuffer`.

    Bit-identical to ``TraceBuffer.from_records(generate_trace(...))`` for
    the same arguments (one shared emission loop, see
    :meth:`TraceSynthesizer._emit`) but never allocates record objects —
    this is the entry point the runner, executor workers and benchmarks use.
    """
    from repro.trace.buffer import TraceBuffer

    synthesizer = TraceSynthesizer(profile, seed=seed, layout=layout)
    return TraceBuffer.from_columns(*synthesizer.columns(length))
