"""Synthetic mobile-workload trace generation.

The paper evaluates on proprietary bus-monitor traces of ten mobile
applications (Table 2).  This subpackage synthesises traces with the same
*measurable structure* those traces exhibit:

* recurring intra-page **footprint snapshots** with >80 % window-to-window
  overlap (Figure 4) — the regularity SLP exploits;
* **neighbouring pages with similar footprints** — roughly 27 % of pages
  have a learnable neighbour within distance 4 and 39 % within distance 64
  (Figure 5) — the regularity TLP exploits;
* non-deterministic intra-snapshot access order and long snapshot reuse
  distances (Figure 2) — which defeat delta-sequence prefetchers;
* streaming, irregular-noise and multi-device interleaving components that
  control how well BOP/SPP do per application.

Each of the ten applications gets a :class:`WorkloadProfile` whose knobs are
calibrated so the analysis benches land near the paper's figures.
"""

from repro.trace.generator.profile import WorkloadProfile
from repro.trace.generator.synthesis import (
    TraceSynthesizer,
    generate_trace,
    generate_trace_buffer,
)
from repro.trace.generator.workloads import (
    WORKLOADS,
    get_profile,
    list_workloads,
)

__all__ = [
    "WorkloadProfile",
    "TraceSynthesizer",
    "generate_trace",
    "generate_trace_buffer",
    "WORKLOADS",
    "get_profile",
    "list_workloads",
]
