"""Footprint-pattern library construction.

A *footprint pattern* is the set of blocks of a 4 KB page (64 blocks) that
an application touches when it uses the page — e.g. the fields of a game
object, the live rows of a texture tile, the header+payload of a media
buffer.  The paper observes (Figures 2 and 4) that these patterns are
spatially clustered and stable across episodes, and (Figure 5) that pages
near each other in address space often carry near-identical patterns.

The library builds a small universe of such patterns and assigns one to
every page of the working set with cluster-level correlation.
"""

from __future__ import annotations

import random
from typing import List

from repro.trace.generator.profile import WorkloadProfile

BLOCKS_PER_PAGE = 64

# Near-full pages are trivially prefetchable and would let TLP's subset
# test pass against any trigger; real footprints top out well below the
# full page (Figure 2 shows clustered partial footprints).
DENSITY_CAP = 44


def make_pattern(rng: random.Random, mean_blocks: float,
                 scatter: float = 0.25,
                 strides: tuple = (1, 2, 2, 3, 3, 4)) -> int:
    """Draw one 64-bit footprint pattern.

    A ``1 - scatter`` fraction of the footprint is laid down as 1-3
    contiguous runs (the clustered look of the paper's Figure 2 snapshot);
    the rest lands on isolated random blocks.  High-scatter patterns have
    no offset structure for delta prefetchers to learn.
    """
    cap = min(BLOCKS_PER_PAGE, DENSITY_CAP)
    target = max(1, min(cap, int(rng.gauss(mean_blocks, mean_blocks / 4))))
    pattern = 0
    remaining = target - int(target * scatter)
    num_runs = rng.randint(1, 3)
    for _ in range(num_runs):
        if remaining <= 0:
            break
        # Each run has a characteristic stride (an object/record size).
        # Per-signature prefetchers (SPP) re-learn the stride as the
        # signature path walks from run to run; a single-global-offset
        # prefetcher (BOP) matches only runs whose stride equals its one
        # learned offset — the structural reason SPP beats BOP at the SC
        # in the paper's evaluation.
        stride = rng.choice(strides)
        run_length = max(1, remaining // num_runs + rng.randint(-2, 2))
        run_length = min(run_length, remaining, BLOCKS_PER_PAGE)
        span = run_length * stride
        start = rng.randrange(0, max(1, BLOCKS_PER_PAGE - span + 1))
        for step in range(run_length):
            block = start + step * stride
            if block >= BLOCKS_PER_PAGE:
                break
            if not pattern & (1 << block):
                pattern |= 1 << block
                remaining -= 1
    remaining = target - bin(pattern).count("1")
    while remaining > 0:
        block = rng.randrange(BLOCKS_PER_PAGE)
        if not pattern & (1 << block):
            pattern |= 1 << block
            remaining -= 1
    return pattern


def build_pattern_library(profile: WorkloadProfile, rng: random.Random) -> List[int]:
    """The workload's universe of distinct footprint patterns."""
    return [
        make_pattern(rng, profile.blocks_per_page_mean, profile.pattern_scatter,
                     profile.pattern_strides)
        for _ in range(profile.pattern_library_size)
    ]


def assign_page_patterns(
    profile: WorkloadProfile, library: List[int], rng: random.Random
) -> List[int]:
    """Assign a pattern to every page in the working set.

    Two levels of spatial correlation create Figure 5's learnable
    neighbours:

    * **clusters** of ``cluster_size`` contiguous pages elect a cluster
      pattern that members adopt with probability ``neighbor_similarity``
      — the long-range (distance ≤ 64) sharing;
    * within a cluster, assignment happens in contiguous **sub-runs** of
      ``pattern_run_length`` pages that always share one choice — a
      multi-page object (texture, frame buffer) spanning adjacent pages,
      the short-range (distance ≤ 4) sharing.
    """
    assignments: List[int] = []
    run_length = max(1, profile.pattern_run_length)
    for cluster_start in range(0, profile.num_pages, profile.cluster_size):
        cluster_pattern = rng.choice(library)
        cluster_len = min(profile.cluster_size, profile.num_pages - cluster_start)
        produced = 0
        while produced < cluster_len:
            if rng.random() < profile.neighbor_similarity:
                run_pattern = cluster_pattern
            else:
                run_pattern = rng.choice(library)
            for _ in range(min(run_length, cluster_len - produced)):
                assignments.append(run_pattern)
                produced += 1
    return assignments
