"""The ten target applications (Table 2) as calibrated workload profiles.

Knob choices encode what the paper reports about each app:

* **CFM, QSM, HI3, KO, NBA2** — SLP's home turf (Figure 9: SLP supplies
  almost all of Planaria's gain): high page-revisit rates so footprint
  snapshots recur and land in SLP's pattern history table.
* **Fort** — TLP-dominated (Figure 9): a battle-royale world streamed once,
  so pages rarely recur (SLP starves) but neighbouring pages share
  footprints (TLP transfers).
* **Fort, NBA2, PM** — BOP raises the SC hit rate yet *worsens* AMAT
  (Section 6) because its offset stream overshoots: these profiles carry
  short stream runs and more irregular noise.
* **HI3, PM** — Planaria slightly *reduces* memory power (Figure 10):
  dense footprints, so whole-snapshot prefetching converts row misses into
  row hits.

Per-app overlap-rate targets (Figure 4, all >≈80 %) come from
``snapshot_stability``; learnable-neighbour fractions (Figure 5) from
``neighbor_similarity`` and ``cluster_size``.
"""

from __future__ import annotations

from typing import Dict, List

from repro.trace.generator.profile import WorkloadProfile
from repro.trace.record import DeviceID

_GAME_DEVICES = {
    DeviceID.CPU: 0.45,
    DeviceID.GPU: 0.40,
    DeviceID.NPU: 0.03,
    DeviceID.ISP: 0.02,
    DeviceID.DSP: 0.10,
}

_VIDEO_DEVICES = {
    DeviceID.CPU: 0.30,
    DeviceID.GPU: 0.30,
    DeviceID.NPU: 0.10,
    DeviceID.ISP: 0.20,
    DeviceID.DSP: 0.10,
}

WORKLOADS: Dict[str, WorkloadProfile] = {}


def _register(profile: WorkloadProfile) -> WorkloadProfile:
    WORKLOADS[profile.abbr] = profile
    return WORKLOADS[profile.abbr]


CFM = _register(WorkloadProfile(
    name="Cross Fire Mobile", abbr="CFM",
    description="First-person shooter", paper_length_millions=67.48,
    num_pages=16_384, page_base=0x40_000,
    pattern_library_size=40, cluster_size=24, neighbor_similarity=0.45,
    blocks_per_page_mean=30.0, pattern_strides=(2, 3, 3, 4), pattern_scatter=0.30, snapshot_stability=0.96,
    episode_order_entropy=0.35,
    page_revisit_rate=0.80, revisit_history=768, episode_concurrency=12,
    stream_fraction=0.08, stream_length_mean=24,
    noise_fraction=0.06, write_fraction=0.28,
    device_weights=_GAME_DEVICES, memory_intensity=0.93,
))

HOK = _register(WorkloadProfile(
    name="Honor of Kings", abbr="HoK",
    description="Multiplayer MOBA", paper_length_millions=71.37,
    num_pages=20_480, page_base=0x80_000,
    pattern_library_size=56, cluster_size=32, neighbor_similarity=0.60,
    blocks_per_page_mean=26.0, pattern_strides=(1, 2, 3, 3), pattern_scatter=0.30, snapshot_stability=0.93,
    episode_order_entropy=0.35,
    page_revisit_rate=0.68, revisit_history=640, episode_concurrency=16,
    stream_fraction=0.10, stream_length_mean=20,
    noise_fraction=0.08, write_fraction=0.30,
    device_weights=_GAME_DEVICES, interarrival_mean=18, memory_intensity=0.92,
))

IDV = _register(WorkloadProfile(
    name="Identity V", abbr="Id-V",
    description="Asymmetric battle arena", paper_length_millions=68.27,
    num_pages=18_432, page_base=0xC0_000,
    pattern_library_size=48, cluster_size=40, neighbor_similarity=0.65,
    blocks_per_page_mean=24.0, pattern_strides=(1, 2, 3, 3), pattern_scatter=0.35, snapshot_stability=0.91,
    episode_order_entropy=0.40,
    page_revisit_rate=0.60, revisit_history=576, episode_concurrency=14,
    stream_fraction=0.12, stream_length_mean=18,
    noise_fraction=0.09, write_fraction=0.32,
    device_weights=_GAME_DEVICES, interarrival_mean=18, memory_intensity=0.91,
))

QSM = _register(WorkloadProfile(
    name="QQ Speed Mobile", abbr="QSM",
    description="3D racing mobile game", paper_length_millions=69.45,
    num_pages=16_384, page_base=0x100_000,
    pattern_library_size=36, cluster_size=24, neighbor_similarity=0.50,
    blocks_per_page_mean=32.0, pattern_strides=(1, 1, 2), pattern_scatter=0.15, snapshot_stability=0.96,
    episode_order_entropy=0.25,
    page_revisit_rate=0.82, revisit_history=768, episode_concurrency=10,
    stream_fraction=0.14, stream_length_mean=32,
    noise_fraction=0.05, write_fraction=0.26,
    device_weights=_GAME_DEVICES, memory_intensity=0.94,
))

TIKT = _register(WorkloadProfile(
    name="TikTok", abbr="TikT",
    description="Short video sharing app", paper_length_millions=70.82,
    num_pages=24_576, page_base=0x140_000,
    pattern_library_size=64, cluster_size=48, neighbor_similarity=0.70,
    blocks_per_page_mean=28.0, pattern_strides=(1, 2, 3), pattern_scatter=0.25, snapshot_stability=0.90,
    episode_order_entropy=0.45,
    page_revisit_rate=0.45, revisit_history=512, episode_concurrency=18,
    stream_fraction=0.18, stream_length_mean=40,
    noise_fraction=0.10, write_fraction=0.38,
    device_weights=_VIDEO_DEVICES, interarrival_mean=18, memory_intensity=0.90,
))

FORT = _register(WorkloadProfile(
    name="Fortnite", abbr="Fort",
    description="Multiplayer battle royale", paper_length_millions=66.71,
    num_pages=32_768, page_base=0x180_000,
    pattern_library_size=32, cluster_size=64, neighbor_similarity=0.90,
    blocks_per_page_mean=30.0, pattern_strides=(2, 3, 4, 5), pattern_scatter=0.75, snapshot_stability=0.90,
    episode_order_entropy=0.95,
    page_revisit_rate=0.12, revisit_history=256, episode_concurrency=12,
    stream_fraction=0.04, stream_length_mean=8,
    noise_fraction=0.15, write_fraction=0.30,
    device_weights=_GAME_DEVICES, interarrival_mean=18, memory_intensity=0.92,
))

HI3 = _register(WorkloadProfile(
    name="Honkai Impact 3", abbr="HI3",
    description="3D action game", paper_length_millions=67.65,
    num_pages=14_336, page_base=0x1C0_000,
    pattern_library_size=32, cluster_size=24, neighbor_similarity=0.45,
    blocks_per_page_mean=36.0, pattern_strides=(2, 2, 3, 4), pattern_scatter=0.20, snapshot_stability=0.97,
    episode_order_entropy=0.35,
    page_revisit_rate=0.84, revisit_history=768, episode_concurrency=10,
    stream_fraction=0.08, stream_length_mean=24,
    noise_fraction=0.04, write_fraction=0.25,
    device_weights=_GAME_DEVICES, memory_intensity=0.94,
))

KO = _register(WorkloadProfile(
    name="Knives Out", abbr="KO",
    description="Multiplayer battle royale", paper_length_millions=68.00,
    num_pages=18_432, page_base=0x200_000,
    pattern_library_size=44, cluster_size=32, neighbor_similarity=0.50,
    blocks_per_page_mean=28.0, pattern_strides=(2, 3, 3, 4), pattern_scatter=0.30, snapshot_stability=0.95,
    episode_order_entropy=0.35,
    page_revisit_rate=0.76, revisit_history=704, episode_concurrency=12,
    stream_fraction=0.10, stream_length_mean=20,
    noise_fraction=0.07, write_fraction=0.30,
    device_weights=_GAME_DEVICES, memory_intensity=0.92,
))

NBA2 = _register(WorkloadProfile(
    name="NBA 2K19", abbr="NBA2",
    description="Basketball game", paper_length_millions=67.71,
    num_pages=16_384, page_base=0x240_000,
    pattern_library_size=40, cluster_size=28, neighbor_similarity=0.48,
    blocks_per_page_mean=30.0, pattern_strides=(2, 3, 4, 5), pattern_scatter=0.70, snapshot_stability=0.96,
    episode_order_entropy=0.90,
    page_revisit_rate=0.78, revisit_history=768, episode_concurrency=12,
    stream_fraction=0.05, stream_length_mean=5,
    noise_fraction=0.13, write_fraction=0.28,
    device_weights=_GAME_DEVICES, memory_intensity=0.93,
))

PM = _register(WorkloadProfile(
    name="PUBG Mobile", abbr="PM",
    description="Multiplayer battle royale", paper_length_millions=67.71,
    num_pages=22_528, page_base=0x280_000,
    pattern_library_size=40, cluster_size=48, neighbor_similarity=0.72,
    blocks_per_page_mean=34.0, pattern_strides=(2, 3, 4, 5), pattern_scatter=0.65, snapshot_stability=0.94,
    episode_order_entropy=0.85,
    page_revisit_rate=0.55, revisit_history=512, episode_concurrency=14,
    stream_fraction=0.07, stream_length_mean=7,
    noise_fraction=0.11, write_fraction=0.30,
    device_weights=_GAME_DEVICES, interarrival_mean=19, memory_intensity=0.92,
))


def list_workloads() -> List[str]:
    """Paper-order list of application abbreviations."""
    return ["CFM", "HoK", "Id-V", "QSM", "TikT", "Fort", "HI3", "KO", "NBA2", "PM"]


def get_profile(abbr: str) -> WorkloadProfile:
    """Look up a profile by its Table-2 abbreviation.

    Raises:
        KeyError: with the list of known abbreviations.
    """
    try:
        return WORKLOADS[abbr]
    except KeyError:
        known = ", ".join(list_workloads())
        raise KeyError(f"unknown workload {abbr!r}; known: {known}") from None
