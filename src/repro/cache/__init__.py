"""System-cache substrate: a set-associative cache with pluggable
replacement policies, prefetch-fill tracking, and per-channel slicing.

The paper's system cache (SC) is 4 MB / 16-way / 64 B blocks in total,
sliced per DRAM channel (Table 1, Section 3.2).  Each slice is one
:class:`~repro.cache.cache.SetAssociativeCache`.
"""

from repro.cache.block import CacheBlock, EvictionInfo
from repro.cache.cache import AccessResult, SetAssociativeCache
from repro.cache.interleave import ChannelInterleaver
from repro.cache.replacement import make_policy, REPLACEMENT_POLICIES

__all__ = [
    "CacheBlock",
    "EvictionInfo",
    "AccessResult",
    "SetAssociativeCache",
    "ChannelInterleaver",
    "make_policy",
    "REPLACEMENT_POLICIES",
]
