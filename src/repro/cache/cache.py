"""Set-associative cache with prefetch-aware fills and MSHR-style
delayed-hit tracking.

This is the per-channel slice of the paper's 4 MB system cache.  Beyond a
textbook cache it tracks, per block, whether the block was filled by a
prefetcher (and which one) and when the fill data becomes *ready*, so the
simulation engine can account for:

* prefetch usefulness/pollution per sub-prefetcher (Figure 9 attribution),
* late prefetches (data still in flight when the demand arrives),
* MSHR merges (a second miss to an in-flight block doesn't re-access DRAM).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.cache.block import CacheBlock, EvictionInfo
from repro.cache.replacement import make_policy
from repro.cache.replacement.drrip import DRRIPPolicy
from repro.config import CacheConfig
from repro.errors import SimulationError
from repro.trace.record import DeviceID


@dataclass(frozen=True)
class AccessResult:
    """Outcome of one demand access.

    Attributes:
        hit: data present and ready — a true SC hit.
        delayed: data present but still in flight (``ready_time`` in the
            future); the access waits ``wait_cycles``.
        wait_cycles: remaining fill latency for a delayed access.
        prefetch_source: set when this access was served (fully or partly)
            by a prefetched block — names the issuing prefetcher.
        late_prefetch: the serving prefetch was in flight (delayed hit).
    """

    hit: bool
    delayed: bool = False
    wait_cycles: int = 0
    prefetch_source: Optional[str] = None
    late_prefetch: bool = False


#: Shared results for the two overwhelmingly common outcomes.  AccessResult
#: is frozen, so handing every plain hit/miss the same instance is safe and
#: keeps the demand fast path allocation-free (delayed hits and
#: prefetch-served accesses still build a bespoke result).
_PLAIN_HIT = AccessResult(hit=True)
_PLAIN_MISS = AccessResult(hit=False)


@dataclass
class CacheStats:
    """Counters for one cache slice."""

    demand_accesses: int = 0
    demand_hits: int = 0
    demand_misses: int = 0
    delayed_hits: int = 0
    prefetch_fills: int = 0
    demand_fills: int = 0
    writebacks: int = 0
    prefetch_useful: Dict[str, int] = field(default_factory=dict)
    prefetch_late: Dict[str, int] = field(default_factory=dict)
    prefetch_unused_evicted: Dict[str, int] = field(default_factory=dict)

    @property
    def hit_rate(self) -> float:
        if self.demand_accesses == 0:
            return 0.0
        return self.demand_hits / self.demand_accesses

    def useful_total(self) -> int:
        return sum(self.prefetch_useful.values())

    def unused_total(self) -> int:
        return sum(self.prefetch_unused_evicted.values())

    def state_dict(self) -> dict:
        """Snapshot every counter table (checkpoint support)."""
        return {
            "demand_accesses": self.demand_accesses,
            "demand_hits": self.demand_hits,
            "demand_misses": self.demand_misses,
            "delayed_hits": self.delayed_hits,
            "prefetch_fills": self.prefetch_fills,
            "demand_fills": self.demand_fills,
            "writebacks": self.writebacks,
            "prefetch_useful": dict(self.prefetch_useful),
            "prefetch_late": dict(self.prefetch_late),
            "prefetch_unused_evicted": dict(self.prefetch_unused_evicted),
        }

    def load_state(self, state: dict) -> None:
        self.demand_accesses = state["demand_accesses"]
        self.demand_hits = state["demand_hits"]
        self.demand_misses = state["demand_misses"]
        self.delayed_hits = state["delayed_hits"]
        self.prefetch_fills = state["prefetch_fills"]
        self.demand_fills = state["demand_fills"]
        self.writebacks = state["writebacks"]
        self.prefetch_useful = dict(state["prefetch_useful"])
        self.prefetch_late = dict(state["prefetch_late"])
        self.prefetch_unused_evicted = dict(state["prefetch_unused_evicted"])

    def merge(self, other: "CacheStats") -> None:
        """Fold another slice's counters in (channel → system aggregation)."""
        self.demand_accesses += other.demand_accesses
        self.demand_hits += other.demand_hits
        self.demand_misses += other.demand_misses
        self.delayed_hits += other.delayed_hits
        self.prefetch_fills += other.prefetch_fills
        self.demand_fills += other.demand_fills
        self.writebacks += other.writebacks
        for table in ("prefetch_useful", "prefetch_late",
                      "prefetch_unused_evicted"):
            mine = getattr(self, table)
            for source, count in getattr(other, table).items():
                mine[source] = mine.get(source, 0) + count


class SetAssociativeCache:
    """One system-cache slice.

    Addresses handed to this class are *block addresses* (byte address
    >> block bits); the engine does the shifting once.
    """

    def __init__(self, config: CacheConfig) -> None:
        self.config = config
        self.num_sets = config.num_sets
        self.associativity = config.associativity
        self._sets: List[List[CacheBlock]] = [
            [CacheBlock() for _ in range(config.associativity)]
            for _ in range(config.num_sets)
        ]
        self.policy = make_policy(config.replacement_policy, config.associativity,
                                  config.num_sets)
        self.stats = CacheStats()
        self._set_mask = config.num_sets - 1
        # Per-set tag → way index.  Lookups on the demand path are O(1)
        # instead of an O(associativity) scan over the 16 ways; fill() and
        # invalidate() keep it coherent with the way array (the linear scan
        # survives as _find_way_linear for the coherence property test).
        self._tag_to_way: List[Dict[int, int]] = [
            {} for _ in range(config.num_sets)
        ]
        self._drrip = (self.policy if isinstance(self.policy, DRRIPPolicy)
                       else None)
        # Tenant way partitions: DeviceID value → tuple of way indices the
        # device may *fill into* (lookups stay global — a resident block
        # serves every tenant).  Empty when unpartitioned, which keeps the
        # shared-mode fill path on the exact pre-partitioning code.
        self._partition_ways: Dict[int, tuple] = {
            DeviceID[name].value: tuple(
                way for way in range(config.associativity)
                if (mask >> way) & 1)
            for name, mask in (config.partition_masks()
                               if config.way_partitions else {}).items()
        }
        # Incremental occupancy gauges; maintained by access/fill/invalidate
        # so timeline snapshots read them in O(1) instead of scanning
        # sets x ways.  Not checkpointed — load_state recomputes them.
        self._occupancy = 0
        self._resident_prefetches = 0
        #: Lineage collector hook (repro.obs.lineage).  Only consulted on
        #: the explicit-invalidate path — demand/fill fates are resolved
        #: by the engine from AccessResult/EvictionInfo, keeping this
        #: class's hot paths hook-free.
        self.lineage = None

    # ------------------------------------------------------------------
    # Lookup helpers
    # ------------------------------------------------------------------
    def _set_index(self, block_addr: int) -> int:
        return block_addr & self._set_mask

    def _find_way_linear(self, ways: List[CacheBlock], block_addr: int) -> int:
        """Reference O(associativity) lookup, kept for coherence tests."""
        for index, block in enumerate(ways):
            if block.tag == block_addr:
                return index
        return -1

    def contains(self, block_addr: int) -> bool:
        """True if the block is present (ready or in flight)."""
        return block_addr in self._tag_to_way[block_addr & self._set_mask]

    def probe(self, block_addr: int) -> Optional[CacheBlock]:
        """Inspect a block's state without touching replacement metadata."""
        set_index = block_addr & self._set_mask
        way = self._tag_to_way[set_index].get(block_addr)
        return self._sets[set_index][way] if way is not None else None

    # ------------------------------------------------------------------
    # Demand path
    # ------------------------------------------------------------------
    def access(self, block_addr: int, now: int, is_write: bool = False) -> AccessResult:
        """Perform a demand access; updates stats and replacement state.

        A miss does *not* allocate — the engine calls :meth:`fill` once it
        has scheduled the DRAM access, because only the engine knows the
        fill's ready time.
        """
        set_index = block_addr & self._set_mask
        way = self._tag_to_way[set_index].get(block_addr, -1)
        stats = self.stats
        stats.demand_accesses += 1
        if way < 0:
            stats.demand_misses += 1
            if self._drrip is not None:
                self._drrip.record_miss(set_index)
            return _PLAIN_MISS

        ways = self._sets[set_index]
        block = ways[way]
        self.policy.on_hit(set_index, ways, way)
        if is_write:
            block.dirty = True

        prefetch_source = None
        late = False
        if block.prefetched:
            # First demand touch of a prefetched block: it was useful.
            prefetch_source = block.source
            block.prefetched = False
            self._resident_prefetches -= 1
            stats.prefetch_useful[prefetch_source] = (
                stats.prefetch_useful.get(prefetch_source, 0) + 1
            )

        if block.ready_time > now:
            # In-flight fill: MSHR merge / late prefetch.
            wait = block.ready_time - now
            stats.demand_misses += 1
            stats.delayed_hits += 1
            if prefetch_source is not None:
                late = True
                stats.prefetch_late[prefetch_source] = (
                    stats.prefetch_late.get(prefetch_source, 0) + 1
                )
            return AccessResult(
                hit=False, delayed=True, wait_cycles=wait,
                prefetch_source=prefetch_source, late_prefetch=late,
            )

        stats.demand_hits += 1
        if prefetch_source is None:
            return _PLAIN_HIT
        return AccessResult(hit=True, prefetch_source=prefetch_source)

    # ------------------------------------------------------------------
    # Fill path
    # ------------------------------------------------------------------
    def fill(
        self,
        block_addr: int,
        now: int,
        ready_time: int,
        prefetched: bool = False,
        source: Optional[str] = None,
        dirty: bool = False,
        requester: Optional[int] = None,
    ) -> Optional[EvictionInfo]:
        """Install a block; returns eviction info if a valid block fell out.

        ``requester`` is the :class:`DeviceID` value of the tenant the fill
        serves; when that device has a configured way partition, victim
        selection is restricted to its allowed ways (LRU within the
        partition).  Unpartitioned devices — and every fill when no
        partitions are configured — use the global replacement policy.

        Raises:
            SimulationError: if the block is already present (the engine
                must dedup against :meth:`contains` first).
        """
        set_index = block_addr & self._set_mask
        ways = self._sets[set_index]
        tag_map = self._tag_to_way[set_index]
        if block_addr in tag_map:
            raise SimulationError(f"double fill of block {block_addr:#x}")
        allowed = (self._partition_ways.get(requester)
                   if self._partition_ways else None)
        if allowed is None:
            victim_way = self.policy.victim(set_index, ways)
        else:
            victim_way = self._partition_victim(ways, allowed)
        victim = ways[victim_way]
        eviction: Optional[EvictionInfo] = None
        if victim.valid:
            del tag_map[victim.tag]
            eviction = EvictionInfo(
                tag=victim.tag, dirty=victim.dirty,
                prefetched=victim.prefetched, source=victim.source,
            )
            if victim.dirty:
                self.stats.writebacks += 1
            if victim.prefetched:
                self._resident_prefetches -= 1
                if victim.source is not None:
                    self.stats.prefetch_unused_evicted[victim.source] = (
                        self.stats.prefetch_unused_evicted.get(victim.source, 0)
                        + 1
                    )
        else:
            self._occupancy += 1
        victim.tag = block_addr
        tag_map[block_addr] = victim_way
        victim.dirty = dirty
        victim.prefetched = prefetched
        victim.source = source if prefetched else None
        victim.ready_time = ready_time
        self.policy.on_fill(set_index, ways, victim_way, prefetched)
        if prefetched:
            self._resident_prefetches += 1
            self.stats.prefetch_fills += 1
        else:
            self.stats.demand_fills += 1
        return eviction

    @staticmethod
    def _partition_victim(ways: List[CacheBlock], allowed: tuple) -> int:
        """LRU victim restricted to a tenant's allowed ways.

        Same selection rule as :meth:`LRUPolicy.victim` (first invalid way
        wins; otherwise lowest-index way with the minimum last_touch) over
        the partition's way subset.
        """
        oldest_way = allowed[0]
        oldest_touch = None
        for index in allowed:
            block = ways[index]
            if block.tag is None:
                return index
            touch = block.last_touch
            if oldest_touch is None or touch < oldest_touch:
                oldest_touch = touch
                oldest_way = index
        return oldest_way

    # ------------------------------------------------------------------
    # Checkpoint support
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """Snapshot block contents, policy state and counters.

        The tag→way index is *not* stored — :meth:`load_state` rebuilds it
        from the block array, which both keeps the checkpoint minimal and
        re-exercises the same coherence invariant the property suite
        checks.
        """
        return {
            "blocks": [[block.snapshot() for block in ways]
                       for ways in self._sets],
            "policy": self.policy.state_dict(),
            "stats": self.stats.state_dict(),
        }

    def load_state(self, state: dict) -> None:
        """Restore a :meth:`state_dict` snapshot onto a same-shaped cache."""
        blocks = state["blocks"]
        if (len(blocks) != self.num_sets
                or any(len(ways) != self.associativity for ways in blocks)):
            raise SimulationError(
                f"checkpoint cache geometry mismatch: expected "
                f"{self.num_sets}x{self.associativity}")
        self._occupancy = 0
        self._resident_prefetches = 0
        for ways, saved_ways, tag_map in zip(self._sets, blocks,
                                             self._tag_to_way):
            tag_map.clear()
            for way_index, (block, saved) in enumerate(zip(ways, saved_ways)):
                block.restore(saved)
                if block.tag is not None:
                    tag_map[block.tag] = way_index
                if block.valid:
                    self._occupancy += 1
                    if block.prefetched:
                        self._resident_prefetches += 1
        self.policy.load_state(state["policy"])
        self.stats.load_state(state["stats"])

    def invalidate(self, block_addr: int) -> bool:
        """Drop a block if present; returns whether anything was dropped."""
        set_index = block_addr & self._set_mask
        way = self._tag_to_way[set_index].pop(block_addr, None)
        if way is None:
            return False
        block = self._sets[set_index][way]
        self._occupancy -= 1
        if block.prefetched:
            self._resident_prefetches -= 1
            if self.lineage is not None:
                self.lineage.note_invalidated(block_addr, block.source)
        block.invalidate()
        return True

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def occupancy(self) -> int:
        """Number of valid blocks currently resident."""
        return self._occupancy

    def resident_prefetches(self) -> int:
        """Prefetched-and-not-yet-used blocks currently resident."""
        return self._resident_prefetches

    def occupancy_scan(self) -> int:
        """Reference O(sets x ways) count, kept for the coherence test."""
        return sum(
            1 for ways in self._sets for block in ways if block.valid
        )

    def resident_prefetches_scan(self) -> int:
        """Reference scan matching :meth:`resident_prefetches`."""
        return sum(
            1 for ways in self._sets for block in ways
            if block.valid and block.prefetched
        )
