"""Dynamic re-reference interval prediction (DRRIP) with set dueling."""

from __future__ import annotations

from typing import List

from repro.cache.block import CacheBlock
from repro.cache.replacement.srrip import SRRIPPolicy


class DRRIPPolicy(SRRIPPolicy):
    """DRRIP: set-dueling between SRRIP and bimodal (BRRIP) insertion.

    A handful of *leader sets* are hardwired to each insertion policy; a
    policy-selector counter (PSEL) tracks which leader group misses less and
    steers all *follower sets*.
    """

    name = "drrip"
    num_leader_sets = 32
    psel_bits = 10
    brrip_long_probability = 1 / 32

    def __init__(self, associativity: int, num_sets: int) -> None:
        super().__init__(associativity, num_sets)
        self._psel = (1 << self.psel_bits) // 2
        self._psel_max = (1 << self.psel_bits) - 1
        stride = max(1, num_sets // self.num_leader_sets)
        self._srrip_leaders = set(range(0, num_sets, stride * 2))
        self._brrip_leaders = set(range(stride, num_sets, stride * 2))
        self._fill_count = 0

    def state_dict(self) -> dict:
        state = super().state_dict()
        state["psel"] = self._psel
        state["fill_count"] = self._fill_count
        return state

    def load_state(self, state: dict) -> None:
        super().load_state(state)
        self._psel = state["psel"]
        self._fill_count = state["fill_count"]

    def record_miss(self, set_index: int) -> None:
        """Called by the cache on a demand miss, drives set dueling."""
        if set_index in self._srrip_leaders:
            self._psel = min(self._psel_max, self._psel + 1)
        elif set_index in self._brrip_leaders:
            self._psel = max(0, self._psel - 1)

    def _use_srrip(self, set_index: int) -> bool:
        if set_index in self._srrip_leaders:
            return True
        if set_index in self._brrip_leaders:
            return False
        return self._psel < (self._psel_max + 1) // 2

    def on_fill(self, set_index: int, ways: List[CacheBlock], way: int,
                prefetched: bool) -> None:
        if prefetched:
            ways[way].rrpv = self.max_rrpv
            return
        if self._use_srrip(set_index):
            ways[way].rrpv = self.max_rrpv - 1
            return
        # BRRIP: mostly distant (max), occasionally long (max-1).
        self._fill_count += 1
        if self._fill_count % int(1 / self.brrip_long_probability) == 0:
            ways[way].rrpv = self.max_rrpv - 1
        else:
            ways[way].rrpv = self.max_rrpv
