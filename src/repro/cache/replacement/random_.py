"""Random replacement (deterministically seeded for reproducibility)."""

from __future__ import annotations

import random
from typing import List

from repro.cache.block import CacheBlock
from repro.cache.replacement.base import ReplacementPolicy


class RandomPolicy(ReplacementPolicy):
    """Evicts a uniformly random valid way."""

    name = "random"

    def __init__(self, associativity: int, num_sets: int, seed: int = 0xC0FFEE) -> None:
        super().__init__(associativity, num_sets)
        self._rng = random.Random(seed)

    def state_dict(self) -> dict:
        state = super().state_dict()
        state["rng"] = self._rng.getstate()
        return state

    def load_state(self, state: dict) -> None:
        super().load_state(state)
        self._rng.setstate(state["rng"])

    def on_hit(self, set_index: int, ways: List[CacheBlock], way: int) -> None:
        pass

    def on_fill(self, set_index: int, ways: List[CacheBlock], way: int,
                prefetched: bool) -> None:
        pass

    def victim(self, set_index: int, ways: List[CacheBlock]) -> int:
        invalid = self._first_invalid(ways)
        if invalid >= 0:
            return invalid
        return self._rng.randrange(len(ways))
