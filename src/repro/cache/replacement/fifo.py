"""First-in first-out replacement."""

from __future__ import annotations

from typing import List

from repro.cache.block import CacheBlock
from repro.cache.replacement.base import ReplacementPolicy


class FIFOPolicy(ReplacementPolicy):
    """Evicts the oldest fill regardless of subsequent hits."""

    name = "fifo"

    def on_hit(self, set_index: int, ways: List[CacheBlock], way: int) -> None:
        pass  # FIFO ignores reuse

    def on_fill(self, set_index: int, ways: List[CacheBlock], way: int,
                prefetched: bool) -> None:
        ways[way].inserted = self._next_tick()

    def victim(self, set_index: int, ways: List[CacheBlock]) -> int:
        invalid = self._first_invalid(ways)
        if invalid >= 0:
            return invalid
        oldest_way = 0
        oldest_insert = ways[0].inserted
        for index in range(1, len(ways)):
            if ways[index].inserted < oldest_insert:
                oldest_insert = ways[index].inserted
                oldest_way = index
        return oldest_way
