"""Least-recently-used replacement — the experiments' baseline policy."""

from __future__ import annotations

from typing import List

from repro.cache.block import CacheBlock
from repro.cache.replacement.base import ReplacementPolicy


class LRUPolicy(ReplacementPolicy):
    """True LRU via a monotonic touch counter per block."""

    name = "lru"

    def on_hit(self, set_index: int, ways: List[CacheBlock], way: int) -> None:
        self._tick += 1
        ways[way].last_touch = self._tick

    def on_fill(self, set_index: int, ways: List[CacheBlock], way: int,
                prefetched: bool) -> None:
        self._tick += 1
        ways[way].last_touch = self._tick

    def victim(self, set_index: int, ways: List[CacheBlock]) -> int:
        # Single pass: the first invalid way wins outright; otherwise the
        # lowest-index way with the minimum last_touch (strict <) — the
        # same choice the old invalid-scan + min-scan pair made.
        oldest_way = 0
        oldest_touch = None
        for index, block in enumerate(ways):
            if block.tag is None:
                return index
            touch = block.last_touch
            if oldest_touch is None or touch < oldest_touch:
                oldest_touch = touch
                oldest_way = index
        return oldest_way
