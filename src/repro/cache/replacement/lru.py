"""Least-recently-used replacement — the experiments' baseline policy."""

from __future__ import annotations

from typing import List

from repro.cache.block import CacheBlock
from repro.cache.replacement.base import ReplacementPolicy


class LRUPolicy(ReplacementPolicy):
    """True LRU via a monotonic touch counter per block."""

    name = "lru"

    def on_hit(self, set_index: int, ways: List[CacheBlock], way: int) -> None:
        ways[way].last_touch = self._next_tick()

    def on_fill(self, set_index: int, ways: List[CacheBlock], way: int,
                prefetched: bool) -> None:
        ways[way].last_touch = self._next_tick()

    def victim(self, set_index: int, ways: List[CacheBlock]) -> int:
        invalid = self._first_invalid(ways)
        if invalid >= 0:
            return invalid
        oldest_way = 0
        oldest_touch = ways[0].last_touch
        for index in range(1, len(ways)):
            if ways[index].last_touch < oldest_touch:
                oldest_touch = ways[index].last_touch
                oldest_way = index
        return oldest_way
