"""Static re-reference interval prediction (SRRIP, Jaleel et al. ISCA'10)."""

from __future__ import annotations

from typing import List

from repro.cache.block import CacheBlock
from repro.cache.replacement.base import ReplacementPolicy


class SRRIPPolicy(ReplacementPolicy):
    """2-bit RRPV SRRIP with hit-priority promotion.

    Fills insert at ``max_rrpv - 1`` (long re-reference interval);
    prefetch fills insert at ``max_rrpv`` so an unused prefetch is the
    preferred victim — a standard LLC courtesy toward prefetches.
    """

    name = "srrip"
    rrpv_bits = 2

    def __init__(self, associativity: int, num_sets: int) -> None:
        super().__init__(associativity, num_sets)
        self.max_rrpv = (1 << self.rrpv_bits) - 1

    def on_hit(self, set_index: int, ways: List[CacheBlock], way: int) -> None:
        ways[way].rrpv = 0

    def on_fill(self, set_index: int, ways: List[CacheBlock], way: int,
                prefetched: bool) -> None:
        ways[way].rrpv = self.max_rrpv if prefetched else self.max_rrpv - 1

    def victim(self, set_index: int, ways: List[CacheBlock]) -> int:
        invalid = self._first_invalid(ways)
        if invalid >= 0:
            return invalid
        while True:
            for index, block in enumerate(ways):
                if block.rrpv >= self.max_rrpv:
                    return index
            for block in ways:
                block.rrpv += 1
