"""Replacement policy interface."""

from __future__ import annotations

import abc
from typing import List

from repro.cache.block import CacheBlock


class ReplacementPolicy(abc.ABC):
    """Chooses victims and maintains recency state for one cache.

    A policy never touches ``tag``/``dirty``/``prefetched`` — only its own
    ordering metadata on the blocks (``last_touch``, ``inserted``, ``rrpv``).
    """

    name = "base"

    def __init__(self, associativity: int, num_sets: int) -> None:
        if associativity < 1:
            raise ValueError(f"associativity must be >= 1, got {associativity}")
        if num_sets < 1:
            raise ValueError(f"num_sets must be >= 1, got {num_sets}")
        self.associativity = associativity
        self.num_sets = num_sets
        self._tick = 0

    def _next_tick(self) -> int:
        """Monotonic logical time for recency ordering."""
        self._tick += 1
        return self._tick

    # ------------------------------------------------------------------
    # Checkpoint support — per-block ordering metadata lives on the
    # blocks themselves and is captured by the cache; the policy only
    # snapshots its own counters.  Subclasses with extra mutable state
    # (DRRIP's PSEL, random's RNG) extend both methods.
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        return {"tick": self._tick}

    def load_state(self, state: dict) -> None:
        self._tick = state["tick"]

    @abc.abstractmethod
    def on_hit(self, set_index: int, ways: List[CacheBlock], way: int) -> None:
        """Called on a demand hit to ``ways[way]``."""

    @abc.abstractmethod
    def on_fill(self, set_index: int, ways: List[CacheBlock], way: int,
                prefetched: bool) -> None:
        """Called after a new block is installed in ``ways[way]``."""

    @abc.abstractmethod
    def victim(self, set_index: int, ways: List[CacheBlock]) -> int:
        """Return the way index to evict; invalid ways must win first."""

    @staticmethod
    def _first_invalid(ways: List[CacheBlock]) -> int:
        for index, block in enumerate(ways):
            if not block.valid:
                return index
        return -1
