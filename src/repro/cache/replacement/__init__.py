"""Replacement policies for the system cache.

The paper notes that "neither state-of-the-art cache replacement policies
nor increasing cache size significantly improve SC performance" — these
policies exist both as the baseline LRU the experiments use and to let users
reproduce that negative observation (see ``examples/replacement_study.py``).
"""

from typing import Dict, Type

from repro.cache.replacement.base import ReplacementPolicy
from repro.cache.replacement.fifo import FIFOPolicy
from repro.cache.replacement.lru import LRUPolicy
from repro.cache.replacement.random_ import RandomPolicy
from repro.cache.replacement.srrip import SRRIPPolicy
from repro.cache.replacement.drrip import DRRIPPolicy
from repro.errors import ConfigError

REPLACEMENT_POLICIES: Dict[str, Type[ReplacementPolicy]] = {
    "lru": LRUPolicy,
    "fifo": FIFOPolicy,
    "random": RandomPolicy,
    "srrip": SRRIPPolicy,
    "drrip": DRRIPPolicy,
}


def make_policy(name: str, associativity: int, num_sets: int) -> ReplacementPolicy:
    """Instantiate a policy by name.

    Raises:
        ConfigError: for an unknown policy name.
    """
    try:
        policy_class = REPLACEMENT_POLICIES[name]
    except KeyError:
        known = ", ".join(sorted(REPLACEMENT_POLICIES))
        raise ConfigError(f"unknown replacement policy {name!r}; known: {known}") from None
    return policy_class(associativity, num_sets)


__all__ = [
    "ReplacementPolicy",
    "LRUPolicy",
    "FIFOPolicy",
    "RandomPolicy",
    "SRRIPPolicy",
    "DRRIPPolicy",
    "REPLACEMENT_POLICIES",
    "make_policy",
]
