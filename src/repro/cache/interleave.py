"""Channel interleaving: splitting the bus trace across SC slices.

Section 3.2: a 4 KB page is partitioned into four 16-block segments, each
statically mapped to one DRAM channel, so each channel's SC slice and
prefetcher observe a 16-bit bitmap's worth of every page.
"""

from __future__ import annotations

from typing import Iterable, List

from repro.geometry import AddressLayout, DEFAULT_LAYOUT
from repro.trace.record import TraceRecord


class ChannelInterleaver:
    """Routes trace records to per-channel streams."""

    def __init__(self, layout: AddressLayout = DEFAULT_LAYOUT) -> None:
        self.layout = layout

    def channel_of(self, record: TraceRecord) -> int:
        """The channel a record's address statically maps to."""
        return self.layout.channel(record.address)

    def split(self, records: Iterable[TraceRecord]) -> List[List[TraceRecord]]:
        """Partition records into per-channel lists, preserving order."""
        streams: List[List[TraceRecord]] = [
            [] for _ in range(self.layout.num_channels)
        ]
        for record in records:
            streams[self.layout.channel(record.address)].append(record)
        return streams

    def balance(self, records: Iterable[TraceRecord]) -> List[int]:
        """Per-channel record counts (load-balance check)."""
        counts = [0] * self.layout.num_channels
        for record in records:
            counts[self.layout.channel(record.address)] += 1
        return counts
