"""Cache block (line) state."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


class CacheBlock:
    """One cache way's state.

    Attributes:
        tag: block address stored in this way (``None`` when invalid).
        dirty: written since fill (needs write-back on eviction).
        prefetched: filled by a prefetch and not yet demanded.
        source: name of the prefetcher that issued the fill (attribution
            for Figure 9's SLP/TLP breakdown).
        ready_time: cycle at which the fill data actually arrives; an
            access before this is a *delayed hit* (MSHR-style merge).
        last_touch: policy timestamp for LRU.
        inserted: fill timestamp for FIFO.
        rrpv: re-reference prediction value for SRRIP/DRRIP.
    """

    __slots__ = (
        "tag", "dirty", "prefetched", "source",
        "ready_time", "last_touch", "inserted", "rrpv",
    )

    def __init__(self) -> None:
        self.tag: Optional[int] = None
        self.dirty = False
        self.prefetched = False
        self.source: Optional[str] = None
        self.ready_time = 0
        self.last_touch = 0
        self.inserted = 0
        self.rrpv = 0

    @property
    def valid(self) -> bool:
        return self.tag is not None

    def snapshot(self) -> tuple:
        """Compact per-way state tuple (checkpoint support).

        A tuple rather than a dict: a cache slice snapshots thousands of
        ways, and every field is a scalar.
        """
        return (self.tag, self.dirty, self.prefetched, self.source,
                self.ready_time, self.last_touch, self.inserted, self.rrpv)

    def restore(self, state: tuple) -> None:
        (self.tag, self.dirty, self.prefetched, self.source,
         self.ready_time, self.last_touch, self.inserted, self.rrpv) = state

    def invalidate(self) -> None:
        self.tag = None
        self.dirty = False
        self.prefetched = False
        self.source = None

    def __repr__(self) -> str:
        if not self.valid:
            return "CacheBlock(invalid)"
        return (
            f"CacheBlock(tag={self.tag:#x}, dirty={self.dirty}, "
            f"prefetched={self.prefetched}, source={self.source})"
        )


@dataclass(frozen=True)
class EvictionInfo:
    """What fell out of the cache on a fill."""

    tag: int
    dirty: bool
    prefetched: bool
    source: Optional[str]
