"""Array state representation of the system-cache slice (batch engine).

:class:`ArrayCache` stores the same per-way state as
:class:`~repro.cache.cache.SetAssociativeCache` — tag, dirty, prefetched,
source, ready time, LRU age — but as flat parallel arrays indexed by
*global way* (``set_index * associativity + way``) instead of a
``CacheBlock`` object per way.  On top of those it maintains:

* one global ``block_addr -> global_way`` dict (a block address determines
  its set, so a single map replaces the per-set maps without ambiguity),
* a per-set free-way list, kept sorted ascending so popping the front is
  exactly the scalar policy's "first invalid way wins" rule,
* a live NumPy tag mirror, exposed as :meth:`tag_matrix`, so whole-chunk
  hit/miss resolution can be a batched compare (see
  :func:`repro.sim.kernels.lru_victims` and ``repro.sim.batch``).

The class is a drop-in replacement for the scalar cache under LRU
replacement: the public API (``access``/``fill``/``contains``/``probe``/
``invalidate``/``state_dict``/``load_state``/gauges) is identical, every
counter is updated in the same order, and :meth:`state_dict` emits the
*same schema bit-for-bit* — the oracle harness in
``tests/test_batch_oracle.py`` compares the two classes' snapshots
field-by-field after arbitrary access histories.

Only LRU is supported: the batch engine's run-length bookkeeping relies on
the one-tick-per-access LRU contract.  Other policies stay on the scalar
cache (``engine_mode="auto"`` falls back automatically).
"""

from __future__ import annotations

from bisect import insort
from typing import Dict, List, Optional

import numpy as np

from repro.cache.block import CacheBlock, EvictionInfo
from repro.cache.cache import _PLAIN_HIT, _PLAIN_MISS, AccessResult, CacheStats
from repro.config import CacheConfig
from repro.errors import SimulationError
from repro.trace.record import DeviceID


class ArrayCache:
    """One system-cache slice held as flat arrays (LRU only)."""

    def __init__(self, config: CacheConfig) -> None:
        if config.replacement_policy != "lru":
            raise SimulationError(
                "ArrayCache supports only LRU replacement, got "
                f"{config.replacement_policy!r}")
        self.config = config
        self.num_sets = config.num_sets
        self.associativity = config.associativity
        self._set_mask = config.num_sets - 1
        capacity = config.num_sets * config.associativity
        # Per-way state, indexed by global way (set * associativity + way).
        self._tags: List[Optional[int]] = [None] * capacity
        self._dirty: List[bool] = [False] * capacity
        self._prefetched: List[bool] = [False] * capacity
        self._source: List[Optional[str]] = [None] * capacity
        self._ready: List[int] = [0] * capacity
        self._touch: List[int] = [0] * capacity
        # Untouched by LRU (FIFO's / DRRIP's metadata); preserved verbatim
        # so snapshots match the scalar cache's CacheBlock fields.
        self._inserted: List[int] = [0] * capacity
        self._rrpv: List[int] = [0] * capacity
        self._tick = 0
        self._map: Dict[int, int] = {}
        self._free: List[List[int]] = [
            list(range(s * config.associativity, (s + 1) * config.associativity))
            for s in range(config.num_sets)
        ]
        # NumPy tag mirror (-1 = invalid) for batched compares.  The scalar
        # methods keep it live; the batch loop skips the per-fill ndarray
        # store (a surprisingly hot ~100ns) and marks it stale instead, so
        # :meth:`tag_matrix` rebuilds on demand.
        self._tags_np = np.full(capacity, -1, dtype=np.int64)
        self._tags_stale = False
        # Tenant way partitions (DeviceID value → local way indices), same
        # rule as the scalar cache.  The fused batch loop refuses
        # partitioned configs, but the scalar-API fill keeps the two
        # classes drop-in interchangeable for direct callers.
        self._partition_ways: Dict[int, tuple] = {
            DeviceID[name].value: tuple(
                way for way in range(config.associativity)
                if (mask >> way) & 1)
            for name, mask in (config.partition_masks()
                               if config.way_partitions else {}).items()
        }
        self.stats = CacheStats()
        self._occupancy = 0
        self._resident_prefetches = 0
        #: Lineage collector hook (repro.obs.lineage); consulted only on
        #: the explicit-invalidate path, same as the scalar cache.
        self.lineage = None

    # ------------------------------------------------------------------
    # Batched views
    # ------------------------------------------------------------------
    def tag_matrix(self) -> np.ndarray:
        """``(num_sets, associativity)`` int64 tag view (-1 invalid)."""
        if self._tags_stale:
            self._tags_np = np.fromiter(
                (-1 if tag is None else tag for tag in self._tags),
                dtype=np.int64, count=len(self._tags))
            self._tags_stale = False
        return self._tags_np.reshape(self.num_sets, self.associativity)

    def age_matrix(self) -> np.ndarray:
        """``(num_sets, associativity)`` LRU-age (last_touch) snapshot."""
        return np.asarray(self._touch, dtype=np.int64).reshape(
            self.num_sets, self.associativity)

    # ------------------------------------------------------------------
    # Lookup helpers
    # ------------------------------------------------------------------
    def contains(self, block_addr: int) -> bool:
        """True if the block is present (ready or in flight)."""
        return block_addr in self._map

    def probe(self, block_addr: int) -> Optional[CacheBlock]:
        """Inspect a block's state without touching replacement metadata.

        Materialises a :class:`CacheBlock` view so callers of the scalar
        cache's ``probe`` keep working; mutations to the returned object
        are *not* written back.
        """
        way = self._map.get(block_addr)
        if way is None:
            return None
        block = CacheBlock()
        block.restore((self._tags[way], self._dirty[way],
                       self._prefetched[way], self._source[way],
                       self._ready[way], self._touch[way],
                       self._inserted[way], self._rrpv[way]))
        return block

    # ------------------------------------------------------------------
    # Demand path (scalar fallback; the batch loop inlines these ops)
    # ------------------------------------------------------------------
    def access(self, block_addr: int, now: int, is_write: bool = False) -> AccessResult:
        """Scalar demand access — mirrors SetAssociativeCache.access."""
        way = self._map.get(block_addr, -1)
        stats = self.stats
        stats.demand_accesses += 1
        if way < 0:
            stats.demand_misses += 1
            return _PLAIN_MISS

        self._tick += 1
        self._touch[way] = self._tick
        if is_write:
            self._dirty[way] = True

        prefetch_source = None
        late = False
        if self._prefetched[way]:
            prefetch_source = self._source[way]
            self._prefetched[way] = False
            self._resident_prefetches -= 1
            stats.prefetch_useful[prefetch_source] = (
                stats.prefetch_useful.get(prefetch_source, 0) + 1
            )

        if self._ready[way] > now:
            wait = self._ready[way] - now
            stats.demand_misses += 1
            stats.delayed_hits += 1
            if prefetch_source is not None:
                late = True
                stats.prefetch_late[prefetch_source] = (
                    stats.prefetch_late.get(prefetch_source, 0) + 1
                )
            return AccessResult(
                hit=False, delayed=True, wait_cycles=wait,
                prefetch_source=prefetch_source, late_prefetch=late,
            )

        stats.demand_hits += 1
        if prefetch_source is None:
            return _PLAIN_HIT
        return AccessResult(hit=True, prefetch_source=prefetch_source)

    # ------------------------------------------------------------------
    # Fill path
    # ------------------------------------------------------------------
    def fill(
        self,
        block_addr: int,
        now: int,
        ready_time: int,
        prefetched: bool = False,
        source: Optional[str] = None,
        dirty: bool = False,
        requester: Optional[int] = None,
    ) -> Optional[EvictionInfo]:
        """Install a block; returns eviction info if a valid block fell out.

        ``requester`` restricts victim selection to the device's way
        partition when one is configured — same contract as
        :meth:`SetAssociativeCache.fill`.
        """
        if block_addr in self._map:
            raise SimulationError(f"double fill of block {block_addr:#x}")
        set_index = block_addr & self._set_mask
        free = self._free[set_index]
        allowed = (self._partition_ways.get(requester)
                   if self._partition_ways else None)
        if allowed is not None:
            return self._fill_partitioned(block_addr, set_index, allowed,
                                          ready_time, prefetched, source,
                                          dirty)
        eviction: Optional[EvictionInfo] = None
        if free:
            way = free.pop(0)
            self._occupancy += 1
        else:
            base = set_index * self.associativity
            ages = self._touch[base:base + self.associativity]
            way = base + ages.index(min(ages))
            victim_tag = self._tags[way]
            del self._map[victim_tag]
            eviction = EvictionInfo(
                tag=victim_tag, dirty=self._dirty[way],
                prefetched=self._prefetched[way], source=self._source[way],
            )
            if self._dirty[way]:
                self.stats.writebacks += 1
            if self._prefetched[way]:
                self._resident_prefetches -= 1
                if self._source[way] is not None:
                    self.stats.prefetch_unused_evicted[self._source[way]] = (
                        self.stats.prefetch_unused_evicted.get(
                            self._source[way], 0) + 1
                    )
        self._tags[way] = block_addr
        self._tags_np[way] = block_addr
        self._map[block_addr] = way
        self._dirty[way] = dirty
        self._prefetched[way] = prefetched
        self._source[way] = source if prefetched else None
        self._ready[way] = ready_time
        self._tick += 1
        self._touch[way] = self._tick
        if prefetched:
            self._resident_prefetches += 1
            self.stats.prefetch_fills += 1
        else:
            self.stats.demand_fills += 1
        return eviction

    def _fill_partitioned(
        self,
        block_addr: int,
        set_index: int,
        allowed: tuple,
        ready_time: int,
        prefetched: bool,
        source: Optional[str],
        dirty: bool,
    ) -> Optional[EvictionInfo]:
        """Fill restricted to a tenant partition: first invalid allowed way
        wins, else LRU among the allowed ways (mirrors
        :meth:`SetAssociativeCache._partition_victim`)."""
        base = set_index * self.associativity
        way = base + allowed[0]
        oldest_touch = None
        found_invalid = False
        for local in allowed:
            candidate = base + local
            if self._tags[candidate] is None:
                way = candidate
                found_invalid = True
                break
            touch = self._touch[candidate]
            if oldest_touch is None or touch < oldest_touch:
                oldest_touch = touch
                way = candidate
        eviction: Optional[EvictionInfo] = None
        if found_invalid:
            self._free[set_index].remove(way)
            self._occupancy += 1
        else:
            victim_tag = self._tags[way]
            del self._map[victim_tag]
            eviction = EvictionInfo(
                tag=victim_tag, dirty=self._dirty[way],
                prefetched=self._prefetched[way], source=self._source[way],
            )
            if self._dirty[way]:
                self.stats.writebacks += 1
            if self._prefetched[way]:
                self._resident_prefetches -= 1
                if self._source[way] is not None:
                    self.stats.prefetch_unused_evicted[self._source[way]] = (
                        self.stats.prefetch_unused_evicted.get(
                            self._source[way], 0) + 1
                    )
        self._tags[way] = block_addr
        self._tags_np[way] = block_addr
        self._map[block_addr] = way
        self._dirty[way] = dirty
        self._prefetched[way] = prefetched
        self._source[way] = source if prefetched else None
        self._ready[way] = ready_time
        self._tick += 1
        self._touch[way] = self._tick
        if prefetched:
            self._resident_prefetches += 1
            self.stats.prefetch_fills += 1
        else:
            self.stats.demand_fills += 1
        return eviction

    # ------------------------------------------------------------------
    # Checkpoint support
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """Snapshot in the scalar cache's exact schema (see its docstring)."""
        assoc = self.associativity
        blocks = []
        for set_index in range(self.num_sets):
            base = set_index * assoc
            blocks.append([
                (self._tags[way], self._dirty[way], self._prefetched[way],
                 self._source[way], self._ready[way], self._touch[way],
                 self._inserted[way], self._rrpv[way])
                for way in range(base, base + assoc)
            ])
        return {
            "blocks": blocks,
            "policy": {"tick": self._tick},
            "stats": self.stats.state_dict(),
        }

    def load_state(self, state: dict) -> None:
        """Restore a scalar- or array-cache snapshot onto this instance."""
        blocks = state["blocks"]
        if (len(blocks) != self.num_sets
                or any(len(ways) != self.associativity for ways in blocks)):
            raise SimulationError(
                f"checkpoint cache geometry mismatch: expected "
                f"{self.num_sets}x{self.associativity}")
        self._map.clear()
        self._occupancy = 0
        self._resident_prefetches = 0
        way = 0
        for set_index, saved_ways in enumerate(blocks):
            free = self._free[set_index]
            free.clear()
            for saved in saved_ways:
                (self._tags[way], self._dirty[way], self._prefetched[way],
                 self._source[way], self._ready[way], self._touch[way],
                 self._inserted[way], self._rrpv[way]) = saved
                tag = self._tags[way]
                if tag is not None:
                    self._tags_np[way] = tag
                    self._map[tag] = way
                    self._occupancy += 1
                    if self._prefetched[way]:
                        self._resident_prefetches += 1
                else:
                    self._tags_np[way] = -1
                    free.append(way)
                way += 1
        self._tick = state["policy"]["tick"]
        self._tags_stale = False
        self.stats.load_state(state["stats"])

    def invalidate(self, block_addr: int) -> bool:
        """Drop a block if present; returns whether anything was dropped."""
        way = self._map.pop(block_addr, None)
        if way is None:
            return False
        self._occupancy -= 1
        if self._prefetched[way]:
            self._resident_prefetches -= 1
            if self.lineage is not None:
                self.lineage.note_invalidated(block_addr, self._source[way])
        self._tags[way] = None
        self._tags_np[way] = -1
        self._dirty[way] = False
        self._prefetched[way] = False
        self._source[way] = None
        insort(self._free[block_addr & self._set_mask], way)
        return True

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def occupancy(self) -> int:
        """Number of valid blocks currently resident."""
        return self._occupancy

    def resident_prefetches(self) -> int:
        """Prefetched-and-not-yet-used blocks currently resident."""
        return self._resident_prefetches

    def occupancy_scan(self) -> int:
        """Reference O(capacity) count, kept for the coherence tests."""
        return sum(1 for tag in self._tags if tag is not None)

    def resident_prefetches_scan(self) -> int:
        """Reference scan matching :meth:`resident_prefetches`."""
        return sum(1 for tag, pf in zip(self._tags, self._prefetched)
                   if tag is not None and pf)
