"""Trace-driven simulation engine and metrics.

Mirrors the paper's methodology (Section 5): traces drive a per-channel
system-cache + LPDDR4 model; statistics come out as SC hit rate, AMAT,
memory traffic, power, and an AMAT→IPC proxy.
"""

from repro.sim.engine import ChannelSimulator, SystemSimulator
from repro.sim.executor import (ParallelExecutor, SimulationTask,
                                pool_available, resolve_parallelism)
from repro.sim.metrics import MetricSet, RunMetrics, ipc_speedup
from repro.sim.runner import RunResult, compare_prefetchers, run_workload

__all__ = [
    "ChannelSimulator",
    "SystemSimulator",
    "ParallelExecutor",
    "SimulationTask",
    "pool_available",
    "resolve_parallelism",
    "MetricSet",
    "RunMetrics",
    "ipc_speedup",
    "RunResult",
    "run_workload",
    "compare_prefetchers",
]
