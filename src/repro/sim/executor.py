"""Parallel execution layer for simulations.

The paper's per-channel organisation (Figure 1: one SC slice + LPDDR4
channel + prefetcher per DRAM channel) makes two grains of parallelism
available without changing any simulated behaviour:

* **task grain** — each (workload, prefetcher) pair of a
  :func:`repro.sim.runner.compare_prefetchers` sweep is an independent
  simulation.  Tasks are shipped to workers as picklable
  :class:`SimulationTask` specs (config + profile + seed); the worker
  *regenerates* the trace from the seed rather than unpickling ~120k
  records, which keeps the task payload a few KB.
* **channel grain** — inside :meth:`SystemSimulator.run` the per-channel
  simulators share no mutable state once the bus trace is split, so each
  channel's stream can run in its own process.  The fully-constructed
  :class:`~repro.sim.engine.ChannelSimulator` (prefetcher instance
  included) is pickled out, driven, and shipped back; the stream itself
  travels as a columnar :class:`~repro.trace.buffer.TraceBuffer` — raw
  NumPy column buffers, ~10× smaller than a pickled record-object list.

Both grains preserve the serial contract bit-for-bit: record streams,
seeds and per-channel state are identical, floats survive pickling
exactly, and results flow through the same ``MetricSet`` /
``CacheStats`` / ``DRAMStats`` / ``QueueStats`` merge path as a serial
run.  ``tests/test_parallel_equivalence.py`` enforces this.

Execution falls back to the serial path deterministically whenever the
resolved worker count is 1, there is at most one unit of work, or the
process pool cannot be created (sandboxes without fork/semaphores) —
the fallback runs the *same* code path a ``parallelism="serial"`` caller
would, so results never depend on pool availability.
"""

from __future__ import annotations

import os
import pickle
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple, TypeVar, Union

from repro.config import PlanariaConfig, SimConfig
from repro.errors import ConfigError

Parallelism = Union[str, int]
_T = TypeVar("_T")
_R = TypeVar("_R")

#: Errors that mean "the pool (or this payload) cannot be used" rather
#: than "the simulation itself failed" — these trigger the serial fallback.
_POOL_ERRORS = (BrokenProcessPool, OSError, PermissionError,
                pickle.PicklingError, TypeError, AttributeError)

_pool_probe_result: Optional[bool] = None


def _probe_worker(value: int) -> int:
    return value + 1


def pool_available() -> bool:
    """Whether a working :class:`ProcessPoolExecutor` can be created.

    Some sandboxes expose ``os.cpu_count() > 1`` but forbid the
    semaphores / forks multiprocessing needs; the probe result is cached
    per process.
    """
    global _pool_probe_result
    if _pool_probe_result is None:
        try:
            with ProcessPoolExecutor(max_workers=1) as pool:
                _pool_probe_result = pool.submit(_probe_worker, 1).result() == 2
        except _POOL_ERRORS:
            _pool_probe_result = False
    return _pool_probe_result


def resolve_parallelism(parallelism: Parallelism,
                        task_count: Optional[int] = None) -> int:
    """Turn the user-facing knob into a concrete worker count.

    ``"serial"`` → 1; ``"auto"`` → ``REPRO_PARALLELISM`` env override or
    ``os.cpu_count()``; an integer is used as-is.  The result is clamped
    to ``task_count`` when given (no point spawning idle workers).
    """
    if isinstance(parallelism, str):
        token = parallelism.strip().lower()
        if token == "serial":
            workers = 1
        elif token == "auto":
            env = os.environ.get("REPRO_PARALLELISM", "")
            try:
                workers = max(1, int(env))
            except ValueError:
                workers = os.cpu_count() or 1
        else:
            try:
                workers = int(token)
            except ValueError:
                raise ConfigError(
                    f"parallelism must be 'auto', 'serial' or an integer, "
                    f"got {parallelism!r}") from None
    else:
        workers = int(parallelism)
    if workers < 1:
        raise ConfigError(f"parallelism must be >= 1, got {workers}")
    if task_count is not None:
        workers = min(workers, max(1, task_count))
    return workers


@dataclass(frozen=True)
class SimulationTask:
    """Picklable spec for one (workload, prefetcher) simulation.

    The trace is regenerated in the worker from ``(profile, length,
    seed, config.layout)`` — the generator is seed-deterministic, so the
    worker sees exactly the records a serial run would.

    ``prefetcher`` is a registry name; ``planaria_variant`` instead
    selects a custom-configured Planaria (the sweep grain), in which case
    ``prefetcher`` is used only as the result label.
    """

    profile: object  # WorkloadProfile (kept untyped to avoid an import cycle)
    prefetcher: str
    length: int
    seed: int
    config: SimConfig
    planaria_variant: Optional[PlanariaConfig] = None


def run_simulation_task(task: SimulationTask):
    """Execute one task start-to-finish; the process-pool entry point.

    Channel-grain parallelism is forced off here — workers must never
    spawn nested pools.
    """
    from repro.sim.runner import simulate
    from repro.sim.sweep import simulate_factory
    from repro.trace.generator import generate_trace_buffer

    records = generate_trace_buffer(task.profile, task.length, seed=task.seed,
                                    layout=task.config.layout)
    if task.planaria_variant is not None:
        from repro.core.planaria import PlanariaPrefetcher

        variant = task.planaria_variant
        return simulate_factory(
            records,
            lambda layout, channel: PlanariaPrefetcher(layout, channel, variant),
            task.prefetcher, workload_name=task.profile.abbr,
            config=task.config, parallelism="serial",
        )
    return simulate(records, task.prefetcher,
                    workload_name=task.profile.abbr, config=task.config,
                    parallelism="serial").metrics


def run_channel_job(job: Tuple[object, object, int]):
    """Drive one pickled ChannelSimulator over its stream; pool entry point.

    The stream is normally a :class:`~repro.trace.buffer.TraceBuffer`,
    which pickles as compact column arrays (18 B/record) instead of a
    record-object list (~200 B/record) — the payload shipped to each
    worker shrinks by an order of magnitude.  Legacy record lists still
    work (``SystemSimulator.run(columnar=False)``).
    """
    channel_sim, stream, warmup = job
    channel_sim.run(stream, warmup_records=warmup)
    return channel_sim


class ParallelExecutor:
    """Fan work out over a process pool, or run it serially, identically.

    The executor never changes *what* is computed, only *where*: the
    serial path and the pool path call the same worker function on the
    same arguments in the same order, and ``map``'s result order matches
    the input order.  Any pool-infrastructure failure (not a simulation
    error) silently downgrades to the serial path — the inputs are
    untouched at that point, so the retry is safe.
    """

    def __init__(self, parallelism: Parallelism = "auto") -> None:
        self.parallelism = parallelism

    def workers_for(self, task_count: int) -> int:
        return resolve_parallelism(self.parallelism, task_count)

    def map(self, function: Callable[[_T], _R],
            items: Sequence[_T]) -> List[_R]:
        """``[function(item) for item in items]``, possibly via a pool."""
        items = list(items)
        workers = self.workers_for(len(items))
        if workers <= 1 or len(items) <= 1 or not pool_available():
            return [function(item) for item in items]
        try:
            with ProcessPoolExecutor(max_workers=workers) as pool:
                return list(pool.map(function, items))
        except _POOL_ERRORS:
            return [function(item) for item in items]

    def run_tasks(self, tasks: Sequence[SimulationTask]) -> List:
        """Run simulation tasks; results in task order (task grain)."""
        return self.map(run_simulation_task, tasks)

    def run_channels(self, jobs: Sequence[Tuple[object, list, int]]) -> List:
        """Run per-channel jobs; simulators in job order (channel grain)."""
        return self.map(run_channel_job, jobs)
