"""Vectorized address kernels for the batch engine.

Every function here is a whole-chunk NumPy counterpart of a scalar helper
in :mod:`repro.geometry` / :meth:`ChannelSimulator._decompose`: one call
decomposes an entire :class:`~repro.trace.buffer.TraceBuffer` column into
block addresses, page numbers, segment offsets, set indices and run
boundaries.  The outputs are handed back as exact Python ints
(``ndarray.tolist()`` converts in C), so the batch engine's bookkeeping
arithmetic is bit-identical to the scalar loops — the property suite in
``tests/test_batch_properties.py`` pins each kernel element-wise against
the scalar functions.

NumPy shift/mask pitfall: an operand like ``2`` next to a ``uint64`` array
promotes the whole expression to ``float64`` and silently rounds addresses
above 2**53.  Every scalar operand below is therefore wrapped in
``np.uint64`` first.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.geometry import AddressLayout

__all__ = [
    "block_addresses",
    "page_numbers",
    "segment_offsets",
    "channel_blocks",
    "set_indices",
    "decompose_chunk",
    "dram_bank_rows",
    "page_run_lengths",
    "lru_victims",
]


def block_addresses(addresses: np.ndarray, layout: AddressLayout) -> np.ndarray:
    """``address >> block_bits`` for a whole column (uint64)."""
    return addresses >> np.uint64(layout.block_bits)


def page_numbers(addresses: np.ndarray, layout: AddressLayout) -> np.ndarray:
    """``address >> page_bits`` for a whole column (uint64)."""
    return addresses >> np.uint64(layout.page_bits)


def segment_offsets(addresses: np.ndarray, layout: AddressLayout) -> np.ndarray:
    """Per-record block offset inside the channel's segment (0..15)."""
    blocks = addresses >> np.uint64(layout.block_bits)
    return blocks & np.uint64(layout.blocks_per_segment - 1)


def channel_blocks(addresses: np.ndarray, layout: AddressLayout) -> np.ndarray:
    """Channel-local contiguous block index (see DemandAccess.channel_block)."""
    pages = addresses >> np.uint64(layout.page_bits)
    offsets = segment_offsets(addresses, layout)
    return pages * np.uint64(layout.blocks_per_segment) + offsets


def set_indices(block_addrs: np.ndarray, num_sets: int) -> np.ndarray:
    """``block_addr & (num_sets - 1)`` — the cache set of each record."""
    return block_addrs & np.uint64(num_sets - 1)


def decompose_chunk(
    addresses: np.ndarray, layout: AddressLayout
) -> Tuple[List[int], List[int], List[int], List[int]]:
    """One-shot decomposition of an address column into Python-int lists.

    Returns ``(block_addrs, pages, block_in_segment, channel_block)`` — the
    four fields of :class:`~repro.prefetch.base.DemandAccess` the scalar
    loop derives per record, computed for the whole chunk in four
    vectorized passes.  ``tolist()`` yields exact Python ints, so every
    downstream comparison/dict key matches the scalar path bit-for-bit.
    """
    blocks = addresses >> np.uint64(layout.block_bits)
    pages = addresses >> np.uint64(layout.page_bits)
    offsets = blocks & np.uint64(layout.blocks_per_segment - 1)
    chan_blocks = pages * np.uint64(layout.blocks_per_segment) + offsets
    return (blocks.tolist(), pages.tolist(), offsets.tolist(),
            chan_blocks.tolist())


def dram_bank_rows(
    addresses: np.ndarray,
    block_bits: int,
    column_bits: int,
    bank_mask: int,
    bank_bits: int,
    rank_mask: int,
    rank_bits: int,
    num_banks: int,
) -> Tuple[List[int], List[int]]:
    """Whole-chunk DRAM bank-index / row decode (see AddressMapping.decode).

    Returns ``(bank_index, row)`` Python-int lists where ``bank_index`` is
    the flat ``rank * num_banks + bank`` index into ``DRAMChannel.banks``
    — exactly what ``DRAMChannel.service_scalar`` derives per request.
    The batch engine precomputes both columns so the demand-miss path
    reads them instead of running the five-step scalar decode inline.
    """
    blocks = addresses >> np.uint64(block_bits)
    remainder = blocks >> np.uint64(column_bits)
    bank = remainder & np.uint64(bank_mask)
    remainder = remainder >> np.uint64(bank_bits)
    if rank_bits:
        bank = bank + (remainder & np.uint64(rank_mask)) * np.uint64(num_banks)
        rows = remainder >> np.uint64(rank_bits)
    else:
        rows = remainder
    return bank.tolist(), rows.tolist()


def page_run_lengths(pages: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Run-length encode consecutive equal page numbers.

    Returns ``(starts, lengths)``: ``starts[k]`` is the index of run ``k``'s
    first record and ``lengths[k]`` its record count; runs partition the
    chunk.  The batch engine uses this to size the ``observe_run``
    batching buffers before the loop starts.
    """
    n = len(pages)
    if n == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty
    boundaries = np.flatnonzero(pages[1:] != pages[:-1]) + 1
    starts = np.concatenate(([0], boundaries)).astype(np.int64)
    ends = np.concatenate((boundaries, [n])).astype(np.int64)
    return starts, ends - starts


def lru_victims(tag_matrix: np.ndarray, age_matrix: np.ndarray) -> np.ndarray:
    """Vectorized LRU victim selection for every set at once.

    Mirrors :meth:`repro.cache.replacement.lru.LRUPolicy.victim`: the first
    invalid way (tag < 0 in the matrix encoding) wins outright; otherwise
    the lowest-index way holding the strict minimum ``last_touch``.
    Returns one way index per set.  Used by the equivalence tests to pin
    the array state representation against the scalar policy; the batch
    engine itself only evicts at scalar fallback boundaries, where the
    per-set free lists give the same answer.
    """
    invalid = tag_matrix < 0
    has_invalid = invalid.any(axis=1)
    first_invalid = invalid.argmax(axis=1)
    oldest = age_matrix.argmin(axis=1)  # argmin takes the first minimum
    return np.where(has_invalid, first_invalid, oldest).astype(np.int64)
