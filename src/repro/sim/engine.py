"""The trace-driven simulation engine.

One :class:`ChannelSimulator` per DRAM channel, each owning its SC slice,
LPDDR4 channel, prefetcher instance and prefetch queue — exactly the
paper's per-channel organisation (Figure 1).  :class:`SystemSimulator`
splits the bus trace across channels and merges statistics.

Per demand access the channel simulator:

1. looks up the SC (hit / miss / MSHR-merge on an in-flight fill);
2. on a true miss, services a DRAM read (write misses fetch-for-ownership
   with the write posted off the critical path) and installs the fill with
   its data-ready time;
3. runs the prefetcher's learning phase (always) and issuing phase,
   pushes candidates through the prefetch queue, and services accepted
   prefetches at low cost in the DRAM model, installing prefetch fills
   tagged with their issuing sub-prefetcher for Figure-9 attribution.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Union

from repro.cache.cache import _PLAIN_HIT, _PLAIN_MISS, SetAssociativeCache
from repro.config import SimConfig
from repro.dram.channel import DRAMChannel
from repro.dram.request import MemRequest, RequestKind
from repro.errors import SimulationError
from repro.power.model import MemorySystemPower
from repro.power.prefetcher_power import PrefetcherActivity
from repro.prefetch.base import DemandAccess, Prefetcher
from repro.prefetch.queue import PrefetchQueue, QueueStats
from repro.sim.executor import ParallelExecutor, Parallelism
from repro.sim.metrics import MetricSet
from repro.trace.buffer import TraceBuffer, _DEVICE_BY_VALUE
from repro.trace.record import TraceRecord

#: Records accepted anywhere the engine takes a trace: the columnar form
#: or the legacy object-record list.
TraceLike = Union[TraceBuffer, Sequence[TraceRecord]]


class _FastDemandAccess:
    """Mutable, reused stand-in for :class:`DemandAccess` on the fast path.

    The columnar demand loop overwrites one instance per record instead of
    allocating a frozen dataclass 120k+ times per channel.  Safe because
    every prefetcher reads the scalar fields synchronously during
    ``observe``/``issue`` and none retains the object (audited; any new
    prefetcher that wants to keep state must copy the fields it needs,
    exactly as it must with the frozen object, which is also reused
    conceptually — one per ``step`` call).
    """

    __slots__ = ("block_addr", "page", "block_in_segment", "channel_block",
                 "time", "is_read", "device")


class ChannelSimulator:
    """SC slice + DRAM channel + prefetcher for one channel.

    ``engine_mode`` selects the execution backend:

    * ``"scalar"`` — the per-record loops over :class:`SetAssociativeCache`
      (the always-available oracle; supports every replacement policy).
    * ``"batch"`` — the vectorized chunk engine (:mod:`repro.sim.batch`)
      over :class:`~repro.cache.array_state.ArrayCache`; bit-identical to
      scalar (``tests/test_batch_oracle.py``) but LRU-only.
    * ``"auto"`` (default) — ``"batch"`` when the configured replacement
      policy is LRU, ``"scalar"`` otherwise.

    ``step()`` and object-record ``run()`` always use the scalar per-record
    path regardless of mode (:class:`~repro.cache.array_state.ArrayCache`
    implements the full scalar cache API); the mode only changes which
    loop :meth:`run_buffer` drives.
    """

    def __init__(self, channel: int, config: SimConfig,
                 prefetcher: Prefetcher,
                 engine_mode: str = "auto") -> None:
        if prefetcher.channel != channel:
            raise SimulationError(
                f"prefetcher built for channel {prefetcher.channel}, "
                f"simulator is channel {channel}"
            )
        if engine_mode not in ("auto", "scalar", "batch"):
            raise SimulationError(
                f"unknown engine_mode {engine_mode!r}; "
                "expected 'auto', 'scalar' or 'batch'")
        if engine_mode == "auto":
            # Batch needs LRU and an unpartitioned cache: the fused loops
            # inline the global free-list/min-touch victim pick, which a
            # tenant way partition would override per fill.
            engine_mode = ("batch"
                           if config.cache.replacement_policy == "lru"
                           and not config.cache.way_partitions
                           else "scalar")
        elif engine_mode == "batch" and config.cache.way_partitions:
            raise SimulationError(
                "engine_mode='batch' does not support way_partitions; "
                "use 'auto' or 'scalar'")
        self.engine_mode = engine_mode
        self.channel = channel
        self.config = config
        self.layout = config.layout
        if engine_mode == "batch":
            from repro.cache.array_state import ArrayCache
            self.cache = ArrayCache(config.cache)
        else:
            self.cache = SetAssociativeCache(config.cache)
        self.dram = DRAMChannel(config.dram, block_size=config.cache.block_size)
        self.prefetcher = prefetcher
        self.queue = PrefetchQueue(config.queue)
        self.metrics = MetricSet()
        #: Observability hook (a TimelineCollector, see repro.obs) or None.
        #: Checked once per chunk, never per record — the disabled state
        #: costs one attribute load per run()/run_buffer() call.
        self.obs = None
        #: Lineage hook (a LineageCollector, see repro.obs.lineage) or
        #: None.  All engine-side hook sites sit on rare branches
        #: (prefetch-served access, prefetch service, eviction of a
        #: prefetched block), so the common per-record path is untouched;
        #: attaching also routes run_buffer() to the scalar loop (the
        #: batch loop's fused fill path elides per-candidate accounting).
        self.lineage = None
        self._warmup_until = 0
        self._records_seen = 0
        self._last_time = 0
        self._blocks_per_segment = self.layout.blocks_per_segment

    def set_warmup(self, warmup_records: int, records_seen_hint: int = 0) -> None:
        """Metrics are suppressed until ``warmup_records`` accesses were seen.

        Args:
            warmup_records: accesses (counted from the stream's start) whose
                metrics are suppressed.
            records_seen_hint: how many accesses this simulator has already
                stepped through — lets a caller resume a partially driven
                channel (e.g. after state was shipped across a process
                boundary) without restarting the warmup window.
        """
        self._warmup_until = warmup_records
        self._records_seen = records_seen_hint

    # ------------------------------------------------------------------
    def _decompose(self, record: TraceRecord) -> DemandAccess:
        layout = self.layout
        block_addr = record.address >> layout.block_bits
        page = record.address >> layout.page_bits
        block_in_segment = block_addr & (self._blocks_per_segment - 1)
        return DemandAccess(
            block_addr=block_addr,
            page=page,
            block_in_segment=block_in_segment,
            channel_block=page * self._blocks_per_segment + block_in_segment,
            time=record.arrival_time,
            is_read=record.is_read,
            device=record.device,
        )

    def step(self, record: TraceRecord,
             record_metrics: Optional[bool] = None) -> int:
        """Simulate one demand access; returns its observed latency.

        ``record_metrics=None`` (the default) consults the warmup state
        configured by :meth:`set_warmup`; an explicit bool overrides it.
        """
        if record_metrics is None:
            record_metrics = self._records_seen >= self._warmup_until
        self._records_seen += 1
        now = record.arrival_time
        self._last_time = max(self._last_time, now)
        access = self._decompose(record)
        result = self.cache.access(access.block_addr, now,
                                   is_write=not access.is_read)

        went_dram = False
        if result.hit:
            latency = self.config.sc_hit_latency
        elif result.delayed:
            # Data already in flight (MSHR merge or late prefetch).
            latency = self.config.sc_hit_latency + result.wait_cycles
        else:
            went_dram = True
            completion = self.dram.service(MemRequest(
                block_addr=access.block_addr,
                arrival_time=now,
                kind=RequestKind.DEMAND_READ,
            ))
            eviction = self.cache.fill(
                access.block_addr, now, ready_time=completion,
                dirty=not access.is_read,
                requester=access.device.value,
            )
            self._handle_eviction(eviction, now)
            if access.is_read:
                latency = self.config.sc_hit_latency + (completion - now)
            else:
                # Posted write: the requester does not wait for the fetch.
                latency = self.config.sc_hit_latency

        if record_metrics:
            self.metrics.record(latency, access.is_read,
                                device=access.device.name,
                                hit=result.hit,
                                useful=result.prefetch_source is not None,
                                dram=went_dram)

        if result.prefetch_source is not None:
            self.prefetcher.notify_useful()
            if self.lineage is not None:
                self.lineage.note_used(access.block_addr,
                                       result.prefetch_source,
                                       result.late_prefetch, now)

        # Learning phase: always on, sees the complete stream (Section 2).
        self.prefetcher.observe(access)
        # Issuing phase.  A hit that is the first demand touch of a
        # prefetched block is the classic secondary trigger.
        prefetched_hit = result.hit and result.prefetch_source is not None
        candidates = self.prefetcher.issue(access, result.hit, prefetched_hit)
        if candidates:
            accepted = self.queue.push(candidates)
            if accepted:
                self._service_prefetches(now, requester=access.device.value)
        return latency

    def _service_prefetches(self, now: int,
                            requester: Optional[int] = None) -> None:
        # Prefetch fills land in the triggering tenant's partition (when
        # partitions are configured): the prefetcher acted on that
        # device's demand stream, so the speculative block is its budget.
        lineage = self.lineage
        if not self.config.prefetch_fill_sc:
            if lineage is None:
                self.queue.pop_all()
            else:
                for candidate in self.queue.pop_all():
                    lineage.note_unfilled(candidate)
            return
        for candidate in self.queue.pop_all():
            if self.cache.contains(candidate.block_addr):
                if lineage is not None:
                    lineage.note_skip_resident(candidate)
                continue
            completion = self.dram.service_scalar(
                candidate.block_addr, now, RequestKind.PREFETCH,
                candidate.source)
            eviction = self.cache.fill(
                candidate.block_addr, now, ready_time=completion,
                prefetched=True, source=candidate.source,
                requester=requester,
            )
            if lineage is not None:
                lineage.note_fill(candidate, requester, now)
            self._handle_eviction(eviction, now)

    def _handle_eviction(self, eviction, now: int) -> None:
        if eviction is None:
            return
        if eviction.prefetched:
            self.prefetcher.notify_unused()
            if self.lineage is not None:
                self.lineage.note_evicted(eviction, now)
        if eviction.dirty:
            self.dram.service_scalar(eviction.tag, now, RequestKind.WRITEBACK)

    def run(self, records: Union[TraceBuffer, Iterable[TraceRecord]],
            warmup_records: int = 0) -> None:
        """Drive a full per-channel record stream through the simulator.

        A :class:`TraceBuffer` stream goes through the columnar fast loop
        (:meth:`run_buffer`); an object-record iterable goes through
        :meth:`step` per record.  Both produce bit-identical state
        (``tests/test_fastpath_equivalence.py``).
        """
        if self.obs is not None:
            self._run_observed(records, warmup_records)
            return
        if isinstance(records, TraceBuffer):
            self.run_buffer(records, warmup_records=warmup_records)
            return
        self.set_warmup(warmup_records, records_seen_hint=self._records_seen)
        for record in records:
            self.step(record)
        self.finish()

    def _run_observed(self, records, warmup_records: int) -> None:
        """Observed run path: the stream sliced at epoch boundaries.

        Each epoch-aligned sub-chunk goes through the *unmodified* plain
        path (``obs`` temporarily detached), and the attached collector
        snapshots counter deltas at every boundary.  Correctness rides
        on the chunking contract :meth:`feed` already guarantees — any
        chunking of a stream is bit-identical to the one-shot run — so
        enabling collection never changes simulated state or metrics.
        """
        obs = self.obs
        obs.begin(self)
        epoch_records = obs.epoch_records
        if not hasattr(records, "__getitem__"):
            records = list(records)
        total = len(records)
        self.obs = None
        try:
            if total == 0:
                self.run(records, warmup_records=warmup_records)
            position = 0
            while position < total:
                take = epoch_records - (self._records_seen % epoch_records)
                end = min(total, position + take)
                self.run(records[position:end],
                         warmup_records=warmup_records)
                if self._records_seen % epoch_records == 0:
                    obs.close_epoch(self)
                position = end
        finally:
            self.obs = obs

    def run_buffer(self, buffer: TraceBuffer,
                   warmup_records: int = 0) -> None:
        """Columnar fast path: :meth:`run` over a :class:`TraceBuffer`.

        Semantically identical to calling :meth:`step` per record, but
        iterates the columns directly — no ``TraceRecord``/``DemandAccess``
        allocation per access — with every attribute and config lookup
        hoisted out of the loop.  Keep this in lockstep with :meth:`step`.
        """
        if self.obs is not None:
            self._run_observed(buffer, warmup_records)
            return
        if self.engine_mode == "batch" and self.lineage is None:
            # Lineage attached forces the scalar loop: the fused batch
            # loops elide the per-candidate queue/fill path lineage
            # observes.  Bit-identical by the batch-oracle contract.
            from repro.sim.batch import run_buffer_batch
            if run_buffer_batch(self, buffer, warmup_records=warmup_records):
                return
            # Declined chunk (e.g. passive run over live prefetched blocks
            # from a restored checkpoint): fall through to the scalar loop
            # below — ArrayCache is API-compatible with the scalar cache.
        self.set_warmup(warmup_records, records_seen_hint=self._records_seen)
        addresses, access_types, device_values, arrival_times = (
            buffer.columns_as_lists())

        # Hoisted state and bound methods (each saves one or more
        # attribute lookups per record; together ~2x on the demand loop).
        records_seen = self._records_seen
        warmup_until = self._warmup_until
        last_time = self._last_time
        layout = self.layout
        block_bits = layout.block_bits
        page_bits = layout.page_bits
        blocks_per_segment = self._blocks_per_segment
        segment_mask = blocks_per_segment - 1
        sc_hit_latency = self.config.sc_hit_latency
        cache_access = self.cache.access
        cache_fill = self.cache.fill
        dram_service = self.dram.service_scalar
        metrics_record = self.metrics.record
        prefetcher = self.prefetcher
        observe = prefetcher.observe
        issue = prefetcher.issue
        notify_useful = prefetcher.notify_useful
        queue_push = self.queue.push
        handle_eviction = self._handle_eviction
        service_prefetches = self._service_prefetches
        lineage = self.lineage
        demand_read = RequestKind.DEMAND_READ
        devices = [_DEVICE_BY_VALUE[value] for value in range(
            max(_DEVICE_BY_VALUE) + 1)]
        device_names = [device.name for device in devices]
        access = _FastDemandAccess()

        if prefetcher.passive:
            # Demand-only loop: a passive prefetcher (observe/issue are
            # pure no-ops) never fills, so prefetch_source is always None
            # and the access decomposition beyond the block address is
            # never consumed — skip all of it.  State and metrics are
            # bit-identical to the full loop below.
            for address, access_type, device_value, now in zip(
                    addresses, access_types, device_values, arrival_times):
                record_metrics = records_seen >= warmup_until
                records_seen += 1
                if now > last_time:
                    last_time = now
                is_read = access_type == 0  # AccessType.READ
                block_addr = address >> block_bits
                result = cache_access(block_addr, now, is_write=not is_read)
                if result is _PLAIN_HIT:
                    latency = sc_hit_latency
                    hit_f = True
                    useful_f = False
                    dram_f = False
                elif result is _PLAIN_MISS:
                    completion = dram_service(block_addr, now, demand_read)
                    eviction = cache_fill(block_addr, now, completion,
                                          False, None, not is_read,
                                          device_value)
                    if eviction is not None:
                        handle_eviction(eviction, now)
                    if is_read:
                        latency = sc_hit_latency + (completion - now)
                    else:
                        latency = sc_hit_latency
                    hit_f = False
                    useful_f = False
                    dram_f = True
                else:
                    # Delayed hit (MSHR merge of an in-flight demand fill)
                    # or a prefetched block restored from a checkpoint.
                    latency = sc_hit_latency + result.wait_cycles
                    hit_f = result.hit
                    useful_f = result.prefetch_source is not None
                    dram_f = False
                    if useful_f and lineage is not None:
                        lineage.note_used(block_addr,
                                          result.prefetch_source,
                                          result.late_prefetch, now)
                if record_metrics:
                    metrics_record(latency, is_read,
                                   device=device_names[device_value],
                                   hit=hit_f, useful=useful_f, dram=dram_f)
            self._records_seen = records_seen
            self._last_time = last_time
            self.finish()
            return

        for address, access_type, device_value, now in zip(
                addresses, access_types, device_values, arrival_times):
            record_metrics = records_seen >= warmup_until
            records_seen += 1
            if now > last_time:
                last_time = now
            is_read = access_type == 0  # AccessType.READ
            block_addr = address >> block_bits
            page = address >> page_bits
            block_in_segment = block_addr & segment_mask
            access.block_addr = block_addr
            access.page = page
            access.block_in_segment = block_in_segment
            access.channel_block = page * blocks_per_segment + block_in_segment
            access.time = now
            access.is_read = is_read
            access.device = devices[device_value]

            result = cache_access(block_addr, now, is_write=not is_read)
            # The cache hands back the shared singleton for the two
            # overwhelmingly common outcomes; an identity check skips the
            # dataclass field loads on those.
            if result is _PLAIN_HIT:
                hit = True
                prefetch_source = None
                went_dram = False
                latency = sc_hit_latency
            elif result is _PLAIN_MISS:
                hit = False
                prefetch_source = None
                went_dram = True
                completion = dram_service(block_addr, now, demand_read)
                eviction = cache_fill(block_addr, now, completion,
                                      False, None, not is_read,
                                      device_value)
                if eviction is not None:
                    handle_eviction(eviction, now)
                if is_read:
                    latency = sc_hit_latency + (completion - now)
                else:
                    latency = sc_hit_latency
            else:
                # Delayed hits and prefetch-served accesses: the general
                # decode, mirroring step().
                hit = result.hit
                prefetch_source = result.prefetch_source
                went_dram = False
                if hit:
                    latency = sc_hit_latency
                elif result.delayed:
                    latency = sc_hit_latency + result.wait_cycles
                else:
                    went_dram = True
                    completion = dram_service(block_addr, now, demand_read)
                    eviction = cache_fill(block_addr, now, completion,
                                          False, None, not is_read,
                                          device_value)
                    if eviction is not None:
                        handle_eviction(eviction, now)
                    if is_read:
                        latency = sc_hit_latency + (completion - now)
                    else:
                        latency = sc_hit_latency

            if record_metrics:
                metrics_record(latency, is_read,
                               device=device_names[device_value],
                               hit=hit,
                               useful=prefetch_source is not None,
                               dram=went_dram)

            if prefetch_source is not None:
                notify_useful()
                if lineage is not None:
                    lineage.note_used(block_addr, prefetch_source,
                                      result.late_prefetch, now)

            observe(access)
            candidates = issue(access, hit, hit and prefetch_source is not None)
            if candidates:
                if queue_push(candidates):
                    service_prefetches(now, device_value)

        self._records_seen = records_seen
        self._last_time = last_time
        self.finish()

    def finish(self) -> None:
        self.dram.finish(self._last_time)

    # ------------------------------------------------------------------
    # Incremental feeding + checkpoint support
    # ------------------------------------------------------------------
    def feed(self, records: Union[TraceBuffer, Iterable[TraceRecord]]) -> None:
        """Drive one chunk of this channel's stream, preserving warmup.

        Unlike :meth:`run` (which *sets* the warmup window), ``feed``
        keeps the window configured by :meth:`set_warmup` and resumes the
        access count where the previous chunk stopped — so any sequence
        of ``feed`` calls over consecutive chunks is bit-identical to one
        :meth:`run` over the concatenated stream (``finish`` recomputes
        trailing-edge accounting from current state, so intermediate
        calls are harmless).
        """
        self.run(records, warmup_records=self._warmup_until)

    def state_dict(self) -> dict:
        """Snapshot everything :meth:`feed` mutates, component by component.

        The snapshot is deep: no live references into the simulator
        escape, so the source may keep running after the checkpoint.
        """
        state = {
            "records_seen": self._records_seen,
            "warmup_until": self._warmup_until,
            "last_time": self._last_time,
            "cache": self.cache.state_dict(),
            "dram": self.dram.state_dict(),
            "queue": self.queue.state_dict(),
            "metrics": self.metrics.state_dict(),
            "prefetcher": self.prefetcher.state_dict(),
        }
        if self.obs is not None:
            state["obs"] = self.obs.state_dict()
        if self.lineage is not None:
            state["lineage"] = self.lineage.state_dict()
        return state

    def load_state(self, state: dict) -> None:
        """Restore a :meth:`state_dict` snapshot.

        The target must have been built with the same :class:`SimConfig`
        and prefetcher factory as the snapshot's source; subsequent
        ``feed`` calls then continue bit-identically to the original run.
        """
        self._records_seen = state["records_seen"]
        self._warmup_until = state["warmup_until"]
        self._last_time = state["last_time"]
        self.cache.load_state(state["cache"])
        self.dram.load_state(state["dram"])
        self.queue.load_state(state["queue"])
        self.metrics.load_state(state["metrics"])
        self.prefetcher.load_state(state["prefetcher"])
        obs_state = state.get("obs")
        if obs_state is not None and self.obs is not None:
            self.obs.load_state(obs_state)
        if self.obs is not None:
            # Restoring replaced nested sub-prefetcher objects; point the
            # chain back at the live tracer so no events land in orphans.
            self.obs.rewire(self)
        if self.lineage is not None:
            lineage_state = state.get("lineage")
            if lineage_state is not None:
                self.lineage.load_state(lineage_state)
            # Same rewire concern as obs: load_state replaced nested
            # sub-prefetcher objects, whose deep-copied lineage attrs now
            # point at orphan collector copies.
            from repro.obs.lineage import wire_lineage
            wire_lineage(self.prefetcher, self.lineage)


def channel_warmup_counts(records: TraceLike, config: SimConfig) -> List[int]:
    """Per-channel warmup record counts an offline run would use.

    :meth:`SystemSimulator.run` suppresses metrics for the first
    ``len(channel_stream) * warmup_fraction`` accesses of each channel.
    A streaming caller that wants bit-identical metrics must fix those
    counts *before* the first chunk (warmup suppression cannot be applied
    retroactively); this helper computes them from the full trace.
    """
    buffer = (records if isinstance(records, TraceBuffer)
              else TraceBuffer.from_records(records))
    return [int(len(stream) * config.warmup_fraction)
            for stream in buffer.split_channels(config.layout)]


class SystemSimulator:
    """All four channels: splits the bus trace and merges results."""

    def __init__(self, config: SimConfig, prefetcher_factory,
                 engine_mode: str = "auto") -> None:
        """Args:
            prefetcher_factory: callable ``(layout, channel) -> Prefetcher``.
            engine_mode: execution backend for every channel — ``"scalar"``,
                ``"batch"`` or ``"auto"`` (see :class:`ChannelSimulator`).
        """
        self.config = config
        self.channels: List[ChannelSimulator] = [
            ChannelSimulator(channel, config,
                             prefetcher_factory(config.layout, channel),
                             engine_mode=engine_mode)
            for channel in range(config.layout.num_channels)
        ]
        self.engine_mode = self.channels[0].engine_mode if self.channels else engine_mode
        #: Request-tracing hook (a SpanRecorder, see repro.obs.trace_spans)
        #: or None.  Checked once per run()/feed() call — per chunk, never
        #: per record — so disabled tracing costs one attribute load and
        #: one branch.  Spans read only the wall clock; simulated state and
        #: RunMetrics are bit-identical with tracing on or off.
        self.spans = None

    def run(self, records: TraceLike,
            warmup_fraction: Optional[float] = None,
            parallelism: "Parallelism" = "serial",
            columnar: bool = True) -> None:
        """Simulate the whole trace.

        Records are routed per channel in arrival order; metrics ignore the
        warmup prefix of each channel's stream.  ``records`` may be a
        :class:`TraceBuffer` (canonical) or an object-record list; with
        ``columnar`` (the default) a record list is packed into a buffer,
        the routing loop becomes one vectorized
        :meth:`TraceBuffer.split_channels` pass, and each channel runs the
        columnar fast loop.  ``columnar=False`` forces the legacy
        per-record-object path — same results, kept for the throughput
        benchmark and the fast-path equivalence suite.

        ``parallelism`` selects the channel-grain execution mode
        (``"serial"``, ``"auto"`` or a worker count): channel simulators
        share no mutable state once the trace is split, so each stream may
        run in its own process and the driven simulator shipped back — as
        compact column arrays, not pickled record objects, on the columnar
        path.  Results are bit-identical to serial execution (see
        ``docs/parallelism.md``); the serial path is used deterministically
        whenever one worker resolves or no pool is available.
        """
        spans = self.spans
        if spans is None or not spans.enabled:
            return self._run_impl(records, warmup_fraction, parallelism,
                                  columnar)
        from repro.obs.trace_spans import SPAN_ENGINE_RUN
        with spans.span(SPAN_ENGINE_RUN):
            return self._run_impl(records, warmup_fraction, parallelism,
                                  columnar)

    def _run_impl(self, records: TraceLike,
                  warmup_fraction: Optional[float],
                  parallelism: "Parallelism", columnar: bool) -> None:
        if warmup_fraction is None:
            warmup_fraction = self.config.warmup_fraction
        layout = self.config.layout
        if columnar:
            buffer = (records if isinstance(records, TraceBuffer)
                      else TraceBuffer.from_records(records))
            streams: List[TraceLike] = buffer.split_channels(layout)
        else:
            record_list = (records.to_records()
                           if isinstance(records, TraceBuffer) else records)
            object_streams: List[List[TraceRecord]] = [[] for _ in self.channels]
            for record in record_list:
                object_streams[layout.channel(record.address)].append(record)
            streams = object_streams
        jobs = [
            (channel_sim, stream, int(len(stream) * warmup_fraction))
            for channel_sim, stream in zip(self.channels, streams)
        ]
        executor = ParallelExecutor(parallelism)
        if executor.workers_for(len(jobs)) > 1:
            # Workers mutate pickled copies; adopt them as the live channels.
            self.channels = executor.run_channels(jobs)
        else:
            for channel_sim, stream, warmup in jobs:
                channel_sim.run(stream, warmup_records=warmup)

    # ------------------------------------------------------------------
    # Incremental feeding + checkpoint support
    # ------------------------------------------------------------------
    def set_stream_warmup(self, warmup_records: Sequence[int]) -> None:
        """Fix per-channel warmup windows for a chunked (streaming) run.

        Call once before the first :meth:`feed` with the counts an offline
        :meth:`run` would derive (see :func:`channel_warmup_counts`); a
        session fed in arbitrary chunks then reports metrics bit-identical
        to the one-shot run.  Without this, streaming sessions default to
        no warmup suppression.
        """
        if len(warmup_records) != len(self.channels):
            raise SimulationError(
                f"expected {len(self.channels)} warmup counts, "
                f"got {len(warmup_records)}")
        for channel_sim, warmup in zip(self.channels, warmup_records):
            channel_sim.set_warmup(int(warmup),
                                   records_seen_hint=channel_sim._records_seen)

    def feed(self, records: TraceLike,
             parallelism: "Parallelism" = "serial") -> int:
        """Ingest one chunk of the bus trace; returns the records consumed.

        The chunk is routed per channel and driven through each channel's
        :meth:`ChannelSimulator.feed`, preserving the warmup windows set
        by :meth:`set_stream_warmup` and each channel's position in its
        stream.  Any chunking of a trace — including empty chunks — yields
        final state bit-identical to a single :meth:`run` over the whole
        trace.  ``parallelism`` fans the per-channel work out through the
        same executor path :meth:`run` uses.
        """
        spans = self.spans
        if spans is None or not spans.enabled:
            return self._feed_impl(records, parallelism)
        from repro.obs.trace_spans import SPAN_ENGINE_FEED
        open_span = spans.begin(SPAN_ENGINE_FEED)
        try:
            consumed = self._feed_impl(records, parallelism)
        except BaseException:
            spans.end(open_span, error=True)
            raise
        spans.end(open_span, records=consumed)
        return consumed

    def _feed_impl(self, records: TraceLike,
                   parallelism: "Parallelism") -> int:
        buffer = (records if isinstance(records, TraceBuffer)
                  else TraceBuffer.from_records(records))
        streams = buffer.split_channels(self.config.layout)
        jobs = [
            (channel_sim, stream, channel_sim._warmup_until)
            for channel_sim, stream in zip(self.channels, streams)
        ]
        executor = ParallelExecutor(parallelism)
        if executor.workers_for(len(jobs)) > 1:
            self.channels = executor.run_channels(jobs)
        else:
            for channel_sim, stream, warmup in jobs:
                channel_sim.run(stream, warmup_records=warmup)
        return len(buffer)

    def records_fed(self) -> int:
        """Total accesses stepped through across all channels so far."""
        return sum(channel_sim._records_seen for channel_sim in self.channels)

    def state_dict(self) -> dict:
        """Deep snapshot of all channels (see docs/service.md)."""
        return {"channels": [channel_sim.state_dict()
                             for channel_sim in self.channels]}

    def load_state(self, state: dict) -> None:
        """Restore a snapshot onto a simulator built from the same config."""
        channels = state["channels"]
        if len(channels) != len(self.channels):
            raise SimulationError(
                f"checkpoint channel count mismatch: expected "
                f"{len(self.channels)}, got {len(channels)}")
        for channel_sim, saved in zip(self.channels, channels):
            channel_sim.load_state(saved)

    # ------------------------------------------------------------------
    # Aggregation
    # ------------------------------------------------------------------
    def merged_metrics(self) -> MetricSet:
        merged = MetricSet()
        for channel_sim in self.channels:
            merged.merge(channel_sim.metrics)
        return merged

    def merged_cache_stats(self):
        from repro.cache.cache import CacheStats

        merged = CacheStats()
        for channel_sim in self.channels:
            merged.merge(channel_sim.cache.stats)
        return merged

    def merged_queue_stats(self) -> QueueStats:
        """Prefetch-queue accept/drop accounting summed over channels."""
        merged = QueueStats()
        for channel_sim in self.channels:
            merged.merge(channel_sim.queue.stats)
        return merged

    def merged_dram_stats(self):
        from repro.dram.stats import DRAMStats

        merged = DRAMStats()
        for channel_sim in self.channels:
            merged.merge(channel_sim.dram.stats)
        return merged

    def power_report(self):
        """Total memory-system power over all channels."""
        power_model = MemorySystemPower(self.config.power,
                                        self.config.dram.timing)
        total_prefetcher_bits = 0
        reads = writes = 0
        for channel_sim in self.channels:
            activity = channel_sim.prefetcher.activity
            reads += activity.table_reads
            writes += activity.table_writes
            total_prefetcher_bits += channel_sim.prefetcher.storage_bits()
        return power_model.report(
            self.merged_dram_stats(),
            PrefetcherActivity(
                table_reads=reads,
                table_writes=writes,
                storage_bits=total_prefetcher_bits,
            ),
        )

    def total_prefetch_issued(self) -> int:
        return sum(channel.prefetcher.issued_candidates for channel in self.channels)

    def storage_bits(self) -> int:
        return sum(channel.prefetcher.storage_bits() for channel in self.channels)
