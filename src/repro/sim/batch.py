"""Fused batch loops over :class:`~repro.cache.array_state.ArrayCache` state.

This is the batch engine the oracle harness (``tests/test_batch_oracle.py``)
pins against the scalar loops: :func:`run_buffer_batch` is a drop-in body
for :meth:`ChannelSimulator.run_buffer` that produces *bit-identical* final
state — cache contents and stats, DRAM timing state and stats, prefetcher
tables and counters, metrics aggregates, queue state — while running
several times faster.  Where the speed comes from:

* **Vectorized decomposition** — block address, page number, segment
  offset and channel-block index for the whole chunk come from
  :mod:`repro.sim.kernels` in four NumPy passes (``tolist()`` hands back
  exact Python ints); the demand path additionally precomputes the DRAM
  bank-index/row columns (:func:`repro.sim.kernels.dram_bank_rows`), so a
  miss never runs the five-step scalar address decode.
* **Inlined cache + DRAM operations** — the demand-only loop
  (:func:`_run_passive`) fuses ``ArrayCache.access``/``fill``,
  ``DRAMChannel.service_scalar`` + ``Bank.cas_time`` and the metric
  recurrences into one loop body over Python locals: zero function calls
  per record.  The active loop (:func:`_run_active`) keeps the prefetcher
  calls but routes DRAM through one flattened closure
  (:func:`_dram_closures`).  The semantics mirror the scalar methods
  statement for statement — keep them in lockstep.
* **Derived counters** — monotone counters (hits/misses/fills/writebacks,
  metric read/write counts, DRAM request counts, data-bus cycles) are not
  incremented per record; they are reconstructed exactly at sync time from
  the tick delta, the deferred latency lists and the delayed-hit count.
* **Deferred exact Welford** — DRAM demand-read / prefetch latencies are
  appended to plain lists and folded into the ``RunningStats`` aggregates
  in one post-pass (:func:`_welford_into`): identical recurrence, identical
  order, so the floats match bit for bit, but the loop body stays short.
  Min/max fold via C-level ``min()``/``max()`` (order-free on ints).
  Metric-side Welford streams stay inline (their order interleaves reads
  and writes), but constant-latency hits skip the min/max compares and the
  histogram dict probe — the skipped contributions are merged once at sync
  (``min``/``max``/bucket counts are order-free, unlike the mean/M2
  recurrence, which still runs per record).
* **Run-length batching** — when the prefetcher declares
  ``hit_trigger_noop()`` and ``supports_observe_run()`` (SLP, TLP,
  Planaria's decoupled/parallel coordinators, and throttle wrappers around
  them), consecutive same-page *hit* accesses defer their learning-phase
  calls into one ``observe_run`` per run and skip the issuing phase
  entirely, compensating the skipped hit triggers in bulk via
  ``skip_hit_triggers``.  Runs break at every miss/delayed access (the
  trigger's ``observe`` folds into the flush, preserving the exact
  scalar observe→issue order), at page changes, and at chunk end.

Scalar fallbacks happen exactly at the boundaries the tentpole calls out:
prefetch-queue activity, throttle state flips
(``notify_useful``/``notify_unused`` fire immediately, never deferred) and
epoch closes (observability slices chunks before this function runs, so
every epoch boundary is also a batch boundary).  Two conditions fall all
the way back to the scalar loop (:func:`run_buffer_batch` returns False):
a passive run over a cache still holding live prefetched blocks (a
restored checkpoint from an active run — the fused demand loop elides the
prefetch-consumption bookkeeping), and that path only; everything else
runs here.

Preconditions the batch loops *assume* instead of checking per record:

* arrival times are non-decreasing (the engine contract).  The scalar
  ``service_scalar`` raises ``SimulationError`` for far-out-of-order
  requests; the batch loops drop that guard — a violating trace must be
  run under ``engine_mode="scalar"`` to see the diagnostic.

Reordering-soundness notes (why deferral is exact):

* ``observe`` never reads engine state, and the engine never reads
  prefetcher state between two accesses of a hit run (issue is skipped on
  hits under ``hit_trigger_noop``), so deferring a run's observes to its
  flush point replays the same mutation sequence.
* ``notify_useful``/``notify_unused`` may now fire *before* deferred
  observes that preceded them in scalar order.  They touch only the
  throttle wrapper's outcome window, which ``observe`` does not read, and
  ``observe`` only stamps ``_last_time``, which the outcome path reads
  only for tracer events — and ``supports_observe_run`` is False whenever
  a tracer is enabled.  The two mutation sets commute.
"""

from __future__ import annotations

import gc

from repro.sim import kernels
from repro.trace.buffer import _DEVICE_BY_VALUE
from repro.utils.statistics import RunningStats

#: Request-kind codes used inside the batch loop (no enum identity checks
#: on the hot path).  Demand write misses fetch-for-ownership as reads,
#: exactly like the scalar engine, so only three kinds ever reach DRAM.
_READ = 0
_PREFETCH = 1
_WRITEBACK = 2


def _welford_into(values, stats) -> None:
    """Fold a latency list into a :class:`RunningStats`, bit-identically.

    Replays ``stats.add(v)`` for each value in order — the same mean/M2
    recurrence, so deferring the samples to a post-pass cannot change a
    single bit.  Min/max use C-level ``min()``/``max()`` instead: on the
    integer latencies these are order-free, hence exact.
    """
    if not values:
        return
    count = stats.count
    mean = stats._mean
    m2 = stats._m2
    for latency in values:
        count += 1
        delta = latency - mean
        mean += delta / count
        m2 += delta * (latency - mean)
    stats.count = count
    stats._mean = mean
    stats._m2 = m2
    low = min(values)
    if stats.min is None or low < stats.min:
        stats.min = low
    high = max(values)
    if stats.max is None or high > stats.max:
        stats.max = high


def _dram_closures(dram, rd_lats, pf_lats, wb_cell):
    """Flatten one :class:`DRAMChannel` into a (service, sync) closure pair.

    ``service(block_addr, arrival_time, kind, source)`` replays
    ``DRAMChannel.service_scalar`` (including the inlined
    ``Bank.cas_time``) against local state: channel scalars live in
    closure cells, per-bank state in flat parallel lists, and the
    tFAW/outstanding deques are mutated in place.  Latency bookkeeping is
    deferred: demand-read / prefetch latencies append to the caller's
    ``rd_lats`` / ``pf_lats`` lists and write-backs bump ``wb_cell[0]`` —
    the caller derives the request counters, data-bus cycles and latency
    aggregates from those at chunk end (see the finally blocks in
    :func:`_run_active` / :func:`_run_passive`).

    ``sync()`` writes the timing state back onto the channel, its banks
    and the bank-sum row statistics — call it exactly once, when the
    chunk ends (or unwinds).  Keep the body in lockstep with
    ``service_scalar`` / ``Bank.cas_time``; the oracle suite compares
    ``DRAMChannel.state_dict`` snapshots after every run, so any drift is
    loud.
    """
    timing = dram.timing
    tREFI = dram._tREFI
    tRFC = timing.tRFC
    tWTR = dram._tWTR
    tRRD = dram._tRRD
    tFAW = dram._tFAW
    tCL = dram._tCL
    tCWL = dram._tCWL
    tWR = dram._tWR
    tRCD = timing.tRCD
    tRAS = timing.tRAS
    tRP = timing.tRP
    tCCD = timing.tCCD
    tRTP = timing.tRTP
    burst = dram._burst_cycles
    column_bits = dram._column_bits
    bank_mask = dram._bank_mask
    bank_bits = dram._bank_bits
    rank_mask = dram._rank_mask
    rank_bits = dram._rank_bits
    num_banks = dram._num_banks
    refresh_enabled = dram._refresh_enabled
    queue_depth = dram._queue_depth
    prefetch_defer = dram._prefetch_defer
    writeback_defer = dram._writeback_defer
    fcfs = dram._fcfs
    faw_window = dram._faw_window

    banks = dram.banks
    total_banks = len(banks)
    auto_precharge = banks[0].auto_precharge
    b_open = [bank.open_row for bank in banks]
    b_act = [bank.activate_time for bank in banks]
    b_next_cas = [bank.next_cas_time for bank in banks]
    b_ready = [bank.ready_time for bank in banks]
    b_hits = [bank.row_hits for bank in banks]
    b_misses = [bank.row_misses for bank in banks]
    b_conflicts = [bank.row_conflicts for bank in banks]
    b_activates = [bank.activates for bank in banks]
    # Channel row/activate stats are derived at sync from the bank sums, so
    # the per-request branches only touch the flat lists.
    bh0 = sum(b_hits)
    bm0 = sum(b_misses)
    bc0 = sum(b_conflicts)
    ba0 = sum(b_activates)

    stats = dram.stats
    s_refreshes = stats.refreshes
    pf_by_source = stats.prefetch_reads_by_source
    rd_append = rd_lats.append
    pf_append = pf_lats.append

    bus_free = dram._bus_free_time
    last_write_end = dram._last_write_end
    recent = dram._recent_activates        # deque, mutated in place
    last_act = dram._last_activate_time
    next_refresh = dram._next_refresh
    d_last_time = dram._last_time
    last_cas = dram._last_cas_time
    outstanding = dram._outstanding        # ascending deque, in place
    queue_stalls = dram.stats_queue_stalls

    def service(block_addr, arrival_time, kind, source):
        nonlocal bus_free, last_write_end, last_act, next_refresh
        nonlocal d_last_time, last_cas, queue_stalls, s_refreshes

        now = arrival_time
        if now > d_last_time:
            d_last_time = now
        if refresh_enabled and now >= next_refresh:
            while now >= next_refresh:
                refresh_end = next_refresh + tRFC
                for index in range(total_banks):
                    if refresh_end > b_ready[index]:
                        b_ready[index] = refresh_end
                    b_open[index] = None
                s_refreshes += 1
                next_refresh += tREFI

        while outstanding and outstanding[0] <= now:
            outstanding.popleft()
        if len(outstanding) >= queue_depth:
            now = outstanding.popleft()
            queue_stalls += 1

        remainder = block_addr >> column_bits
        bank_index = remainder & bank_mask
        remainder >>= bank_bits
        if rank_bits:
            row = remainder >> rank_bits
            bank_index += (remainder & rank_mask) * num_banks
        else:
            row = remainder

        is_write = kind == _WRITEBACK
        earliest = now
        if kind == _PREFETCH:
            earliest += prefetch_defer
        elif is_write:
            earliest += writeback_defer
        if not is_write:
            turnaround = last_write_end + tWTR
            if turnaround > earliest:
                earliest = turnaround
        if fcfs and last_cas > earliest:
            earliest = last_cas

        # Bank.cas_time, inlined over the flat bank lists.  The rank-level
        # activate constraints (tRRD + tFAW) only matter when the request
        # activates, so they are computed inside the non-row-hit branches.
        bank_ready = b_ready[bank_index]
        start = earliest if earliest > bank_ready else bank_ready
        open_row = b_open[bank_index]
        if open_row == row:
            next_cas = b_next_cas[bank_index]
            cas = start if start > next_cas else next_cas
            b_hits[bank_index] += 1
        else:
            act_allowed = last_act + tRRD
            if act_allowed < earliest:
                act_allowed = earliest
            if len(recent) == faw_window:
                faw_bound = recent[0] + tFAW
                if faw_bound > act_allowed:
                    act_allowed = faw_bound
            if open_row is None:
                act_time = start if start > act_allowed else act_allowed
                b_misses[bank_index] += 1
            else:
                precharge = b_act[bank_index] + tRAS
                if start > precharge:
                    precharge = start
                act_time = precharge + tRP
                if act_allowed > act_time:
                    act_time = act_allowed
                b_conflicts[bank_index] += 1
            cas = act_time + tRCD
            b_open[bank_index] = row
            b_act[bank_index] = act_time
            b_activates[bank_index] += 1
            last_act = act_time
            recent.append(act_time)
        b_next_cas[bank_index] = cas + tCCD
        if cas > bank_ready:
            bank_ready = cas
        if auto_precharge:
            b_open[bank_index] = None
            precharged = cas + tRTP + tRP
            if precharged > bank_ready:
                bank_ready = precharged
        b_ready[bank_index] = bank_ready

        if cas > last_cas:
            last_cas = cas

        data_start = cas + (tCWL if is_write else tCL)
        if data_start < bus_free:
            data_start = bus_free
        data_end = data_start + burst
        bus_free = data_end
        if is_write:
            last_write_end = data_end + tWR
        outstanding.append(data_end)

        if kind == _READ:
            rd_append(data_end - arrival_time)
        elif kind == _PREFETCH:
            pf_append(data_end - arrival_time)
            if source:
                pf_by_source[source] = pf_by_source.get(source, 0) + 1
        else:
            wb_cell[0] += 1
        return data_end

    def sync():
        for index, bank in enumerate(banks):
            bank.open_row = b_open[index]
            bank.activate_time = b_act[index]
            bank.next_cas_time = b_next_cas[index]
            bank.ready_time = b_ready[index]
            bank.row_hits = b_hits[index]
            bank.row_misses = b_misses[index]
            bank.row_conflicts = b_conflicts[index]
            bank.activates = b_activates[index]
        stats.row_hits += sum(b_hits) - bh0
        stats.row_misses += sum(b_misses) - bm0
        stats.row_conflicts += sum(b_conflicts) - bc0
        stats.activates += sum(b_activates) - ba0
        stats.refreshes = s_refreshes
        dram._bus_free_time = bus_free
        dram._last_write_end = last_write_end
        dram._last_activate_time = last_act
        dram._next_refresh = next_refresh
        dram._last_time = d_last_time
        dram._last_cas_time = last_cas
        dram.stats_queue_stalls = queue_stalls

    return service, sync


def run_buffer_batch(sim, buffer, warmup_records: int = 0) -> bool:
    """Batch-engine body for :meth:`ChannelSimulator.run_buffer`.

    Requires ``sim.cache`` to be an :class:`ArrayCache` (the engine-mode
    resolution in :class:`ChannelSimulator` guarantees it) and ``sim.obs``
    to be detached (``run_buffer`` routes observed runs through the epoch
    slicer first, so each epoch slice lands here as its own chunk).

    Returns True when the chunk was consumed.  Returns False — with *no*
    state mutated — when the chunk needs the scalar loop: a passive run
    over a cache still holding live prefetched blocks (only a checkpoint
    restored from an active run can produce that; the fused demand loop
    elides prefetch-consumption bookkeeping).
    """
    prefetcher = sim.prefetcher
    passive = prefetcher.passive
    cache = sim.cache
    if passive and cache._resident_prefetches:
        return False
    if sim.lineage is not None:
        # Lineage needs the scalar per-candidate queue/fill path; the
        # run_buffer gate already routes around this loop, kept here as
        # defence in depth for direct callers.
        return False

    sim.set_warmup(warmup_records, records_seen_hint=sim._records_seen)
    total = len(buffer)
    if total == 0:
        sim.finish()
        return True

    layout = sim.layout
    block_addrs, page_col, offset_col, chan_col = kernels.decompose_chunk(
        buffer.addresses, layout)
    times = buffer.arrival_times.tolist()
    read_col = (buffer.access_types == 0).tolist()  # AccessType.READ
    device_col = buffer.devices.tolist()
    chunk_last_time = int(buffer.arrival_times.max())

    # Warmup split: record k (0-based within the chunk) records metrics iff
    # records_seen + k >= warmup_until — so one cut index replaces the
    # per-record comparison of the scalar loops.
    cut = sim._warmup_until - sim._records_seen
    if cut < 0:
        cut = 0
    elif cut > total:
        cut = total

    # The per-fill ndarray store is deferred: mark the tag mirror stale up
    # front (exception-safe) and let ArrayCache.tag_matrix rebuild lazily.
    cache._tags_stale = True

    gc_was_enabled = gc.isenabled()
    if gc_was_enabled:
        gc.disable()
    try:
        if passive:
            dram = sim.dram
            bank_col, row_col = kernels.dram_bank_rows(
                buffer.addresses, layout.block_bits, dram._column_bits,
                dram._bank_mask, dram._bank_bits, dram._rank_mask,
                dram._rank_bits, dram._num_banks)
            _run_passive(sim, block_addrs, times, read_col, device_col,
                         bank_col, row_col, cut, total)
        else:
            _run_active(sim, block_addrs, page_col, offset_col, chan_col,
                        times, read_col, device_col, cut, total)
    finally:
        if gc_was_enabled:
            gc.enable()

    sim._records_seen += total
    if chunk_last_time > sim._last_time:
        sim._last_time = chunk_last_time
    sim.finish()
    return True


def _run_passive(sim, block_addrs, times, read_col, device_col,
                 bank_col, row_col, cut, total):
    """Fully fused demand-only loop: cache + DRAM + metrics, zero calls.

    The dispatcher guarantees no prefetched block is resident (and the
    demand path cannot create one), so the prefetch-consumption branches
    of ``ArrayCache.access``/``fill`` are elided outright.  Everything
    else — the DRAM service body, the Welford recurrences — is the scalar
    code inlined over Python locals; the duplicated DRAM block must stay
    in lockstep with ``DRAMChannel.service_scalar`` and the closure in
    :func:`_dram_closures`.
    """
    cache = sim.cache
    cmap = cache._map
    map_get = cmap.get
    tags = cache._tags
    dirty = cache._dirty
    source = cache._source
    ready = cache._ready
    touch = cache._touch
    free_lists = cache._free
    set_mask = cache._set_mask
    assoc = cache.associativity
    tick = cache._tick
    tick0 = tick
    occupancy = cache._occupancy
    cstats = cache.stats

    dram = sim.dram
    burst = dram._burst_cycles
    rd_lats = []
    rd_append = rd_lats.append
    wb_cell = [0]
    n_delayed = 0

    # Metric aggregates as plain locals (absolute values, written back at
    # sync).  Constant-latency hits contribute hit_latency to the mean/M2
    # recurrences inline but defer their min/max/histogram contributions —
    # merged once at sync, where order does not matter.
    metrics = sim.metrics
    all_stats = metrics.all_latency
    a_count = all_stats.count
    a0 = a_count
    a_mean = all_stats._mean
    a_m2 = all_stats._m2
    a_min = all_stats.min
    a_max = all_stats.max
    read_stats = metrics.read_latency
    r_count = read_stats.count
    r0 = r_count
    r_mean = read_stats._mean
    r_m2 = read_stats._m2
    r_min = read_stats.min
    r_max = read_stats.max
    histogram = metrics.latency_histogram
    h_buckets = histogram._buckets                 # dict, in place
    bucket_width = histogram.bucket_width
    hit_latency = sim.config.sc_hit_latency
    hit_bucket = int(hit_latency // bucket_width)
    hb_known = hit_bucket in h_buckets
    hb_const = 0
    const_seen = False          # any constant-latency (plain-hit) sample
    const_read_seen = False     # any constant-latency *read* sample

    # Per-device read stats as parallel arrays indexed by device value.
    # Existing aggregates seed the arrays (the recurrence continues from
    # them); devices first seen this chunk are appended to dev_order so
    # the sync pass recreates the scalar dict's first-seen key order.
    device_latency = metrics.device_read_latency
    device_count = max(_DEVICE_BY_VALUE) + 1
    device_names = [_DEVICE_BY_VALUE[value].name
                    for value in range(device_count)]
    dev_n = [0] * device_count
    dev_mean = [0.0] * device_count
    dev_m2 = [0.0] * device_count
    dev_min = [None] * device_count
    dev_max = [None] * device_count
    dev_const = [False] * device_count
    dev_order = []
    for value, name in enumerate(device_names):
        seeded = device_latency.get(name)
        if seeded is not None:
            dev_n[value] = seeded.count
            dev_mean[value] = seeded._mean
            dev_m2[value] = seeded._m2
            dev_min[value] = seeded.min
            dev_max[value] = seeded.max
    # Per-device demand counters ([accesses, hits, useful, dram]): the
    # count lists live in metrics.device_demand itself, cached here by
    # device value; first-use insertion reproduces the scalar dict's
    # first-seen key order by construction.
    device_demand = metrics.device_demand
    dev_demand = [device_demand.get(name) for name in device_names]

    try:
        if cut:
            # Warmup segment (no metrics): cold path, closure-based DRAM.
            service, dram_sync = _dram_closures(dram, rd_lats, [], wb_cell)
            try:
                for block_addr, is_read, now in zip(
                        block_addrs[0:cut], read_col[0:cut], times[0:cut]):
                    way = map_get(block_addr, -1)
                    if way >= 0:
                        tick += 1
                        touch[way] = tick
                        if not is_read:
                            dirty[way] = True
                        if ready[way] > now:
                            n_delayed += 1
                        continue
                    completion = service(block_addr, now, 0, "")
                    set_index = block_addr & set_mask
                    free = free_lists[set_index]
                    if free:
                        way = free.pop(0)
                        occupancy += 1
                    else:
                        base = set_index * assoc
                        ages = touch[base:base + assoc]
                        way = base + ages.index(min(ages))
                        victim_tag = tags[way]
                        del cmap[victim_tag]
                        if dirty[way]:
                            service(victim_tag, now, 2, "")
                    tags[way] = block_addr
                    cmap[block_addr] = way
                    dirty[way] = not is_read
                    source[way] = None
                    ready[way] = completion
                    tick += 1
                    touch[way] = tick
            finally:
                dram_sync()

        if cut < total:
            # Post-warmup segment: the fused hot loop.  DRAM channel and
            # bank state hoisted into locals (fresh reads — the warmup
            # closure, if any, has already synced back).
            timing = dram.timing
            tREFI = dram._tREFI
            tRFC = timing.tRFC
            tWTR = dram._tWTR
            tRRD = dram._tRRD
            tFAW = dram._tFAW
            tCL = dram._tCL
            tCWL = dram._tCWL
            tWR = dram._tWR
            tRCD = timing.tRCD
            tRAS = timing.tRAS
            tRP = timing.tRP
            tCCD = timing.tCCD
            tRTP = timing.tRTP
            column_bits = dram._column_bits
            bank_mask = dram._bank_mask
            bank_bits = dram._bank_bits
            rank_mask = dram._rank_mask
            rank_bits = dram._rank_bits
            num_banks = dram._num_banks
            refresh_enabled = dram._refresh_enabled
            queue_depth = dram._queue_depth
            writeback_defer = dram._writeback_defer
            fcfs = dram._fcfs
            faw_window = dram._faw_window
            banks = dram.banks
            total_banks = len(banks)
            auto_precharge = banks[0].auto_precharge
            b_open = [bank.open_row for bank in banks]
            b_act = [bank.activate_time for bank in banks]
            b_next_cas = [bank.next_cas_time for bank in banks]
            b_ready = [bank.ready_time for bank in banks]
            b_hits = [bank.row_hits for bank in banks]
            b_misses = [bank.row_misses for bank in banks]
            b_conflicts = [bank.row_conflicts for bank in banks]
            b_activates = [bank.activates for bank in banks]
            bh0 = sum(b_hits)
            bm0 = sum(b_misses)
            bc0 = sum(b_conflicts)
            ba0 = sum(b_activates)
            s_refreshes = dram.stats.refreshes
            recent = dram._recent_activates
            recent_append = recent.append
            outstanding = dram._outstanding
            out_popleft = outstanding.popleft
            out_append = outstanding.append
            bus_free = dram._bus_free_time
            last_write_end = dram._last_write_end
            last_act = dram._last_activate_time
            next_refresh = dram._next_refresh
            d_last_time = dram._last_time
            last_cas = dram._last_cas_time
            queue_stalls = dram.stats_queue_stalls
            wb_count = 0

            try:
                for block_addr, is_read, device_value, now, bank_index, \
                        row in zip(
                            block_addrs[cut:total], read_col[cut:total],
                            device_col[cut:total], times[cut:total],
                            bank_col[cut:total], row_col[cut:total]):
                    way = map_get(block_addr, -1)
                    if way >= 0:
                        tick += 1
                        touch[way] = tick
                        if is_read:
                            ready_at = ready[way]
                            if ready_at <= now:
                                # Plain read hit: constant latency — the
                                # min/max/histogram/device extremes defer
                                # to the sync merge.
                                const_read_seen = True
                                if hb_known:
                                    hb_const += 1
                                else:
                                    h_buckets[hit_bucket] = h_buckets.get(
                                        hit_bucket, 0) + 1
                                    hb_known = True
                                a_count += 1
                                delta = hit_latency - a_mean
                                a_mean += delta / a_count
                                a_m2 += delta * (hit_latency - a_mean)
                                r_count += 1
                                delta = hit_latency - r_mean
                                r_mean += delta / r_count
                                r_m2 += delta * (hit_latency - r_mean)
                                dn = dev_n[device_value]
                                if not dn:
                                    dev_order.append(device_value)
                                dn += 1
                                dev_n[device_value] = dn
                                dm = dev_mean[device_value]
                                delta = hit_latency - dm
                                dm += delta / dn
                                dev_mean[device_value] = dm
                                dev_m2[device_value] += delta * (
                                    hit_latency - dm)
                                dev_const[device_value] = True
                                dd = dev_demand[device_value]
                                if dd is None:
                                    dd = [0, 0, 0, 0]
                                    device_demand[
                                        device_names[device_value]] = dd
                                    dev_demand[device_value] = dd
                                dd[0] += 1
                                dd[1] += 1
                                continue
                            # Delayed hit: still in flight — counts as a
                            # miss, latency covers the residual wait.
                            n_delayed += 1
                            latency = hit_latency + (ready_at - now)
                            dd = dev_demand[device_value]
                            if dd is None:
                                dd = [0, 0, 0, 0]
                                device_demand[
                                    device_names[device_value]] = dd
                                dev_demand[device_value] = dd
                            dd[0] += 1
                        else:
                            dirty[way] = True
                            ready_at = ready[way]
                            if ready_at <= now:
                                const_seen = True
                                a_count += 1
                                delta = hit_latency - a_mean
                                a_mean += delta / a_count
                                a_m2 += delta * (hit_latency - a_mean)
                                dd = dev_demand[device_value]
                                if dd is None:
                                    dd = [0, 0, 0, 0]
                                    device_demand[
                                        device_names[device_value]] = dd
                                    dev_demand[device_value] = dd
                                dd[0] += 1
                                dd[1] += 1
                                continue
                            n_delayed += 1
                            latency = hit_latency + (ready_at - now)
                            a_count += 1
                            delta = latency - a_mean
                            a_mean += delta / a_count
                            a_m2 += delta * (latency - a_mean)
                            if a_min is None or latency < a_min:
                                a_min = latency
                            if a_max is None or latency > a_max:
                                a_max = latency
                            dd = dev_demand[device_value]
                            if dd is None:
                                dd = [0, 0, 0, 0]
                                device_demand[
                                    device_names[device_value]] = dd
                                dev_demand[device_value] = dd
                            dd[0] += 1
                            continue
                    else:
                        # Demand miss → DRAM read (service_scalar inlined;
                        # bank_index/row precomputed by dram_bank_rows).
                        if now > d_last_time:
                            d_last_time = now
                        dnow = now
                        if refresh_enabled and dnow >= next_refresh:
                            while dnow >= next_refresh:
                                refresh_end = next_refresh + tRFC
                                for bi in range(total_banks):
                                    if refresh_end > b_ready[bi]:
                                        b_ready[bi] = refresh_end
                                    b_open[bi] = None
                                s_refreshes += 1
                                next_refresh += tREFI
                        while outstanding and outstanding[0] <= dnow:
                            out_popleft()
                        if len(outstanding) >= queue_depth:
                            dnow = out_popleft()
                            queue_stalls += 1
                        earliest = last_write_end + tWTR
                        if earliest < dnow:
                            earliest = dnow
                        if fcfs and last_cas > earliest:
                            earliest = last_cas
                        bank_ready = b_ready[bank_index]
                        start = earliest if earliest > bank_ready \
                            else bank_ready
                        open_row = b_open[bank_index]
                        if open_row == row:
                            next_cas = b_next_cas[bank_index]
                            cas = start if start > next_cas else next_cas
                            b_hits[bank_index] += 1
                        else:
                            act_allowed = last_act + tRRD
                            if act_allowed < earliest:
                                act_allowed = earliest
                            if len(recent) == faw_window:
                                faw_bound = recent[0] + tFAW
                                if faw_bound > act_allowed:
                                    act_allowed = faw_bound
                            if open_row is None:
                                act_time = start if start > act_allowed \
                                    else act_allowed
                                b_misses[bank_index] += 1
                            else:
                                precharge = b_act[bank_index] + tRAS
                                if start > precharge:
                                    precharge = start
                                act_time = precharge + tRP
                                if act_allowed > act_time:
                                    act_time = act_allowed
                                b_conflicts[bank_index] += 1
                            cas = act_time + tRCD
                            b_open[bank_index] = row
                            b_act[bank_index] = act_time
                            b_activates[bank_index] += 1
                            last_act = act_time
                            recent_append(act_time)
                        b_next_cas[bank_index] = cas + tCCD
                        if cas > bank_ready:
                            bank_ready = cas
                        if auto_precharge:
                            b_open[bank_index] = None
                            precharged = cas + tRTP + tRP
                            if precharged > bank_ready:
                                bank_ready = precharged
                        b_ready[bank_index] = bank_ready
                        if cas > last_cas:
                            last_cas = cas
                        data_start = cas + tCL
                        if data_start < bus_free:
                            data_start = bus_free
                        completion = data_start + burst
                        bus_free = completion
                        out_append(completion)
                        rd_append(completion - now)

                        # Fill (ArrayCache.fill inlined; no prefetched
                        # victims can exist on this path).
                        set_index = block_addr & set_mask
                        free = free_lists[set_index]
                        if free:
                            way = free.pop(0)
                            occupancy += 1
                        else:
                            base = set_index * assoc
                            ages = touch[base:base + assoc]
                            way = base + ages.index(min(ages))
                            victim_tag = tags[way]
                            del cmap[victim_tag]
                            if dirty[way]:
                                # Dirty victim → write-back (service_scalar
                                # inlined again, write flavour: defer, no
                                # read turnaround, tCWL + tWR).
                                wb_count += 1
                                remainder = victim_tag >> column_bits
                                wb_bank = remainder & bank_mask
                                remainder >>= bank_bits
                                if rank_bits:
                                    wb_row = remainder >> rank_bits
                                    wb_bank += (remainder & rank_mask) \
                                        * num_banks
                                else:
                                    wb_row = remainder
                                if now > d_last_time:
                                    d_last_time = now
                                dnow = now
                                if refresh_enabled and dnow >= next_refresh:
                                    while dnow >= next_refresh:
                                        refresh_end = next_refresh + tRFC
                                        for bi in range(total_banks):
                                            if refresh_end > b_ready[bi]:
                                                b_ready[bi] = refresh_end
                                            b_open[bi] = None
                                        s_refreshes += 1
                                        next_refresh += tREFI
                                while outstanding and outstanding[0] <= dnow:
                                    out_popleft()
                                if len(outstanding) >= queue_depth:
                                    dnow = out_popleft()
                                    queue_stalls += 1
                                earliest = dnow + writeback_defer
                                if fcfs and last_cas > earliest:
                                    earliest = last_cas
                                bank_ready = b_ready[wb_bank]
                                start = earliest if earliest > bank_ready \
                                    else bank_ready
                                open_row = b_open[wb_bank]
                                if open_row == wb_row:
                                    next_cas = b_next_cas[wb_bank]
                                    cas = start if start > next_cas \
                                        else next_cas
                                    b_hits[wb_bank] += 1
                                else:
                                    act_allowed = last_act + tRRD
                                    if act_allowed < earliest:
                                        act_allowed = earliest
                                    if len(recent) == faw_window:
                                        faw_bound = recent[0] + tFAW
                                        if faw_bound > act_allowed:
                                            act_allowed = faw_bound
                                    if open_row is None:
                                        act_time = start \
                                            if start > act_allowed \
                                            else act_allowed
                                        b_misses[wb_bank] += 1
                                    else:
                                        precharge = b_act[wb_bank] + tRAS
                                        if start > precharge:
                                            precharge = start
                                        act_time = precharge + tRP
                                        if act_allowed > act_time:
                                            act_time = act_allowed
                                        b_conflicts[wb_bank] += 1
                                    cas = act_time + tRCD
                                    b_open[wb_bank] = wb_row
                                    b_act[wb_bank] = act_time
                                    b_activates[wb_bank] += 1
                                    last_act = act_time
                                    recent_append(act_time)
                                b_next_cas[wb_bank] = cas + tCCD
                                if cas > bank_ready:
                                    bank_ready = cas
                                if auto_precharge:
                                    b_open[wb_bank] = None
                                    precharged = cas + tRTP + tRP
                                    if precharged > bank_ready:
                                        bank_ready = precharged
                                b_ready[wb_bank] = bank_ready
                                if cas > last_cas:
                                    last_cas = cas
                                data_start = cas + tCWL
                                if data_start < bus_free:
                                    data_start = bus_free
                                wb_end = data_start + burst
                                bus_free = wb_end
                                last_write_end = wb_end + tWR
                                out_append(wb_end)
                        tags[way] = block_addr
                        cmap[block_addr] = way
                        dirty[way] = not is_read
                        source[way] = None
                        ready[way] = completion
                        tick += 1
                        touch[way] = tick
                        dd = dev_demand[device_value]
                        if dd is None:
                            dd = [0, 0, 0, 0]
                            device_demand[device_names[device_value]] = dd
                            dev_demand[device_value] = dd
                        dd[0] += 1
                        dd[3] += 1
                        if not is_read:
                            # Write miss: store buffered, constant latency.
                            const_seen = True
                            a_count += 1
                            delta = hit_latency - a_mean
                            a_mean += delta / a_count
                            a_m2 += delta * (hit_latency - a_mean)
                            continue
                        latency = hit_latency + (completion - now)

                    # Variable-latency read (delayed hit or read miss):
                    # full metric recording.
                    a_count += 1
                    delta = latency - a_mean
                    a_mean += delta / a_count
                    a_m2 += delta * (latency - a_mean)
                    if a_min is None or latency < a_min:
                        a_min = latency
                    if a_max is None or latency > a_max:
                        a_max = latency
                    r_count += 1
                    delta = latency - r_mean
                    r_mean += delta / r_count
                    r_m2 += delta * (latency - r_mean)
                    if r_min is None or latency < r_min:
                        r_min = latency
                    if r_max is None or latency > r_max:
                        r_max = latency
                    bucket = int(latency // bucket_width)
                    h_buckets[bucket] = h_buckets.get(bucket, 0) + 1
                    dn = dev_n[device_value]
                    if not dn:
                        dev_order.append(device_value)
                    dn += 1
                    dev_n[device_value] = dn
                    dm = dev_mean[device_value]
                    delta = latency - dm
                    dm += delta / dn
                    dev_mean[device_value] = dm
                    dev_m2[device_value] += delta * (latency - dm)
                    dmn = dev_min[device_value]
                    if dmn is None or latency < dmn:
                        dev_min[device_value] = latency
                    dmx = dev_max[device_value]
                    if dmx is None or latency > dmx:
                        dev_max[device_value] = latency
            finally:
                for index, bank in enumerate(banks):
                    bank.open_row = b_open[index]
                    bank.activate_time = b_act[index]
                    bank.next_cas_time = b_next_cas[index]
                    bank.ready_time = b_ready[index]
                    bank.row_hits = b_hits[index]
                    bank.row_misses = b_misses[index]
                    bank.row_conflicts = b_conflicts[index]
                    bank.activates = b_activates[index]
                dstats = dram.stats
                dstats.row_hits += sum(b_hits) - bh0
                dstats.row_misses += sum(b_misses) - bm0
                dstats.row_conflicts += sum(b_conflicts) - bc0
                dstats.activates += sum(b_activates) - ba0
                dstats.refreshes = s_refreshes
                dram._bus_free_time = bus_free
                dram._last_write_end = last_write_end
                dram._last_activate_time = last_act
                dram._next_refresh = next_refresh
                dram._last_time = d_last_time
                dram._last_cas_time = last_cas
                dram.stats_queue_stalls = queue_stalls
                wb_cell[0] += wb_count
    finally:
        # Derived counters: every demand-read service is exactly one true
        # miss and one demand fill; the cache tick advanced once per hit
        # (plain or delayed) and once per fill, so the hit count falls out
        # of the tick delta.  Exact at any record boundary.
        rd_n = len(rd_lats)
        wb_n = wb_cell[0]
        dstats = dram.stats
        dstats.demand_reads += rd_n
        dstats.writebacks += wb_n
        dstats.data_bus_cycles += burst * (rd_n + wb_n)
        _welford_into(rd_lats, dstats.demand_read_latency)

        cache._tick = tick
        cache._occupancy = occupancy
        tick_delta = tick - tick0
        hits_delta = tick_delta - n_delayed - rd_n
        misses_delta = rd_n + n_delayed
        cstats.demand_hits += hits_delta
        cstats.demand_misses += misses_delta
        cstats.demand_accesses += hits_delta + misses_delta
        cstats.delayed_hits += n_delayed
        cstats.demand_fills += rd_n
        cstats.writebacks += wb_n

        # Merge the deferred constant-latency extremes (order-free).
        if const_seen or const_read_seen:
            if a_min is None or hit_latency < a_min:
                a_min = hit_latency
            if a_max is None or hit_latency > a_max:
                a_max = hit_latency
        if const_read_seen:
            if r_min is None or hit_latency < r_min:
                r_min = hit_latency
            if r_max is None or hit_latency > r_max:
                r_max = hit_latency
        if hb_const:
            h_buckets[hit_bucket] = h_buckets.get(hit_bucket, 0) + hb_const
        all_stats.count = a_count
        all_stats._mean = a_mean
        all_stats._m2 = a_m2
        all_stats.min = a_min
        all_stats.max = a_max
        read_stats.count = r_count
        read_stats._mean = r_mean
        read_stats._m2 = r_m2
        read_stats.min = r_min
        read_stats.max = r_max
        histogram.count += r_count - r0
        metrics.demand_reads += r_count - r0
        metrics.demand_writes += (a_count - a0) - (r_count - r0)

        # Device aggregates: update pre-existing entries in place (keeps
        # their dict positions), then append devices first seen this chunk
        # in occurrence order — reproducing the scalar dict's key order.
        for value, name in enumerate(device_names):
            seeded = device_latency.get(name)
            if seeded is None or dev_n[value] == seeded.count:
                continue
            seeded.count = dev_n[value]
            seeded._mean = dev_mean[value]
            seeded._m2 = dev_m2[value]
            low = dev_min[value]
            if dev_const[value] and (low is None or hit_latency < low):
                low = hit_latency
            seeded.min = low
            high = dev_max[value]
            if dev_const[value] and (high is None or hit_latency > high):
                high = hit_latency
            seeded.max = high
        for value in dev_order:
            fresh = RunningStats()
            fresh.count = dev_n[value]
            fresh._mean = dev_mean[value]
            fresh._m2 = dev_m2[value]
            low = dev_min[value]
            if dev_const[value] and (low is None or hit_latency < low):
                low = hit_latency
            fresh.min = low
            high = dev_max[value]
            if dev_const[value] and (high is None or hit_latency > high):
                high = hit_latency
            fresh.max = high
            device_latency[device_names[value]] = fresh


def _run_active(sim, block_addrs, page_col, offset_col, chan_col,
                times, read_col, device_col, cut, total):
    """Prefetcher-in-play loop: inlined cache ops, closure-based DRAM.

    ``batching`` defers hit-run observes into ``observe_run`` and skips
    hit-trigger issue calls; otherwise observe/issue run per record in
    scalar order.  Counters derive at sync exactly as in
    :func:`_run_passive` (prefetch fills count via the deferred prefetch
    latency list).
    """
    prefetcher = sim.prefetcher
    batching = (prefetcher.hit_trigger_noop()
                and prefetcher.supports_observe_run())

    cache = sim.cache
    cmap = cache._map
    map_get = cmap.get
    tags = cache._tags
    dirty = cache._dirty
    prefetched = cache._prefetched
    source = cache._source
    ready = cache._ready
    touch = cache._touch
    free_lists = cache._free
    set_mask = cache._set_mask
    assoc = cache.associativity
    tick = cache._tick
    tick0 = tick
    occupancy = cache._occupancy
    resident_pf = cache._resident_prefetches
    cstats = cache.stats
    useful = cstats.prefetch_useful                # dicts, mutated in place
    late = cstats.prefetch_late
    unused_evicted = cstats.prefetch_unused_evicted
    n_delayed = 0

    dram = sim.dram
    burst = dram._burst_cycles
    rd_lats = []
    pf_lats = []
    wb_cell = [0]
    dram_service, dram_sync = _dram_closures(dram, rd_lats, pf_lats, wb_cell)

    metrics = sim.metrics
    all_stats = metrics.all_latency
    a_count = all_stats.count
    a0 = a_count
    a_mean = all_stats._mean
    a_m2 = all_stats._m2
    a_min = all_stats.min
    a_max = all_stats.max
    read_stats = metrics.read_latency
    r_count = read_stats.count
    r0 = r_count
    r_mean = read_stats._mean
    r_m2 = read_stats._m2
    r_min = read_stats.min
    r_max = read_stats.max
    histogram = metrics.latency_histogram
    h_buckets = histogram._buckets                 # dict, in place
    bucket_width = histogram.bucket_width
    device_latency = metrics.device_read_latency
    device_count = max(_DEVICE_BY_VALUE) + 1
    devices = [_DEVICE_BY_VALUE[value] for value in range(device_count)]
    device_names = [device.name for device in devices]
    dev_stats = [device_latency.get(name) for name in device_names]
    # Per-device demand counters, direct-dict (see _run_passive).
    device_demand = metrics.device_demand
    dev_demand = [device_demand.get(name) for name in device_names]

    hit_latency = sim.config.sc_hit_latency
    hit_bucket = int(hit_latency // bucket_width)
    prefetch_fill_sc = sim.config.prefetch_fill_sc
    queue_push = sim.queue.push
    queue_pop_all = sim.queue.pop_all
    notify_useful = prefetcher.notify_useful
    observe = prefetcher.observe
    observe_run = prefetcher.observe_run
    issue = prefetcher.issue

    from repro.sim.engine import _FastDemandAccess
    access = _FastDemandAccess()

    segments = ((0, cut, False), (cut, total, True))

    # Run-length batching state (variant with observe_run deferral).
    run_page = -1
    run_offsets = []
    run_times = []
    skipped_hits = 0

    try:
        for seg_start, seg_end, record_metrics in segments:
            if seg_start == seg_end:
                continue
            for block_addr, page, block_in_segment, channel_block, is_read, \
                    device_value, now in zip(
                        block_addrs[seg_start:seg_end],
                        page_col[seg_start:seg_end],
                        offset_col[seg_start:seg_end],
                        chan_col[seg_start:seg_end],
                        read_col[seg_start:seg_end],
                        device_col[seg_start:seg_end],
                        times[seg_start:seg_end]):
                way = map_get(block_addr, -1)
                if way >= 0:
                    tick += 1
                    touch[way] = tick
                    if not is_read:
                        dirty[way] = True
                    if prefetched[way]:
                        prefetch_source = source[way]
                        prefetched[way] = False
                        resident_pf -= 1
                        useful[prefetch_source] = useful.get(
                            prefetch_source, 0) + 1
                    else:
                        prefetch_source = None
                    went_dram = False
                    ready_at = ready[way]
                    if ready_at > now:
                        hit = False
                        n_delayed += 1
                        if prefetch_source is not None:
                            late[prefetch_source] = late.get(
                                prefetch_source, 0) + 1
                        latency = hit_latency + (ready_at - now)
                    else:
                        hit = True
                        latency = hit_latency
                else:
                    hit = False
                    prefetch_source = None
                    went_dram = True
                    completion = dram_service(block_addr, now, 0, "")
                    set_index = block_addr & set_mask
                    free = free_lists[set_index]
                    if free:
                        way = free.pop(0)
                        occupancy += 1
                    else:
                        base = set_index * assoc
                        ages = touch[base:base + assoc]
                        way = base + ages.index(min(ages))
                        victim_tag = tags[way]
                        del cmap[victim_tag]
                        victim_dirty = dirty[way]
                        if prefetched[way]:
                            resident_pf -= 1
                            victim_source = source[way]
                            if victim_source is not None:
                                unused_evicted[victim_source] = (
                                    unused_evicted.get(victim_source, 0) + 1)
                            prefetcher.notify_unused()
                        if victim_dirty:
                            dram_service(victim_tag, now, 2, "")
                    tags[way] = block_addr
                    cmap[block_addr] = way
                    dirty[way] = not is_read
                    prefetched[way] = False
                    source[way] = None
                    ready[way] = completion
                    tick += 1
                    touch[way] = tick
                    if is_read:
                        latency = hit_latency + (completion - now)
                    else:
                        latency = hit_latency

                if record_metrics:
                    dd = dev_demand[device_value]
                    if dd is None:
                        dd = [0, 0, 0, 0]
                        device_demand[device_names[device_value]] = dd
                        dev_demand[device_value] = dd
                    dd[0] += 1
                    if hit:
                        dd[1] += 1
                    if prefetch_source is not None:
                        dd[2] += 1
                    if went_dram:
                        dd[3] += 1
                    a_count += 1
                    delta = latency - a_mean
                    a_mean += delta / a_count
                    a_m2 += delta * (latency - a_mean)
                    if a_min is None or latency < a_min:
                        a_min = latency
                    if a_max is None or latency > a_max:
                        a_max = latency
                    if is_read:
                        r_count += 1
                        delta = latency - r_mean
                        r_mean += delta / r_count
                        r_m2 += delta * (latency - r_mean)
                        if r_min is None or latency < r_min:
                            r_min = latency
                        if r_max is None or latency > r_max:
                            r_max = latency
                        bucket = (hit_bucket if latency == hit_latency
                                  else int(latency // bucket_width))
                        h_buckets[bucket] = h_buckets.get(bucket, 0) + 1
                        dstats = dev_stats[device_value]
                        if dstats is None:
                            dstats = RunningStats()
                            device_latency[device_names[device_value]] = (
                                dstats)
                            dev_stats[device_value] = dstats
                        dstats_count = dstats.count + 1
                        dstats.count = dstats_count
                        delta = latency - dstats._mean
                        dmean = dstats._mean + delta / dstats_count
                        dstats._mean = dmean
                        dstats._m2 += delta * (latency - dmean)
                        if dstats.min is None or latency < dstats.min:
                            dstats.min = latency
                        if dstats.max is None or latency > dstats.max:
                            dstats.max = latency

                if prefetch_source is not None:
                    notify_useful()

                if batching:
                    if page != run_page:
                        if run_offsets:
                            observe_run(run_page, run_offsets, run_times)
                            run_offsets = []
                            run_times = []
                        run_page = page
                    run_offsets.append(block_in_segment)
                    run_times.append(now)
                    if hit:
                        skipped_hits += 1
                        continue
                    observe_run(run_page, run_offsets, run_times)
                    run_offsets = []
                    run_times = []
                    access.block_addr = block_addr
                    access.page = page
                    access.block_in_segment = block_in_segment
                    access.channel_block = channel_block
                    access.time = now
                    access.is_read = is_read
                    access.device = devices[device_value]
                    candidates = issue(access, False, False)
                else:
                    access.block_addr = block_addr
                    access.page = page
                    access.block_in_segment = block_in_segment
                    access.channel_block = channel_block
                    access.time = now
                    access.is_read = is_read
                    access.device = devices[device_value]
                    observe(access)
                    candidates = issue(
                        access, hit, hit and prefetch_source is not None)

                if candidates and queue_push(candidates):
                    # _service_prefetches, inlined over the same locals.
                    if not prefetch_fill_sc:
                        queue_pop_all()
                        continue
                    for candidate in queue_pop_all():
                        candidate_block = candidate.block_addr
                        if candidate_block in cmap:
                            continue
                        candidate_source = candidate.source
                        completion = dram_service(candidate_block, now, 1,
                                                  candidate_source)
                        set_index = candidate_block & set_mask
                        free = free_lists[set_index]
                        if free:
                            way = free.pop(0)
                            occupancy += 1
                        else:
                            base = set_index * assoc
                            ages = touch[base:base + assoc]
                            way = base + ages.index(min(ages))
                            victim_tag = tags[way]
                            del cmap[victim_tag]
                            victim_dirty = dirty[way]
                            if prefetched[way]:
                                resident_pf -= 1
                                victim_source = source[way]
                                if victim_source is not None:
                                    unused_evicted[victim_source] = (
                                        unused_evicted.get(victim_source, 0)
                                        + 1)
                                prefetcher.notify_unused()
                            if victim_dirty:
                                dram_service(victim_tag, now, 2, "")
                        tags[way] = candidate_block
                        cmap[candidate_block] = way
                        dirty[way] = False
                        prefetched[way] = True
                        source[way] = candidate_source
                        ready[way] = completion
                        tick += 1
                        touch[way] = tick
                        resident_pf += 1

        # Chunk end is a batch boundary: flush the open hit run and apply
        # the skipped hit-trigger compensation in one call.
        if run_offsets:
            observe_run(run_page, run_offsets, run_times)
            run_offsets = []
            run_times = []
        if skipped_hits:
            prefetcher.skip_hit_triggers(skipped_hits)
            skipped_hits = 0
    finally:
        dram_sync()
        rd_n = len(rd_lats)
        pf_n = len(pf_lats)
        wb_n = wb_cell[0]
        dstats = dram.stats
        dstats.demand_reads += rd_n
        dstats.prefetch_reads += pf_n
        dstats.writebacks += wb_n
        dstats.data_bus_cycles += burst * (rd_n + pf_n + wb_n)
        _welford_into(rd_lats, dstats.demand_read_latency)
        _welford_into(pf_lats, dstats.prefetch_latency)

        cache._tick = tick
        cache._occupancy = occupancy
        cache._resident_prefetches = resident_pf
        tick_delta = tick - tick0
        hits_delta = tick_delta - n_delayed - rd_n - pf_n
        misses_delta = rd_n + n_delayed
        cstats.demand_hits += hits_delta
        cstats.demand_misses += misses_delta
        cstats.demand_accesses += hits_delta + misses_delta
        cstats.delayed_hits += n_delayed
        cstats.demand_fills += rd_n
        cstats.prefetch_fills += pf_n
        cstats.writebacks += wb_n

        all_stats.count = a_count
        all_stats._mean = a_mean
        all_stats._m2 = a_m2
        all_stats.min = a_min
        all_stats.max = a_max
        read_stats.count = r_count
        read_stats._mean = r_mean
        read_stats._m2 = r_m2
        read_stats.min = r_min
        read_stats.max = r_max
        histogram.count += r_count - r0
        metrics.demand_reads += r_count - r0
        metrics.demand_writes += (a_count - a0) - (r_count - r0)
