"""Parameter sweeps over prefetcher configurations.

Used by the ablation benches to quantify DESIGN.md's design choices —
TLP's thresholds, SLP's AT timeout / filter threshold — on a fixed trace.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, Optional

from repro.config import PlanariaConfig, SimConfig, SLPConfig, TLPConfig
from repro.geometry import AddressLayout
from repro.prefetch.base import Prefetcher
from repro.sim.executor import ParallelExecutor, Parallelism, SimulationTask
from repro.sim.metrics import RunMetrics
from repro.trace.generator import generate_trace_buffer, get_profile

PrefetcherFactory = Callable[[AddressLayout, int], Prefetcher]


def simulate_factory(records, factory: PrefetcherFactory,
                     label: str, workload_name: str = "custom",
                     config: Optional[SimConfig] = None,
                     parallelism: Parallelism = "serial") -> RunMetrics:
    """Like :func:`repro.sim.runner.simulate` but with an arbitrary factory.

    ``records`` may be a :class:`~repro.trace.buffer.TraceBuffer` or a
    record list, as with :func:`~repro.sim.runner.simulate`.
    Channel-grain parallelism works with any factory (even a lambda): the
    engine pickles the *constructed* per-channel simulators, never the
    factory itself.
    """
    from repro.sim.engine import SystemSimulator
    from repro.sim.runner import _collect

    config = config or SimConfig.experiment_scale()
    simulator = SystemSimulator(config, factory)
    simulator.run(records, parallelism=parallelism)
    return _collect(simulator, workload_name, label)


def sweep_planaria(
    app: str,
    variants: Dict[str, PlanariaConfig],
    length: int = 60_000,
    seed: int = 7,
    config: Optional[SimConfig] = None,
    parallelism: Parallelism = "serial",
) -> Dict[str, RunMetrics]:
    """Run several Planaria configurations over one generated trace.

    Returns ``{variant_label: RunMetrics}`` plus a ``"none"`` baseline.
    With ``parallelism`` other than ``"serial"``, each variant becomes a
    process-pool task carrying its (picklable) ``PlanariaConfig``; the
    worker regenerates the trace from the seed, so results are
    bit-identical to a serial sweep.
    """
    from repro.core.planaria import PlanariaPrefetcher
    from repro.prefetch.simple import NoPrefetcher

    config = config or SimConfig.experiment_scale()
    profile = get_profile(app)
    labels = ["none"] + list(variants)
    executor = ParallelExecutor(parallelism)
    if executor.workers_for(len(labels)) > 1:
        tasks = [SimulationTask(profile=profile, prefetcher="none",
                                length=length, seed=seed, config=config)]
        tasks.extend(
            SimulationTask(profile=profile, prefetcher=label, length=length,
                           seed=seed, config=config,
                           planaria_variant=planaria_config)
            for label, planaria_config in variants.items()
        )
        return dict(zip(labels, executor.run_tasks(tasks)))

    records = generate_trace_buffer(profile, length, seed=seed,
                                    layout=config.layout)
    results: Dict[str, RunMetrics] = {
        "none": simulate_factory(
            records, lambda layout, channel: NoPrefetcher(layout, channel),
            "none", workload_name=app, config=config,
        )
    }
    for label, planaria_config in variants.items():
        results[label] = simulate_factory(
            records,
            lambda layout, channel, pc=planaria_config: PlanariaPrefetcher(
                layout, channel, pc),
            label, workload_name=app, config=config,
        )
    return results


def tlp_distance_variants(distances: Iterable[int]) -> Dict[str, PlanariaConfig]:
    """Planaria configs sweeping TLP's neighbour distance threshold."""
    return {
        f"distance={distance}": PlanariaConfig(tlp=TLPConfig(
            distance_threshold=distance))
        for distance in distances
    }


def slp_timeout_variants(timeouts: Iterable[int]) -> Dict[str, PlanariaConfig]:
    """Planaria configs sweeping SLP's AT timeout."""
    return {
        f"timeout={timeout}": PlanariaConfig(slp=SLPConfig(at_timeout=timeout))
        for timeout in timeouts
    }


def coordinator_variants() -> Dict[str, PlanariaConfig]:
    """The three coordination strategies of Section 7's comparison."""
    return {
        "decoupled": PlanariaConfig(coordinator="decoupled"),
        "serial": PlanariaConfig(coordinator="serial"),
        "parallel": PlanariaConfig(coordinator="parallel"),
    }
