"""High-level experiment runner: workload × prefetcher → RunMetrics.

The benches and examples all funnel through :func:`run_workload` /
:func:`compare_prefetchers`, so a figure is regenerated with a couple of
lines:

>>> results = compare_prefetchers("CFM", ["none", "bop", "spp", "planaria"])
>>> results["planaria"].amat_reduction_vs(results["none"])
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Optional

from repro.config import SimConfig
from repro.prefetch.registry import make_prefetcher
from repro.sim.engine import SystemSimulator, TraceLike
from repro.sim.executor import (ParallelExecutor, Parallelism,
                                SimulationTask)
from repro.sim.metrics import RunMetrics
from repro.trace.generator import generate_trace_buffer, get_profile
from repro.trace.generator.profile import WorkloadProfile

DEFAULT_PREFETCHERS = ("none", "bop", "spp", "planaria")
DEFAULT_TRACE_LENGTH = 120_000


@dataclass
class RunResult:
    """A RunMetrics plus the live simulator for deeper inspection."""

    metrics: RunMetrics
    simulator: SystemSimulator


def simulate(records: TraceLike, prefetcher_name: str,
             workload_name: str = "custom",
             config: Optional[SimConfig] = None,
             parallelism: Parallelism = "serial",
             engine_mode: str = "auto") -> RunResult:
    """Run one prefetcher over an explicit trace.

    ``records`` may be a columnar :class:`~repro.trace.buffer.TraceBuffer`
    (canonical, fastest) or a ``TraceRecord`` list (converted internally);
    results are bit-identical either way.  Defaults to
    :meth:`SimConfig.experiment_scale` — the scaled-down SC matched to the
    bundled synthetic trace lengths (see DESIGN.md §2); pass
    ``SimConfig.paper_scale()`` when driving full-length traces.
    ``parallelism`` selects channel-grain execution (bit-identical to
    serial; see docs/parallelism.md).  ``engine_mode`` selects the
    execution backend (``"scalar"``, ``"batch"`` or ``"auto"``; see
    :class:`~repro.sim.engine.ChannelSimulator`) — results are
    bit-identical across backends (``tests/test_batch_oracle.py``).
    """
    config = config or SimConfig.experiment_scale()
    simulator = SystemSimulator(
        config, lambda layout, channel: make_prefetcher(prefetcher_name,
                                                        layout, channel),
        engine_mode=engine_mode,
    )
    simulator.run(records, parallelism=parallelism)
    metrics = _collect(simulator, workload_name, prefetcher_name)
    return RunResult(metrics=metrics, simulator=simulator)


def collect_metrics(simulator: SystemSimulator, workload: str,
                    prefetcher: str) -> RunMetrics:
    """Condense a driven simulator's state into a :class:`RunMetrics`.

    Read-only: safe to call mid-stream on a live simulator (the service
    layer's snapshot path), and again later — each call reflects the
    records fed so far.
    """
    return _collect(simulator, workload, prefetcher)


def _collect(simulator: SystemSimulator, workload: str,
             prefetcher: str) -> RunMetrics:
    cache_stats = simulator.merged_cache_stats()
    dram_stats = simulator.merged_dram_stats()
    channel_metrics = simulator.merged_metrics()
    power = simulator.power_report()
    p99 = 0.0
    for channel_sim in simulator.channels:
        p99 = max(p99, channel_sim.metrics.latency_histogram.percentile(0.99))
    return RunMetrics(
        workload=workload,
        prefetcher=prefetcher,
        amat=channel_metrics.read_latency.mean,
        hit_rate=cache_stats.hit_rate,
        demand_accesses=cache_stats.demand_accesses,
        demand_misses=cache_stats.demand_misses,
        dram_traffic=dram_stats.total_requests,
        prefetch_issued=simulator.total_prefetch_issued(),
        prefetch_fills=cache_stats.prefetch_fills,
        prefetch_useful=cache_stats.useful_total(),
        prefetch_useful_by_source=dict(cache_stats.prefetch_useful),
        prefetch_unused=cache_stats.unused_total(),
        power_mw=power.average_power_mw,
        energy_nj=power.total_nj,
        storage_bits=simulator.storage_bits(),
        p99_latency=p99,
        device_read_stats={
            device: {"reads": stats.count, "mean_latency": stats.mean}
            for device, stats in sorted(
                channel_metrics.device_read_latency.items())
        },
        tenant_stats=_tenant_stats(channel_metrics),
    )


def _tenant_stats(channel_metrics) -> Dict[str, Dict[str, float]]:
    """Per-tenant QoS table from the merged per-device demand counters.

    One entry per device seen post-warmup, in sorted device order (same
    convention as ``device_read_stats``): demand accesses/hits/hit_rate
    over reads *and* writes, read count + per-tenant AMAT (mean demand-read
    latency), prefetches the tenant consumed, and DRAM fetches its misses
    caused.
    """
    tenants: Dict[str, Dict[str, float]] = {}
    for device, counts in sorted(channel_metrics.device_demand.items()):
        accesses, hits, useful, dram_reads = counts
        read_stats = channel_metrics.device_read_latency.get(device)
        tenants[device] = {
            "accesses": accesses,
            "hits": hits,
            "hit_rate": hits / accesses if accesses else 0.0,
            "reads": read_stats.count if read_stats is not None else 0,
            "amat": read_stats.mean if read_stats is not None else 0.0,
            "useful_prefetches": useful,
            "dram_reads": dram_reads,
        }
    return tenants


def run_workload(abbr_or_profile, prefetcher_name: str,
                 length: int = DEFAULT_TRACE_LENGTH, seed: int = 0,
                 config: Optional[SimConfig] = None,
                 parallelism: Parallelism = "serial") -> RunMetrics:
    """Generate a workload's trace and simulate one prefetcher over it.

    Args:
        abbr_or_profile: a Table-2 abbreviation (``"CFM"``) or a
            :class:`WorkloadProfile`.
        parallelism: ``"serial"`` (default), ``"auto"`` or a worker count;
            a single run parallelises at the channel grain, bit-identically
            to serial execution.
    """
    profile = (abbr_or_profile if isinstance(abbr_or_profile, WorkloadProfile)
               else get_profile(abbr_or_profile))
    config = config or SimConfig.experiment_scale()
    records = generate_trace_buffer(profile, length, seed=seed,
                                    layout=config.layout)
    return simulate(records, prefetcher_name,
                    workload_name=profile.abbr, config=config,
                    parallelism=parallelism).metrics


def compare_prefetchers(abbr_or_profile,
                        prefetchers: Iterable[str] = DEFAULT_PREFETCHERS,
                        length: int = DEFAULT_TRACE_LENGTH, seed: int = 0,
                        config: Optional[SimConfig] = None,
                        parallelism: Parallelism = "serial"
                        ) -> Dict[str, RunMetrics]:
    """Run several prefetchers over the *same* generated trace.

    With ``parallelism`` other than ``"serial"``, each (workload,
    prefetcher) pair becomes an independent task on a process pool: the
    worker regenerates the trace from ``(profile, length, seed)`` — the
    generator is seed-deterministic, so every worker sees the records a
    serial run would, and the returned ``RunMetrics`` are bit-identical
    to serial mode (enforced by ``tests/test_parallel_equivalence.py``).
    """
    profile = (abbr_or_profile if isinstance(abbr_or_profile, WorkloadProfile)
               else get_profile(abbr_or_profile))
    config = config or SimConfig.experiment_scale()
    names = list(prefetchers)
    executor = ParallelExecutor(parallelism)
    if executor.workers_for(len(names)) > 1:
        tasks = [SimulationTask(profile=profile, prefetcher=name,
                                length=length, seed=seed, config=config)
                 for name in names]
        return dict(zip(names, executor.run_tasks(tasks)))
    records = generate_trace_buffer(profile, length, seed=seed,
                                    layout=config.layout)
    results: Dict[str, RunMetrics] = {}
    for name in names:
        results[name] = simulate(records, name, workload_name=profile.abbr,
                                 config=config).metrics
    return results
