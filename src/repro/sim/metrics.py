"""Simulation metrics: AMAT, hit rate, traffic, accuracy/coverage, IPC proxy.

Definitions used throughout the evaluation:

* **AMAT** — mean demand-*read* latency seen by the requester, in
  memory-controller cycles (writes are posted and leave the critical path,
  but still consume DRAM bandwidth and energy).
* **traffic** — total DRAM data transfers (demand reads + prefetch reads +
  writes + write-backs); the paper's "memory traffic overhead" is the
  ratio of this against the no-prefetcher run.
* **accuracy** — useful prefetches / prefetch fills.
* **coverage** — useful prefetches / (useful prefetches + remaining
  misses): the fraction of would-be misses the prefetcher absorbed.
* **IPC proxy** — the paper converts AMAT into whole-system IPC through
  its trace+RTL flow; we use the standard memory-stall decomposition
  ``speedup = 1 / ((1 − μ) + μ · AMAT_new/AMAT_base)`` with a per-app
  memory-intensity μ (documented in EXPERIMENTS.md).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.utils.statistics import Histogram, RunningStats


@dataclass
class MetricSet:
    """Raw per-channel accumulation during simulation.

    Beyond the aggregate AMAT, read latency is tracked per requesting
    device — the SC is shared by CPU/GPU/NPU/ISP/DSP (paper §1), and which
    device a prefetcher helps is a first-class question on an SoC.
    """

    demand_reads: int = 0
    demand_writes: int = 0
    read_latency: RunningStats = field(default_factory=RunningStats)
    all_latency: RunningStats = field(default_factory=RunningStats)
    latency_histogram: Histogram = field(default_factory=lambda: Histogram(25.0))
    device_read_latency: Dict[str, RunningStats] = field(default_factory=dict)
    #: Per-device demand counters ``[accesses, hits, useful_prefetches,
    #: dram_reads]`` over *all* post-warmup accesses (reads and writes) —
    #: the tenant-attribution substrate.  A hit is a plain hit only
    #: (delayed hits count as misses, matching CacheStats); useful means
    #: the access consumed a prefetched block; dram means the access
    #: itself fetched from DRAM (including write fetch-for-ownership).
    device_demand: Dict[str, list] = field(default_factory=dict)

    def record(self, latency: int, is_read: bool,
               device: Optional[str] = None, hit: bool = False,
               useful: bool = False, dram: bool = False) -> None:
        if device is not None:
            demand = self.device_demand.get(device)
            if demand is None:
                demand = self.device_demand[device] = [0, 0, 0, 0]
            demand[0] += 1
            if hit:
                demand[1] += 1
            if useful:
                demand[2] += 1
            if dram:
                demand[3] += 1
        # The two unconditional RunningStats updates and the histogram are
        # inlined (same Welford operations in the same order as
        # RunningStats.add / Histogram.add, so results are bit-identical):
        # record() runs once per post-warmup access and the method-call
        # overhead of the delegating form shows up in profiles.
        stats = self.all_latency
        count = stats.count + 1
        stats.count = count
        delta = latency - stats._mean
        mean = stats._mean + delta / count
        stats._mean = mean
        stats._m2 += delta * (latency - mean)
        if stats.min is None or latency < stats.min:
            stats.min = latency
        if stats.max is None or latency > stats.max:
            stats.max = latency
        if is_read:
            self.demand_reads += 1
            stats = self.read_latency
            count = stats.count + 1
            stats.count = count
            delta = latency - stats._mean
            mean = stats._mean + delta / count
            stats._mean = mean
            stats._m2 += delta * (latency - mean)
            if stats.min is None or latency < stats.min:
                stats.min = latency
            if stats.max is None or latency > stats.max:
                stats.max = latency
            histogram = self.latency_histogram
            bucket = int(latency // histogram.bucket_width)
            buckets = histogram._buckets
            buckets[bucket] = buckets.get(bucket, 0) + 1
            histogram.count += 1
            if device is not None:
                stats = self.device_read_latency.get(device)
                if stats is None:
                    stats = self.device_read_latency[device] = RunningStats()
                stats.add(latency)
        else:
            self.demand_writes += 1

    def state_dict(self) -> dict:
        """Snapshot every aggregate, bit-exactly (checkpoint support)."""
        return {
            "demand_reads": self.demand_reads,
            "demand_writes": self.demand_writes,
            "read_latency": self.read_latency.state_dict(),
            "all_latency": self.all_latency.state_dict(),
            "latency_histogram": self.latency_histogram.state_dict(),
            "device_read_latency": {
                device: stats.state_dict()
                for device, stats in self.device_read_latency.items()
            },
            "device_demand": {
                device: list(counts)
                for device, counts in self.device_demand.items()
            },
        }

    def load_state(self, state: dict) -> None:
        self.demand_reads = state["demand_reads"]
        self.demand_writes = state["demand_writes"]
        self.read_latency.load_state(state["read_latency"])
        self.all_latency.load_state(state["all_latency"])
        self.latency_histogram.load_state(state["latency_histogram"])
        self.device_read_latency = {}
        for device, saved in state["device_read_latency"].items():
            stats = RunningStats()
            stats.load_state(saved)
            self.device_read_latency[device] = stats
        # Absent in checkpoints written before tenant attribution existed.
        self.device_demand = {
            device: list(counts)
            for device, counts in state.get("device_demand", {}).items()
        }

    def merge(self, other: "MetricSet") -> None:
        self.demand_reads += other.demand_reads
        self.demand_writes += other.demand_writes
        self.read_latency.merge(other.read_latency)
        self.all_latency.merge(other.all_latency)
        self.latency_histogram.merge(other.latency_histogram)
        for device, stats in other.device_read_latency.items():
            mine = self.device_read_latency.get(device)
            if mine is None:
                mine = self.device_read_latency[device] = RunningStats()
            mine.merge(stats)
        for device, counts in other.device_demand.items():
            mine_counts = self.device_demand.get(device)
            if mine_counts is None:
                self.device_demand[device] = list(counts)
            else:
                for index, value in enumerate(counts):
                    mine_counts[index] += value


@dataclass(frozen=True)
class RunMetrics:
    """Condensed results of one (workload, prefetcher) simulation."""

    workload: str
    prefetcher: str
    amat: float
    hit_rate: float
    demand_accesses: int
    demand_misses: int
    dram_traffic: int
    prefetch_issued: int
    prefetch_fills: int
    prefetch_useful: int
    prefetch_useful_by_source: Dict[str, int]
    prefetch_unused: int
    power_mw: float
    energy_nj: float
    storage_bits: int
    p99_latency: float = 0.0
    #: Per-requesting-device read breakdown: ``{device: {"reads": n,
    #: "mean_latency": cycles}}`` — the SC is shared by CPU/GPU/NPU/ISP/DSP,
    #: so which device a prefetcher helps is reported alongside the
    #: aggregate AMAT.  Plain dicts so the value survives the service's
    #: JSON hop bit-exactly.
    device_read_stats: Dict[str, Dict[str, float]] = field(
        default_factory=dict)
    #: Per-tenant QoS breakdown keyed by device name: accesses, hits,
    #: hit_rate, reads, amat (mean demand-read latency), useful_prefetches
    #: and dram_reads — the multi-tenant companion to the aggregate
    #: metrics above.  Plain dicts for lossless service JSON transport;
    #: empty for runs recorded before tenant attribution existed, so old
    #: payloads still deserialize.
    tenant_stats: Dict[str, Dict[str, float]] = field(default_factory=dict)

    @property
    def accuracy(self) -> float:
        """Useful prefetches over *DRAM-fetched* prefetches.

        Candidates deduplicated by the queue or already resident in the SC
        never cost bandwidth, so accuracy is judged on actual fills.
        """
        fills = self.prefetch_fills
        return self.prefetch_useful / fills if fills else 0.0

    @property
    def coverage(self) -> float:
        base = self.prefetch_useful + self.demand_misses
        return self.prefetch_useful / base if base else 0.0

    def amat_reduction_vs(self, baseline: "RunMetrics") -> float:
        """Fractional AMAT reduction vs a baseline run (positive = better)."""
        if baseline.amat <= 0:
            return 0.0
        return 1.0 - self.amat / baseline.amat

    def traffic_overhead_vs(self, baseline: "RunMetrics") -> float:
        """Fractional extra DRAM traffic vs a baseline run."""
        if baseline.dram_traffic <= 0:
            return 0.0
        return self.dram_traffic / baseline.dram_traffic - 1.0

    def power_overhead_vs(self, baseline: "RunMetrics") -> float:
        """Fractional extra memory-system power vs a baseline run."""
        if baseline.energy_nj <= 0:
            return 0.0
        return self.energy_nj / baseline.energy_nj - 1.0


def ipc_speedup(amat: float, baseline_amat: float, memory_intensity: float) -> float:
    """AMAT→IPC proxy: memory-stall-fraction scaling.

    Args:
        amat: the configuration under evaluation.
        baseline_amat: the reference configuration (usually no prefetcher).
        memory_intensity: μ ∈ [0, 1], the fraction of baseline execution
            time attributable to SC-level memory stalls.

    Returns:
        IPC(config) / IPC(baseline); >1 means faster.
    """
    if not 0.0 <= memory_intensity <= 1.0:
        raise ValueError(f"memory_intensity must be in [0, 1], got {memory_intensity}")
    if baseline_amat <= 0:
        return 1.0
    ratio = amat / baseline_amat
    denominator = (1.0 - memory_intensity) + memory_intensity * ratio
    if denominator <= 0:
        return 1.0
    return 1.0 / denominator
