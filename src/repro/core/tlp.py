"""TLP — Transfer-Learning directed Prefetcher (paper Section 4.2).

TLP lets a page without history of its own borrow the footprint of a
*learnable neighbour*: a recently seen page whose page number differs by at
most ``distance_threshold`` (64) and whose access bitmap shares at least
``min_common_bits`` (4) set bits with the trigger page's bitmap so far.
Among the candidates the most similar (most common set bits) wins, and the
blocks set in the neighbour's bitmap but not yet accessed on the trigger
page are prefetched (Figure 6).

The hardware structure is the 128-entry Recent Page Table (RPT): each
entry holds a 16-bit recently-accessed bitmap and 128 1-bit "Ref" fields
precomputing which other entries are within the neighbour distance, so the
issuing phase only compares bitmaps against Ref=1 entries.  This class
models the Ref bits as per-entry neighbour sets maintained at
allocation/eviction time — bit-for-bit the same reachability, evaluated
lazily.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import List, Optional, Set

from repro.config import TLPConfig
from repro.geometry import AddressLayout
from repro.prefetch.base import DemandAccess, PrefetchCandidate, Prefetcher
from repro.utils.bitops import iter_set_bits


class _RPTEntry:
    __slots__ = ("bitmap", "refs")

    def __init__(self) -> None:
        self.bitmap = 0
        self.refs: Set[int] = set()


class TLPPrefetcher(Prefetcher):
    """Inter-page pattern-transfer prefetcher."""

    name = "tlp"

    def __init__(self, layout: AddressLayout, channel: int,
                 config: Optional[TLPConfig] = None) -> None:
        super().__init__(layout, channel)
        self.config = config or TLPConfig()
        self._rpt: "OrderedDict[int, _RPTEntry]" = OrderedDict()
        self.transfers = 0

    # ------------------------------------------------------------------
    # Learning phase
    # ------------------------------------------------------------------
    def observe(self, access: DemandAccess) -> None:
        self.observe_fields(access.page, access.block_in_segment, access.time)

    def observe_fields(self, page: int, offset: int, now: int) -> None:
        """:meth:`observe` taking the consumed fields directly (``now`` is
        accepted for signature uniformity with SLP; TLP never reads the
        clock).  The batch engine's run folding calls this to avoid
        materialising a :class:`RunAccess` per run."""
        entry = self._rpt.get(page)
        self.activity.table_reads += 1
        if entry is None:
            entry = self._allocate(page)
        entry.bitmap |= 1 << offset
        self._rpt.move_to_end(page)
        self.activity.table_writes += 1

    # ------------------------------------------------------------------
    # Batch-engine contract
    # ------------------------------------------------------------------
    def hit_trigger_noop(self) -> bool:
        # issue() returns before any table/counter touch on hits when
        # issuing is miss-only.
        return self.config.issue_on_miss_only

    def supports_observe_run(self) -> bool:
        # observe() never reads the clock, so run folding is exact
        # unconditionally; tracer gating kept for uniformity (observe
        # emits no events today).
        return not self.tracer.enabled

    def observe_run(self, page: int, offsets, times) -> None:
        """Fold a run of same-page accesses, bit-identically to observe().

        The first access allocates/refreshes the RPT entry through
        :meth:`observe`; every later access of the run would hit the same
        entry (already at the LRU tail), so the remainder collapses to one
        bitmap OR plus the per-access activity counts.
        """
        self.observe_fields(page, offsets[0], times[0])
        count = len(offsets)
        if count == 1:
            return
        bits = 0
        for offset in offsets[1:]:
            bits |= 1 << offset
        self._rpt[page].bitmap |= bits
        self.activity.table_reads += count - 1
        self.activity.table_writes += count - 1

    def _allocate(self, page: int) -> _RPTEntry:
        """Allocate an RPT entry, computing its Ref bits against residents."""
        entry = _RPTEntry()
        threshold = self.config.distance_threshold
        low = page - threshold
        high = page + threshold
        refs_add = entry.refs.add
        for other_page, other_entry in self._rpt.items():
            if low <= other_page <= high:
                refs_add(other_page)
                other_entry.refs.add(page)
        self._rpt[page] = entry
        while len(self._rpt) > self.config.rpt_entries:
            victim_page, victim = self._rpt.popitem(last=False)
            for neighbour_page in victim.refs:
                neighbour = self._rpt.get(neighbour_page)
                if neighbour is not None:
                    neighbour.refs.discard(victim_page)
        return entry

    # ------------------------------------------------------------------
    # Issuing phase
    # ------------------------------------------------------------------
    def best_neighbour(self, page: int) -> Optional[int]:
        """The most similar learnable neighbour's page number, if any.

        A donor qualifies when it shares at least ``min_common_bits`` with
        the trigger's bitmap *and* contradicts it by at most
        ``max_foreign_bits`` (trigger blocks the donor never touched) —
        the Section 4.1 "small bitmap difference" requirement evaluated on
        the partially accumulated trigger bitmap.
        """
        entry = self._rpt.get(page)
        if entry is None:
            return None
        return self._best_neighbour(entry)[0]

    def _best_neighbour(self, entry: _RPTEntry):
        """(page, entry) of the winning donor for a resident trigger entry
        (``(None, None)`` when no neighbour qualifies) — the loop behind
        :meth:`best_neighbour`, shared with :meth:`issue` so the hot
        issuing path skips the redundant RPT lookups."""
        config = self.config
        min_common = config.min_common_bits
        max_foreign = config.max_foreign_bits
        max_transfer = config.max_transfer_bits
        rpt_get = self._rpt.get
        bitmap = entry.bitmap
        best_page = None
        best_entry = None
        best_difference = None
        for neighbour_page in entry.refs:
            neighbour = rpt_get(neighbour_page)
            if neighbour is None:
                continue
            # int.bit_count() directly — bitmaps are non-negative by
            # construction, so utils.bitops.popcount's guard is redundant
            # on this per-candidate path.
            neighbour_bitmap = neighbour.bitmap
            common = (bitmap & neighbour_bitmap).bit_count()
            if common < min_common:
                continue
            foreign = (bitmap & ~neighbour_bitmap).bit_count()
            if foreign > max_foreign:
                continue
            extra = (neighbour_bitmap & ~bitmap).bit_count()
            if extra > max_transfer:
                continue
            # Section 4.1's similarity metric: smallest bitmap difference
            # wins, so a same-size pattern beats a dense superset that
            # would pass a bare subset test by accident.
            difference = foreign + extra
            if best_difference is None or difference < best_difference:
                best_difference = difference
                best_page = neighbour_page
                best_entry = neighbour
        return best_page, best_entry

    def issue(self, access: DemandAccess, was_hit: bool,
              prefetched_hit: bool = False) -> List[PrefetchCandidate]:
        if was_hit and self.config.issue_on_miss_only:
            return []
        page = access.page
        entry = self._rpt.get(page)
        self.activity.table_reads += 1
        if entry is None:
            return []
        neighbour_page, neighbour = self._best_neighbour(entry)
        if neighbour_page is None:
            return []
        own = entry.bitmap | (1 << access.block_in_segment)
        remaining = neighbour.bitmap & ~own
        if remaining:
            self.transfers += 1
            if self.tracer.enabled:
                self.tracer.emit("tlp_transfer", access.time, page=page,
                                 neighbour_page=neighbour_page,
                                 blocks=remaining.bit_count())
        candidates = [self._candidate(page, offset)
                      for offset in iter_set_bits(remaining)]
        if self.lineage is not None and candidates:
            self.lineage.note_issue(
                candidates, f"tlp/{abs(page - neighbour_page)}")
        return candidates

    # ------------------------------------------------------------------
    def storage_bits(self) -> int:
        from repro.core.storage import tlp_storage_bits

        return tlp_storage_bits(self.config)

    def rpt_occupancy(self) -> int:
        return len(self._rpt)

    def bitmap_of(self, page: int) -> Optional[int]:
        entry = self._rpt.get(page)
        return entry.bitmap if entry is not None else None
