"""Bit-level storage accounting for Planaria's metadata tables.

The paper reports Planaria's total storage as **345.2 KB, 8.4 % of the
4 MB SC**.  This module reproduces that accounting from first principles.
Field widths assume a 36-bit physical address space (64 GB, ample for a
phone), hence a 24-bit page number tag (36 − 12 page-offset bits), 16-bit
segment bitmaps, and 32-bit timestamps.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.config import PlanariaConfig, SLPConfig, TLPConfig

PAGE_TAG_BITS = 24
BITMAP_BITS = 16
TIMESTAMP_BITS = 32


def slp_storage_bits(config: SLPConfig) -> int:
    """SLP's three tables, per channel."""
    ft_entry = PAGE_TAG_BITS + BITMAP_BITS + TIMESTAMP_BITS
    at_entry = PAGE_TAG_BITS + BITMAP_BITS + TIMESTAMP_BITS
    pt_entry = PAGE_TAG_BITS + BITMAP_BITS
    return (
        config.filter_table_entries * ft_entry
        + config.accumulation_table_entries * at_entry
        + config.pattern_table_entries * pt_entry
    )


def tlp_storage_bits(config: TLPConfig) -> int:
    """TLP's Recent Page Table, per channel.

    Each entry: PN tag, 16-bit bitmap, N−1 useful Ref bits (referring to a
    page itself is meaningless — Section 4.2), and an LRU stamp.
    """
    ref_bits = config.rpt_entries - 1
    lru_bits = 16
    entry = PAGE_TAG_BITS + BITMAP_BITS + ref_bits + lru_bits
    return config.rpt_entries * entry


@dataclass(frozen=True)
class StorageBudget:
    """Planaria's storage, per channel and system-wide."""

    per_table_bits: Dict[str, int]
    num_channels: int

    @property
    def per_channel_bits(self) -> int:
        return sum(self.per_table_bits.values())

    @property
    def total_bits(self) -> int:
        return self.per_channel_bits * self.num_channels

    @property
    def total_kib(self) -> float:
        return self.total_bits / 8 / 1024

    def fraction_of_cache(self, cache_bytes: int = 4 << 20) -> float:
        """Storage as a fraction of the SC capacity (paper: 8.4 % of 4 MB)."""
        if cache_bytes <= 0:
            raise ValueError(f"cache_bytes must be positive, got {cache_bytes}")
        return (self.total_bits / 8) / cache_bytes

    def format_table(self) -> str:
        lines = ["table                bits/channel      KiB/channel"]
        for table_name, bits in self.per_table_bits.items():
            lines.append(f"{table_name:<20} {bits:>12}    {bits / 8 / 1024:>10.2f}")
        lines.append(
            f"{'TOTAL x' + str(self.num_channels) + ' channels':<20} "
            f"{self.total_bits:>12}    {self.total_kib:>10.2f}"
        )
        return "\n".join(lines)


def planaria_storage_budget(
    config: PlanariaConfig = None, num_channels: int = 4
) -> StorageBudget:
    """Compute the full Planaria storage budget (expect ≈345 KB)."""
    if config is None:
        config = PlanariaConfig()
    slp = config.slp
    ft_bits = slp.filter_table_entries * (PAGE_TAG_BITS + BITMAP_BITS + TIMESTAMP_BITS)
    at_bits = slp.accumulation_table_entries * (
        PAGE_TAG_BITS + BITMAP_BITS + TIMESTAMP_BITS
    )
    pt_bits = slp.pattern_table_entries * (PAGE_TAG_BITS + BITMAP_BITS)
    return StorageBudget(
        per_table_bits={
            "SLP filter (FT)": ft_bits,
            "SLP accumulation (AT)": at_bits,
            "SLP pattern (PT)": pt_bits,
            "TLP recent-page (RPT)": tlp_storage_bits(config.tlp),
        },
        num_channels=num_channels,
    )
