"""Planaria: the paper's composite prefetcher.

* :class:`~repro.core.slp.SLPPrefetcher` — intra-page self-learning
  (Filter Table → Accumulation Table → Pattern History Table).
* :class:`~repro.core.tlp.TLPPrefetcher` — inter-page transfer learning
  (Recent Page Table with neighbour Ref bits).
* :class:`~repro.core.planaria.PlanariaPrefetcher` — the coordinator that
  trains both in parallel and lets exactly one issue per trigger.
* :mod:`repro.core.storage` — bit-level storage accounting (the paper's
  345.2 KB / 8.4 %-of-SC figure).
"""

from repro.core.slp import SLPPrefetcher
from repro.core.tlp import TLPPrefetcher
from repro.core.planaria import PlanariaPrefetcher
from repro.core.storage import StorageBudget, planaria_storage_budget

__all__ = [
    "SLPPrefetcher",
    "TLPPrefetcher",
    "PlanariaPrefetcher",
    "StorageBudget",
    "planaria_storage_budget",
]
