"""Planaria — the composite prefetcher with its coordinator (Section 2).

The coordinator's insight is to **decouple learning from issuing**:

* **Parallel training** — both sub-prefetchers observe *every* demand
  access, so each learns from the complete stream ("full-pattern
  directed").
* **Serial issuing** — exactly one sub-prefetcher issues per trigger: SLP
  preferentially, TLP only when SLP has no history for the page.  This
  keeps accuracy high (SLP's self-learned pattern beats a transferred one
  when available) without sacrificing coverage (TLP catches the pages SLP
  must pass on).

Two ablation coordinators reproduce the prior-art behaviours the paper
contrasts against (Section 7):

* ``serial`` — TPC-style monolithic serial coordination: the selected
  sub-prefetcher both learns *and* issues; the other sees nothing.  TLP
  then trains only on SLP's leftovers and its coverage collapses.
* ``parallel`` — ISB-style: both learn and both issue; coverage union but
  accuracy suffers (duplicate and lower-confidence prefetches go out).
"""

from __future__ import annotations

from typing import List, Optional

from repro.config import PlanariaConfig
from repro.geometry import AddressLayout
from repro.prefetch.base import DemandAccess, PrefetchCandidate, Prefetcher
from repro.core.slp import SLPPrefetcher
from repro.core.tlp import TLPPrefetcher


class PlanariaPrefetcher(Prefetcher):
    """SLP + TLP under the decoupled coordinator."""

    name = "planaria"

    def __init__(self, layout: AddressLayout, channel: int,
                 config: Optional[PlanariaConfig] = None) -> None:
        super().__init__(layout, channel)
        self.config = config or PlanariaConfig()
        self.slp = SLPPrefetcher(layout, channel, self.config.slp)
        self.tlp = TLPPrefetcher(layout, channel, self.config.tlp)
        self.slp_issues = 0
        self.tlp_issues = 0
        # Arbitration outcomes per trigger: which way the coordinator's
        # selection went and whether the selected issuer produced
        # candidates.  Cheap (one branch + one increment per trigger) and
        # always on, so timelines can slice them into epochs.
        self.coord_slp_issued = 0
        self.coord_tlp_fallback = 0
        self.coord_neither = 0

    # ------------------------------------------------------------------
    def observe(self, access: DemandAccess) -> None:
        page = access.page
        offset = access.block_in_segment
        now = access.time
        if self.config.coordinator == "serial":
            # Monolithic serial coordination: only the sub-prefetcher that
            # would issue for this page gets to learn from the access.
            if self.slp.has_pattern(page):
                self.slp.observe_fields(page, offset, now)
            else:
                # SLP must still build patterns, but TLP sees only SLP's
                # gaps.
                self.slp.observe_fields(page, offset, now)
                self.tlp.observe_fields(page, offset, now)
            return
        # "decoupled" and "parallel" both train everything on everything.
        self.slp.observe_fields(page, offset, now)
        self.tlp.observe_fields(page, offset, now)

    # ------------------------------------------------------------------
    # Batch-engine contract
    # ------------------------------------------------------------------
    def hit_trigger_noop(self) -> bool:
        # On a hit both sub-issuers return [] before touching state, so
        # the only effect of a hit trigger — in every coordinator mode —
        # is one coord_neither increment, applied via skip_hit_triggers.
        return (self.slp.hit_trigger_noop() and self.tlp.hit_trigger_noop())

    def skip_hit_triggers(self, count: int) -> None:
        self.coord_neither += count

    def supports_observe_run(self) -> bool:
        # The serial coordinator branches per access on has_pattern(),
        # which SLP expiry can flip mid-run — no sound batched form.
        return (self.config.coordinator != "serial"
                and self.slp.supports_observe_run()
                and self.tlp.supports_observe_run())

    def observe_run(self, page: int, offsets, times) -> None:
        self.slp.observe_run(page, offsets, times)
        self.tlp.observe_run(page, offsets, times)

    def issue(self, access: DemandAccess, was_hit: bool,
              prefetched_hit: bool = False) -> List[PrefetchCandidate]:
        mode = self.config.coordinator
        if mode == "parallel":
            slp_candidates = self.slp.issue(access, was_hit, prefetched_hit)
            tlp_candidates = self.tlp.issue(access, was_hit, prefetched_hit)
            if slp_candidates:
                self.coord_slp_issued += 1
            if tlp_candidates:
                self.coord_tlp_fallback += 1
            elif not slp_candidates:
                self.coord_neither += 1
            candidates = slp_candidates + tlp_candidates
            self._count(candidates)
            return candidates
        # Decoupled (the paper's design) and serial both select one issuer;
        # the selection rule prefers SLP and falls back to TLP only when
        # SLP has no history information for this page (Section 2).
        if self.slp.has_pattern(access.page):
            candidates = self.slp.issue(access, was_hit, prefetched_hit)
            if candidates:
                self.coord_slp_issued += 1
            else:
                self.coord_neither += 1
        else:
            candidates = self.tlp.issue(access, was_hit, prefetched_hit)
            if candidates:
                self.coord_tlp_fallback += 1
            else:
                self.coord_neither += 1
        self._count(candidates)
        return candidates

    def _count(self, candidates: List[PrefetchCandidate]) -> None:
        self.issued_candidates += len(candidates)
        for candidate in candidates:
            if candidate.source == self.slp.name:
                self.slp_issues += 1
            elif candidate.source == self.tlp.name:
                self.tlp_issues += 1

    # ------------------------------------------------------------------
    def storage_bits(self) -> int:
        return self.slp.storage_bits() + self.tlp.storage_bits()

    @property
    def activity(self):  # type: ignore[override]
        """Aggregated metadata activity of both sub-prefetchers."""
        from repro.prefetch.base import PrefetcherActivityCounters

        merged = PrefetcherActivityCounters()
        merged.merge(self.slp.activity)
        merged.merge(self.tlp.activity)
        return merged

    @activity.setter
    def activity(self, value) -> None:
        # Prefetcher.__init__ assigns a fresh counter; the composite's
        # activity is always derived from its parts, so the base-class
        # assignment is accepted and ignored.
        pass
