"""SLP — Self-Learning directed Prefetcher (paper Section 3.2).

SLP records the *footprint snapshot* of recently accessed pages and, when
any block of a known snapshot is demanded again, prefetches all the other
blocks of the snapshot.  Its signature is the bare page number (PN) — no
PC — justified by the measured stability of snapshots across program
phases (Figure 4: >80 % window overlap).

The three tables and their life cycle (Figure 1, steps ①-⑤):

1. **Accumulation Table (AT)** — checked first on every demand access
   (step ①); accumulates the 16-bit bitmap of blocks touched in the page's
   current generation, stamped with the last access time.
2. **Filter Table (FT)** — pages miss into FT (step ②), which filters out
   snapshots with too few blocks: only after ``filter_threshold`` (=3)
   distinct offsets does the page graduate to AT (step ③).
3. **Pattern History Table (PT)** — when an AT entry times out (no access
   for ``at_timeout`` cycles), SLP declares the snapshot complete and
   stable and moves the bitmap to PT (step ④).  PT is what the issuing
   phase consults: on a demand *miss* to a page with a PT pattern, all
   not-yet-accessed blocks of the pattern are prefetched (step ⑤).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import List, Optional

from repro.config import SLPConfig
from repro.geometry import AddressLayout
from repro.prefetch.base import DemandAccess, PrefetchCandidate, Prefetcher
from repro.utils.bitops import iter_set_bits, popcount


class _AccumulationEntry:
    __slots__ = ("bitmap", "last_time")

    def __init__(self, bitmap: int, last_time: int) -> None:
        self.bitmap = bitmap
        self.last_time = last_time


class SLPPrefetcher(Prefetcher):
    """Intra-page footprint-snapshot prefetcher, PN-indexed."""

    name = "slp"

    def __init__(self, layout: AddressLayout, channel: int,
                 config: Optional[SLPConfig] = None) -> None:
        super().__init__(layout, channel)
        self.config = config or SLPConfig()
        # All three tables are LRU-ordered OrderedDicts keyed by PN.  The
        # AT is kept ordered by *last access time* so timeout expiry only
        # inspects the front.
        self._filter_table: "OrderedDict[int, _AccumulationEntry]" = OrderedDict()
        self._accumulation_table: "OrderedDict[int, _AccumulationEntry]" = OrderedDict()
        self._pattern_table: "OrderedDict[int, int]" = OrderedDict()
        self.snapshots_learned = 0
        self.ft_promotions = 0

    # ------------------------------------------------------------------
    # Learning phase
    # ------------------------------------------------------------------
    def observe(self, access: DemandAccess) -> None:
        self.observe_fields(access.page, access.block_in_segment, access.time)

    def observe_fields(self, page: int, offset: int, now: int) -> None:
        """:meth:`observe` taking the three consumed fields directly.

        The batch engine's run folding calls this to avoid materialising a
        :class:`RunAccess` per run; semantics are exactly ``observe``.
        """
        self._expire_accumulation(now)
        bit = 1 << offset
        self.activity.table_reads += 1

        entry = self._accumulation_table.get(page)
        if entry is not None:                                  # step ①: AT hit
            entry.bitmap |= bit
            entry.last_time = now
            self._accumulation_table.move_to_end(page)
            self.activity.table_writes += 1
            return

        ft_entry = self._filter_table.get(page)
        if ft_entry is not None:                               # step ②/③: FT
            ft_entry.bitmap |= bit
            ft_entry.last_time = now
            self._filter_table.move_to_end(page)
            self.activity.table_writes += 1
            if popcount(ft_entry.bitmap) >= self.config.filter_threshold:
                del self._filter_table[page]                   # step ③: promote
                self._at_insert(page, ft_entry)
                self.ft_promotions += 1
            return

        self._filter_table[page] = _AccumulationEntry(bit, now)
        self.activity.table_writes += 1
        while len(self._filter_table) > self.config.filter_table_entries:
            self._filter_table.popitem(last=False)             # drop sparse pages

    # ------------------------------------------------------------------
    # Batch-engine contract
    # ------------------------------------------------------------------
    def hit_trigger_noop(self) -> bool:
        # issue() returns before any table/counter touch on hits when
        # issuing is miss-only (the paper's configuration).
        return self.config.issue_on_miss_only

    def supports_observe_run(self) -> bool:
        # Batched expiry re-stamps nothing, but tracer events would carry
        # the run-end time instead of the per-access expiry time.
        return not self.tracer.enabled

    def observe_run(self, page: int, offsets, times) -> None:
        """Fold a run of same-page accesses, bit-identically to observe().

        The first access goes through :meth:`observe` unchanged (it may
        allocate in FT or promote to AT).  If the page then sits in the
        AT and the run spans at most ``at_timeout`` cycles, the remaining
        accesses collapse to one bitmap OR + one expiry sweep: the AT-hit
        path never inserts or evicts, expiry decisions depend only on
        each front entry's ``last_time`` versus the sweep time (and our
        entry cannot time out mid-run under the span guard), and learned
        snapshots carry their own timestamps — so the final table
        contents, order and counters match the per-access loop exactly.
        Otherwise (page still filtering, or a paused run) the remaining
        accesses replay through :meth:`observe` one by one — a mid-run
        FT→AT promotion can capacity-evict, which must happen at the
        per-access times.
        """
        self.observe_fields(page, offsets[0], times[0])
        count = len(offsets)
        if count == 1:
            return
        entry = self._accumulation_table.get(page)
        if entry is not None and times[-1] - times[0] <= self.config.at_timeout:
            self._expire_accumulation(times[-1])
            bits = 0
            for offset in offsets[1:]:
                bits |= 1 << offset
            entry.bitmap |= bits
            entry.last_time = times[-1]
            self._accumulation_table.move_to_end(page)
            self.activity.table_reads += count - 1
            self.activity.table_writes += count - 1
            return
        for offset, now in zip(offsets[1:], times[1:]):
            self.observe_fields(page, offset, now)

    def _at_insert(self, page: int, entry: _AccumulationEntry) -> None:
        self._accumulation_table[page] = entry
        self._accumulation_table.move_to_end(page)
        while len(self._accumulation_table) > self.config.accumulation_table_entries:
            victim_page, victim = self._accumulation_table.popitem(last=False)
            self._learn_snapshot(victim_page, victim.bitmap, victim.last_time)

    def _expire_accumulation(self, now: int) -> None:
        """Step ④: timed-out AT entries carry a complete snapshot to PT."""
        table = self._accumulation_table
        if not table:
            return
        timeout = self.config.at_timeout
        while table:
            page = next(iter(table))
            entry = table[page]
            if now - entry.last_time <= timeout:
                break
            del table[page]
            self._learn_snapshot(page, entry.bitmap, entry.last_time)

    def _learn_snapshot(self, page: int, bitmap: int, now: int) -> None:
        self._pattern_table[page] = bitmap
        self._pattern_table.move_to_end(page)
        self.activity.table_writes += 1
        self.snapshots_learned += 1
        if self.tracer.enabled:
            self.tracer.emit("slp_snapshot_learned", now, page=page,
                             bitmap=bitmap, blocks=bitmap.bit_count())
        while len(self._pattern_table) > self.config.pattern_table_entries:
            evicted_page, evicted_bitmap = self._pattern_table.popitem(last=False)
            if self.tracer.enabled:
                self.tracer.emit("slp_pattern_evicted", now,
                                 page=evicted_page, bitmap=evicted_bitmap)

    # ------------------------------------------------------------------
    # Issuing phase
    # ------------------------------------------------------------------
    def has_pattern(self, page: int) -> bool:
        """Whether SLP has history to issue for this page — the
        coordinator's selection predicate (Section 2)."""
        return page in self._pattern_table

    def issue(self, access: DemandAccess, was_hit: bool,
              prefetched_hit: bool = False) -> List[PrefetchCandidate]:
        if was_hit and self.config.issue_on_miss_only:
            return []
        pattern = self._pattern_table.get(access.page)
        self.activity.table_reads += 1
        if pattern is None:
            return []
        self._pattern_table.move_to_end(access.page)
        already = self._current_bitmap(access.page) | (1 << access.block_in_segment)
        remaining = pattern & ~already
        candidates = [self._candidate(access.page, offset)
                      for offset in iter_set_bits(remaining)]
        if self.lineage is not None and candidates:
            self.lineage.note_slp_issue(access.page, pattern, candidates)
        return candidates

    def _current_bitmap(self, page: int) -> int:
        """Blocks of this page already demanded in the current generation."""
        entry = self._accumulation_table.get(page)
        if entry is not None:
            return entry.bitmap
        ft_entry = self._filter_table.get(page)
        return ft_entry.bitmap if ft_entry is not None else 0

    # ------------------------------------------------------------------
    def storage_bits(self) -> int:
        """Bit-exact table budget (see repro.core.storage for the layout)."""
        from repro.core.storage import slp_storage_bits

        return slp_storage_bits(self.config)

    # Introspection used by tests and the TLP comparison example.
    def pattern_of(self, page: int) -> Optional[int]:
        return self._pattern_table.get(page)

    def table_sizes(self) -> dict:
        return {
            "filter": len(self._filter_table),
            "accumulation": len(self._accumulation_table),
            "pattern": len(self._pattern_table),
        }
