"""SMS-style spatial prefetcher (Somogyi et al., ISCA 2006) for the
PC-availability ablation.

Spatial Memory Streaming indexes footprint patterns by a signature of
``(PC, trigger offset)``.  On the memory side no PC exists; the closest
available surrogate is the requesting *device ID*, which aliases thousands
of instruction streams onto five signatures.  This class implements SMS
faithfully modulo that substitution, so the ablation bench
(`benchmarks/test_ablation_signature.py`) can quantify the paper's claim
that PC-indexed spatial prefetchers do not transplant to the SC — and that
SLP's PN-only signature is the right memory-side choice.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List

from repro.geometry import AddressLayout
from repro.prefetch.base import DemandAccess, PrefetchCandidate, Prefetcher
from repro.utils.bitops import iter_set_bits


@dataclass
class _Generation:
    """An active spatial-region generation being recorded."""

    signature: int
    first_offset: int
    bitmap: int
    last_time: int


class SMSPrefetcher(Prefetcher):
    """SMS with (device, trigger-offset) signatures standing in for (PC, offset)."""

    name = "sms"

    def __init__(self, layout: AddressLayout, channel: int,
                 pattern_table_entries: int = 2048,
                 active_generations: int = 64,
                 generation_timeout: int = 20_000) -> None:
        super().__init__(layout, channel)
        if pattern_table_entries < 1:
            raise ValueError("pattern_table_entries must be >= 1")
        self.pattern_table_entries = pattern_table_entries
        self.active_generations = active_generations
        self.generation_timeout = generation_timeout
        # page -> active generation
        self._active: "OrderedDict[int, _Generation]" = OrderedDict()
        # signature -> learned bitmap
        self._patterns: Dict[int, int] = {}

    def _signature(self, access: DemandAccess) -> int:
        # The PC surrogate: device ID + trigger offset (16 positions).
        return (int(access.device) << 4) | access.block_in_segment

    # ------------------------------------------------------------------
    def observe(self, access: DemandAccess) -> None:
        now = access.time
        self._expire(now)
        generation = self._active.get(access.page)
        self.activity.table_reads += 1
        if generation is None:
            generation = _Generation(
                signature=self._signature(access),
                first_offset=access.block_in_segment,
                bitmap=0,
                last_time=now,
            )
            self._active[access.page] = generation
            self._active.move_to_end(access.page)
            while len(self._active) > self.active_generations:
                _, evicted = self._active.popitem(last=False)
                self._learn(evicted)
        generation.bitmap |= 1 << access.block_in_segment
        generation.last_time = now

    def _expire(self, now: int) -> None:
        expired = [
            page for page, generation in self._active.items()
            if now - generation.last_time > self.generation_timeout
        ]
        for page in expired:
            self._learn(self._active.pop(page))

    def _learn(self, generation: _Generation) -> None:
        index = generation.signature % self.pattern_table_entries
        self._patterns[index] = generation.bitmap
        self.activity.table_writes += 1

    # ------------------------------------------------------------------
    def issue(self, access: DemandAccess, was_hit: bool,
              prefetched_hit: bool = False) -> List[PrefetchCandidate]:
        if was_hit:
            return []
        pattern = self._patterns.get(self._signature(access) % self.pattern_table_entries)
        self.activity.table_reads += 1
        if pattern is None:
            return []
        remaining = pattern & ~(1 << access.block_in_segment)
        return [self._candidate(access.page, offset)
                for offset in iter_set_bits(remaining)]

    def storage_bits(self) -> int:
        pt_bits = self.pattern_table_entries * 16
        # Active generation table: page tag 32b + signature 7b + bitmap 16b
        # + timestamp 16b.
        agt_bits = self.active_generations * (32 + 7 + 16 + 16)
        return pt_bits + agt_bits
