"""Multi-stream sequential prefetcher (a classic LLC "streamer").

Tracks several concurrent sequential streams by address region, in the
style of hardware streamers (e.g. the L2 streamer in commercial cores):

* a miss allocates a *tracker* for its 1 KB-ish region in "probing" state;
* a second miss in the region sets the direction (+1/−1) and starts
  confirming; further same-direction misses raise confidence;
* a confirmed stream prefetches ``degree`` blocks ahead of its head, up to
  ``distance`` blocks beyond the last demanded address.

This is the strongest purely-sequential baseline the SC could ship, and a
useful anchor between next-line (no state) and BOP (learned offset).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import List, Optional

from repro.geometry import AddressLayout
from repro.prefetch.base import DemandAccess, PrefetchCandidate, Prefetcher


class _StreamTracker:
    __slots__ = ("last_block", "direction", "confidence", "head")

    def __init__(self, block: int) -> None:
        self.last_block = block
        self.direction = 0
        self.confidence = 0
        self.head = block


class StreamPrefetcher(Prefetcher):
    """Region-based multi-stream sequential prefetcher."""

    name = "streamer"

    def __init__(self, layout: AddressLayout, channel: int,
                 trackers: int = 32,
                 region_blocks: int = 64,
                 confirm_threshold: int = 2,
                 degree: int = 4,
                 distance: int = 16) -> None:
        super().__init__(layout, channel)
        if trackers < 1:
            raise ValueError(f"trackers must be >= 1, got {trackers}")
        if region_blocks < 2:
            raise ValueError(f"region_blocks must be >= 2, got {region_blocks}")
        if confirm_threshold < 1:
            raise ValueError(f"confirm_threshold must be >= 1, got {confirm_threshold}")
        if degree < 1 or distance < degree:
            raise ValueError("need degree >= 1 and distance >= degree")
        self.trackers = trackers
        self.region_blocks = region_blocks
        self.confirm_threshold = confirm_threshold
        self.degree = degree
        self.distance = distance
        self._table: "OrderedDict[int, _StreamTracker]" = OrderedDict()
        self.streams_confirmed = 0

    def _region(self, channel_block: int) -> int:
        return channel_block // self.region_blocks

    # ------------------------------------------------------------------
    def observe(self, access: DemandAccess) -> None:
        """No-op: streams are defined on the miss stream seen by issue()."""

    def _train(self, channel_block: int) -> Optional[_StreamTracker]:
        region = self._region(channel_block)
        tracker = self._table.get(region)
        self.activity.table_reads += 1
        if tracker is None:
            tracker = _StreamTracker(channel_block)
            self._table[region] = tracker
            self._table.move_to_end(region)
            self.activity.table_writes += 1
            while len(self._table) > self.trackers:
                self._table.popitem(last=False)
            return None
        step = channel_block - tracker.last_block
        if step == 0:
            return None
        direction = 1 if step > 0 else -1
        if tracker.direction in (0, direction):
            previously_confirmed = tracker.confidence >= self.confirm_threshold
            tracker.direction = direction
            tracker.confidence += 1
            if (tracker.confidence >= self.confirm_threshold
                    and not previously_confirmed):
                self.streams_confirmed += 1
        else:
            tracker.direction = direction
            tracker.confidence = 1
            tracker.head = channel_block
        tracker.last_block = channel_block
        tracker.head = max(tracker.head, channel_block) if direction > 0 \
            else min(tracker.head, channel_block)
        self._table.move_to_end(region)
        self.activity.table_writes += 1
        return tracker

    # ------------------------------------------------------------------
    def issue(self, access: DemandAccess, was_hit: bool,
              prefetched_hit: bool = False) -> List[PrefetchCandidate]:
        if was_hit and not prefetched_hit:
            return []
        tracker = self._train(access.channel_block)
        if tracker is None or tracker.confidence < self.confirm_threshold:
            return []
        candidates: List[PrefetchCandidate] = []
        limit = access.channel_block + tracker.direction * self.distance
        for _ in range(self.degree):
            target = tracker.head + tracker.direction
            if tracker.direction > 0 and target > limit:
                break
            if tracker.direction < 0 and (target < limit or target < 0):
                break
            tracker.head = target
            self.issued_candidates += 1
            candidates.append(PrefetchCandidate(
                block_addr=self.channel_block_to_block_addr(target),
                source=self.name,
            ))
        return candidates

    def storage_bits(self) -> int:
        # Tracker: region tag 26b + last/head pointers 2x32b + dir 2b +
        # confidence 3b.
        return self.trackers * (26 + 64 + 2 + 3)
