"""GHB G/DC — Global History Buffer, delta-correlation flavour.

A classic temporal/delta-correlation prefetcher (Nesbit & Smith, HPCA
2004), adapted PC-free for the memory side: the GHB is a circular buffer
of recent miss addresses (channel-local block indices); an index table
maps the most recent *delta pair* to the GHB position where that pair last
occurred, and prediction replays the deltas that followed it.

Related-work context (paper §7): delta-based prefetchers "learn the
pattern of the delta history to predict future deltas"; the paper argues
the SC's scrambled order defeats them.  GHB G/DC is the purest delta-
history design, so it makes a sharp extra comparison point next to BOP
(one global delta) and SPP (compressed per-page delta paths).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.geometry import AddressLayout
from repro.prefetch.base import DemandAccess, PrefetchCandidate, Prefetcher


class GHBPrefetcher(Prefetcher):
    """Delta-correlation prefetcher over the miss stream."""

    name = "ghb"

    def __init__(self, layout: AddressLayout, channel: int,
                 ghb_entries: int = 512,
                 degree: int = 3,
                 max_delta: int = 64) -> None:
        super().__init__(layout, channel)
        if ghb_entries < 4:
            raise ValueError(f"ghb_entries must be >= 4, got {ghb_entries}")
        if degree < 1:
            raise ValueError(f"degree must be >= 1, got {degree}")
        if max_delta < 1:
            raise ValueError(f"max_delta must be >= 1, got {max_delta}")
        self.ghb_entries = ghb_entries
        self.degree = degree
        self.max_delta = max_delta
        # Circular history of miss block addresses (monotonic write index).
        self._history: List[int] = []
        self._write_index = 0
        # (delta1, delta2) -> monotonic GHB position of the pair's second miss.
        self._index: Dict[Tuple[int, int], int] = {}
        self._last_block: Optional[int] = None
        self._last_delta: Optional[int] = None

    # ------------------------------------------------------------------
    def _push(self, channel_block: int) -> int:
        """Append a miss to the GHB; returns its monotonic position."""
        position = self._write_index
        if len(self._history) < self.ghb_entries:
            self._history.append(channel_block)
        else:
            self._history[position % self.ghb_entries] = channel_block
        self._write_index += 1
        self.activity.table_writes += 1
        return position

    def _at(self, position: int) -> Optional[int]:
        """GHB entry at a monotonic position, if it has not been overwritten."""
        if position < 0 or position >= self._write_index:
            return None
        if self._write_index - position > self.ghb_entries:
            return None
        return self._history[position % self.ghb_entries]

    def observe(self, access: DemandAccess) -> None:
        """No-op: GHB is monolithic and trains on the miss stream in
        :meth:`issue` (the only stream delta correlation is defined on)."""

    # ------------------------------------------------------------------
    def issue(self, access: DemandAccess, was_hit: bool,
              prefetched_hit: bool = False) -> List[PrefetchCandidate]:
        if was_hit:
            return []
        block = access.channel_block
        candidates: List[PrefetchCandidate] = []

        delta = None
        if self._last_block is not None:
            delta = block - self._last_block
            if abs(delta) > self.max_delta:
                delta = None

        if delta is not None and self._last_delta is not None:
            pair = (self._last_delta, delta)
            previous = self._index.get(pair)
            self.activity.table_reads += 1
            if previous is not None:
                candidates = self._replay(block, previous)

        position = self._push(block)
        if delta is not None and self._last_delta is not None:
            self._index[(self._last_delta, delta)] = position
            if len(self._index) > 4 * self.ghb_entries:
                self._prune_index()
        self._last_block = block
        self._last_delta = delta
        return candidates

    def _replay(self, base: int, position: int) -> List[PrefetchCandidate]:
        """Replay the deltas that followed the pair's previous occurrence."""
        candidates: List[PrefetchCandidate] = []
        current = base
        for step in range(1, self.degree + 1):
            earlier = self._at(position + step - 1)
            later = self._at(position + step)
            if earlier is None or later is None:
                break
            delta = later - earlier
            if delta == 0 or abs(delta) > self.max_delta:
                break
            current += delta
            if current < 0:
                break
            self.issued_candidates += 1
            candidates.append(PrefetchCandidate(
                block_addr=self.channel_block_to_block_addr(current),
                source=self.name,
            ))
        return candidates

    def _prune_index(self) -> None:
        """Drop index entries pointing at overwritten GHB positions."""
        horizon = self._write_index - self.ghb_entries
        self._index = {
            pair: position for pair, position in self._index.items()
            if position >= horizon
        }

    # ------------------------------------------------------------------
    def storage_bits(self) -> int:
        # GHB: 32-bit block addresses; index table: 2x7-bit signed deltas
        # tag + GHB pointer per entry (sized at 2 entries per GHB slot).
        ghb_bits = self.ghb_entries * 32
        index_bits = 2 * self.ghb_entries * (14 + 16)
        return ghb_bits + index_bits
