"""Best-Offset Prefetcher (Michaud, HPCA 2016) — reimplemented from the
paper's description for the memory side.

BOP learns a single global best offset ``D`` and prefetches ``X + D`` for
every trigger access ``X``.  Learning runs in *rounds*: each trigger tests
one candidate offset ``d`` from a fixed list against the Recent Requests
(RR) table — if ``X − d`` was recently requested, ``d``'s score increments
(it would have been a timely prefetch).  A round ends when some score
saturates at ``SCORE_MAX`` or after ``ROUND_MAX`` passes over the list; the
highest-scoring offset becomes ``D``, and prefetching is disabled entirely
when even the best score is ``BAD_SCORE`` or less.

At the SC level BOP's weakness (Section 6 of the Planaria paper) is that
intra-page access order is non-deterministic, so no single offset stays
accurate — the learned ``D`` issues many useless prefetches, inflating
memory traffic by ~23 % on the paper's workloads.

Operating on ``channel_block`` addresses lets offsets cross page
boundaries, as in the original (which checks only that the prefetch stays
in the same DRAM page *slice* it can reach without a TLB — irrelevant on
the memory side, where physical addresses are in hand).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional, Tuple

from repro.config import BOPConfig
from repro.geometry import AddressLayout
from repro.prefetch.base import DemandAccess, PrefetchCandidate, Prefetcher


class BestOffsetPrefetcher(Prefetcher):
    """Single-offset global prefetcher with RR-table offset scoring."""

    name = "bop"

    def __init__(self, layout: AddressLayout, channel: int,
                 config: Optional[BOPConfig] = None) -> None:
        super().__init__(layout, channel)
        self.config = config or BOPConfig()
        entries = self.config.rr_table_entries
        self._rr_table: List[int] = [-1] * entries
        self._rr_mask = entries - 1 if entries & (entries - 1) == 0 else None
        self._scores = [0] * len(self.config.offsets)
        self._test_index = 0
        self._round = 0
        self._best_offset: Optional[int] = 1  # start optimistic: next-line
        self.learning_phases_completed = 0
        # Michaud inserts an address into RR only when its fill completes,
        # so an offset scores only if it would have been *timely*.  We
        # model the fill delay with a FIFO of (ready_time, address).
        self._pending_rr: Deque[Tuple[int, int]] = deque()
        self.rr_insert_delay = 120  # ~LPDDR4 read latency in cycles

    # ------------------------------------------------------------------
    # RR table
    # ------------------------------------------------------------------
    def _rr_index(self, channel_block: int) -> int:
        if self._rr_mask is not None:
            return (channel_block ^ (channel_block >> 8)) & self._rr_mask
        return (channel_block ^ (channel_block >> 8)) % len(self._rr_table)

    def _rr_insert(self, channel_block: int) -> None:
        self._rr_table[self._rr_index(channel_block)] = channel_block
        self.activity.table_writes += 1

    def _rr_contains(self, channel_block: int) -> bool:
        self.activity.table_reads += 1
        return self._rr_table[self._rr_index(channel_block)] == channel_block

    # ------------------------------------------------------------------
    # Learning
    # ------------------------------------------------------------------
    def observe(self, access: DemandAccess) -> None:
        """No-op: BOP is monolithic and learns from the miss +
        prefetched-hit stream, which only :meth:`issue` sees (Michaud
        trains on L2 miss and prefetched-hit events, not all accesses)."""

    def _drain_pending(self, now: int) -> None:
        while self._pending_rr and self._pending_rr[0][0] <= now:
            self._rr_insert(self._pending_rr.popleft()[1])

    def _learn(self, access: DemandAccess) -> None:
        config = self.config
        block = access.channel_block
        self._drain_pending(access.time)
        tested_offset = config.offsets[self._test_index]
        base = block - tested_offset
        if base >= 0 and self._rr_contains(base):
            self._scores[self._test_index] += 1
            if self._scores[self._test_index] >= config.score_max:
                self._finish_learning_phase()
                self._pending_rr.append((access.time + self.rr_insert_delay, block))
                return
        self._test_index += 1
        if self._test_index >= len(config.offsets):
            self._test_index = 0
            self._round += 1
            if self._round >= config.round_max:
                self._finish_learning_phase()
        self._pending_rr.append((access.time + self.rr_insert_delay, block))

    def _finish_learning_phase(self) -> None:
        best_index = max(range(len(self._scores)), key=self._scores.__getitem__)
        best_score = self._scores[best_index]
        if best_score <= self.config.bad_score:
            self._best_offset = None  # prefetching off: nothing is predictable
        else:
            self._best_offset = self.config.offsets[best_index]
        self._scores = [0] * len(self.config.offsets)
        self._test_index = 0
        self._round = 0
        self.learning_phases_completed += 1

    @property
    def best_offset(self) -> Optional[int]:
        """Currently selected offset, or None while prefetching is off."""
        return self._best_offset

    # ------------------------------------------------------------------
    # Issuing
    # ------------------------------------------------------------------
    def issue(self, access: DemandAccess, was_hit: bool,
              prefetched_hit: bool = False) -> List[PrefetchCandidate]:
        if was_hit and not (prefetched_hit and self.config.chain_on_prefetch_hit):
            return []
        self._learn(access)
        if self._best_offset is None:
            return []
        target = access.channel_block + self._best_offset
        if (self.config.stay_in_page
                and target // self.layout.blocks_per_segment != access.page):
            # Michaud's page-boundary rule: X+D beyond the trigger's page
            # is not issued (the original cannot translate across pages;
            # memory-side we keep the rule so the baseline matches the
            # hardware the paper compares against).
            return []
        self.issued_candidates += 1
        return [PrefetchCandidate(
            block_addr=self.channel_block_to_block_addr(target),
            source=self.name,
        )]

    def storage_bits(self) -> int:
        # RR table: 32-bit block addresses; score table: one 6-bit score
        # per offset; plus best-offset register and round/test counters.
        rr_bits = self.config.rr_table_entries * 32
        score_bits = len(self.config.offsets) * 6
        return rr_bits + score_bits + 16 + 14
