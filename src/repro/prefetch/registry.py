"""Factory registry: prefetchers by name, as the experiment configs use.

Keeps every bench/example/test building prefetchers the same way:

>>> from repro.prefetch import make_prefetcher
>>> pf = make_prefetcher("planaria", DEFAULT_LAYOUT, channel=0)
"""

from __future__ import annotations

from typing import Callable, Dict

from repro.errors import UnknownPrefetcherError
from repro.geometry import AddressLayout
from repro.prefetch.base import Prefetcher
from repro.prefetch.bop import BestOffsetPrefetcher
from repro.prefetch.simple import NextLinePrefetcher, NoPrefetcher, StridePrefetcher
from repro.prefetch.ghb import GHBPrefetcher
from repro.prefetch.sms import SMSPrefetcher
from repro.prefetch.spp import SignaturePathPrefetcher
from repro.prefetch.streamer import StreamPrefetcher


def _make_planaria(layout: AddressLayout, channel: int) -> Prefetcher:
    from repro.core.planaria import PlanariaPrefetcher

    return PlanariaPrefetcher(layout, channel)


def _make_slp(layout: AddressLayout, channel: int) -> Prefetcher:
    from repro.core.slp import SLPPrefetcher

    return SLPPrefetcher(layout, channel)


def _make_tlp(layout: AddressLayout, channel: int) -> Prefetcher:
    from repro.core.tlp import TLPPrefetcher

    return TLPPrefetcher(layout, channel)


def _make_planaria_serial(layout: AddressLayout, channel: int) -> Prefetcher:
    from repro.config import PlanariaConfig
    from repro.core.planaria import PlanariaPrefetcher

    return PlanariaPrefetcher(layout, channel, PlanariaConfig(coordinator="serial"))


def _make_planaria_parallel(layout: AddressLayout, channel: int) -> Prefetcher:
    from repro.config import PlanariaConfig
    from repro.core.planaria import PlanariaPrefetcher

    return PlanariaPrefetcher(layout, channel, PlanariaConfig(coordinator="parallel"))


def _make_bop_throttled(layout: AddressLayout, channel: int) -> Prefetcher:
    from repro.prefetch.throttle import AccuracyThrottle

    return AccuracyThrottle(BestOffsetPrefetcher(layout, channel))


def _make_planaria_throttled(layout: AddressLayout, channel: int) -> Prefetcher:
    from repro.prefetch.throttle import AccuracyThrottle

    return AccuracyThrottle(_make_planaria(layout, channel))


PREFETCHER_FACTORIES: Dict[str, Callable[[AddressLayout, int], Prefetcher]] = {
    "none": NoPrefetcher,
    "nextline": NextLinePrefetcher,
    "stride": StridePrefetcher,
    "bop": BestOffsetPrefetcher,
    "spp": SignaturePathPrefetcher,
    "ghb": GHBPrefetcher,
    "streamer": StreamPrefetcher,
    "sms": SMSPrefetcher,
    "slp": _make_slp,
    "tlp": _make_tlp,
    "planaria": _make_planaria,
    "planaria-serial": _make_planaria_serial,
    "planaria-parallel": _make_planaria_parallel,
    "bop-throttled": _make_bop_throttled,
    "planaria-throttled": _make_planaria_throttled,
}


def make_prefetcher(name: str, layout: AddressLayout, channel: int) -> Prefetcher:
    """Instantiate a prefetcher by registry name.

    Raises:
        UnknownPrefetcherError: unknown name — the message names it and
            lists every registered prefetcher; the class subclasses both
            :class:`~repro.errors.ConfigError` and :class:`KeyError`.
    """
    try:
        factory = PREFETCHER_FACTORIES[name]
    except KeyError:
        raise UnknownPrefetcherError(
            name, tuple(sorted(PREFETCHER_FACTORIES))) from None
    return factory(layout, channel)
