"""Accuracy-feedback prefetch throttling (extension beyond the paper).

The paper's setting — a power-constrained phone — motivates shutting a
prefetcher down when it wastes bandwidth.  :class:`AccuracyThrottle` wraps
any :class:`~repro.prefetch.base.Prefetcher` and gates its *issuing* phase
on recently observed usefulness, fed back by the simulation engine:

* every prefetch fill opens an outcome slot;
* the engine reports each first demand hit to a prefetched block
  (:meth:`notify_useful`) and each unused-prefetch eviction
  (:meth:`notify_unused`);
* a windowed usefulness estimate below ``low_watermark`` suspends issuing
  (learning continues — the decoupling Planaria itself argues for) until
  the estimate recovers above ``high_watermark``.

The wrapper is transparent: candidates keep their inner source names, so
Figure-9 attribution still works when wrapping Planaria.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional

from repro.prefetch.base import DemandAccess, PrefetchCandidate, Prefetcher


class AccuracyThrottle(Prefetcher):
    """Usefulness-gated wrapper around another prefetcher."""

    def __init__(self, inner: Prefetcher,
                 window: int = 128,
                 low_watermark: float = 0.35,
                 high_watermark: float = 0.55,
                 min_samples: int = 32) -> None:
        if not 0.0 <= low_watermark <= high_watermark <= 1.0:
            raise ValueError(
                f"need 0 <= low ({low_watermark}) <= high ({high_watermark}) <= 1"
            )
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        if min_samples < 1:
            raise ValueError(f"min_samples must be >= 1, got {min_samples}")
        super().__init__(inner.layout, inner.channel)
        self.inner = inner
        self.name = f"{inner.name}+throttle"
        self.window = window
        self.low_watermark = low_watermark
        self.high_watermark = high_watermark
        self.min_samples = min_samples
        self._outcomes: Deque[int] = deque(maxlen=window)
        self._suspended = False
        self.suspensions = 0
        self.dropped_while_suspended = 0
        # Engine feedback callbacks carry no timestamp, so transitions are
        # stamped with the most recent demand-access time seen.
        self._last_time = 0

    # ------------------------------------------------------------------
    # Feedback from the engine
    # ------------------------------------------------------------------
    def notify_useful(self) -> None:
        """One of this prefetcher's fills served a demand."""
        self._outcomes.append(1)
        self._update_state()

    def notify_unused(self) -> None:
        """One of this prefetcher's fills was evicted untouched."""
        self._outcomes.append(0)
        self._update_state()

    @property
    def usefulness(self) -> Optional[float]:
        """Windowed useful fraction, or None before ``min_samples``."""
        if len(self._outcomes) < self.min_samples:
            return None
        return sum(self._outcomes) / len(self._outcomes)

    @property
    def suspended(self) -> bool:
        return self._suspended

    def _update_state(self) -> None:
        usefulness = self.usefulness
        if usefulness is None:
            return
        if self._suspended:
            if usefulness >= self.high_watermark:
                self._suspended = False
                if self.tracer.enabled:
                    self.tracer.emit("throttle_resumed", self._last_time,
                                     usefulness=usefulness)
        elif usefulness < self.low_watermark:
            self._suspended = True
            self.suspensions += 1
            if self.tracer.enabled:
                self.tracer.emit("throttle_suspended", self._last_time,
                                 usefulness=usefulness)

    # ------------------------------------------------------------------
    # Prefetcher interface (delegation)
    # ------------------------------------------------------------------
    def observe(self, access: DemandAccess) -> None:
        # Learning is never throttled — the decoupling principle.
        self._last_time = access.time
        self.inner.observe(access)

    # ------------------------------------------------------------------
    # Batch-engine contract (delegation)
    # ------------------------------------------------------------------
    def hit_trigger_noop(self) -> bool:
        # A hit-noop inner issue returns [] before the suspension branch,
        # so the wrapper's hit path touches nothing either.
        return self.inner.hit_trigger_noop()

    def skip_hit_triggers(self, count: int) -> None:
        self.inner.skip_hit_triggers(count)

    def supports_observe_run(self) -> bool:
        return not self.tracer.enabled and self.inner.supports_observe_run()

    def observe_run(self, page: int, offsets, times) -> None:
        self._last_time = times[-1]
        self.inner.observe_run(page, offsets, times)

    def issue(self, access: DemandAccess, was_hit: bool,
              prefetched_hit: bool = False) -> List[PrefetchCandidate]:
        candidates = self.inner.issue(access, was_hit, prefetched_hit)
        if self._suspended:
            self.dropped_while_suspended += len(candidates)
            if self.lineage is not None and candidates:
                self.lineage.note_suppressed(candidates)
            return []
        self.issued_candidates += len(candidates)
        return candidates

    def storage_bits(self) -> int:
        # Window of 1-bit outcomes + two counters.
        return self.inner.storage_bits() + self.window + 16

    @property
    def activity(self):  # type: ignore[override]
        return self.inner.activity

    @activity.setter
    def activity(self, value) -> None:
        pass  # derived from the wrapped prefetcher
