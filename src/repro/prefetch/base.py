"""Prefetcher interface and the demand-access view prefetchers receive.

Design note — decoupled learning and issuing (Section 2): the engine calls
:meth:`Prefetcher.observe` for *every* demand access (the learning phase is
always on, "full-pattern directed"), and :meth:`Prefetcher.issue`
separately to ask for prefetch candidates.  Planaria's coordinator relies
on this split to train both sub-prefetchers in parallel while letting only
one issue; monolithic baselines simply implement both methods.
"""

from __future__ import annotations

import abc
import copy
from dataclasses import dataclass
from typing import List

from repro.geometry import AddressLayout
from repro.obs.events import NULL_TRACER
from repro.trace.record import DeviceID


@dataclass(frozen=True)
class DemandAccess:
    """A demand access as seen by one channel's prefetcher.

    All address decomposition is done once by the engine:

    Attributes:
        block_addr: global block address (byte address >> block bits).
        page: page number (PN) — the paper's table signature.
        block_in_segment: 0..15 position inside this channel's segment,
            i.e. the bit index in SLP/TLP bitmaps.
        channel_block: channel-local *contiguous* block index
            (``page * blocks_per_segment + block_in_segment``); gives BOP
            and SPP a linear address space in which cross-page offsets make
            sense.
        time: arrival cycle.
        is_read: demand reads vs writes.
        device: requesting SoC device.
    """

    block_addr: int
    page: int
    block_in_segment: int
    channel_block: int
    time: int
    is_read: bool
    device: DeviceID


class RunAccess:
    """Minimal access view handed to :meth:`Prefetcher.observe_run` loops.

    Carries only the fields a run-batchable prefetcher's learning phase
    reads (page, segment offset, time).  Prefetchers that consume other
    ``DemandAccess`` fields must not declare ``supports_observe_run``.
    """

    __slots__ = ("page", "block_in_segment", "time")

    def __init__(self, page: int, block_in_segment: int, time: int) -> None:
        self.page = page
        self.block_in_segment = block_in_segment
        self.time = time


class PrefetchCandidate:
    """One block a prefetcher wants brought into the SC.

    A ``__slots__`` value class rather than a frozen dataclass: candidate
    construction sits on the hot issuing path (tens of thousands per run)
    and the ``object.__setattr__``-based frozen-dataclass ``__init__`` is
    several times slower.  Value semantics (eq/hash/repr) are preserved;
    treat instances as immutable.
    """

    __slots__ = ("block_addr", "source")

    def __init__(self, block_addr: int, source: str) -> None:
        if block_addr < 0:
            raise ValueError(f"negative block address {block_addr}")
        self.block_addr = block_addr
        self.source = source

    def __eq__(self, other: object) -> bool:
        return (type(other) is PrefetchCandidate
                and self.block_addr == other.block_addr
                and self.source == other.source)

    def __hash__(self) -> int:
        return hash((self.block_addr, self.source))

    def __repr__(self) -> str:
        return (f"PrefetchCandidate(block_addr={self.block_addr!r}, "
                f"source={self.source!r})")


@dataclass
class PrefetcherActivityCounters:
    """Metadata-table activity, consumed by the power model."""

    table_reads: int = 0
    table_writes: int = 0

    def merge(self, other: "PrefetcherActivityCounters") -> None:
        self.table_reads += other.table_reads
        self.table_writes += other.table_writes


class Prefetcher(abc.ABC):
    """Base class for all memory-side prefetchers.

    One instance serves one channel; it sees only that channel's segment of
    every page (``blocks_per_segment`` = 16 blocks in the default layout).
    """

    name = "base"

    #: True when ``observe``/``issue`` are pure no-ops (no state, no
    #: counters, no candidates) — the engine's columnar fast loop then
    #: skips the prefetcher machinery per record entirely.  Only set this
    #: on a subclass whose learning and issuing phases touch nothing.
    passive = False

    #: Lineage collector hook (repro.obs.lineage).  A class attribute so
    #: unwired prefetchers carry no extra per-instance state; issue-path
    #: hook sites guard with ``self.lineage is not None``, which is off
    #: the per-record fast loop entirely.
    lineage = None

    def __init__(self, layout: AddressLayout, channel: int) -> None:
        if not 0 <= channel < layout.num_channels:
            raise ValueError(
                f"channel {channel} out of range 0..{layout.num_channels - 1}"
            )
        self.layout = layout
        self.channel = channel
        self.activity = PrefetcherActivityCounters()
        self.issued_candidates = 0
        # Precomputed pieces of layout.compose(page, channel, offset) >>
        # block_bits, so :meth:`_candidate` builds a block address with two
        # shifts and two ORs instead of three nested calls (hot issuing
        # path).  Inputs are trusted there: pages come from table keys and
        # offsets from 16-bit bitmap positions, both validated on entry.
        self._page_shift = layout.page_bits - layout.block_bits
        self._channel_bits = channel << layout.segment_bits
        #: Event tracer (repro.obs).  The shared no-op singleton by
        #: default; emission sites guard with ``tracer.enabled`` so a
        #: disabled trace point costs one attribute load and one branch
        #: on paths already off the per-record fast loop.
        self.tracer = NULL_TRACER

    # ------------------------------------------------------------------
    # The learning / issuing split
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def observe(self, access: DemandAccess) -> None:
        """Learning phase: fold one demand access into the metadata."""

    @abc.abstractmethod
    def issue(self, access: DemandAccess, was_hit: bool,
              prefetched_hit: bool = False) -> List[PrefetchCandidate]:
        """Issuing phase: propose prefetches triggered by this access.

        Args:
            was_hit: the access hit in the SC.
            prefetched_hit: the hit was the first demand touch of a
                prefetched block — the classic secondary trigger (Michaud's
                BOP trains on misses *and* prefetched hits).
        """

    @abc.abstractmethod
    def storage_bits(self) -> int:
        """Total metadata storage in bits (for the 345.2 KB budget check)."""

    # ------------------------------------------------------------------
    # Checkpoint support
    # ------------------------------------------------------------------
    #: Instance attributes excluded from :meth:`state_dict` — immutable
    #: construction parameters a freshly built prefetcher already carries,
    #: plus the observability hooks (tracer, lineage): their state is
    #: checkpointed by the owning collector, and excluding them here keeps
    #: the hook objects aliased with those collectors across load_state.
    _STATE_EXCLUDE = ("layout", "tracer", "lineage", "_page_shift",
                      "_channel_bits")

    def state_dict(self) -> dict:
        """Deep snapshot of all mutable prefetcher state.

        The default implementation captures the whole instance dict (minus
        :attr:`_STATE_EXCLUDE`) in one :func:`copy.deepcopy` pass — one
        memo, so intra-state sharing (e.g. a composite prefetcher holding
        its sub-prefetchers both as attributes and in a list) survives the
        round trip.  The parallel executor already relies on these objects
        pickling bit-exactly, so a deep copy is a faithful snapshot for
        every registered prefetcher, wrappers included.
        """
        return copy.deepcopy({
            key: value for key, value in self.__dict__.items()
            if key not in self._STATE_EXCLUDE
        })

    def load_state(self, state: dict) -> None:
        """Restore a :meth:`state_dict` snapshot.

        Must be called on an instance built with the same layout/channel/
        configuration as the snapshot's source (the registry factory
        guarantees this for checkpoint restores).
        """
        self.__dict__.update(copy.deepcopy(state))

    # ------------------------------------------------------------------
    # Batch-engine contract (see repro.sim.batch)
    # ------------------------------------------------------------------
    def hit_trigger_noop(self) -> bool:
        """True when ``issue(access, was_hit=True, ...)`` cannot change any
        state or produce candidates, so the batch engine may skip the call
        on cache hits entirely (compensating counters via
        :meth:`skip_hit_triggers`).  Conservative default: False.
        """
        return False

    def skip_hit_triggers(self, count: int) -> None:
        """Account for ``count`` hit-triggered ``issue`` calls the batch
        engine skipped under :meth:`hit_trigger_noop`.  Prefetchers whose
        hit-path ``issue`` increments a counter (e.g. Planaria's
        ``coord_neither``) override this to apply the increment in bulk;
        the default hit path touches nothing, so this is a no-op.
        """

    def supports_observe_run(self) -> bool:
        """True when :meth:`observe_run` folds a run of consecutive
        same-page accesses bit-identically to per-access ``observe`` calls
        *in the current configuration* (implementations must return False
        while their event tracer is enabled — batched folding would
        re-stamp event times).  Conservative default: False.
        """
        return False

    def observe_run(self, page: int, offsets: List[int],
                    times: List[int]) -> None:
        """Learning phase over a run of same-page accesses (batched).

        ``offsets[k]``/``times[k]`` describe the k-th access of the run;
        times are non-decreasing.  Only called when
        :meth:`supports_observe_run` returned True for this chunk.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not support observe_run")

    # ------------------------------------------------------------------
    # Optional engine feedback (see repro.prefetch.throttle)
    # ------------------------------------------------------------------
    def notify_useful(self) -> None:
        """A fill issued by this prefetcher served a demand access."""

    def notify_unused(self) -> None:
        """A fill issued by this prefetcher was evicted untouched."""

    # ------------------------------------------------------------------
    # Helpers for subclasses
    # ------------------------------------------------------------------
    def compose_block_addr(self, page: int, block_in_segment: int) -> int:
        """(PN, segment bit) → global block address on this channel."""
        byte_addr = self.layout.compose(page, self.channel, block_in_segment)
        return byte_addr >> self.layout.block_bits

    def channel_block_to_block_addr(self, channel_block: int) -> int:
        """Inverse of ``DemandAccess.channel_block``."""
        per_segment = self.layout.blocks_per_segment
        page, offset = divmod(channel_block, per_segment)
        return self.compose_block_addr(page, offset)

    def _candidate(self, page: int, block_in_segment: int) -> PrefetchCandidate:
        # (page << page_shift) | channel_bits | offset ==
        # compose_block_addr(page, block_in_segment); see __init__.
        self.issued_candidates += 1
        return PrefetchCandidate(
            (page << self._page_shift) | self._channel_bits
            | block_in_segment,
            self.name,
        )
