"""Prefetch queue: dedup, degree throttling, and bounded depth.

"The generated prefetch requests are inserted into the prefetch queue"
(Section 2).  The queue is the last gate before DRAM: it drops duplicates
of recently issued prefetches, caps the number of prefetches one trigger
may emit (degree), and bounds total outstanding prefetches so a
misbehaving prefetcher cannot flood the memory system.
"""

from __future__ import annotations

from collections import OrderedDict, deque
from dataclasses import dataclass
from typing import Deque, List

from repro.config import PrefetchQueueConfig
from repro.prefetch.base import PrefetchCandidate


@dataclass
class QueueStats:
    """Accept/drop accounting for one prefetch queue.

    Lives in its own mergeable container so per-channel counts survive
    system-level aggregation (and process-boundary round trips) the same
    way ``MetricSet`` / ``CacheStats`` / ``DRAMStats`` do.
    """

    accepted: int = 0
    dropped_duplicate: int = 0
    dropped_degree: int = 0
    dropped_full: int = 0
    #: High-water mark of pending candidates (cumulative, merges as max).
    peak_pending: int = 0

    def state_dict(self) -> dict:
        return {"accepted": self.accepted,
                "dropped_duplicate": self.dropped_duplicate,
                "dropped_degree": self.dropped_degree,
                "dropped_full": self.dropped_full,
                "peak_pending": self.peak_pending}

    def load_state(self, state: dict) -> None:
        self.accepted = state["accepted"]
        self.dropped_duplicate = state["dropped_duplicate"]
        self.dropped_degree = state["dropped_degree"]
        self.dropped_full = state["dropped_full"]
        # Absent in checkpoints written before the counter existed.
        self.peak_pending = state.get("peak_pending", 0)

    def merge(self, other: "QueueStats") -> None:
        self.accepted += other.accepted
        self.dropped_duplicate += other.dropped_duplicate
        self.dropped_degree += other.dropped_degree
        self.dropped_full += other.dropped_full
        self.peak_pending = max(self.peak_pending, other.peak_pending)

    def dropped_total(self) -> int:
        return self.dropped_duplicate + self.dropped_degree + self.dropped_full


class PrefetchQueue:
    """FIFO of accepted prefetch candidates with an issue filter."""

    def __init__(self, config: PrefetchQueueConfig) -> None:
        self.config = config
        self._queue: Deque[PrefetchCandidate] = deque()
        # Recently accepted block addresses; OrderedDict as an LRU set.
        self._recent: OrderedDict = OrderedDict()
        self._recent_capacity = config.depth * 8
        self.stats = QueueStats()

    # Counter attributes kept as properties for existing callers.
    @property
    def accepted(self) -> int:
        return self.stats.accepted

    @property
    def dropped_duplicate(self) -> int:
        return self.stats.dropped_duplicate

    @property
    def dropped_degree(self) -> int:
        return self.stats.dropped_degree

    @property
    def dropped_full(self) -> int:
        return self.stats.dropped_full

    def push(self, candidates: List[PrefetchCandidate]) -> List[PrefetchCandidate]:
        """Filter and enqueue one trigger's candidates.

        Returns the accepted subset, in order.
        """
        accepted: List[PrefetchCandidate] = []
        for index, candidate in enumerate(candidates):
            if len(accepted) >= self.config.max_degree:
                # Only the not-yet-examined tail is degree-dropped; earlier
                # duplicate/full drops are already counted in their own bins.
                self.stats.dropped_degree += len(candidates) - index
                break
            if self.config.drop_duplicates and candidate.block_addr in self._recent:
                self.stats.dropped_duplicate += 1
                continue
            if len(self._queue) >= self.config.depth:
                self.stats.dropped_full += 1
                continue
            self._remember(candidate.block_addr)
            self._queue.append(candidate)
            accepted.append(candidate)
            self.stats.accepted += 1
        if accepted and len(self._queue) > self.stats.peak_pending:
            self.stats.peak_pending = len(self._queue)
        return accepted

    def _remember(self, block_addr: int) -> None:
        self._recent[block_addr] = None
        self._recent.move_to_end(block_addr)
        while len(self._recent) > self._recent_capacity:
            self._recent.popitem(last=False)

    def state_dict(self) -> dict:
        """Snapshot pending candidates, the dedup LRU and counters."""
        return {
            "pending": [(candidate.block_addr, candidate.source)
                        for candidate in self._queue],
            "recent": list(self._recent),
            "stats": self.stats.state_dict(),
        }

    def load_state(self, state: dict) -> None:
        self._queue = deque(
            PrefetchCandidate(block_addr=addr, source=source)
            for addr, source in state["pending"]
        )
        self._recent = OrderedDict((addr, None) for addr in state["recent"])
        self.stats.load_state(state["stats"])

    def pop_all(self) -> List[PrefetchCandidate]:
        """Drain the queue (the engine services prefetches immediately)."""
        drained = list(self._queue)
        self._queue.clear()
        return drained

    def __len__(self) -> int:
        return len(self._queue)
