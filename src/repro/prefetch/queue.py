"""Prefetch queue: dedup, degree throttling, and bounded depth.

"The generated prefetch requests are inserted into the prefetch queue"
(Section 2).  The queue is the last gate before DRAM: it drops duplicates
of recently issued prefetches, caps the number of prefetches one trigger
may emit (degree), and bounds total outstanding prefetches so a
misbehaving prefetcher cannot flood the memory system.
"""

from __future__ import annotations

from collections import OrderedDict, deque
from typing import Deque, List

from repro.config import PrefetchQueueConfig
from repro.prefetch.base import PrefetchCandidate


class PrefetchQueue:
    """FIFO of accepted prefetch candidates with an issue filter."""

    def __init__(self, config: PrefetchQueueConfig) -> None:
        self.config = config
        self._queue: Deque[PrefetchCandidate] = deque()
        # Recently accepted block addresses; OrderedDict as an LRU set.
        self._recent: OrderedDict = OrderedDict()
        self._recent_capacity = config.depth * 8
        self.accepted = 0
        self.dropped_duplicate = 0
        self.dropped_degree = 0
        self.dropped_full = 0

    def push(self, candidates: List[PrefetchCandidate]) -> List[PrefetchCandidate]:
        """Filter and enqueue one trigger's candidates.

        Returns the accepted subset, in order.
        """
        accepted: List[PrefetchCandidate] = []
        for candidate in candidates:
            if len(accepted) >= self.config.max_degree:
                self.dropped_degree += len(candidates) - len(accepted)
                break
            if self.config.drop_duplicates and candidate.block_addr in self._recent:
                self.dropped_duplicate += 1
                continue
            if len(self._queue) >= self.config.depth:
                self.dropped_full += 1
                continue
            self._remember(candidate.block_addr)
            self._queue.append(candidate)
            accepted.append(candidate)
            self.accepted += 1
        return accepted

    def _remember(self, block_addr: int) -> None:
        self._recent[block_addr] = None
        self._recent.move_to_end(block_addr)
        while len(self._recent) > self._recent_capacity:
            self._recent.popitem(last=False)

    def pop_all(self) -> List[PrefetchCandidate]:
        """Drain the queue (the engine services prefetches immediately)."""
        drained = list(self._queue)
        self._queue.clear()
        return drained

    def __len__(self) -> int:
        return len(self._queue)
