"""Prefetch queue: dedup, degree throttling, and bounded depth.

"The generated prefetch requests are inserted into the prefetch queue"
(Section 2).  The queue is the last gate before DRAM: it drops duplicates
of recently issued prefetches, caps the number of prefetches one trigger
may emit (degree), and bounds total outstanding prefetches so a
misbehaving prefetcher cannot flood the memory system.
"""

from __future__ import annotations

from collections import OrderedDict, deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List

from repro.config import PrefetchQueueConfig
from repro.prefetch.base import PrefetchCandidate


@dataclass
class QueueStats:
    """Accept/drop accounting for one prefetch queue.

    Lives in its own mergeable container so per-channel counts survive
    system-level aggregation (and process-boundary round trips) the same
    way ``MetricSet`` / ``CacheStats`` / ``DRAMStats`` do.
    """

    accepted: int = 0
    dropped_duplicate: int = 0
    dropped_degree: int = 0
    dropped_full: int = 0
    #: High-water mark of pending candidates (cumulative, merges as max).
    peak_pending: int = 0
    #: Drops (all three kinds) keyed by the candidate's ``source`` tag, so
    #: composite runs can see *whose* candidates the queue rejected.
    dropped_by_origin: Dict[str, int] = field(default_factory=dict)

    def state_dict(self) -> dict:
        return {"accepted": self.accepted,
                "dropped_duplicate": self.dropped_duplicate,
                "dropped_degree": self.dropped_degree,
                "dropped_full": self.dropped_full,
                "peak_pending": self.peak_pending,
                "dropped_by_origin": dict(self.dropped_by_origin)}

    def load_state(self, state: dict) -> None:
        self.accepted = state["accepted"]
        self.dropped_duplicate = state["dropped_duplicate"]
        self.dropped_degree = state["dropped_degree"]
        self.dropped_full = state["dropped_full"]
        # Absent in checkpoints written before the counters existed.
        self.peak_pending = state.get("peak_pending", 0)
        self.dropped_by_origin = dict(state.get("dropped_by_origin", {}))

    def merge(self, other: "QueueStats") -> None:
        self.accepted += other.accepted
        self.dropped_duplicate += other.dropped_duplicate
        self.dropped_degree += other.dropped_degree
        self.dropped_full += other.dropped_full
        self.peak_pending = max(self.peak_pending, other.peak_pending)
        for origin, count in other.dropped_by_origin.items():
            self.dropped_by_origin[origin] = (
                self.dropped_by_origin.get(origin, 0) + count)

    def dropped_total(self) -> int:
        return self.dropped_duplicate + self.dropped_degree + self.dropped_full


class PrefetchQueue:
    """FIFO of accepted prefetch candidates with an issue filter."""

    def __init__(self, config: PrefetchQueueConfig) -> None:
        self.config = config
        self._queue: Deque[PrefetchCandidate] = deque()
        # Recently accepted block addresses; OrderedDict as an LRU set.
        self._recent: OrderedDict = OrderedDict()
        self._recent_capacity = config.depth * 8
        self.stats = QueueStats()
        #: Lineage collector hook (repro.obs.lineage); the queue is the
        #: accounting gate where every candidate resolves to accepted or
        #: one of the drop bins.
        self.lineage = None

    # Counter attributes kept as properties for existing callers.
    @property
    def accepted(self) -> int:
        return self.stats.accepted

    @property
    def dropped_duplicate(self) -> int:
        return self.stats.dropped_duplicate

    @property
    def dropped_degree(self) -> int:
        return self.stats.dropped_degree

    @property
    def dropped_full(self) -> int:
        return self.stats.dropped_full

    def push(self, candidates: List[PrefetchCandidate]) -> List[PrefetchCandidate]:
        """Filter and enqueue one trigger's candidates.

        Returns the accepted subset, in order.
        """
        accepted: List[PrefetchCandidate] = []
        stats = self.stats
        by_origin = stats.dropped_by_origin
        lineage = self.lineage
        single_source = None
        if lineage is not None and candidates:
            # Single-source pushes (the overwhelming case: one SLP replay
            # or one TLP transfer per trigger) report to lineage as one
            # batched call from the stats-counter deltas instead of a
            # hook call per candidate.
            source = candidates[0].source
            for candidate in candidates:
                if candidate.source != source:
                    break
            else:
                single_source = source
                lineage_before = (stats.accepted, stats.dropped_duplicate,
                                  stats.dropped_degree, stats.dropped_full)
                lineage = None
        for index, candidate in enumerate(candidates):
            if len(accepted) >= self.config.max_degree:
                # Only the not-yet-examined tail is degree-dropped; earlier
                # duplicate/full drops are already counted in their own bins.
                for dropped in candidates[index:]:
                    stats.dropped_degree += 1
                    by_origin[dropped.source] = (
                        by_origin.get(dropped.source, 0) + 1)
                    if lineage is not None:
                        lineage.note_drop(dropped, "degree")
                break
            if self.config.drop_duplicates and candidate.block_addr in self._recent:
                stats.dropped_duplicate += 1
                by_origin[candidate.source] = (
                    by_origin.get(candidate.source, 0) + 1)
                if lineage is not None:
                    lineage.note_drop(candidate, "duplicate")
                continue
            if len(self._queue) >= self.config.depth:
                stats.dropped_full += 1
                by_origin[candidate.source] = (
                    by_origin.get(candidate.source, 0) + 1)
                if lineage is not None:
                    lineage.note_drop(candidate, "full")
                continue
            self._remember(candidate.block_addr)
            self._queue.append(candidate)
            accepted.append(candidate)
            stats.accepted += 1
            if lineage is not None:
                lineage.note_accept(candidate)
        if accepted and len(self._queue) > stats.peak_pending:
            stats.peak_pending = len(self._queue)
        if single_source is not None:
            self.lineage.note_gate(
                single_source,
                stats.accepted - lineage_before[0],
                stats.dropped_duplicate - lineage_before[1],
                stats.dropped_degree - lineage_before[2],
                stats.dropped_full - lineage_before[3])
        return accepted

    def _remember(self, block_addr: int) -> None:
        self._recent[block_addr] = None
        self._recent.move_to_end(block_addr)
        while len(self._recent) > self._recent_capacity:
            self._recent.popitem(last=False)

    def state_dict(self) -> dict:
        """Snapshot pending candidates, the dedup LRU and counters."""
        return {
            "pending": [(candidate.block_addr, candidate.source)
                        for candidate in self._queue],
            "recent": list(self._recent),
            "stats": self.stats.state_dict(),
        }

    def load_state(self, state: dict) -> None:
        self._queue = deque(
            PrefetchCandidate(block_addr=addr, source=source)
            for addr, source in state["pending"]
        )
        self._recent = OrderedDict((addr, None) for addr in state["recent"])
        self.stats.load_state(state["stats"])

    def pop_all(self) -> List[PrefetchCandidate]:
        """Drain the queue (the engine services prefetches immediately)."""
        drained = list(self._queue)
        self._queue.clear()
        return drained

    def __len__(self) -> int:
        return len(self._queue)
