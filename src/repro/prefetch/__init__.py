"""Prefetcher framework and baseline prefetchers.

Everything here runs *memory-side*: prefetchers see the post-SC demand
stream (address, read/write, device, arrival time) and nothing else — in
particular **no program counter**, which is the paper's central constraint
(Section 1).  SPP is PC-free by construction; BOP likewise; the SMS variant
in :mod:`repro.prefetch.sms` exists to demonstrate what happens to a
PC-indexed spatial prefetcher when no stable PC is available.
"""

from repro.prefetch.base import (
    DemandAccess,
    PrefetchCandidate,
    Prefetcher,
    PrefetcherActivityCounters,
)
from repro.prefetch.queue import PrefetchQueue
from repro.prefetch.simple import NextLinePrefetcher, NoPrefetcher, StridePrefetcher
from repro.prefetch.bop import BestOffsetPrefetcher
from repro.prefetch.ghb import GHBPrefetcher
from repro.prefetch.spp import SignaturePathPrefetcher
from repro.prefetch.sms import SMSPrefetcher
from repro.prefetch.streamer import StreamPrefetcher
from repro.prefetch.throttle import AccuracyThrottle
from repro.prefetch.registry import make_prefetcher, PREFETCHER_FACTORIES

__all__ = [
    "DemandAccess",
    "PrefetchCandidate",
    "Prefetcher",
    "PrefetcherActivityCounters",
    "PrefetchQueue",
    "NoPrefetcher",
    "NextLinePrefetcher",
    "StridePrefetcher",
    "BestOffsetPrefetcher",
    "GHBPrefetcher",
    "SignaturePathPrefetcher",
    "SMSPrefetcher",
    "StreamPrefetcher",
    "AccuracyThrottle",
    "make_prefetcher",
    "PREFETCHER_FACTORIES",
]
