"""Trivial prefetchers: none, next-line, and per-device stride.

These are sanity anchors for the evaluation — the paper's comparisons are
against BOP and SPP, but next-line/stride make the benches' ordering easy
to sanity-check (any real prefetcher should beat next-line on irregular
SC traffic).
"""

from __future__ import annotations

from typing import Dict, List

from repro.geometry import AddressLayout
from repro.prefetch.base import DemandAccess, PrefetchCandidate, Prefetcher


class NoPrefetcher(Prefetcher):
    """The no-prefetcher baseline ("none" in every figure)."""

    name = "none"
    passive = True  # observe()/issue() are pure no-ops

    def observe(self, access: DemandAccess) -> None:
        pass

    def issue(self, access: DemandAccess, was_hit: bool,
              prefetched_hit: bool = False) -> List[PrefetchCandidate]:
        return []

    def storage_bits(self) -> int:
        return 0


class NextLinePrefetcher(Prefetcher):
    """Prefetch the next ``degree`` sequential blocks on every miss."""

    name = "nextline"

    def __init__(self, layout: AddressLayout, channel: int, degree: int = 1) -> None:
        super().__init__(layout, channel)
        if degree < 1:
            raise ValueError(f"degree must be >= 1, got {degree}")
        self.degree = degree

    def observe(self, access: DemandAccess) -> None:
        pass

    def issue(self, access: DemandAccess, was_hit: bool,
              prefetched_hit: bool = False) -> List[PrefetchCandidate]:
        if was_hit:
            return []
        candidates = []
        for step in range(1, self.degree + 1):
            target = access.channel_block + step
            self.issued_candidates += 1
            candidates.append(PrefetchCandidate(
                block_addr=self.channel_block_to_block_addr(target),
                source=self.name,
            ))
        return candidates

    def storage_bits(self) -> int:
        return 0


class StridePrefetcher(Prefetcher):
    """Classic per-stream stride detection, keyed by requesting device.

    Memory-side there is no PC, so streams are distinguished by device ID —
    the best a stride prefetcher can do at the SC, and a deliberately weak
    signature (many unrelated flows share one device), which is exactly the
    paper's point about PC-indexed designs.
    """

    name = "stride"

    def __init__(self, layout: AddressLayout, channel: int,
                 confidence_threshold: int = 2, degree: int = 2) -> None:
        super().__init__(layout, channel)
        if confidence_threshold < 1:
            raise ValueError("confidence_threshold must be >= 1")
        if degree < 1:
            raise ValueError("degree must be >= 1")
        self.confidence_threshold = confidence_threshold
        self.degree = degree
        # device -> (last channel_block, last stride, confidence)
        self._streams: Dict[int, List[int]] = {}

    def observe(self, access: DemandAccess) -> None:
        state = self._streams.get(int(access.device))
        self.activity.table_reads += 1
        if state is None:
            self._streams[int(access.device)] = [access.channel_block, 0, 0]
            self.activity.table_writes += 1
            return
        last_block, last_stride, confidence = state
        stride = access.channel_block - last_block
        if stride != 0 and stride == last_stride:
            confidence = min(confidence + 1, self.confidence_threshold)
        else:
            confidence = 0
        self._streams[int(access.device)] = [access.channel_block, stride, confidence]
        self.activity.table_writes += 1

    def issue(self, access: DemandAccess, was_hit: bool,
              prefetched_hit: bool = False) -> List[PrefetchCandidate]:
        state = self._streams.get(int(access.device))
        if state is None:
            return []
        _, stride, confidence = state
        if stride == 0 or confidence < self.confidence_threshold:
            return []
        candidates = []
        for step in range(1, self.degree + 1):
            target = access.channel_block + stride * step
            if target < 0:
                break
            self.issued_candidates += 1
            candidates.append(PrefetchCandidate(
                block_addr=self.channel_block_to_block_addr(target),
                source=self.name,
            ))
        return candidates

    def storage_bits(self) -> int:
        # 5 device streams x (block pointer 32b + stride 16b + confidence 2b)
        return 5 * (32 + 16 + 2)
