"""Signature Path Prefetcher (Kim et al., MICRO 2016) — PC-free delta
prefetcher with lookahead and path confidence.

Structure, following the original:

* **Signature Table (ST)** — per-page entry holding the last block offset
  seen in the page and a compressed *signature* of the page's recent delta
  history.
* **Pattern Table (PT)** — indexed by signature; holds up to four candidate
  deltas with saturating counters plus a signature-occurrence counter, so
  each delta's confidence is ``C_delta / C_sig``.
* **Lookahead** — after issuing the most confident delta, SPP speculatively
  advances the signature as if that delta had happened, compounding *path
  confidence* multiplicatively and continuing until confidence drops below
  the threshold or the depth limit hits.
* **Global History Register (GHR)** — bridges page boundaries: when a page
  is seen for the first time, the GHR's recent cross-page paths can
  bootstrap its signature instead of starting cold.

At the SC level SPP retains partial effectiveness (the paper measures a
10.8 % AMAT reduction): within dense footprints, frequent small deltas are
learnable even when the global order is scrambled — but its per-path
confidences decay fast on irregular traffic, capping coverage.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.config import SPPConfig
from repro.geometry import AddressLayout
from repro.prefetch.base import DemandAccess, PrefetchCandidate, Prefetcher


@dataclass
class _SignatureEntry:
    last_offset: int
    signature: int


@dataclass
class _PatternEntry:
    sig_count: int = 0
    deltas: Dict[int, int] = field(default_factory=dict)  # delta -> counter

    def update(self, delta: int, counter_max: int, max_deltas: int = 4) -> None:
        if self.sig_count >= counter_max:
            # Halve all counters when the occurrence counter saturates, as
            # the original does, so confidences stay ratios instead of
            # pinning at 1.0 once everything saturates.
            self.sig_count >>= 1
            self.deltas = {d: c >> 1 for d, c in self.deltas.items() if c >> 1}
        self.sig_count += 1
        if delta in self.deltas:
            self.deltas[delta] = min(self.deltas[delta] + 1, counter_max)
            return
        if len(self.deltas) < max_deltas:
            self.deltas[delta] = 1
            return
        # Replace the weakest delta (original replaces min-counter way).
        weakest = min(self.deltas, key=self.deltas.__getitem__)
        del self.deltas[weakest]
        self.deltas[delta] = 1

    def best(self) -> Optional[tuple]:
        if not self.deltas or self.sig_count == 0:
            return None
        delta = max(self.deltas, key=self.deltas.__getitem__)
        return delta, self.deltas[delta] / self.sig_count


@dataclass
class _GHREntry:
    signature: int
    confidence: float
    last_offset: int
    delta: int


class SignaturePathPrefetcher(Prefetcher):
    """SPP adapted to the memory side (it never needed a PC)."""

    name = "spp"

    def __init__(self, layout: AddressLayout, channel: int,
                 config: Optional[SPPConfig] = None) -> None:
        super().__init__(layout, channel)
        self.config = config or SPPConfig()
        self._sig_mask = (1 << self.config.signature_bits) - 1
        self._counter_max = (1 << self.config.counter_bits) - 1
        self._signature_table: "OrderedDict[int, _SignatureEntry]" = OrderedDict()
        self._pattern_table: Dict[int, _PatternEntry] = {}
        self._ghr: List[_GHREntry] = []
        self._offsets_per_page = layout.blocks_per_segment

    # ------------------------------------------------------------------
    # Signature algebra
    # ------------------------------------------------------------------
    def _next_signature(self, signature: int, delta: int) -> int:
        # Deltas are signed; fold into 6 bits (sign + magnitude) as in the
        # original's signature hash.
        folded = (abs(delta) & 0x1F) | (0x20 if delta < 0 else 0)
        return ((signature << 3) ^ folded) & self._sig_mask

    def _pattern_index(self, signature: int) -> int:
        return signature % self.config.pattern_table_entries

    # ------------------------------------------------------------------
    # Learning
    # ------------------------------------------------------------------
    def observe(self, access: DemandAccess) -> None:
        """No-op: SPP is monolithic; it trains on the miss +
        prefetched-hit stream that :meth:`issue` sees.  Short-reuse hits
        never reach DRAM and carry no delta information worth a pattern
        table write (they would fragment signature paths with random
        back-deltas)."""

    def _learn(self, access: DemandAccess) -> None:
        config = self.config
        page = access.page
        offset = access.block_in_segment
        entry = self._signature_table.get(page)
        self.activity.table_reads += 1
        if entry is None:
            signature = self._bootstrap_from_ghr(offset)
            self._st_insert(page, _SignatureEntry(last_offset=offset,
                                                  signature=signature))
            return
        delta = offset - entry.last_offset
        if delta == 0:
            return
        pattern = self._pattern_table.setdefault(
            self._pattern_index(entry.signature), _PatternEntry()
        )
        pattern.update(delta, self._counter_max)
        self.activity.table_writes += 1
        entry.signature = self._next_signature(entry.signature, delta)
        entry.last_offset = offset
        self._signature_table.move_to_end(page)

    def _st_insert(self, page: int, entry: _SignatureEntry) -> None:
        self._signature_table[page] = entry
        self._signature_table.move_to_end(page)
        self.activity.table_writes += 1
        while len(self._signature_table) > self.config.signature_table_entries:
            self._signature_table.popitem(last=False)

    def _bootstrap_from_ghr(self, offset: int) -> int:
        """First touch of a page: try to continue a cross-page path."""
        for entry in self._ghr:
            predicted = (entry.last_offset + entry.delta) % self._offsets_per_page
            if predicted == offset:
                return self._next_signature(entry.signature, entry.delta)
        return 0

    def _ghr_record(self, signature: int, confidence: float,
                    last_offset: int, delta: int) -> None:
        if self.config.ghr_entries == 0:
            return
        self._ghr.insert(0, _GHREntry(signature, confidence, last_offset, delta))
        del self._ghr[self.config.ghr_entries:]

    # ------------------------------------------------------------------
    # Issuing (lookahead with path confidence)
    # ------------------------------------------------------------------
    def issue(self, access: DemandAccess, was_hit: bool,
              prefetched_hit: bool = False) -> List[PrefetchCandidate]:
        config = self.config
        if was_hit and not prefetched_hit and config.issue_on_miss_only:
            return []
        self._learn(access)
        entry = self._signature_table.get(access.page)
        if entry is None:
            return []
        candidates: List[PrefetchCandidate] = []
        signature = entry.signature
        base = access.channel_block
        path_confidence = 1.0
        for depth in range(config.max_lookahead_depth):
            pattern = self._pattern_table.get(self._pattern_index(signature))
            self.activity.table_reads += 1
            if pattern is None or pattern.sig_count < config.min_sig_count:
                break
            if depth == 0:
                # First level: issue *every* delta clearing the confidence
                # bar, as the original does.
                for delta, counter in pattern.deltas.items():
                    confidence = counter / pattern.sig_count
                    if confidence < config.prefetch_confidence:
                        continue
                    target = base + delta
                    if target >= 0:
                        self.issued_candidates += 1
                        candidates.append(PrefetchCandidate(
                            block_addr=self.channel_block_to_block_addr(target),
                            source=self.name,
                        ))
            best = pattern.best()
            if best is None:
                break
            best_delta, delta_confidence = best
            path_confidence *= delta_confidence
            if path_confidence < config.prefetch_confidence:
                break
            target = base + best_delta
            if depth > 0 and target >= 0:
                self.issued_candidates += 1
                candidates.append(PrefetchCandidate(
                    block_addr=self.channel_block_to_block_addr(target),
                    source=self.name,
                ))
            if path_confidence < config.lookahead_confidence:
                break
            # Speculatively walk the path.
            base = max(0, target)
            if base // self._offsets_per_page != access.page:
                self._ghr_record(signature, path_confidence,
                                 access.block_in_segment, best_delta)
            signature = self._next_signature(signature, best_delta)
        return candidates

    def storage_bits(self) -> int:
        config = self.config
        # ST: tag(16) + last offset(4) + signature
        st_bits = config.signature_table_entries * (16 + 4 + config.signature_bits)
        # PT: 4 deltas x (delta 6b + counter) + sig counter
        pt_bits = config.pattern_table_entries * (
            4 * (6 + config.counter_bits) + config.counter_bits
        )
        ghr_bits = config.ghr_entries * (config.signature_bits + 8 + 4 + 6)
        return st_bits + pt_bits + ghr_bits
