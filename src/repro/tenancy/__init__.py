"""Multi-tenant workload composition for the shared system cache.

The paper's premise is one SC serving CPU+GPU+NPU+ISP+DSP traffic at
once; this package composes that mixed traffic from the single-app
synthetic generators:

* :mod:`repro.tenancy.spec` — :class:`TenantSpec`: one tenant = one app
  profile pinned to a device ID, with its own length/seed and a phase
  offset + intensity ratio that reclock its arrival times.
* :mod:`repro.tenancy.merge` — deterministic trace merging: reclock,
  retag, stable time-ordered interleave (:func:`merge_traces`), exact
  per-tenant extraction (:func:`extract_tenant`) and the checkpointable
  :class:`StreamingTraceMerger` for feeding the service in chunks.
* :mod:`repro.tenancy.qos` — per-tenant QoS tables from
  :class:`~repro.sim.metrics.RunMetrics.tenant_stats` and interference
  deltas vs solo baselines.
* :mod:`repro.tenancy.experiment` — the shared-vs-partitioned contention
  study behind the ``repro multitenant`` CLI verb and
  ``BENCH_multitenant.json``.
"""

from repro.tenancy.merge import (
    StreamingTraceMerger,
    extract_tenant,
    merge_buffers,
    merge_traces,
    tenant_trace,
)
from repro.tenancy.qos import interference_deltas, tenant_qos
from repro.tenancy.spec import TenantSpec, default_way_partitions
from repro.tenancy.experiment import multitenant_experiment, write_bench

__all__ = [
    "TenantSpec",
    "default_way_partitions",
    "tenant_trace",
    "merge_buffers",
    "merge_traces",
    "extract_tenant",
    "StreamingTraceMerger",
    "tenant_qos",
    "interference_deltas",
    "multitenant_experiment",
    "write_bench",
]
