"""The shared-vs-partitioned SC contention study.

For each prefetcher the experiment runs three configurations over the
same tenant set:

1. **solo** — each tenant alone on the SC (its reclocked trace, nothing
   else): the per-tenant QoS baseline.
2. **shared** — the merged workload on the default fully-shared SC.
3. **partitioned** — the merged workload with the ways split evenly
   across tenants (:func:`~repro.tenancy.spec.default_way_partitions`).

The report's rows carry each tenant's hit rate / AMAT per mode with
deltas vs its solo baseline; the ``details`` side-tables hold the full
interference matrices.  ``repro multitenant`` renders the table and
:func:`write_bench` freezes the whole document as
``BENCH_multitenant.json`` for CI trend tracking.
"""

from __future__ import annotations

import json
from dataclasses import replace
from pathlib import Path
from typing import Dict, Optional, Sequence

from repro.config import SimConfig
from repro.experiments.report import ExperimentReport
from repro.sim.metrics import RunMetrics
from repro.sim.runner import simulate
from repro.tenancy.merge import merge_traces, tenant_trace
from repro.tenancy.qos import interference_deltas, tenant_qos
from repro.tenancy.spec import TenantSpec, default_way_partitions

DEFAULT_PREFETCHERS = ("none", "planaria")

COLUMNS = ["run", "tenant", "hit_rate", "amat",
           "hit_rate_delta", "amat_delta"]


def partitioned_config(config: SimConfig,
                       specs: Sequence[TenantSpec]) -> SimConfig:
    """``config`` with the SC ways split evenly across ``specs``."""
    partitions = default_way_partitions(specs, config.cache.associativity)
    return replace(config, cache=replace(config.cache,
                                         way_partitions=partitions))


def _solo_baselines(specs: Sequence[TenantSpec], prefetcher: str,
                    config: SimConfig) -> Dict[str, RunMetrics]:
    return {
        spec.device: simulate(tenant_trace(spec, config.layout), prefetcher,
                              workload_name=spec.name,
                              config=config).metrics
        for spec in specs
    }


def multitenant_experiment(
    specs: Sequence[TenantSpec],
    prefetchers: Sequence[str] = DEFAULT_PREFETCHERS,
    config: Optional[SimConfig] = None,
) -> ExperimentReport:
    """Run the contention study and assemble the report.

    One row per (prefetcher, mode, tenant); ``details`` carries the
    interference matrices and the per-tenant solo QoS tables; ``summary``
    averages each mode's AMAT/hit-rate interference across prefetchers
    and tenants, plus the headline ``partition_amat_delta_reduction`` —
    how much of the shared-mode AMAT interference way-partitioning
    removes.
    """
    config = config or SimConfig.experiment_scale()
    specs = list(specs)
    merged = merge_traces(specs, config.layout)
    part_config = partitioned_config(config, specs)
    tenant_names = {spec.device: spec.name for spec in specs}

    report = ExperimentReport(
        experiment_id="multitenant",
        title="shared vs way-partitioned SC under a merged "
              f"{len(specs)}-tenant workload",
        columns=list(COLUMNS),
    )
    matrices: Dict[str, Dict[str, Dict[str, Dict[str, float]]]] = {}
    shared_deltas = {"hit_rate": [], "amat": []}
    part_deltas = {"hit_rate": [], "amat": []}

    for prefetcher in prefetchers:
        solo = _solo_baselines(specs, prefetcher, config)
        shared = simulate(merged, prefetcher, workload_name="merged",
                          config=config).metrics
        partitioned = simulate(merged, prefetcher, workload_name="merged",
                               config=part_config).metrics
        modes = {
            "shared": interference_deltas(solo, shared),
            "partitioned": interference_deltas(solo, partitioned),
        }
        matrices[prefetcher] = modes
        matrices[prefetcher]["solo_qos"] = {
            device: tenant_qos(metrics).get(device, {})
            for device, metrics in sorted(solo.items())
        }
        for mode, sink in (("shared", shared_deltas),
                           ("partitioned", part_deltas)):
            for device in sorted(modes[mode]):
                entry = modes[mode][device]
                report.add_row([
                    f"{prefetcher}/{mode}",
                    tenant_names.get(device, device),
                    entry["merged_hit_rate"],
                    entry["merged_amat"],
                    entry["hit_rate_delta"],
                    entry["amat_delta"],
                ])
                sink["hit_rate"].append(entry["hit_rate_delta"])
                sink["amat"].append(entry["amat_delta"])

    def _mean(values):
        return sum(values) / len(values) if values else 0.0

    shared_amat = _mean(shared_deltas["amat"])
    part_amat = _mean(part_deltas["amat"])
    report.summary = {
        "tenants": len(specs),
        "shared_hit_rate_delta_mean": _mean(shared_deltas["hit_rate"]),
        "shared_amat_delta_mean": shared_amat,
        "partitioned_hit_rate_delta_mean": _mean(part_deltas["hit_rate"]),
        "partitioned_amat_delta_mean": part_amat,
        "partition_amat_delta_reduction": shared_amat - part_amat,
    }
    report.details["interference"] = matrices
    report.details["tenants"] = {
        spec.device: {"app": spec.app, "length": spec.length,
                      "seed": spec.seed, "phase_offset": spec.phase_offset,
                      "intensity": spec.intensity}
        for spec in specs
    }
    report.details["way_partitions"] = list(
        part_config.cache.way_partitions)
    return report


def write_bench(report: ExperimentReport, path) -> Path:
    """Freeze the report as the ``BENCH_multitenant.json`` artifact."""
    from repro.utils.provenance import runtime_provenance

    path = Path(path)
    document = {
        "experiment_id": report.experiment_id,
        "title": report.title,
        **runtime_provenance(),
        "columns": report.columns,
        "rows": report.rows,
        "summary": report.summary,
        "details": report.details,
    }
    path.write_text(json.dumps(document, indent=2) + "\n", encoding="utf-8")
    return path
