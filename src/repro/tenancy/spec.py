"""Tenant descriptions: which app runs as which device, and how hard.

A :class:`TenantSpec` is everything needed to regenerate one tenant's
(reclocked, device-tagged) trace deterministically — the merger, the
streaming variant and every worker process rebuild identical columns from
the spec alone, which is what makes merged workloads checkpointable.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError, UnknownDeviceError
from repro.trace.record import DeviceID

_VALID_DEVICES = tuple(member.name for member in DeviceID)

#: ``TenantSpec.parse`` key → attribute, with per-key converters.
_PARSE_KEYS = {
    "app": str,
    "device": str,
    "length": int,
    "seed": int,
    "phase": int,
    "intensity": float,
}


def parse_device(name: str) -> DeviceID:
    """Resolve a device/tenant name, naming the valid members on failure.

    Raises:
        UnknownDeviceError: listing every :class:`DeviceID` member.
    """
    try:
        return DeviceID[name]
    except KeyError:
        raise UnknownDeviceError(name, _VALID_DEVICES) from None


@dataclass(frozen=True)
class TenantSpec:
    """One tenant of a merged workload.

    Attributes:
        app: workload abbreviation (Table 2, e.g. ``"CFM"``).
        device: :class:`DeviceID` member name the tenant's accesses are
            tagged with — the key all per-tenant attribution uses.
        length: records to generate for this tenant.
        seed: generator seed (same spec → bit-identical trace).
        phase_offset: cycles added to every arrival time — staggers the
            tenant's activity window against the others.
        intensity: arrival-rate multiplier (> 0): times are reclocked as
            ``phase_offset + floor(t / intensity)``, so 2.0 issues twice
            as fast, 0.5 half as fast.  1.0 with phase 0 is the identity.
    """

    app: str
    device: str
    length: int = 60_000
    seed: int = 0
    phase_offset: int = 0
    intensity: float = 1.0

    def __post_init__(self) -> None:
        parse_device(self.device)
        if self.length < 1:
            raise ConfigError(f"tenant length must be >= 1: {self.length}")
        if self.phase_offset < 0:
            raise ConfigError(
                f"tenant phase_offset must be >= 0: {self.phase_offset}")
        if not self.intensity > 0:
            raise ConfigError(
                f"tenant intensity must be > 0: {self.intensity}")

    @property
    def device_id(self) -> DeviceID:
        return DeviceID[self.device]

    @property
    def name(self) -> str:
        """Display label, e.g. ``"CFM@GPU"``."""
        return f"{self.app}@{self.device}"

    @classmethod
    def parse(cls, text: str) -> "TenantSpec":
        """Parse the CLI form ``app=CFM,device=GPU,length=60000,seed=1``.

        Keys: ``app`` (required), ``device`` (required), ``length``,
        ``seed``, ``phase``, ``intensity``.

        Raises:
            ConfigError: malformed entries or unknown keys.
            UnknownDeviceError: unknown device name.
        """
        fields = {}
        for part in text.split(","):
            part = part.strip()
            if not part:
                continue
            key, sep, value = part.partition("=")
            key = key.strip()
            if not sep or key not in _PARSE_KEYS:
                raise ConfigError(
                    f"bad tenant spec field {part!r}; expected "
                    f"key=value with keys: {', '.join(_PARSE_KEYS)}")
            try:
                fields[key] = _PARSE_KEYS[key](value.strip())
            except ValueError:
                raise ConfigError(
                    f"bad value for tenant spec field {part!r}") from None
        if "app" not in fields or "device" not in fields:
            raise ConfigError(
                f"tenant spec {text!r} must name at least app= and device=")
        if "phase" in fields:
            fields["phase_offset"] = fields.pop("phase")
        return cls(**fields)


def default_way_partitions(specs, associativity: int) -> tuple:
    """Even way split over the tenants, as ``CacheConfig.way_partitions``.

    Tenant ``i`` of ``n`` gets ways ``[i*k, (i+1)*k)`` with
    ``k = associativity // n`` — disjoint contiguous masks in spec order
    (any ways left by the remainder stay unassigned, hence shared).

    Raises:
        ConfigError: more tenants than ways, or duplicate devices.
    """
    specs = list(specs)
    if len(specs) > associativity:
        raise ConfigError(
            f"{len(specs)} tenants need at least that many ways, "
            f"cache has {associativity}")
    devices = [spec.device for spec in specs]
    if len(set(devices)) != len(devices):
        raise ConfigError(f"duplicate tenant devices: {devices}")
    ways_each = associativity // len(specs)
    mask = (1 << ways_each) - 1
    return tuple(
        f"{spec.device}:{hex(mask << (index * ways_each))}"
        for index, spec in enumerate(specs)
    )
