"""Per-tenant QoS views and interference deltas.

The engine attributes demand traffic per device tag
(:attr:`~repro.sim.metrics.MetricSet.device_demand`), and the runner
condenses that into :attr:`~repro.sim.metrics.RunMetrics.tenant_stats`.
This module turns those tables into the numbers the contention study
reports: each tenant's QoS under a merged workload, and how far it moved
from the tenant's solo baseline (the interference delta).
"""

from __future__ import annotations

from typing import Dict, Mapping

from repro.sim.metrics import RunMetrics

#: tenant_stats keys carried through to QoS rows, in report order.
QOS_FIELDS = ("accesses", "hits", "hit_rate", "reads", "amat",
              "useful_prefetches", "dram_reads")


def tenant_qos(metrics: RunMetrics) -> Dict[str, Dict[str, float]]:
    """The per-tenant QoS table of one run, keyed by device name.

    A thin, copying accessor over ``metrics.tenant_stats`` (sorted device
    order) so report code never mutates the run's own payload.
    """
    return {
        device: {field: stats.get(field, 0) for field in QOS_FIELDS}
        for device, stats in sorted(metrics.tenant_stats.items())
    }


def interference_deltas(
    solo: Mapping[str, RunMetrics], merged: RunMetrics,
) -> Dict[str, Dict[str, float]]:
    """How each tenant's QoS moved from solo to the merged workload.

    Args:
        solo: per-device baselines — each tenant simulated alone (same
            reclocked trace it contributes to the merge).
        merged: the co-scheduled run.

    Returns:
        Per-device dicts: solo/merged hit_rate and AMAT plus their deltas
        (``merged - solo``; a positive ``amat_delta`` is a slowdown, a
        negative ``hit_rate_delta`` is lost hits).  Plain floats, ready
        for JSON export.
    """
    merged_qos = tenant_qos(merged)
    deltas: Dict[str, Dict[str, float]] = {}
    for device in sorted(solo):
        solo_stats = solo[device].tenant_stats.get(device, {})
        merged_stats = merged_qos.get(device, {})
        solo_hit = solo_stats.get("hit_rate", 0.0)
        solo_amat = solo_stats.get("amat", 0.0)
        merged_hit = merged_stats.get("hit_rate", 0.0)
        merged_amat = merged_stats.get("amat", 0.0)
        deltas[device] = {
            "solo_hit_rate": solo_hit,
            "merged_hit_rate": merged_hit,
            "hit_rate_delta": merged_hit - solo_hit,
            "solo_amat": solo_amat,
            "merged_amat": merged_amat,
            "amat_delta": merged_amat - solo_amat,
        }
    return deltas
