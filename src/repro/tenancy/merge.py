"""Deterministic multi-tenant trace merging.

Each :class:`~repro.tenancy.spec.TenantSpec` regenerates to a columnar
trace (:func:`tenant_trace`): the app profile's synthetic trace with the
device column retagged to the tenant's device and arrival times reclocked
by the spec's phase offset / intensity ratio.  :func:`merge_traces`
interleaves the tenant traces into one time-ordered
:class:`~repro.trace.buffer.TraceBuffer`; the interleave is a *stable*
sort keyed on ``(arrival_time, device value)``, so the merged order is a
pure function of the tenant *set* — permuting the specs never changes it
(property-tested) — and reproducible record-for-record by the streaming
variant below.

Because every record keeps its tenant's device tag, the merge is
losslessly invertible: :func:`extract_tenant` recovers a tenant's records
bit-identical to its pre-merge trace (property-tested in
``tests/test_tenancy.py``).

:class:`StreamingTraceMerger` produces the *same* merged sequence
incrementally for the service path: it holds one cursor per tenant and
repeatedly emits the cursor-minimum by ``(arrival_time, device value)``
— exactly the lexsort order — so offline and streamed runs are
bit-identical, and ``state_dict()`` (just the cursors) makes a merged
feed checkpoint/resumable.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from repro.errors import ConfigError
from repro.geometry import AddressLayout
from repro.tenancy.spec import TenantSpec, parse_device
from repro.trace.buffer import TraceBuffer
from repro.trace.generator import generate_trace_buffer, get_profile

DEFAULT_LAYOUT = AddressLayout()


def reclock_times(times: np.ndarray, phase_offset: int,
                  intensity: float) -> np.ndarray:
    """``phase + floor(t / intensity)`` — monotone, identity at (0, 1.0).

    Intensity > 1 compresses the tenant's arrival schedule (issues
    faster); < 1 stretches it.  Monotone in ``t`` for any intensity > 0,
    so a reclocked trace keeps the non-decreasing arrival order the
    engine requires.
    """
    if phase_offset == 0 and intensity == 1.0:
        return times
    scaled = np.floor(times / intensity).astype(np.int64)
    return scaled + np.int64(phase_offset)


def tenant_trace(spec: TenantSpec,
                 layout: Optional[AddressLayout] = None) -> TraceBuffer:
    """Generate one tenant's trace: app profile, retagged and reclocked.

    Deterministic in ``spec`` (and layout): the merger, tests and every
    service worker regenerate bit-identical columns from the spec alone.
    """
    layout = layout or DEFAULT_LAYOUT
    base = generate_trace_buffer(get_profile(spec.app), spec.length,
                                 seed=spec.seed, layout=layout)
    devices = np.full(len(base), spec.device_id.value, dtype=np.uint8)
    times = reclock_times(base.arrival_times, spec.phase_offset,
                          spec.intensity)
    return TraceBuffer(base.addresses, base.access_types, devices, times)


def _interleave_order(arrival_times: np.ndarray,
                      devices: np.ndarray) -> np.ndarray:
    """Merged record order: sort by (arrival_time, device value), stable.

    ``lexsort`` keys run last-key-primary.  The tie-break is the record's
    own device value — a property of the record, not of input position —
    so with one device per tenant the merged order is invariant under
    permuting the tenants; within one tenant, lexsort's stability keeps
    the original relative order.
    """
    return np.lexsort((devices, arrival_times))


def merge_buffers(buffers: Sequence[TraceBuffer]) -> TraceBuffer:
    """Interleave per-tenant buffers into one time-ordered trace.

    Arrival-time ties break by device value (lowest :class:`DeviceID`
    first); same-device ties keep concatenation order.
    """
    if not buffers:
        raise ConfigError("merge_buffers needs at least one trace")
    addresses = np.concatenate([b.addresses for b in buffers])
    access_types = np.concatenate([b.access_types for b in buffers])
    devices = np.concatenate([b.devices for b in buffers])
    arrival_times = np.concatenate([b.arrival_times for b in buffers])
    order = _interleave_order(arrival_times, devices)
    return TraceBuffer(addresses[order], access_types[order],
                       devices[order], arrival_times[order])


def merge_traces(specs: Sequence[TenantSpec],
                 layout: Optional[AddressLayout] = None) -> TraceBuffer:
    """Generate and interleave every tenant's trace (the offline path).

    Raises:
        ConfigError: fewer than two tenants, or two tenants sharing a
            device tag (attribution would be ambiguous).
    """
    specs = list(specs)
    if len(specs) < 2:
        raise ConfigError(
            f"a multi-tenant workload needs >= 2 tenants, got {len(specs)}")
    devices = [spec.device for spec in specs]
    if len(set(devices)) != len(devices):
        raise ConfigError(f"duplicate tenant devices: {devices}")
    return merge_buffers([tenant_trace(spec, layout) for spec in specs])


def extract_tenant(merged: TraceBuffer, device: str) -> TraceBuffer:
    """Recover one tenant's records from a merged trace, in merge order.

    Because the interleave is a stable sort, this is bit-identical to the
    tenant's pre-merge buffer.

    Raises:
        UnknownDeviceError: unknown device name.
    """
    value = parse_device(device).value
    mask = merged.devices == np.uint8(value)
    return TraceBuffer(merged.addresses[mask], merged.access_types[mask],
                       merged.devices[mask], merged.arrival_times[mask])


class StreamingTraceMerger:
    """Chunked producer of the merged sequence, checkpoint/resumable.

    Regenerates every tenant trace from its spec at construction, then
    emits records one cursor-minimum at a time — provably the same order
    :func:`merge_traces` produces (both orders sort by
    ``(arrival_time, tenant index)`` with stable within-tenant order).
    State is just the per-tenant cursors, so ``state_dict()`` is a few
    integers and resuming mid-stream is exact.
    """

    def __init__(self, specs: Sequence[TenantSpec],
                 layout: Optional[AddressLayout] = None) -> None:
        specs = list(specs)
        if len(specs) < 2:
            raise ConfigError(
                f"a multi-tenant workload needs >= 2 tenants, "
                f"got {len(specs)}")
        devices = [spec.device for spec in specs]
        if len(set(devices)) != len(devices):
            raise ConfigError(f"duplicate tenant devices: {devices}")
        self.specs = tuple(specs)
        self._buffers: List[TraceBuffer] = [
            tenant_trace(spec, layout) for spec in specs]
        self._cursors: List[int] = [0] * len(specs)
        # Python-int copies of each tenant's arrival column: the pick-min
        # loop compares per record, and list indexing beats ndarray
        # scalar extraction by an order of magnitude.
        self._times: List[List[int]] = [
            buffer.arrival_times.tolist() for buffer in self._buffers]
        # Scanning tenants by ascending device value makes the strict-<
        # pick-min tie-break match the offline lexsort's device-value
        # secondary key exactly.
        self._scan_order: List[int] = sorted(
            range(len(specs)),
            key=lambda index: specs[index].device_id.value)

    def __len__(self) -> int:
        return sum(len(buffer) for buffer in self._buffers)

    @property
    def remaining(self) -> int:
        return len(self) - sum(self._cursors)

    @property
    def exhausted(self) -> bool:
        return self.remaining == 0

    def next_chunk(self, max_records: int) -> TraceBuffer:
        """The next ``<= max_records`` records of the merged sequence."""
        if max_records < 1:
            raise ConfigError(f"chunk size must be >= 1: {max_records}")
        cursors = self._cursors
        times = self._times
        picks: List[int] = []  # flat (tenant, index) pairs, interleaved
        for _ in range(min(max_records, self.remaining)):
            best = -1
            best_time = 0
            for tenant in self._scan_order:
                cursor = cursors[tenant]
                tenant_times = times[tenant]
                if cursor >= len(tenant_times):
                    continue
                head = tenant_times[cursor]
                if best < 0 or head < best_time:
                    best = tenant
                    best_time = head
            picks.append(best)
            picks.append(cursors[best])
            cursors[best] += 1
        return self._gather(picks)

    def _gather(self, picks: List[int]) -> TraceBuffer:
        count = len(picks) // 2
        addresses = np.empty(count, dtype=np.uint64)
        access_types = np.empty(count, dtype=np.uint8)
        devices = np.empty(count, dtype=np.uint8)
        arrival_times = np.empty(count, dtype=np.int64)
        buffers = self._buffers
        for out, pair in enumerate(range(0, len(picks), 2)):
            buffer = buffers[picks[pair]]
            index = picks[pair + 1]
            addresses[out] = buffer.addresses[index]
            access_types[out] = buffer.access_types[index]
            devices[out] = buffer.devices[index]
            arrival_times[out] = buffer.arrival_times[index]
        return TraceBuffer(addresses, access_types, devices, arrival_times)

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------
    def state_dict(self) -> Dict[str, object]:
        return {"cursors": list(self._cursors)}

    def load_state(self, state: Dict[str, object]) -> None:
        cursors = state["cursors"]
        if len(cursors) != len(self._buffers):
            raise ConfigError(
                f"checkpoint has {len(cursors)} tenant cursors, "
                f"merger has {len(self._buffers)} tenants")
        for tenant, cursor in enumerate(cursors):
            if not 0 <= cursor <= len(self._buffers[tenant]):
                raise ConfigError(
                    f"tenant {tenant} cursor {cursor} out of range")
        self._cursors = [int(cursor) for cursor in cursors]
