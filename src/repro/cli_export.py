"""Shared ``--export DIR`` handling for report-producing CLI verbs.

Every verb that can publish an :class:`~repro.experiments.report.ExperimentReport`
(``figure``, ``multitenant``, ``campaign run/resume``) registers the flag
through :func:`add_export_argument` and materialises it through
:func:`export_if_requested`, so flag spelling, help text, and the
"exported <path>" output lines stay identical across verbs.  Interrupt
behaviour is likewise uniform: handlers let :class:`KeyboardInterrupt`
propagate to ``main()``, which maps it to :data:`EXIT_INTERRUPTED`.
"""

from __future__ import annotations

import argparse
from pathlib import Path
from typing import List, Optional

from repro.experiments.report import ExperimentReport

#: 128 + SIGINT — the conventional "killed by Ctrl-C" exit code that
#: ``repro``'s ``main()`` returns for every verb.
EXIT_INTERRUPTED = 130


def add_export_argument(parser: argparse.ArgumentParser,
                        what: str = "the report") -> None:
    """Register the uniform ``--export DIR`` flag on a verb's subparser."""
    parser.add_argument(
        "--export", metavar="DIR", default=None,
        help=f"also write {what} as CSV/JSON (and SVG when plottable) "
             f"into DIR")


def export_if_requested(report: ExperimentReport,
                        directory: Optional[str]) -> List[Path]:
    """Export ``report`` when ``--export`` was given; prints each path.

    Returns the written paths (empty when the flag was absent), so
    handlers can reference them without re-deriving names.
    """
    if not directory:
        return []
    from repro.experiments.export import export_report

    written = export_report(report, directory)
    for path in written:
        print(f"exported {path}")
    return written
