"""Figure 7 — SC hit rate per application × prefetcher."""

from __future__ import annotations

from repro.experiments.matrix import run_matrix
from repro.experiments.report import ExperimentReport
from repro.experiments.settings import DEFAULT_SETTINGS, ExperimentSettings


def run(settings: ExperimentSettings = DEFAULT_SETTINGS) -> ExperimentReport:
    matrix = run_matrix(settings)
    report = ExperimentReport(
        experiment_id="fig7",
        title="system-cache hit rate with different prefetchers",
        columns=["app"] + list(settings.prefetchers),
    )
    sums = {name: 0.0 for name in settings.prefetchers}
    for app in settings.apps:
        row = [app]
        for name in settings.prefetchers:
            hit_rate = matrix[app][name].hit_rate
            row.append(hit_rate)
            sums[name] += hit_rate
        report.add_row(row)
    count = len(settings.apps) or 1
    for name in settings.prefetchers:
        report.summary[f"mean hit rate [{name}]"] = sums[name] / count
    # The paper's qualitative check: every prefetcher raises the hit rate
    # over none, and Planaria raises it the most.
    report.summary["planaria minus none (pp)"] = (
        report.summary["mean hit rate [planaria]"]
        - report.summary["mean hit rate [none]"]
    )
    return report
