"""Figure 5 — learnable-neighbour fraction per application and distance.

Paper: on average 26.95 % of pages have a learnable neighbour at distance
threshold 4, and 39.26 % at threshold 64.
"""

from __future__ import annotations

from typing import Sequence

from repro.analysis.neighbors import learnable_neighbor_fraction
from repro.experiments.report import ExperimentReport
from repro.experiments.settings import DEFAULT_SETTINGS, ExperimentSettings
from repro.trace.generator import generate_trace, get_profile

PAPER_AVG_AT_4 = 0.2695
PAPER_AVG_AT_64 = 0.3926
DISTANCES: Sequence[int] = (4, 8, 16, 32, 64)


def run(settings: ExperimentSettings = DEFAULT_SETTINGS) -> ExperimentReport:
    report = ExperimentReport(
        experiment_id="fig5",
        title="fraction of pages with a learnable neighbour, per distance threshold",
        columns=["app"] + [f"d<={distance}" for distance in DISTANCES],
    )
    sums = {distance: 0.0 for distance in DISTANCES}
    for app in settings.apps:
        profile = get_profile(app)
        records = generate_trace(profile, settings.trace_length, seed=settings.seed)
        result = learnable_neighbor_fraction(records, DISTANCES)
        report.add_row([app] + [result.fraction_at(distance) for distance in DISTANCES])
        for distance in DISTANCES:
            sums[distance] += result.fraction_at(distance)
    count = len(settings.apps) or 1
    report.summary = {
        "average fraction at distance 4 (measured)": sums[4] / count,
        "average fraction at distance 4 (paper)": PAPER_AVG_AT_4,
        "average fraction at distance 64 (measured)": sums[64] / count,
        "average fraction at distance 64 (paper)": PAPER_AVG_AT_64,
    }
    return report
