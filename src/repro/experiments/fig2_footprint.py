"""Figure 2 — the footprint snapshot of one memory page.

Regenerates the paper's motivating scatter: a hot page's accesses cluster
into brief spatial bursts whose block *set* is stable but whose order is
not, separated by long quiet gaps.
"""

from __future__ import annotations

from typing import Optional

from repro.analysis.footprint import (
    footprint_summary,
    page_footprint_events,
    render_ascii,
)
from repro.experiments.report import ExperimentReport
from repro.experiments.settings import DEFAULT_SETTINGS, ExperimentSettings
from repro.trace.filters import hottest_pages
from repro.trace.generator import generate_trace, get_profile

DEFAULT_APP = "CFM"


def _select_page(records) -> int:
    """Pick a page exhibiting Figure 2's episodic structure.

    The single hottest page is usually a resident buffer (one giant burst);
    the figure wants a page with several snapshot episodes separated by
    long gaps, so candidates are screened for ≥2 bursts with
    gap-dominated timing.
    """
    candidates = hottest_pages(records, count=24, min_blocks=12)
    if not candidates:
        candidates = hottest_pages(records, count=1)
    fallback = candidates[0]
    for page in candidates:
        events = page_footprint_events(records, page)
        summary = footprint_summary(events)
        if summary.num_bursts >= 2 and summary.reuse_over_burst_ratio > 1.0:
            return page
    return fallback


def run(settings: ExperimentSettings = DEFAULT_SETTINGS,
        app: str = DEFAULT_APP,
        page_number: Optional[int] = None) -> ExperimentReport:
    """Extract Figure 2's page and quantify its three observations."""
    profile = get_profile(app)
    records = generate_trace(profile, settings.trace_length, seed=settings.seed)
    if page_number is None:
        page_number = _select_page(records)
    events = page_footprint_events(records, page_number)
    summary = footprint_summary(events)
    report = ExperimentReport(
        experiment_id="fig2",
        title=f"footprint snapshot of page {page_number:#x} ({app})",
        columns=["metric", "value"],
    )
    report.add_row(["accesses", summary.num_accesses])
    report.add_row(["distinct blocks", summary.distinct_blocks])
    report.add_row(["bursts (snapshot episodes)", summary.num_bursts])
    report.add_row(["mean burst span (cycles)", summary.mean_burst_span])
    report.add_row(["mean gap between bursts (cycles)", summary.mean_gap_between_bursts])
    report.add_row(["reuse-gap / burst-span ratio", summary.reuse_over_burst_ratio])
    report.add_row(["across-burst order similarity", summary.order_similarity])
    report.summary = {
        "observation: long reuse distance (gap >> span)": summary.reuse_over_burst_ratio,
        "observation: non-deterministic order (similarity << 1)": summary.order_similarity,
    }
    return report


def ascii_plot(settings: ExperimentSettings = DEFAULT_SETTINGS,
               app: str = DEFAULT_APP) -> str:
    """The Figure-2 scatter rendered for a terminal."""
    profile = get_profile(app)
    records = generate_trace(profile, settings.trace_length, seed=settings.seed)
    events = page_footprint_events(records, _select_page(records))
    return render_ascii(events)
