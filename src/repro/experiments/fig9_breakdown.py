"""Figure 9 — Planaria performance breakdown between SLP and TLP.

The paper attributes ~80 % of Planaria's overall improvement to SLP, with
TLP mattering little on CFM/QSM/HI3/KO/NBA2 but supplying *most* of the
improvement on Fort (whose pages rarely recur, starving SLP).

Attribution here uses the useful-prefetch counts per issuing
sub-prefetcher inside the composite run (the coordinator tags every
request), cross-checked against SLP-only and TLP-only runs.
"""

from __future__ import annotations

from repro.experiments.matrix import breakdown_matrix
from repro.experiments.report import ExperimentReport
from repro.experiments.settings import DEFAULT_SETTINGS, ExperimentSettings

PAPER_SLP_SHARE = 0.80
SLP_DOMINANT_APPS = ("CFM", "QSM", "HI3", "KO", "NBA2")
TLP_DOMINANT_APPS = ("Fort",)


def run(settings: ExperimentSettings = DEFAULT_SETTINGS) -> ExperimentReport:
    matrix = breakdown_matrix(settings)
    report = ExperimentReport(
        experiment_id="fig9",
        title="Planaria improvement breakdown: SLP vs TLP share of useful prefetches",
        columns=["app", "slp_share", "tlp_share",
                 "slp_only_dAMAT", "tlp_only_dAMAT", "planaria_dAMAT"],
    )
    weighted_slp = 0.0
    weighted_total = 0.0
    for app in settings.apps:
        runs = matrix[app]
        base = runs["none"]
        planaria = runs["planaria"]
        useful = planaria.prefetch_useful_by_source
        slp_useful = useful.get("slp", 0)
        tlp_useful = useful.get("tlp", 0)
        total = slp_useful + tlp_useful
        slp_share = slp_useful / total if total else 0.0
        report.add_row([
            app,
            slp_share,
            1.0 - slp_share if total else 0.0,
            runs["slp"].amat_reduction_vs(base),
            runs["tlp"].amat_reduction_vs(base),
            planaria.amat_reduction_vs(base),
        ])
        weighted_slp += slp_useful
        weighted_total += total
    report.summary = {
        "overall SLP share of useful prefetches (measured)":
            weighted_slp / weighted_total if weighted_total else 0.0,
        "overall SLP share (paper, ~)": PAPER_SLP_SHARE,
    }
    return report
