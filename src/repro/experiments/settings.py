"""Shared experiment settings.

``REPRO_BENCH_LENGTH`` / ``REPRO_BENCH_APPS`` environment variables let CI
or impatient users shrink the trace length / application list without
touching code (all reported quantities are ratios, so shapes survive
shrinking — shapes just get noisier).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Tuple

from repro.config import SimConfig
from repro.trace.generator import list_workloads


def _env_length(default: int = 80_000) -> int:
    raw = os.environ.get("REPRO_BENCH_LENGTH", "")
    try:
        return max(1_000, int(raw))
    except ValueError:
        return default


def _env_apps() -> Tuple[str, ...]:
    raw = os.environ.get("REPRO_BENCH_APPS", "")
    if not raw:
        return tuple(list_workloads())
    requested = tuple(token.strip() for token in raw.split(",") if token.strip())
    known = set(list_workloads())
    unknown = [token for token in requested if token not in known]
    if unknown:
        raise ValueError(f"unknown apps in REPRO_BENCH_APPS: {unknown}")
    return requested


def _env_parallelism(default: str = "serial") -> str:
    raw = os.environ.get("REPRO_PARALLELISM", "").strip()
    return raw if raw else default


@dataclass(frozen=True)
class ExperimentSettings:
    """Trace length, seed, application list, and simulator scale.

    ``parallelism`` selects the execution mode for the simulation grid
    (``"serial"``, ``"auto"`` or a worker count; also settable via the
    ``REPRO_PARALLELISM`` environment variable).  It is deliberately
    excluded from :meth:`cache_key`: parallel results are bit-identical
    to serial ones, so the mode must never fork the memo cache.
    """

    trace_length: int = field(default_factory=_env_length)
    seed: int = 7
    apps: Tuple[str, ...] = field(default_factory=_env_apps)
    prefetchers: Tuple[str, ...] = ("none", "bop", "spp", "planaria")
    parallelism: str = field(default_factory=_env_parallelism)

    def sim_config(self) -> SimConfig:
        return SimConfig.experiment_scale()

    def cache_key(self) -> tuple:
        return (self.trace_length, self.seed, self.apps, self.prefetchers)


DEFAULT_SETTINGS = ExperimentSettings()
