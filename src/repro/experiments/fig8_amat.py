"""Figure 8 — AMAT per application × prefetcher.

Paper headline: Planaria reduces AMAT by 24.3 % vs no prefetcher, 21.3 % vs
BOP and 15.1 % vs SPP; and on Fort/NBA2/PM, BOP *raises* AMAT despite
raising the hit rate (superfluous prefetch traffic).
"""

from __future__ import annotations

from repro.experiments.matrix import run_matrix
from repro.experiments.report import ExperimentReport
from repro.experiments.settings import DEFAULT_SETTINGS, ExperimentSettings

PAPER_REDUCTION_VS_NONE = 0.243
PAPER_REDUCTION_VS_BOP = 0.213
PAPER_REDUCTION_VS_SPP = 0.151


def run(settings: ExperimentSettings = DEFAULT_SETTINGS) -> ExperimentReport:
    matrix = run_matrix(settings)
    report = ExperimentReport(
        experiment_id="fig8",
        title="AMAT (memory-controller cycles) with different prefetchers",
        columns=["app"] + list(settings.prefetchers),
    )
    reduction_sums = {name: 0.0 for name in settings.prefetchers}
    for app in settings.apps:
        row = [app]
        base = matrix[app]["none"]
        for name in settings.prefetchers:
            metrics = matrix[app][name]
            row.append(metrics.amat)
            reduction_sums[name] += metrics.amat_reduction_vs(base)
        report.add_row(row)
    count = len(settings.apps) or 1
    mean_reduction = {
        name: reduction_sums[name] / count for name in settings.prefetchers
    }
    report.summary = {
        "planaria AMAT reduction vs none (measured)": mean_reduction.get("planaria", 0.0),
        "planaria AMAT reduction vs none (paper)": PAPER_REDUCTION_VS_NONE,
        "bop AMAT reduction vs none (measured)": mean_reduction.get("bop", 0.0),
        "spp AMAT reduction vs none (measured)": mean_reduction.get("spp", 0.0),
    }
    if {"planaria", "bop", "spp"} <= set(settings.prefetchers):
        pln = 1.0 - mean_reduction["planaria"]
        report.summary["planaria AMAT reduction vs bop (measured)"] = (
            1.0 - pln / (1.0 - mean_reduction["bop"])
        )
        report.summary["planaria AMAT reduction vs bop (paper)"] = PAPER_REDUCTION_VS_BOP
        report.summary["planaria AMAT reduction vs spp (measured)"] = (
            1.0 - pln / (1.0 - mean_reduction["spp"])
        )
        report.summary["planaria AMAT reduction vs spp (paper)"] = PAPER_REDUCTION_VS_SPP
    # Per-requestor-device read breakdown (the SC is shared by
    # CPU/GPU/NPU/ISP/DSP): which device the prefetcher helps, per app.
    report.details["device_read_stats"] = {
        app: {
            name: matrix[app][name].device_read_stats
            for name in settings.prefetchers
            if matrix[app][name].device_read_stats
        }
        for app in settings.apps
    }
    return report
