"""Abstract / Section-1 headline numbers.

* IPC: +28.9 % over no prefetcher, +21.9 % over BOP, +15.3 % over SPP
  (via the AMAT→IPC proxy with per-app memory intensities).
* Baseline AMAT reductions: SPP −10.8 %, BOP −3.3 %.
* Baseline traffic overheads: SPP +15.9 %, BOP +23.4 %.
* Planaria storage: 345.2 KB, 8.4 % of the 4 MB SC.
"""

from __future__ import annotations

from repro.core.storage import planaria_storage_budget
from repro.experiments.matrix import run_matrix
from repro.experiments.report import ExperimentReport
from repro.experiments.settings import DEFAULT_SETTINGS, ExperimentSettings
from repro.sim.metrics import ipc_speedup
from repro.trace.generator import get_profile

PAPER = {
    "ipc gain vs none": 0.289,
    "ipc gain vs bop": 0.219,
    "ipc gain vs spp": 0.153,
    "spp traffic overhead": 0.159,
    "bop traffic overhead": 0.234,
    "storage KiB": 345.2,
    "storage fraction of SC": 0.084,
}


def run(settings: ExperimentSettings = DEFAULT_SETTINGS) -> ExperimentReport:
    matrix = run_matrix(settings)
    report = ExperimentReport(
        experiment_id="headline",
        title="abstract-level headline numbers",
        columns=["app", "ipc_x_planaria", "ipc_x_bop", "ipc_x_spp",
                 "traffic_bop", "traffic_spp"],
    )
    ipc = {name: 0.0 for name in ("planaria", "bop", "spp")}
    traffic = {name: 0.0 for name in ("bop", "spp")}
    for app in settings.apps:
        base = matrix[app]["none"]
        intensity = get_profile(app).memory_intensity
        speedups = {
            name: ipc_speedup(matrix[app][name].amat, base.amat, intensity)
            for name in ("planaria", "bop", "spp")
        }
        overheads = {
            name: matrix[app][name].traffic_overhead_vs(base)
            for name in ("bop", "spp")
        }
        report.add_row([app, speedups["planaria"], speedups["bop"],
                        speedups["spp"], overheads["bop"], overheads["spp"]])
        for name in ipc:
            ipc[name] += speedups[name]
        for name in traffic:
            traffic[name] += overheads[name]
    count = len(settings.apps) or 1
    mean_ipc = {name: value / count for name, value in ipc.items()}
    budget = planaria_storage_budget()
    report.summary = {
        "IPC gain vs none (measured)": mean_ipc["planaria"] - 1.0,
        "IPC gain vs none (paper)": PAPER["ipc gain vs none"],
        "IPC gain vs bop (measured)": mean_ipc["planaria"] / mean_ipc["bop"] - 1.0,
        "IPC gain vs bop (paper)": PAPER["ipc gain vs bop"],
        "IPC gain vs spp (measured)": mean_ipc["planaria"] / mean_ipc["spp"] - 1.0,
        "IPC gain vs spp (paper)": PAPER["ipc gain vs spp"],
        "BOP traffic overhead (measured)": traffic["bop"] / count,
        "BOP traffic overhead (paper)": PAPER["bop traffic overhead"],
        "SPP traffic overhead (measured)": traffic["spp"] / count,
        "SPP traffic overhead (paper)": PAPER["spp traffic overhead"],
        "Planaria storage KiB (computed)": budget.total_kib,
        "Planaria storage KiB (paper)": PAPER["storage KiB"],
        "Planaria storage fraction of 4MB SC (computed)": budget.fraction_of_cache(),
        "Planaria storage fraction (paper)": PAPER["storage fraction of SC"],
    }
    return report
