"""Figure 10 — memory-system power with different prefetchers.

Paper: Planaria adds only 0.5 % average power (range −3.3 % on HI3 to
+2.8 %; it *saves* power on HI3 and PM), while BOP adds 13.5 % and SPP
adds 9.7 %.
"""

from __future__ import annotations

from repro.experiments.matrix import run_matrix
from repro.experiments.report import ExperimentReport
from repro.experiments.settings import DEFAULT_SETTINGS, ExperimentSettings

PAPER_OVERHEAD = {"planaria": 0.005, "bop": 0.135, "spp": 0.097}


def run(settings: ExperimentSettings = DEFAULT_SETTINGS) -> ExperimentReport:
    matrix = run_matrix(settings)
    names = [name for name in settings.prefetchers if name != "none"]
    report = ExperimentReport(
        experiment_id="fig10",
        title="memory-system power overhead vs no prefetcher",
        columns=["app", "none_mW"] + [f"{name}_overhead" for name in names],
    )
    sums = {name: 0.0 for name in names}
    for app in settings.apps:
        base = matrix[app]["none"]
        row = [app, base.power_mw]
        for name in names:
            overhead = matrix[app][name].power_overhead_vs(base)
            row.append(overhead)
            sums[name] += overhead
        report.add_row(row)
    count = len(settings.apps) or 1
    for name in names:
        report.summary[f"mean power overhead [{name}] (measured)"] = sums[name] / count
        if name in PAPER_OVERHEAD:
            report.summary[f"mean power overhead [{name}] (paper)"] = PAPER_OVERHEAD[name]
    return report
