"""Experiment report container shared by all figure modules."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Sequence


@dataclass
class ExperimentReport:
    """Structured result of one experiment.

    Attributes:
        experiment_id: paper figure/table id, e.g. ``"fig8"``.
        title: one-line description.
        columns: column headers for :meth:`format_table`.
        rows: list of row value lists, aligned with ``columns``.
        summary: headline key/value numbers (averages, paper targets).
        details: named structured side-tables that don't fit the row grid
            (e.g. per-requestor-device read breakdowns); rendered after
            the summary and carried through the JSON export.
    """

    experiment_id: str
    title: str
    columns: List[str]
    rows: List[List[Any]] = field(default_factory=list)
    summary: Dict[str, float] = field(default_factory=dict)
    details: Dict[str, Any] = field(default_factory=dict)

    def add_row(self, values: Sequence[Any]) -> None:
        if len(values) != len(self.columns):
            raise ValueError(
                f"{self.experiment_id}: row has {len(values)} values, "
                f"expected {len(self.columns)}"
            )
        self.rows.append(list(values))

    @staticmethod
    def _format_cell(value: Any) -> str:
        if isinstance(value, float):
            return f"{value:.3f}"
        return str(value)

    def format_table(self) -> str:
        """Render the figure's data as an aligned text table."""
        table = [self.columns] + [
            [self._format_cell(value) for value in row] for row in self.rows
        ]
        widths = [
            max(len(row[column]) for row in table)
            for column in range(len(self.columns))
        ]
        lines = [f"== {self.experiment_id}: {self.title}"]
        for index, row in enumerate(table):
            lines.append("  ".join(cell.rjust(width)
                                   for cell, width in zip(row, widths)))
            if index == 0:
                lines.append("  ".join("-" * width for width in widths))
        if self.summary:
            lines.append("")
            for key, value in self.summary.items():
                lines.append(f"{key}: {value:.4f}" if isinstance(value, float)
                             else f"{key}: {value}")
        for name, table in self.details.items():
            lines.append("")
            lines.append(f"-- {name}")
            lines.extend(self._format_detail(table))
        return "\n".join(lines)

    @classmethod
    def _format_detail(cls, table: Any, indent: str = "  ") -> List[str]:
        """Render one details entry: nested dicts become indented blocks,
        leaf dicts one ``key: a=1, b=2`` line."""
        if not isinstance(table, dict):
            return [f"{indent}{cls._format_cell(table)}"]
        lines: List[str] = []
        for key, value in table.items():
            if isinstance(value, dict) and any(
                    isinstance(inner, dict) for inner in value.values()):
                lines.append(f"{indent}{key}:")
                lines.extend(cls._format_detail(value, indent + "  "))
            elif isinstance(value, dict):
                inner = ", ".join(
                    f"{inner_key}={cls._format_cell(inner_value)}"
                    for inner_key, inner_value in value.items())
                lines.append(f"{indent}{key}: {inner}")
            else:
                lines.append(f"{indent}{key}: {cls._format_cell(value)}")
        return lines
