"""Experiment report container shared by all figure modules."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Sequence


@dataclass
class ExperimentReport:
    """Structured result of one experiment.

    Attributes:
        experiment_id: paper figure/table id, e.g. ``"fig8"``.
        title: one-line description.
        columns: column headers for :meth:`format_table`.
        rows: list of row value lists, aligned with ``columns``.
        summary: headline key/value numbers (averages, paper targets).
    """

    experiment_id: str
    title: str
    columns: List[str]
    rows: List[List[Any]] = field(default_factory=list)
    summary: Dict[str, float] = field(default_factory=dict)

    def add_row(self, values: Sequence[Any]) -> None:
        if len(values) != len(self.columns):
            raise ValueError(
                f"{self.experiment_id}: row has {len(values)} values, "
                f"expected {len(self.columns)}"
            )
        self.rows.append(list(values))

    @staticmethod
    def _format_cell(value: Any) -> str:
        if isinstance(value, float):
            return f"{value:.3f}"
        return str(value)

    def format_table(self) -> str:
        """Render the figure's data as an aligned text table."""
        table = [self.columns] + [
            [self._format_cell(value) for value in row] for row in self.rows
        ]
        widths = [
            max(len(row[column]) for row in table)
            for column in range(len(self.columns))
        ]
        lines = [f"== {self.experiment_id}: {self.title}"]
        for index, row in enumerate(table):
            lines.append("  ".join(cell.rjust(width)
                                   for cell, width in zip(row, widths)))
            if index == 0:
                lines.append("  ".join("-" * width for width in widths))
        if self.summary:
            lines.append("")
            for key, value in self.summary.items():
                lines.append(f"{key}: {value:.4f}" if isinstance(value, float)
                             else f"{key}: {value}")
        return "\n".join(lines)
