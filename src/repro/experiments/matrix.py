"""Shared, memoized simulation matrix.

Figures 7, 8, 10 and the headline numbers all need the same
(application × prefetcher) simulation grid; Figure 9 additionally needs
SLP-only and TLP-only runs.  Running the grid once per process and caching
by settings keeps a full ``pytest benchmarks/`` pass from re-simulating
everything per figure.
"""

from __future__ import annotations

from typing import Dict

from repro.sim.metrics import RunMetrics
from repro.sim.runner import compare_prefetchers
from repro.experiments.settings import ExperimentSettings

_MATRIX_CACHE: Dict[tuple, Dict[str, Dict[str, RunMetrics]]] = {}
_BREAKDOWN_CACHE: Dict[tuple, Dict[str, Dict[str, RunMetrics]]] = {}


def run_matrix(settings: ExperimentSettings) -> Dict[str, Dict[str, RunMetrics]]:
    """``{app: {prefetcher: RunMetrics}}`` for the settings' grid."""
    key = settings.cache_key()
    if key not in _MATRIX_CACHE:
        matrix: Dict[str, Dict[str, RunMetrics]] = {}
        for app in settings.apps:
            matrix[app] = compare_prefetchers(
                app, settings.prefetchers,
                length=settings.trace_length, seed=settings.seed,
                config=settings.sim_config(),
                parallelism=settings.parallelism,
            )
        _MATRIX_CACHE[key] = matrix
    return _MATRIX_CACHE[key]


def breakdown_matrix(settings: ExperimentSettings) -> Dict[str, Dict[str, RunMetrics]]:
    """Figure 9's grid: none / slp / tlp / planaria per application."""
    key = settings.cache_key()
    if key not in _BREAKDOWN_CACHE:
        matrix: Dict[str, Dict[str, RunMetrics]] = {}
        base = run_matrix(settings)
        for app in settings.apps:
            extra = compare_prefetchers(
                app, ("slp", "tlp"),
                length=settings.trace_length, seed=settings.seed,
                config=settings.sim_config(),
                parallelism=settings.parallelism,
            )
            combined = dict(extra)
            combined["none"] = base[app]["none"]
            combined["planaria"] = base[app]["planaria"]
            matrix[app] = combined
        _BREAKDOWN_CACHE[key] = matrix
    return _BREAKDOWN_CACHE[key]


def clear_caches() -> None:
    """Drop memoized grids (tests use this to force fresh runs)."""
    _MATRIX_CACHE.clear()
    _BREAKDOWN_CACHE.clear()
