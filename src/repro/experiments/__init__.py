"""Experiment registry: one module per paper figure/table.

Each experiment exposes ``run(settings) -> ExperimentReport`` where the
report carries both structured rows and a ``format_table()`` matching the
figure's layout.  The benchmark harness under ``benchmarks/`` and the
examples both call into this package, so a figure is regenerated
identically everywhere.
"""

from repro.experiments.settings import ExperimentSettings, DEFAULT_SETTINGS
from repro.experiments.matrix import run_matrix, breakdown_matrix
from repro.experiments.report import ExperimentReport

from repro.experiments import fig2_footprint
from repro.experiments import fig4_overlap
from repro.experiments import fig5_neighbors
from repro.experiments import fig7_hitrate
from repro.experiments import fig8_amat
from repro.experiments import fig9_breakdown
from repro.experiments import fig10_power
from repro.experiments import headline

ALL_EXPERIMENTS = {
    "fig2": fig2_footprint.run,
    "fig4": fig4_overlap.run,
    "fig5": fig5_neighbors.run,
    "fig7": fig7_hitrate.run,
    "fig8": fig8_amat.run,
    "fig9": fig9_breakdown.run,
    "fig10": fig10_power.run,
    "headline": headline.run,
}

__all__ = [
    "ExperimentSettings",
    "DEFAULT_SETTINGS",
    "ExperimentReport",
    "run_matrix",
    "breakdown_matrix",
    "ALL_EXPERIMENTS",
]
