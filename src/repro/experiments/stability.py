"""Seed-stability analysis: are the reproduction's conclusions robust?

The paper reports single numbers from fixed real traces; our traces are
sampled, so conclusions should hold across generator seeds.  This module
re-runs a workload across several seeds and reports mean ± population
standard deviation of each headline metric, which the stability bench
asserts on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Sequence

from repro.config import SimConfig
from repro.sim.runner import compare_prefetchers
from repro.utils.statistics import RunningStats


@dataclass(frozen=True)
class MetricSummary:
    """Mean/std/min/max of one metric across seeds."""

    mean: float
    stddev: float
    minimum: float
    maximum: float
    samples: int

    @classmethod
    def from_values(cls, values: Sequence[float]) -> "MetricSummary":
        stats = RunningStats()
        for value in values:
            stats.add(value)
        return cls(mean=stats.mean, stddev=stats.stddev,
                   minimum=stats.min or 0.0, maximum=stats.max or 0.0,
                   samples=stats.count)

    def format(self) -> str:
        return f"{self.mean:+.3f} ± {self.stddev:.3f} " \
               f"[{self.minimum:+.3f}, {self.maximum:+.3f}]"


def seed_stability(
    app: str,
    prefetcher: str = "planaria",
    seeds: Iterable[int] = (1, 2, 3, 4, 5),
    length: int = 40_000,
    config: SimConfig = None,
) -> Dict[str, MetricSummary]:
    """Distribution of a prefetcher's headline metrics across seeds.

    Returns summaries for ``amat_reduction``, ``hit_rate_gain``,
    ``traffic_overhead``, ``power_overhead``, ``accuracy`` and
    ``coverage``, each measured against the same-seed no-prefetcher run.
    """
    series: Dict[str, list] = {
        "amat_reduction": [], "hit_rate_gain": [], "traffic_overhead": [],
        "power_overhead": [], "accuracy": [], "coverage": [],
    }
    for seed in seeds:
        results = compare_prefetchers(app, ("none", prefetcher),
                                      length=length, seed=seed, config=config)
        base = results["none"]
        metrics = results[prefetcher]
        series["amat_reduction"].append(metrics.amat_reduction_vs(base))
        series["hit_rate_gain"].append(metrics.hit_rate - base.hit_rate)
        series["traffic_overhead"].append(metrics.traffic_overhead_vs(base))
        series["power_overhead"].append(metrics.power_overhead_vs(base))
        series["accuracy"].append(metrics.accuracy)
        series["coverage"].append(metrics.coverage)
    return {name: MetricSummary.from_values(values)
            for name, values in series.items()}
