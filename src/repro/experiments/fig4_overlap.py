"""Figure 4 — window overlap rate per application (paper: >80 % average)."""

from __future__ import annotations

from repro.analysis.overlap import window_overlap_rate
from repro.experiments.report import ExperimentReport
from repro.experiments.settings import DEFAULT_SETTINGS, ExperimentSettings
from repro.trace.generator import generate_trace, get_profile

PAPER_AVERAGE = 0.80  # "the average overlap rate of the applications is more than 80%"


def run(settings: ExperimentSettings = DEFAULT_SETTINGS) -> ExperimentReport:
    report = ExperimentReport(
        experiment_id="fig4",
        title="window-to-window footprint overlap rate per application",
        columns=["app", "overlap_rate", "windows", "pages"],
    )
    total = 0.0
    for app in settings.apps:
        profile = get_profile(app)
        records = generate_trace(profile, settings.trace_length, seed=settings.seed)
        result = window_overlap_rate(records)
        report.add_row([app, result.mean_overlap, result.num_windows,
                        result.num_pages])
        total += result.mean_overlap
    average = total / len(settings.apps) if settings.apps else 0.0
    report.summary = {
        "average overlap rate (measured)": average,
        "paper floor (>0.80)": PAPER_AVERAGE,
    }
    return report
