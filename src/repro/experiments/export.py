"""Export experiment reports to CSV and standalone SVG bar charts.

Dependency-free: CSV via the standard library, SVG hand-rolled (grouped
vertical bars with axis labels), so a headless CI box can publish every
figure without matplotlib.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import List, Optional, Sequence, Union

from repro.experiments.report import ExperimentReport

PathLike = Union[str, Path]

_PALETTE = ("#4878a8", "#e49444", "#d1605e", "#85b6b2", "#6a9f58", "#e7cb60")


def write_report_csv(report: ExperimentReport, path: PathLike) -> Path:
    """Write a report's columns/rows (plus summary comments) as CSV."""
    path = Path(path)
    with open(path, "w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow([f"# {report.experiment_id}: {report.title}"])
        for key, value in report.summary.items():
            writer.writerow([f"# {key} = {value}"])
        writer.writerow(report.columns)
        writer.writerows(report.rows)
    return path


def write_report_json(report: ExperimentReport, path: PathLike) -> Path:
    """Write the full report — rows, summary and ``details`` side-tables —
    as one JSON document (the machine-readable companion to the CSV)."""
    path = Path(path)
    document = {
        "experiment_id": report.experiment_id,
        "title": report.title,
        "columns": report.columns,
        "rows": report.rows,
        "summary": report.summary,
        "details": report.details,
    }
    path.write_text(json.dumps(document, indent=2) + "\n", encoding="utf-8")
    return path


def _numeric_columns(report: ExperimentReport) -> List[int]:
    """Indices of columns whose every value is numeric (skipping labels)."""
    indices = []
    for column in range(1, len(report.columns)):
        if all(isinstance(row[column], (int, float)) for row in report.rows):
            indices.append(column)
    return indices


def write_report_svg(report: ExperimentReport, path: PathLike,
                     columns: Optional[Sequence[str]] = None,
                     width: int = 900, height: int = 420) -> Path:
    """Render the report as a grouped bar chart (one group per row).

    Args:
        columns: subset of numeric column names to plot (default: all).
    """
    numeric = _numeric_columns(report)
    if columns is not None:
        wanted = set(columns)
        numeric = [index for index in numeric
                   if report.columns[index] in wanted]
    if not numeric or not report.rows:
        raise ValueError(f"report {report.experiment_id} has nothing to plot")

    values = [float(row[index]) for row in report.rows for index in numeric]
    top = max(max(values), 0.0)
    bottom = min(min(values), 0.0)
    span = (top - bottom) or 1.0

    margin_left, margin_bottom, margin_top = 70, 60, 50
    plot_width = width - margin_left - 20
    plot_height = height - margin_top - margin_bottom
    group_width = plot_width / len(report.rows)
    bar_width = max(2.0, group_width * 0.8 / len(numeric))

    def y_of(value: float) -> float:
        return margin_top + (top - value) / span * plot_height

    parts: List[str] = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" font-family="sans-serif" font-size="12">',
        f'<text x="{width / 2:.0f}" y="24" text-anchor="middle" '
        f'font-size="15">{report.experiment_id}: {report.title}</text>',
    ]
    # Axes and gridlines.
    zero_y = y_of(0.0)
    parts.append(f'<line x1="{margin_left}" y1="{zero_y:.1f}" '
                 f'x2="{width - 20}" y2="{zero_y:.1f}" stroke="#444"/>')
    for tick in range(5):
        value = bottom + span * tick / 4
        tick_y = y_of(value)
        parts.append(f'<line x1="{margin_left}" y1="{tick_y:.1f}" '
                     f'x2="{width - 20}" y2="{tick_y:.1f}" '
                     f'stroke="#ddd"/>')
        parts.append(f'<text x="{margin_left - 6}" y="{tick_y + 4:.1f}" '
                     f'text-anchor="end">{value:.3g}</text>')
    # Bars.
    for row_index, row in enumerate(report.rows):
        group_x = margin_left + row_index * group_width + group_width * 0.1
        for series_index, column in enumerate(numeric):
            value = float(row[column])
            bar_x = group_x + series_index * bar_width
            bar_top = y_of(max(value, 0.0))
            bar_height = abs(y_of(value) - zero_y)
            color = _PALETTE[series_index % len(_PALETTE)]
            parts.append(
                f'<rect x="{bar_x:.1f}" y="{bar_top:.1f}" '
                f'width="{bar_width * 0.92:.1f}" height="{bar_height:.1f}" '
                f'fill="{color}"/>'
            )
        label_x = margin_left + (row_index + 0.5) * group_width
        parts.append(f'<text x="{label_x:.1f}" y="{height - 36}" '
                     f'text-anchor="middle">{row[0]}</text>')
    # Legend.
    legend_x = margin_left
    legend_y = height - 14
    for series_index, column in enumerate(numeric):
        color = _PALETTE[series_index % len(_PALETTE)]
        parts.append(f'<rect x="{legend_x}" y="{legend_y - 10}" width="10" '
                     f'height="10" fill="{color}"/>')
        name = report.columns[column]
        parts.append(f'<text x="{legend_x + 14}" y="{legend_y}">{name}</text>')
        legend_x += 14 + 8 * len(name) + 20
    parts.append("</svg>")

    path = Path(path)
    path.write_text("\n".join(parts), encoding="utf-8")
    return path


def export_report(report: ExperimentReport, directory: PathLike,
                  svg: bool = True) -> List[Path]:
    """Write ``<id>.csv``, ``<id>.json`` (and ``<id>.svg`` when plottable)
    into a directory."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    written = [
        write_report_csv(report, directory / f"{report.experiment_id}.csv"),
        write_report_json(report, directory / f"{report.experiment_id}.json"),
    ]
    if svg:
        try:
            written.append(write_report_svg(
                report, directory / f"{report.experiment_id}.svg"))
        except ValueError:
            pass  # nothing numeric to plot (e.g. fig2's metric/value rows)
    return written
