"""Exception hierarchy for the Planaria reproduction.

All library-specific errors derive from :class:`ReproError` so that callers
can catch everything raised by this package with a single ``except`` clause
while still distinguishing configuration problems from runtime simulation
faults.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class ConfigError(ReproError):
    """A configuration object failed validation (bad sizes, thresholds...)."""


class TraceFormatError(ReproError):
    """A trace file or trace record is malformed."""


class SimulationError(ReproError):
    """The simulation engine reached an inconsistent state."""


class AddressError(ReproError):
    """An address is out of range or violates the configured layout."""
