"""Exception hierarchy for the Planaria reproduction.

All library-specific errors derive from :class:`ReproError` so that callers
can catch everything raised by this package with a single ``except`` clause
while still distinguishing configuration problems from runtime simulation
faults.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class ConfigError(ReproError):
    """A configuration object failed validation (bad sizes, thresholds...)."""


class TraceFormatError(ReproError):
    """A trace file or trace record is malformed."""


class SimulationError(ReproError):
    """The simulation engine reached an inconsistent state."""


class AddressError(ReproError):
    """An address is out of range or violates the configured layout."""


class UnknownPrefetcherError(ConfigError, KeyError):
    """A prefetcher name is not in the registry.

    Subclasses :class:`KeyError` too, since the registry is a mapping and
    many callers probe it like one; the message names the unknown
    prefetcher and lists every registered name.
    """

    def __init__(self, name: str, known: "tuple[str, ...]") -> None:
        self.name = name
        self.known = tuple(known)
        super().__init__(
            f"unknown prefetcher {name!r}; registered: {', '.join(self.known)}"
        )

    def __str__(self) -> str:
        # KeyError.__str__ repr()s the lone argument; keep the message.
        return self.args[0]


class UnknownDeviceError(ConfigError, KeyError):
    """A device / tenant name is not a :class:`~repro.trace.record.DeviceID`.

    Raised at the CLI and trace-merger boundaries (and by way-partition
    validation) when a tenant is tagged with a device name outside the
    enum; the message names the unknown device and lists every valid
    member, mirroring :class:`UnknownPrefetcherError`.
    """

    def __init__(self, name: str, known: "tuple[str, ...]") -> None:
        self.name = name
        self.known = tuple(known)
        super().__init__(
            f"unknown device {name!r}; valid devices: {', '.join(self.known)}"
        )

    def __str__(self) -> str:
        # KeyError.__str__ repr()s the lone argument; keep the message.
        return self.args[0]


class ServiceError(ReproError):
    """The streaming simulation service hit a protocol or session fault."""


class CampaignError(ReproError):
    """A campaign run failed: dispatch exhausted its retries, the progress
    state does not match the spec, or a completed cell failed fingerprint
    re-verification on resume."""


class CampaignSpecError(CampaignError, ConfigError):
    """A campaign YAML spec failed schema validation.

    Raised at parse time for unknown keys, wrong value types, empty grid
    axes or malformed nested sections — always *before* any cell runs,
    so a typo cannot burn half a sweep.  Subclasses :class:`ConfigError`
    so config-level handlers (the CLI's ``error:`` path included) catch
    it uniformly.
    """


class SessionNotFoundError(ServiceError, KeyError):
    """A service request named a session that is not open (or checkpointed)."""

    def __init__(self, name: str) -> None:
        self.name = name
        super().__init__(f"no open session {name!r} and no checkpoint to resume")

    def __str__(self) -> str:
        return self.args[0]


class SessionExistsError(ServiceError):
    """``open`` named a session that is already live."""


class CheckpointError(ServiceError):
    """A checkpoint file is missing, corrupt, or from a different setup."""


class CheckpointMismatchError(CheckpointError):
    """A checkpoint was restored into a differently-configured engine.

    Raised *before* ``load_state()`` when the prefetcher/config
    fingerprint of the engine a checkpoint is being restored into does
    not match the fingerprint the checkpoint was written under — loading
    state across configurations is undefined behaviour, so cross-worker
    migration refuses it up front.  The message names both fingerprints.
    """

    def __init__(self, name: str, checkpoint_fingerprint: str,
                 target_fingerprint: str, detail: str = "") -> None:
        self.checkpoint_fingerprint = checkpoint_fingerprint
        self.target_fingerprint = target_fingerprint
        suffix = f" ({detail})" if detail else ""
        super().__init__(
            f"checkpoint for session {name!r} was written under "
            f"prefetcher/config fingerprint {checkpoint_fingerprint}, but "
            f"the target engine has fingerprint {target_fingerprint}; "
            f"refusing to load_state() across configurations{suffix}")
