"""Grid expansion: spec axes → deterministic campaign cells.

The product runs workload-major, then prefetcher, then config variant —
the order the axes appear in the YAML — so the cell list (and with it
the harvested CSV row order) is a pure function of the spec.  Duplicate
cells (e.g. a prefetcher listed twice) collapse to their first
occurrence, keeping the grid a set with a stable enumeration.

Each cell carries its fully-resolved :class:`~repro.config.SimConfig`
(base config + variant overrides, deep-merged through the strict
``config_io`` round trip, so an override typo fails at expansion time)
and its provenance fingerprint — the same
:func:`~repro.utils.provenance.config_fingerprint` hash checkpoint
restore validation uses, which is how resume re-verifies completed
cells.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional

from repro.config import SimConfig
from repro.errors import CampaignSpecError, ConfigError
from repro.utils.provenance import config_fingerprint

from repro.campaign.spec import CampaignSpec, ConfigVariant, WorkloadSpec


@dataclass(frozen=True)
class CampaignCell:
    """One point of the (workload × prefetcher × config) grid."""

    cell_id: str
    workload: WorkloadSpec
    prefetcher: str
    variant: str
    seed: int
    length: int
    epoch_records: int
    config: SimConfig

    @property
    def fingerprint(self) -> str:
        """Prefetcher/config provenance hash (checkpoint-compatible)."""
        return config_fingerprint(self.prefetcher, self.config)

    @property
    def session_name(self) -> str:
        """A service-session-safe name (doubles as a checkpoint stem)."""
        return "campaign-" + "".join(
            ch if ch.isalnum() or ch in "-_." else "-"
            for ch in self.cell_id)


def _deep_merge(base: Dict[str, Any], overrides: Mapping) -> Dict[str, Any]:
    merged = dict(base)
    for key, value in overrides.items():
        if (isinstance(value, Mapping) and isinstance(merged.get(key),
                                                      Mapping)):
            merged[key] = _deep_merge(merged[key], value)
        else:
            merged[key] = value
    return merged


def apply_overrides(config: SimConfig, overrides: Mapping) -> SimConfig:
    """Base config + nested override mapping → a new validated SimConfig.

    Goes through the strict ``config_io`` round trip, so unknown keys or
    values the config tree rejects surface as
    :class:`~repro.errors.CampaignSpecError` at grid-expansion time.
    """
    if not overrides:
        return config
    from repro.config_io import from_dict, to_dict

    merged = _deep_merge(to_dict(config), overrides)
    try:
        return from_dict(SimConfig, merged)
    except ConfigError as exc:
        raise CampaignSpecError(f"config overrides invalid: {exc}") from exc
    except (TypeError, ValueError) as exc:
        raise CampaignSpecError(
            f"config overrides produced an invalid SimConfig: {exc}"
        ) from exc


def expand_grid(spec: CampaignSpec,
                base_config: Optional[SimConfig] = None
                ) -> List[CampaignCell]:
    """Expand the spec's axes into the deterministic, deduplicated grid.

    ``base_config`` overrides the spec's ``sim_config`` resolution (the
    runner passes the already-loaded config so the file is read once).
    """
    base_config = base_config or spec.load_base_config()
    variant_configs: Dict[str, SimConfig] = {}
    for variant in spec.configs:
        try:
            variant_configs[variant.name] = apply_overrides(
                base_config, variant.overrides_dict)
        except CampaignSpecError as exc:
            raise CampaignSpecError(
                f"config variant {variant.name!r}: {exc}") from exc

    cells: List[CampaignCell] = []
    seen = set()
    for workload in spec.workloads:
        seed = workload.seed if workload.seed is not None else spec.seed
        length = (workload.length if workload.length is not None
                  else spec.length)
        for prefetcher in spec.prefetchers:
            for variant in spec.configs:
                cell_id = f"{workload.label}/{prefetcher}/{variant.name}"
                if cell_id in seen:
                    continue
                seen.add(cell_id)
                cells.append(CampaignCell(
                    cell_id=cell_id,
                    workload=workload,
                    prefetcher=prefetcher,
                    variant=variant.name,
                    seed=seed,
                    length=length,
                    epoch_records=spec.epoch_records,
                    config=variant_configs[variant.name],
                ))
    return cells


def cell_trace(cell: CampaignCell):
    """Regenerate a cell's trace deterministically from its identity.

    Single-app workloads go through the standard generator; tenant
    mixes through the offline :func:`~repro.tenancy.merge.merge_traces`
    interleave (bit-identical to the streaming merger the service path
    would use).
    """
    layout = cell.config.layout
    if cell.workload.app is not None:
        from repro.trace.generator import generate_trace_buffer, get_profile

        return generate_trace_buffer(get_profile(cell.workload.app),
                                     cell.length, seed=cell.seed,
                                     layout=layout)
    from repro.tenancy.merge import merge_traces

    specs = cell.workload.tenant_specs(cell.length)
    return merge_traces(specs, layout)
