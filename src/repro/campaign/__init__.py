"""Declarative sweep campaigns against the service fleet.

A campaign is a YAML file describing a (workload × prefetcher × config)
grid (:mod:`repro.campaign.spec`), expanded into deterministic cells
(:mod:`repro.campaign.grid`), dispatched as streaming sessions against
one or many service endpoints — or an in-process fallback —
(:mod:`repro.campaign.runner`), and harvested into the standard
CSV/JSON/SVG export path with per-cell provenance
(:mod:`repro.campaign.harvest`).  Progress is checkpointed atomically
after every cell, so a killed campaign resumes exactly where it stopped.
:mod:`repro.campaign.soak` adds the sustained-rate load-testing mode.

See docs/campaigns.md and ``repro campaign --help``.
"""

from repro.campaign.grid import CampaignCell, cell_trace, expand_grid
from repro.campaign.harvest import campaign_report, write_results
from repro.campaign.runner import (CampaignRunner, CampaignState,
                                   load_state, state_path)
from repro.campaign.soak import run_soak
from repro.campaign.spec import (CampaignSpec, ConfigVariant, DispatchSpec,
                                 SoakSpec, WorkloadSpec, load_campaign,
                                 parse_campaign)

__all__ = [
    "CampaignCell",
    "CampaignRunner",
    "CampaignSpec",
    "CampaignState",
    "ConfigVariant",
    "DispatchSpec",
    "SoakSpec",
    "WorkloadSpec",
    "campaign_report",
    "cell_trace",
    "expand_grid",
    "load_campaign",
    "load_state",
    "parse_campaign",
    "run_soak",
    "state_path",
    "write_results",
]
