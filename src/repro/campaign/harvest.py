"""Harvest completed campaign cells into the standard export path.

Results always come *from the state file*, enumerated in grid-expansion
order — never in completion or dict-insertion order — and carry no wall
timestamps (those stay in the state file's ``runtime`` side-channel).
A campaign that was killed and resumed therefore exports byte-identical
CSV/JSON to one that ran straight through.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Union

from repro.errors import CampaignError
from repro.experiments.export import export_report
from repro.experiments.report import ExperimentReport

from repro.campaign.runner import CampaignRunner, CampaignState

PathLike = Union[str, Path]

#: Per-cell CSV columns, in order.  The ``lineage_*`` columns come from
#: the cell's lineage summary (campaigns with ``lineage: true``) and
#: stay empty otherwise.
RESULT_COLUMNS = [
    "cell", "workload", "prefetcher", "variant", "seed", "length",
    "amat", "hit_rate", "accuracy", "coverage",
    "dram_traffic", "prefetch_issued", "prefetch_useful",
    "power_mw", "p99_latency",
    "lineage_issued", "lineage_timely", "lineage_late",
    "lineage_evicted_unused", "lineage_suppressed",
    "fingerprint",
]


def campaign_report(runner: CampaignRunner,
                    state: CampaignState) -> ExperimentReport:
    """Build the ExperimentReport for a (fully or partially) run campaign.

    Raises:
        CampaignError: the campaign has no completed cells to harvest.
    """
    spec = runner.spec
    report = ExperimentReport(
        experiment_id=f"campaign-{spec.name}",
        title=f"Campaign {spec.name}: "
              f"{len(spec.workloads)} workload(s) x "
              f"{len(spec.prefetchers)} prefetcher(s) x "
              f"{len(spec.configs)} config(s)",
        columns=list(RESULT_COLUMNS),
    )
    harvested = 0
    amat_by_prefetcher: Dict[str, List[float]] = {}
    provenance: Dict[str, dict] = {}
    for cell in runner.cells:  # grid order, not completion order
        entry = state.cells.get(cell.cell_id)
        if entry is None:
            continue
        harvested += 1
        metrics = entry["metrics"]
        issued = metrics["prefetch_issued"]
        fills = metrics["prefetch_fills"]
        useful = metrics["prefetch_useful"]
        accuracy = useful / fills if fills else 0.0
        base = useful + metrics["demand_misses"]
        coverage = useful / base if base else 0.0
        lineage_totals = entry.get("lineage", {}).get("totals", {})
        lineage_cells = [
            lineage_totals.get(stage, "")
            for stage in ("issued", "used_timely", "used_late",
                          "evicted_unused", "suppressed")
        ]
        report.add_row([
            cell.cell_id, cell.workload.label, cell.prefetcher,
            cell.variant, cell.seed, cell.length,
            round(metrics["amat"], 4), round(metrics["hit_rate"], 6),
            round(accuracy, 6), round(coverage, 6),
            metrics["dram_traffic"], issued, useful,
            round(metrics["power_mw"], 4),
            round(metrics["p99_latency"], 4),
            *lineage_cells,
            entry["fingerprint"],
        ])
        amat_by_prefetcher.setdefault(cell.prefetcher, []).append(
            metrics["amat"])
        provenance[cell.cell_id] = dict(entry["provenance"])
        if "epochs" in entry:
            report.details.setdefault("timelines", {})[cell.cell_id] = {
                "epochs": len(entry["epochs"]),
            }
    if not harvested:
        raise CampaignError(
            f"campaign {spec.name!r} has no completed cells to harvest")
    report.summary = {
        "cells_total": len(runner.cells),
        "cells_completed": harvested,
    }
    for prefetcher in spec.prefetchers:
        amats = amat_by_prefetcher.get(prefetcher)
        if amats:
            report.summary[f"mean_amat_{prefetcher}"] = round(
                sum(amats) / len(amats), 4)
    report.details["provenance"] = {
        "campaign": dict(state.provenance),
        "cells": provenance,
        "spec_fingerprint": state.spec_fingerprint,
    }
    return report


def write_results(runner: CampaignRunner, state: CampaignState,
                  directory: PathLike) -> List[Path]:
    """Export the campaign report as CSV/JSON/SVG under ``directory``.

    Returns the written paths, CSV first (the order
    :func:`~repro.experiments.export.export_report` produces).
    """
    report = campaign_report(runner, state)
    return export_report(report, directory)
