"""Campaign spec: the YAML schema and its validating parser.

A spec is a plain mapping with three grid axes — ``workloads``,
``prefetchers``, ``configs`` — plus defaults (seed, length,
epoch_records), dispatch tuning and an optional ``soak`` section.  The
parser is strict: every level rejects unknown keys and wrong value types
with a :class:`~repro.errors.CampaignSpecError` *before* anything runs,
and the parsed spec round-trips to a canonical dict
(:meth:`CampaignSpec.to_dict`) whose hash
(:meth:`CampaignSpec.fingerprint`) ties a progress checkpoint to the
exact spec that produced it.

Example (see ``examples/campaign.yaml`` for the annotated version)::

    name: quickstart
    seed: 7
    length: 12000
    workloads:
      - app: CFM
      - name: cfm+hok
        tenants:
          - app=CFM,device=CPU,seed=1
          - app=HoK,device=GPU,seed=2
    prefetchers: [none, planaria]
    configs:
      - name: base
      - name: small-sc
        overrides: {cache: {size_kib: 2048}}
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.errors import CampaignSpecError, ConfigError
from repro.prefetch.registry import PREFETCHER_FACTORIES
from repro.tenancy.spec import TenantSpec

PathLike = Union[str, Path]

#: Spec schema version; bump on incompatible layout changes.
SPEC_VERSION = 1

_TOP_KEYS = ("name", "version", "seed", "length", "epoch_records",
             "lineage", "sim_config", "workloads", "prefetchers", "configs",
             "dispatch", "soak")
_WORKLOAD_KEYS = ("app", "name", "tenants", "length", "seed")
_CONFIG_KEYS = ("name", "overrides")
_DISPATCH_KEYS = ("chunk_records", "max_inflight_cells", "max_retries",
                  "retry_backoff_seconds")
_SOAK_KEYS = ("duration_seconds", "rate_records_per_second",
              "sample_interval_seconds", "chunk_records", "prefetcher",
              "tenants")


def _expect(condition: bool, message: str) -> None:
    if not condition:
        raise CampaignSpecError(message)


def _mapping(value: Any, where: str) -> Mapping:
    _expect(isinstance(value, Mapping),
            f"{where} must be a mapping, got {type(value).__name__}")
    return value


def _no_unknown_keys(data: Mapping, allowed: Sequence[str],
                     where: str) -> None:
    unknown = sorted(set(data) - set(allowed))
    _expect(not unknown,
            f"{where}: unknown key(s) {unknown}; allowed: {list(allowed)}")


def _typed(data: Mapping, key: str, types, where: str, default=None):
    if key not in data:
        return default
    value = data[key]
    # bool is an int subclass; reject it where an int is expected.
    if not isinstance(value, types) or (isinstance(value, bool)
                                        and bool not in _as_tuple(types)):
        names = "/".join(t.__name__ for t in _as_tuple(types))
        raise CampaignSpecError(
            f"{where}: {key!r} must be {names}, "
            f"got {type(value).__name__} ({value!r})")
    return value


def _as_tuple(types) -> Tuple[type, ...]:
    return types if isinstance(types, tuple) else (types,)


@dataclass(frozen=True)
class WorkloadSpec:
    """One workload axis entry: a single app trace or a tenant mix."""

    label: str
    app: Optional[str] = None
    tenants: Tuple[str, ...] = ()
    length: Optional[int] = None
    seed: Optional[int] = None

    def tenant_specs(self, default_length: int) -> List[TenantSpec]:
        """Parse the tenant strings, defaulting lengths like the
        ``multitenant`` verb: a spec without ``length=`` gets the
        workload's (or campaign's) default."""
        specs = []
        for text in self.tenants:
            spec = TenantSpec.parse(text)
            if "length=" not in text:
                spec = TenantSpec(app=spec.app, device=spec.device,
                                  length=self.length or default_length,
                                  seed=spec.seed,
                                  phase_offset=spec.phase_offset,
                                  intensity=spec.intensity)
            specs.append(spec)
        return specs

    def to_dict(self) -> Dict[str, Any]:
        entry: Dict[str, Any] = {"name": self.label}
        if self.app is not None:
            entry["app"] = self.app
        if self.tenants:
            entry["tenants"] = list(self.tenants)
        if self.length is not None:
            entry["length"] = self.length
        if self.seed is not None:
            entry["seed"] = self.seed
        return entry


@dataclass(frozen=True)
class ConfigVariant:
    """One config axis entry: a name plus nested SimConfig overrides."""

    name: str
    overrides: Tuple[Tuple[str, Any], ...] = ()

    @property
    def overrides_dict(self) -> Dict[str, Any]:
        return _thaw(self.overrides)

    def to_dict(self) -> Dict[str, Any]:
        entry: Dict[str, Any] = {"name": self.name}
        if self.overrides:
            entry["overrides"] = self.overrides_dict
        return entry


def _freeze(value: Any) -> Any:
    """Mappings/lists → hashable tuples (dataclass stays frozen)."""
    if isinstance(value, Mapping):
        return tuple((str(key), _freeze(value[key])) for key in value)
    if isinstance(value, (list, tuple)):
        return tuple(_freeze(item) for item in value)
    return value


def _thaw(value: Any) -> Any:
    if isinstance(value, tuple) and all(
            isinstance(item, tuple) and len(item) == 2
            and isinstance(item[0], str) for item in value):
        return {key: _thaw(inner) for key, inner in value}
    if isinstance(value, tuple):
        return [_thaw(item) for item in value]
    return value


@dataclass(frozen=True)
class DispatchSpec:
    """Dispatcher tuning: chunking, bounded concurrency, retry policy."""

    chunk_records: int = 1024
    max_inflight_cells: int = 2
    max_retries: int = 3
    retry_backoff_seconds: float = 0.25

    def to_dict(self) -> Dict[str, Any]:
        return {"chunk_records": self.chunk_records,
                "max_inflight_cells": self.max_inflight_cells,
                "max_retries": self.max_retries,
                "retry_backoff_seconds": self.retry_backoff_seconds}


#: Soak-mode default tenant mix (mirrors ``repro multitenant``).
DEFAULT_SOAK_TENANTS = ("app=CFM,device=CPU,seed=1,length=20000",
                        "app=HoK,device=GPU,seed=2,length=20000")


@dataclass(frozen=True)
class SoakSpec:
    """Sustained-rate replay parameters (docs/campaigns.md, soak mode)."""

    duration_seconds: float = 30.0
    rate_records_per_second: int = 0  # 0 = unpaced (as fast as possible)
    sample_interval_seconds: float = 2.0
    chunk_records: int = 1024
    prefetcher: str = "planaria"
    tenants: Tuple[str, ...] = DEFAULT_SOAK_TENANTS

    def to_dict(self) -> Dict[str, Any]:
        return {"duration_seconds": self.duration_seconds,
                "rate_records_per_second": self.rate_records_per_second,
                "sample_interval_seconds": self.sample_interval_seconds,
                "chunk_records": self.chunk_records,
                "prefetcher": self.prefetcher,
                "tenants": list(self.tenants)}


@dataclass(frozen=True)
class CampaignSpec:
    """A fully-validated campaign description."""

    name: str
    seed: int = 7
    length: int = 20_000
    epoch_records: int = 0
    lineage: bool = False
    sim_config: Optional[str] = None
    workloads: Tuple[WorkloadSpec, ...] = ()
    prefetchers: Tuple[str, ...] = ()
    configs: Tuple[ConfigVariant, ...] = (ConfigVariant("base"),)
    dispatch: DispatchSpec = field(default_factory=DispatchSpec)
    soak: SoakSpec = field(default_factory=SoakSpec)
    #: Directory the spec file was loaded from; relative ``sim_config``
    #: paths resolve against it.  Not part of the canonical dict.
    base_dir: Optional[str] = None

    def to_dict(self) -> Dict[str, Any]:
        """The canonical (fingerprinted) form of the spec."""
        return {
            "version": SPEC_VERSION,
            "name": self.name,
            "seed": self.seed,
            "length": self.length,
            "epoch_records": self.epoch_records,
            "lineage": self.lineage,
            "sim_config": self.sim_config,
            "workloads": [workload.to_dict() for workload in self.workloads],
            "prefetchers": list(self.prefetchers),
            "configs": [variant.to_dict() for variant in self.configs],
            "dispatch": self.dispatch.to_dict(),
            "soak": self.soak.to_dict(),
        }

    @property
    def fingerprint(self) -> str:
        """Stable short hash of the canonical spec — ties a progress
        checkpoint to the exact grid it was recorded for."""
        canonical = json.dumps(self.to_dict(), sort_keys=True,
                               separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]

    def load_base_config(self):
        """The campaign's base :class:`~repro.config.SimConfig`.

        ``sim_config`` paths resolve relative to the spec file; without
        one, :meth:`SimConfig.experiment_scale` (the scale every other
        surface defaults to).
        """
        from repro.config import SimConfig

        if self.sim_config is None:
            return SimConfig.experiment_scale()
        from repro.config_io import load_sim_config

        path = Path(self.sim_config)
        if not path.is_absolute() and self.base_dir:
            path = Path(self.base_dir) / path
        return load_sim_config(path)


def _parse_workload(data: Any, index: int) -> WorkloadSpec:
    where = f"workloads[{index}]"
    data = _mapping(data, where)
    _no_unknown_keys(data, _WORKLOAD_KEYS, where)
    app = _typed(data, "app", str, where)
    tenants_raw = data.get("tenants")
    _expect((app is None) != (tenants_raw is None),
            f"{where}: exactly one of 'app' or 'tenants' is required")
    tenants: Tuple[str, ...] = ()
    if tenants_raw is not None:
        _expect(isinstance(tenants_raw, (list, tuple)) and tenants_raw,
                f"{where}: 'tenants' must be a non-empty list of tenant "
                f"spec strings")
        _expect(all(isinstance(item, str) for item in tenants_raw),
                f"{where}: 'tenants' entries must be strings like "
                f"'app=CFM,device=CPU,seed=1'")
        _expect(len(tenants_raw) >= 2,
                f"{where}: a tenant mix needs >= 2 tenants, "
                f"got {len(tenants_raw)}")
        tenants = tuple(tenants_raw)
        for text in tenants:
            try:  # validate eagerly; surface as a spec error
                TenantSpec.parse(text)
            except ConfigError as exc:
                raise CampaignSpecError(f"{where}: {exc}") from exc
    label = _typed(data, "name", str, where)
    if label is None:
        label = app if app is not None else "+".join(
            TenantSpec.parse(text).app for text in tenants)
    length = _typed(data, "length", int, where)
    if length is not None:
        _expect(length >= 1, f"{where}: 'length' must be >= 1, got {length}")
    seed = _typed(data, "seed", int, where)
    return WorkloadSpec(label=label, app=app, tenants=tenants,
                        length=length, seed=seed)


def _parse_config_variant(data: Any, index: int) -> ConfigVariant:
    where = f"configs[{index}]"
    data = _mapping(data, where)
    _no_unknown_keys(data, _CONFIG_KEYS, where)
    name = _typed(data, "name", str, where)
    _expect(bool(name), f"{where}: 'name' is required and non-empty")
    overrides = data.get("overrides", {})
    overrides = _mapping(overrides, f"{where}.overrides")
    return ConfigVariant(name=name, overrides=_freeze(overrides))


def _parse_dispatch(data: Any) -> DispatchSpec:
    where = "dispatch"
    data = _mapping(data, where)
    _no_unknown_keys(data, _DISPATCH_KEYS, where)
    spec = DispatchSpec(
        chunk_records=_typed(data, "chunk_records", int, where, 1024),
        max_inflight_cells=_typed(data, "max_inflight_cells", int, where, 2),
        max_retries=_typed(data, "max_retries", int, where, 3),
        retry_backoff_seconds=float(
            _typed(data, "retry_backoff_seconds", (int, float), where, 0.25)),
    )
    _expect(spec.chunk_records >= 1,
            f"{where}: 'chunk_records' must be >= 1")
    _expect(spec.max_inflight_cells >= 1,
            f"{where}: 'max_inflight_cells' must be >= 1")
    _expect(spec.max_retries >= 0, f"{where}: 'max_retries' must be >= 0")
    _expect(spec.retry_backoff_seconds >= 0,
            f"{where}: 'retry_backoff_seconds' must be >= 0")
    return spec


def _parse_soak(data: Any) -> SoakSpec:
    where = "soak"
    data = _mapping(data, where)
    _no_unknown_keys(data, _SOAK_KEYS, where)
    tenants_raw = data.get("tenants", list(DEFAULT_SOAK_TENANTS))
    _expect(isinstance(tenants_raw, (list, tuple))
            and len(tenants_raw) >= 2
            and all(isinstance(item, str) for item in tenants_raw),
            f"{where}: 'tenants' must be a list of >= 2 tenant spec strings")
    for text in tenants_raw:
        try:
            TenantSpec.parse(text)
        except ConfigError as exc:
            raise CampaignSpecError(f"{where}: {exc}") from exc
    spec = SoakSpec(
        duration_seconds=float(
            _typed(data, "duration_seconds", (int, float), where, 30.0)),
        rate_records_per_second=_typed(
            data, "rate_records_per_second", int, where, 0),
        sample_interval_seconds=float(
            _typed(data, "sample_interval_seconds", (int, float), where,
                   2.0)),
        chunk_records=_typed(data, "chunk_records", int, where, 1024),
        prefetcher=_typed(data, "prefetcher", str, where, "planaria"),
        tenants=tuple(tenants_raw),
    )
    _expect(spec.duration_seconds > 0,
            f"{where}: 'duration_seconds' must be > 0")
    _expect(spec.rate_records_per_second >= 0,
            f"{where}: 'rate_records_per_second' must be >= 0 (0 = unpaced)")
    _expect(spec.sample_interval_seconds > 0,
            f"{where}: 'sample_interval_seconds' must be > 0")
    _expect(spec.chunk_records >= 1, f"{where}: 'chunk_records' must be >= 1")
    _expect(spec.prefetcher in PREFETCHER_FACTORIES,
            f"{where}: unknown prefetcher {spec.prefetcher!r}; "
            f"known: {sorted(PREFETCHER_FACTORIES)}")
    return spec


def parse_campaign(data: Any,
                   base_dir: Optional[PathLike] = None) -> CampaignSpec:
    """Validate an already-decoded mapping into a :class:`CampaignSpec`.

    Raises:
        CampaignSpecError: unknown keys, wrong types, empty axes,
            unknown prefetcher/workload names — every schema violation,
            named precisely, before any cell runs.
    """
    data = _mapping(data, "campaign spec")
    _no_unknown_keys(data, _TOP_KEYS, "campaign spec")
    version = _typed(data, "version", int, "campaign spec", SPEC_VERSION)
    _expect(version == SPEC_VERSION,
            f"campaign spec version {version} not supported "
            f"(this build reads version {SPEC_VERSION})")
    name = _typed(data, "name", str, "campaign spec")
    _expect(bool(name), "campaign spec: 'name' is required and non-empty")
    _expect(all(ch.isalnum() or ch in "-_." for ch in name),
            f"campaign spec: 'name' must be filesystem-safe "
            f"(letters, digits, '-', '_', '.'), got {name!r}")

    seed = _typed(data, "seed", int, "campaign spec", 7)
    length = _typed(data, "length", int, "campaign spec", 20_000)
    _expect(length >= 1,
            f"campaign spec: 'length' must be >= 1, got {length}")
    epoch_records = _typed(data, "epoch_records", int, "campaign spec", 0)
    _expect(epoch_records >= 0,
            f"campaign spec: 'epoch_records' must be >= 0 (0 disables)")
    lineage = _typed(data, "lineage", bool, "campaign spec", False)
    sim_config = _typed(data, "sim_config", str, "campaign spec")

    workloads_raw = data.get("workloads")
    _expect(isinstance(workloads_raw, (list, tuple)) and workloads_raw,
            "campaign spec: 'workloads' must be a non-empty list")
    workloads = tuple(_parse_workload(entry, index)
                      for index, entry in enumerate(workloads_raw))

    prefetchers_raw = data.get("prefetchers")
    _expect(isinstance(prefetchers_raw, (list, tuple)) and prefetchers_raw,
            "campaign spec: 'prefetchers' must be a non-empty list")
    _expect(all(isinstance(item, str) for item in prefetchers_raw),
            "campaign spec: 'prefetchers' entries must be strings")
    unknown = [item for item in prefetchers_raw
               if item not in PREFETCHER_FACTORIES]
    _expect(not unknown,
            f"campaign spec: unknown prefetcher(s) {unknown}; "
            f"known: {sorted(PREFETCHER_FACTORIES)}")

    configs_raw = data.get("configs", [{"name": "base"}])
    _expect(isinstance(configs_raw, (list, tuple)) and configs_raw,
            "campaign spec: 'configs' must be a non-empty list")
    configs = tuple(_parse_config_variant(entry, index)
                    for index, entry in enumerate(configs_raw))
    names = [variant.name for variant in configs]
    _expect(len(set(names)) == len(names),
            f"campaign spec: duplicate config variant names: {names}")

    dispatch = _parse_dispatch(data.get("dispatch", {}))
    soak = _parse_soak(data.get("soak", {}))

    # Workload generator names are validated eagerly too.
    from repro.trace.generator import list_workloads

    known_apps = set(list_workloads())
    for workload in workloads:
        if workload.app is not None:
            _expect(workload.app in known_apps,
                    f"campaign spec: unknown app {workload.app!r}; "
                    f"known: {sorted(known_apps)}")
        for text in workload.tenants:
            app = TenantSpec.parse(text).app
            _expect(app in known_apps,
                    f"campaign spec: unknown app {app!r} in tenant "
                    f"{text!r}; known: {sorted(known_apps)}")

    return CampaignSpec(
        name=name, seed=seed, length=length, epoch_records=epoch_records,
        lineage=lineage, sim_config=sim_config, workloads=workloads,
        prefetchers=tuple(prefetchers_raw), configs=configs,
        dispatch=dispatch, soak=soak,
        base_dir=str(base_dir) if base_dir is not None else None,
    )


def load_campaign(path: PathLike) -> CampaignSpec:
    """Load and validate a campaign YAML file.

    Raises:
        CampaignSpecError: unreadable file, YAML syntax error, or any
            schema violation (see :func:`parse_campaign`).
    """
    try:
        import yaml
    except ImportError as exc:  # pragma: no cover - PyYAML ships in CI
        raise CampaignSpecError(
            "campaign specs need PyYAML (pip install pyyaml)") from exc

    path = Path(path)
    try:
        text = path.read_text(encoding="utf-8")
    except OSError as exc:
        raise CampaignSpecError(f"cannot read campaign spec {path}: "
                                f"{exc}") from exc
    try:
        data = yaml.safe_load(text)
    except yaml.YAMLError as exc:
        raise CampaignSpecError(f"{path}: invalid YAML: {exc}") from exc
    return parse_campaign(data, base_dir=path.parent)
