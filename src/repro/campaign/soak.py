"""Soak mode: sustained-rate replay of a merged multi-tenant workload.

Feeds the :class:`~repro.tenancy.merge.StreamingTraceMerger` interleave
against one service endpoint for a wall-clock duration — recreating the
merger whenever it runs dry, so the load never stops — while
periodically sampling the server's health verdict, session-manager
counters (backpressure waits included) and per-op span latency
percentiles over the same connection.  The resulting time-series is
appended as a ``"soak"`` section to ``BENCH_service.json``, preserving
whatever other sections (single-process, ``sharded``) already live
there.
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path
from typing import Callable, Optional, Union

from repro.config import SimConfig
from repro.errors import ServiceError
from repro.service.client import ServiceClient
from repro.tenancy.merge import StreamingTraceMerger
from repro.tenancy.spec import TenantSpec
from repro.utils.provenance import runtime_provenance

from repro.campaign.spec import CampaignSpec

PathLike = Union[str, Path]

#: Span names worth charting in the soak time-series (when tracing is on).
_SPAN_NAMES = ("request.feed", "session.feed_chunk", "session.fifo_wait",
               "engine.feed")


def _sample(client: ServiceClient, elapsed: float,
            records_fed: int) -> dict:
    """One time-series point: health + counters + span percentiles."""
    point = {
        "t_seconds": round(elapsed, 3),
        "records_fed": records_fed,
    }
    try:
        point["health"] = client.health().status
    except ServiceError:
        point["health"] = "unknown"
    try:
        stats = client.stats()
        point["backpressure_waits"] = stats.get("backpressure_waits", 0)
        point["chunks_executed"] = stats.get("chunks_executed", 0)
        point["records_executed"] = stats.get("records_executed", 0)
        point["live_sessions"] = stats.get("live_sessions", 0)
    except ServiceError:
        pass
    try:
        _, summary = client.server_spans()
        point["spans"] = {
            name: {key: round(entry[key], 3)
                   for key in ("p50_us", "p95_us", "p99_us")}
            for name, entry in summary.items()
            if name in _SPAN_NAMES
        }
    except ServiceError:
        pass  # server started without --trace; soak still runs
    return point


def run_soak(spec: CampaignSpec, endpoint: str,
             duration_seconds: Optional[float] = None,
             output: PathLike = "BENCH_service.json",
             config: Optional[SimConfig] = None,
             progress: Optional[Callable[[str], None]] = None) -> dict:
    """Replay the soak workload against ``endpoint`` and record the series.

    Returns the ``"soak"`` section that was appended to ``output``.
    ``duration_seconds`` overrides the spec's soak duration (handy for
    CI smokes).  Sampling happens inline between feed chunks — the
    client socket is not shared across threads — so the sample cadence
    is approximate but the load is never paused for more than one
    sampling round-trip.
    """
    from repro.campaign.runner import parse_endpoint

    soak = spec.soak
    duration = float(duration_seconds if duration_seconds is not None
                     else soak.duration_seconds)
    log = progress or (lambda line: None)
    host, port = parse_endpoint(endpoint)
    base_config = config or spec.load_base_config()
    tenant_specs = [TenantSpec.parse(text) for text in soak.tenants]
    merger = StreamingTraceMerger(tenant_specs, base_config.layout)
    session = f"campaign-soak-{spec.name}"

    samples = []
    records_fed = 0
    replays = 0
    with ServiceClient.connect(host, port) as client:
        try:
            client.close_session(session)
        except (ServiceError, KeyError):
            pass
        client.open(session, soak.prefetcher, workload="soak",
                    config=base_config)
        started = time.perf_counter()
        next_sample = 0.0  # sample immediately, then every interval
        while True:
            elapsed = time.perf_counter() - started
            if elapsed >= duration:
                break
            if elapsed >= next_sample:
                samples.append(_sample(client, elapsed, records_fed))
                next_sample = elapsed + soak.sample_interval_seconds
                log(f"soak t={elapsed:.1f}s fed={records_fed} "
                    f"health={samples[-1]['health']} "
                    f"bp={samples[-1].get('backpressure_waits', '?')}")
            if soak.rate_records_per_second:
                target = int(soak.rate_records_per_second * elapsed)
                if records_fed >= target:
                    time.sleep(min(0.02, duration - elapsed))
                    continue
            if merger.exhausted:
                merger = StreamingTraceMerger(tenant_specs,
                                              base_config.layout)
                replays += 1
            chunk = merger.next_chunk(soak.chunk_records)
            client.feed(session, chunk)
            records_fed += len(chunk)
        elapsed = time.perf_counter() - started
        samples.append(_sample(client, elapsed, records_fed))
        client.close_session(session)

    section = {
        "endpoint": f"{host}:{port}",
        "prefetcher": soak.prefetcher,
        "tenants": list(soak.tenants),
        "duration_seconds": round(elapsed, 3),
        "requested_rate_records_per_second": soak.rate_records_per_second,
        "records_fed": records_fed,
        "achieved_records_per_second": round(records_fed / elapsed, 1)
        if elapsed > 0 else 0.0,
        "workload_replays": replays,
        "sample_interval_seconds": soak.sample_interval_seconds,
        "samples": samples,
        **runtime_provenance(),
    }
    _append_soak_section(Path(output), section)
    return section


def _append_soak_section(output: Path, section: dict) -> None:
    """Merge ``section`` into ``output`` as ``"soak"``, keeping the rest."""
    merged = {}
    if output.exists():
        try:
            previous = json.loads(output.read_text())
        except (ValueError, OSError) as exc:
            print(f"warning: {output} unreadable ({exc}); starting fresh",
                  file=sys.stderr)
            previous = {}
        if isinstance(previous, dict):
            merged = previous
    merged["soak"] = section
    output.write_text(json.dumps(merged, indent=2) + "\n")
